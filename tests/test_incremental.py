"""Incremental redesign: staged state, warm starts, migration, drift.

The contract under test is *incremental-vs-scratch equivalence*:

* ``update()`` on an unchanged workload returns a bit-identical design
  (candidate ids, ILP objective, chosen set) to a from-scratch designer;
* warm-started branch-and-bound solves match cold solves exactly;
* migrating a materialized database through ``DesignDiff`` yields a
  database bit-identical (plans, costs, object set) to materializing the
  new design from scratch;
* drift streams are deterministic and their deltas consistent;
* the feedback-free ``design_ladder`` is bit-identical serial vs sharded.
"""

from __future__ import annotations

import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.dominate import dominates, reprune_incremental
from repro.design.ilp_formulation import (
    build_design_ilp,
    choose_candidates,
    incumbent_from_chosen,
)
from repro.design.migration import DesignDiff
from repro.engine import EvalSession, use_session
from repro.relational.query import Workload, WorkloadDelta
from repro.workloads.drift import WorkloadStream
from repro.workloads.registry import make

CONFIG = dict(t0=1, alphas=(0.0, 0.25, 0.5))


@pytest.fixture(scope="module")
def inst():
    return make("ssb", lineorder_rows=12_000, seed=3)


def _designer(inst, workload=None, **overrides):
    config = DesignerConfig(**{**CONFIG, **overrides})
    return CoraddDesigner(
        inst.flat_tables,
        workload if workload is not None else inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=config,
    )


@pytest.fixture(scope="module")
def budget(inst):
    return int(inst.total_base_bytes() * 0.6)


class TestStagedState:
    def test_stage_progression(self, inst, budget):
        designer = _designer(inst)
        assert designer.state.stage == "profiled"
        designer.enumerate()
        assert designer.state.stage == "enumerated"
        designer.design(budget)
        assert designer.state.stage == "solved"
        assert budget in designer.state.solutions
        assert budget in designer.state.designs

    def test_stages_are_resumable(self, inst, budget):
        designer = _designer(inst)
        designer.profile()
        stats_before = dict(designer.state.stats)
        designer.profile()  # no-op: nothing re-collected
        assert designer.state.stats == stats_before
        pool = designer.enumerate()
        assert designer.enumerate() is pool

    def test_archive_holds_dominated(self, inst):
        designer = _designer(inst)
        designer.enumerate()
        # Every archived candidate is dominated by something live.
        live = list(designer.state.candidates)
        for cand in designer.state.archive.values():
            assert any(dominates(a, cand) for a in live)


class TestUnchangedWorkloadEquivalence:
    def test_update_is_bit_identical_to_scratch(self, inst, budget):
        incremental = _designer(inst)
        first = incremental.design(budget)
        updated = incremental.update(inst.workload, budget)

        scratch = _designer(inst)
        fresh = scratch.design(budget)

        assert updated.ilp.chosen_ids == fresh.ilp.chosen_ids
        assert updated.ilp.objective == pytest.approx(fresh.ilp.objective, abs=1e-12)
        assert updated.ilp.assignment == fresh.ilp.assignment
        assert updated.expected_seconds == fresh.expected_seconds
        assert [c.cand_id for c in updated.chosen] == [
            c.cand_id for c in fresh.chosen
        ]
        assert updated.ilp.chosen_ids == first.ilp.chosen_ids

    def test_empty_delta_adds_no_candidates(self, inst, budget):
        designer = _designer(inst)
        designer.design(budget)
        pool_before = sorted(c.cand_id for c in designer.state.candidates)
        designer.update(WorkloadDelta.between(inst.workload, inst.workload), budget)
        assert sorted(c.cand_id for c in designer.state.candidates) == pool_before


class TestWarmStart:
    def test_warm_equals_cold_on_small_fixture(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        cold = choose_candidates(problem, backend="bnb")
        warm = choose_candidates(
            problem, backend="bnb", warm_start=cold.chosen_ids
        )
        assert warm.chosen_ids == cold.chosen_ids
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.assignment == cold.assignment
        # A bogus warm start must not change the optimum either.
        bogus = choose_candidates(
            problem, backend="bnb", warm_start=["no-such-candidate"]
        )
        assert bogus.chosen_ids == cold.chosen_ids
        assert bogus.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_incumbent_is_feasible_and_priced_right(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        solution = choose_candidates(problem, backend="bnb")
        model = build_design_ilp(problem)
        incumbent = incumbent_from_chosen(problem, model, solution.chosen_ids)
        assert model.is_feasible(incumbent)
        assert model.evaluate(incumbent) == pytest.approx(
            solution.objective, rel=1e-9
        )

    def test_incumbent_actually_reaches_branch_and_bound(self, inst, budget):
        """Guards the warm-start plumbing end-to-end: an optimal incumbent
        must prune the search, never enlarge it."""
        from repro.ilp.branch_and_bound import solve_branch_and_bound

        designer = _designer(inst)
        problem = designer.problem(budget)
        model = build_design_ilp(problem)
        cold = solve_branch_and_bound(model)
        incumbent = incumbent_from_chosen(
            problem,
            model,
            [n[2:-1] for n in model.variables if n.startswith("y[")
             and cold.x[list(model.variables).index(n)] > 0.5],
        )
        warm = solve_branch_and_bound(model, incumbent=incumbent)
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)
        assert warm.nodes_explored <= cold.nodes_explored
        # An incumbent whose objective ties the optimum wins the tie: the
        # returned point is the incumbent itself.
        assert model.evaluate(
            {name: v for name, v in zip(model.variables, warm.x)}
        ) == pytest.approx(model.evaluate(incumbent), abs=1e-9)


class TestWorkloadDelta:
    def test_between_classifies_changes(self, inst):
        queries = list(inst.workload)
        old = Workload("old", queries[:6])
        new = Workload(
            "new",
            [queries[0].with_frequency(queries[0].frequency * 2.0)]
            + queries[2:6]
            + [queries[7]],
        )
        delta = WorkloadDelta.between(old, new)
        assert [q.name for q in delta.added] == [queries[7].name]
        assert delta.removed == (queries[1].name,)
        assert dict(delta.reweighted) == {
            queries[0].name: queries[0].frequency * 2.0
        }
        assert not delta.changed
        assert delta.workload is new
        assert WorkloadDelta.between(old, old).is_empty


class TestIncrementalDrift:
    def test_update_tracks_drift_and_matches_scratch_quality(self, inst, budget):
        queries = list(inst.workload)
        phase0 = Workload("p0", queries[:9])
        phase1 = Workload(
            "p1", queries[3:9] + [q.with_frequency(1.5) for q in queries[9:12]]
        )
        incremental = _designer(inst, workload=phase0)
        incremental.design(budget)
        updated = incremental.update(phase1, budget)

        assert set(updated.expected_seconds) == {q.name for q in phase1}
        assert updated.workload is incremental.workload
        for qname, cid in updated.ilp.assignment.items():
            if cid is not None:
                assert updated.ilp.chosen_ids.count(cid) == 1

        scratch = _designer(inst, workload=phase1)
        fresh = scratch.design(budget)
        # The incremental pool is a superset of what scratch enumerates for
        # the phase, so the incremental optimum can only be >= as good,
        # modulo feedback exploring different neighbourhoods: allow 1%.
        assert updated.total_expected_seconds <= fresh.total_expected_seconds * 1.01

    def test_update_keeps_candidate_ids_stable(self, inst, budget):
        queries = list(inst.workload)
        incremental = _designer(inst, workload=Workload("p0", queries[:8]))
        first = incremental.design(budget)
        by_id = {
            c.cand_id: c.signature() for c in incremental.state.candidates
        }
        incremental.update(Workload("p1", queries[2:10]), budget)
        for cand in incremental.state.candidates:
            if cand.cand_id in by_id:
                assert cand.signature() == by_id[cand.cand_id]
        assert first.ilp.chosen_ids  # the phase-0 design really chose things

    def test_changed_query_content_is_redesigned(self, inst, budget):
        """A query whose predicates change under the same name must be
        treated as remove+add: its groups re-design (the designed-group log
        is fingerprint-keyed) and every covering candidate is re-priced."""
        from repro.relational.query import RangePredicate

        queries = list(inst.workload)[:8]
        designer = _designer(inst, workload=Workload("p0", queries))
        designer.design(budget)
        victim = queries[0]
        pred = victim.predicates[0]
        lo, hi = pred.value_range()
        changed = type(victim)(
            victim.name,
            victim.fact_table,
            [RangePredicate(pred.attr, lo, hi + 1)] + victim.predicates[1:],
            aggregates=victim.aggregates,
            group_by=victim.group_by,
            frequency=victim.frequency,
        )
        delta = WorkloadDelta.between(
            designer.workload, Workload("p1", [changed] + queries[1:])
        )
        assert delta.changed == (victim.name,)
        updated = designer.update(delta, budget)
        enumerator = designer.state.enumerator_for(victim.fact_table)
        # The singleton group reads as designed under the *new* fingerprint.
        assert enumerator.has_designed(frozenset([victim.name]))
        # Every candidate covering the query was re-priced against the new
        # content (matching a from-scratch enumerator's estimate).
        for cand in designer.state.candidates:
            if victim.name in cand.runtimes:
                fresh = dict(cand.runtimes)
                enumerator.compute_runtimes(cand, [changed])
                assert cand.runtimes == fresh
        assert victim.name in updated.expected_seconds

    def test_reweight_only_delta_is_not_a_noop(self, inst, budget):
        """A weight change is a real delta: the affected fact re-enumerates
        with the new frequencies (weight feeds candidate generation —
        cluster-key interleaving, grouping), and the updated design matches
        a cold designer over the reweighted workload."""
        queries = list(inst.workload)[:8]
        phase0 = Workload("p0", queries)
        # Skew hard enough that the optimal physical design can change:
        # one query comes to dominate the weighted objective.
        reweighted = [queries[0].with_frequency(queries[0].frequency * 50.0)]
        reweighted += [q.with_frequency(q.frequency * 0.5) for q in queries[1:]]
        phase1 = Workload("p1", reweighted)

        designer = _designer(inst, workload=phase0)
        designer.design(budget)
        delta = WorkloadDelta.between(phase0, phase1)
        assert not delta.added and not delta.removed and not delta.changed
        assert len(delta.reweighted) == len(queries)

        updated = designer.update(delta, budget)
        # The enumerator saw the new weights — not the stale phase-0 ones.
        fact = queries[0].fact_table
        enumerator = designer.state.enumerator_for(fact)
        by_name = {q.name: q.frequency for q in phase1}
        for q in enumerator.queries:
            assert q.frequency == by_name[q.name]

        scratch = _designer(inst, workload=phase1)
        fresh = scratch.design(budget)
        assert (
            updated.total_expected_seconds
            <= fresh.total_expected_seconds * 1.01
        )

    def test_reprune_resurrects_when_dominator_leaves(self, inst, budget):
        designer = _designer(inst)
        designer.design(budget)
        candidates = designer.state.candidates
        archive = designer.state.archive
        if not archive:
            pytest.skip("nothing archived on this fixture")
        cand_id, parked = next(iter(archive.items()))
        dominators = [
            a.cand_id for a in candidates if dominates(a, parked)
        ]
        for dom in dominators:
            candidates.remove(dom)
        reprune_incremental(candidates, archive)
        # Either the candidate came back, or a *resurrected* peer dominates
        # it now — the invariant is that archived implies dominated-by-live.
        if any(c.cand_id == cand_id for c in candidates):
            assert cand_id not in archive
        else:
            live = list(candidates)
            assert any(dominates(a, archive[cand_id]) for a in live)


class TestMigration:
    def test_migrated_database_is_bit_identical(self, inst, budget):
        queries = list(inst.workload)
        phase0 = Workload("p0", queries[:9])
        phase1 = Workload("p1", queries[3:12])
        designer = _designer(inst, workload=phase0)
        session = EvalSession()
        with use_session(session):
            old_design = designer.design(budget)
            db = old_design.materialize(session)
            new_design = designer.update(phase1, budget)
            migrated = new_design.materialize(
                session, existing=db, previous=old_design
            )
        fresh = new_design.materialize(EvalSession())
        assert migrated is db
        assert list(migrated.objects) == list(fresh.objects)
        for q in phase1:
            got, want = migrated.run(q), fresh.run(q)
            assert got.seconds == want.seconds
            assert got.plan == want.plan
            assert got.object_name == want.object_name

    def test_plan_orders_builds_by_benefit_per_byte(self, inst, budget):
        queries = list(inst.workload)
        designer = _designer(inst, workload=Workload("p0", queries[:9]))
        old_design = designer.design(budget)
        new_design = designer.update(Workload("p1", queries[3:12]), budget)
        plan = DesignDiff(old_design, new_design).plan()
        ratios = [step.benefit_per_byte for step in plan.builds]
        assert ratios == sorted(ratios, reverse=True)
        old_names = {s.name for s in old_design.object_specs()}
        new_names = {s.name for s in new_design.object_specs()}
        for step in plan.drops:
            assert step.name in old_names
        for step in plan.builds:
            assert step.name in new_names
        # Kept objects appear in both designs with identical structure.
        for name in plan.kept:
            assert name in old_names and name in new_names
        assert plan.summary()

    def test_materialize_existing_requires_previous(self, inst, budget):
        designer = _designer(inst)
        design = designer.design(budget)
        db = design.materialize()
        with pytest.raises(ValueError):
            design.materialize(existing=db)

    def test_remove_unknown_object_raises(self, inst, budget):
        designer = _designer(inst)
        db = designer.design(budget).materialize()
        with pytest.raises(KeyError):
            db.remove("no-such-object")


class TestWorkloadStream:
    def test_deterministic_and_delta_consistent(self, inst):
        for _ in range(2):
            streams = [
                WorkloadStream(inst.workload, phases=4, seed=5) for _ in range(2)
            ]
            a, b = (s.phases() for s in streams)
            for pa, pb in zip(a, b):
                assert [q.name for q in pa.workload] == [q.name for q in pb.workload]
                assert [q.frequency for q in pa.workload] == [
                    q.frequency for q in pb.workload
                ]
        phases = WorkloadStream(
            inst.workload, phases=4, rotation=0.3, reweight=0.5, seed=5
        ).phases()
        assert phases[0].delta.is_empty
        for prev, phase in zip(phases, phases[1:]):
            recomputed = WorkloadDelta.between(prev.workload, phase.workload)
            assert tuple(q.name for q in recomputed.added) == tuple(
                q.name for q in phase.delta.added
            )
            assert recomputed.removed == phase.delta.removed
            assert recomputed.reweighted == phase.delta.reweighted
            assert len(phase.delta.added) == len(phase.delta.removed) > 0

    def test_drift_registry_variants(self):
        for name in ("ssb-drift", "tpch-drift"):
            tiny = make(name, scale=0.02, phases=3, augment_factor=2)
            assert tiny.stream is not None
            phases = tiny.stream.phases()
            assert len(phases) == 3
            assert [q.name for q in tiny.workload] == [
                q.name for q in phases[0].workload
            ]

    def test_knob_validation(self, inst):
        with pytest.raises(ValueError):
            WorkloadStream(inst.workload, phases=0)
        with pytest.raises(ValueError):
            WorkloadStream(inst.workload, rotation=1.5)
        with pytest.raises(ValueError):
            WorkloadStream(inst.workload, active_fraction=0.0)


class TestDesignLadder:
    def test_sharded_matches_serial_feedback_free(self, inst):
        budgets = [
            int(inst.total_base_bytes() * f) for f in (0.3, 0.6, 0.9, 1.2)
        ]
        serial = _designer(inst, use_feedback=False)
        parallel = _designer(inst, use_feedback=False)
        serial_designs = serial.design_ladder(budgets, workers=1)
        parallel_designs = parallel.design_ladder(budgets, workers=2)
        for a, b in zip(serial_designs, parallel_designs):
            assert a.ilp.chosen_ids == b.ilp.chosen_ids
            assert a.ilp.objective == pytest.approx(b.ilp.objective, abs=1e-12)
            assert a.expected_seconds == b.expected_seconds
        # Solutions are recorded in the parent's state in both modes.
        assert sorted(parallel.state.solutions) == sorted(budgets)

    def test_ladder_with_feedback_stays_serial_and_works(self, inst):
        budgets = [int(inst.total_base_bytes() * f) for f in (0.4, 0.8)]
        designer = _designer(inst)
        designs = designer.design_ladder(budgets, workers=4)
        assert [d.budget_bytes for d in designs] == budgets
