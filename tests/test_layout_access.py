"""Heap files and access paths: correctness and cost ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
)
from repro.storage.access import (
    clustered_scan,
    full_scan,
    secondary_btree_scan,
    usable_cluster_prefix,
)
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from tests.conftest import make_people
from tests.test_table import make_table


@pytest.fixture(scope="module")
def people():
    return make_people(n=60_000)


@pytest.fixture(scope="module")
def disk():
    return DiskModel()


@pytest.fixture(scope="module")
def by_state(people, disk):
    return HeapFile(people, ("state", "city"), disk, name="by_state")


@pytest.fixture(scope="module")
def by_salary(people, disk):
    return HeapFile(people, ("salary",), disk, name="by_salary")


class TestHeapFile:
    def test_sorted_by_cluster_key(self, by_state):
        states = by_state.table.column("state")
        assert (np.diff(states) >= 0).all()

    def test_geometry(self, by_state, people, disk):
        assert by_state.nrows == people.nrows
        expected_pages = disk.pages_for_rows(people.nrows, people.row_bytes())
        assert by_state.npages == expected_pages
        assert by_state.size_bytes >= by_state.heap_bytes

    def test_unknown_cluster_attr_rejected(self, people, disk):
        with pytest.raises(KeyError):
            HeapFile(people, ("nope",), disk)

    def test_rowids_for_mask(self, by_state):
        mask = np.zeros(by_state.nrows, dtype=bool)
        mask[[5, 17]] = True
        assert list(by_state.rowids_for_mask(mask)) == [5, 17]
        with pytest.raises(ValueError):
            by_state.rowids_for_mask(np.zeros(3, dtype=bool))

    def test_prefix_ranks_dense_nondecreasing(self, by_state):
        for depth in (1, 2):
            ranks = by_state.prefix_ranks(depth)
            assert ranks[0] == 0
            diffs = np.diff(ranks)
            assert ((diffs == 0) | (diffs == 1)).all()
        assert by_state.prefix_distinct_count(1) == 50

    def test_prefix_depth_validation(self, by_state):
        with pytest.raises(ValueError):
            by_state.prefix_ranks(0)
        with pytest.raises(ValueError):
            by_state.prefix_ranks(3)

    def test_prefix_value_ranges_match_bruteforce(self, by_state):
        ranks = by_state.prefix_ranks(1)
        wanted = np.array([3, 4, 10])
        ranges = by_state.prefix_value_ranges(1, wanted)
        covered = np.zeros(by_state.nrows, dtype=bool)
        for s, e in ranges:
            covered[s:e] = True
        assert (covered == np.isin(ranks, wanted)).all()
        # Adjacent wanted ranks merge into one range.
        assert len(ranges) == 2

    def test_prefix_value_ranges_empty(self, by_state):
        assert by_state.prefix_value_ranges(1, np.array([])) == []


class TestAccessPaths:
    def test_all_plans_same_answer(self, by_state, by_salary, people):
        q = Query(
            "q",
            "people",
            [EqPredicate("city", 123)],
            [Aggregate("sum", ("salary",))],
        )
        want = q.answer(people)
        for hf in (by_state, by_salary):
            res = full_scan(hf, q)
            assert q.answer(hf.table) == want
            assert int(res.mask.sum()) == int(q.mask(hf.table).sum())
        res2 = secondary_btree_scan(by_state, q, ("city",))
        assert int(res2.mask.sum()) == int(q.mask(by_state.table).sum())

    def test_full_scan_cost(self, by_state, disk):
        q = Query("q", "people", [EqPredicate("state", 3)])
        res = full_scan(by_state, q)
        assert res.cost.pages_read == by_state.npages
        assert res.cost.seconds == pytest.approx(disk.full_scan_seconds(by_state.npages))

    def test_usable_prefix_rules(self, by_state):
        eq_eq = Query("a", "p", [EqPredicate("state", 1), EqPredicate("city", 25)])
        assert usable_cluster_prefix(by_state, eq_eq) == 2
        range_first = Query("b", "p", [RangePredicate("state", 1, 3), EqPredicate("city", 25)])
        assert usable_cluster_prefix(by_state, range_first) == 1
        unpredicated = Query("c", "p", [EqPredicate("salary", 55)])
        assert usable_cluster_prefix(by_state, unpredicated) == 0
        in_first = Query("d", "p", [InPredicate("state", (1, 2))])
        assert usable_cluster_prefix(by_state, in_first) == 1

    def test_clustered_scan_none_when_unusable(self, by_state):
        q = Query("q", "people", [EqPredicate("salary", 55)])
        assert clustered_scan(by_state, q) is None

    def test_clustered_scan_cheaper_than_full(self, by_state):
        q = Query("q", "people", [EqPredicate("state", 7)])
        cs = clustered_scan(by_state, q)
        fs = full_scan(by_state, q)
        assert cs is not None
        assert cs.seconds < fs.seconds
        assert cs.cost.fragments == 1

    def test_in_predicate_fragments(self, by_state):
        q = Query("q", "people", [InPredicate("state", (3, 30))])
        cs = clustered_scan(by_state, q)
        assert cs is not None
        assert cs.cost.fragments == 2

    def test_secondary_scan_requires_leading_predicate(self, by_state):
        q = Query("q", "people", [EqPredicate("salary", 55)])
        assert secondary_btree_scan(by_state, q, ("city", "salary")) is None

    def test_correlation_effect_on_secondary_scan(self, disk):
        """The paper's core observation: the same secondary index is far
        cheaper when the clustering correlates with the indexed attribute.
        city determines state, so clustering by state groups each city's
        rows into a couple of runs; wide rows make scattered matches
        out-distance the readahead gap."""
        from tests.conftest import make_wide_people

        big = make_wide_people(n=120_000, seed=3)
        corr = HeapFile(big, ("state",), disk)
        query = Query("q", "people", [EqPredicate("city", 123)])
        uncorr = HeapFile(big, ("salary",), disk)
        r_corr = secondary_btree_scan(corr, query, ("city",))
        r_uncorr = secondary_btree_scan(uncorr, query, ("city",))
        assert r_corr.cost.fragments * 5 < r_uncorr.cost.fragments
        assert r_corr.seconds * 3 < r_uncorr.seconds


@settings(max_examples=30, deadline=None)
@given(
    states=st.lists(st.integers(0, 8), min_size=5, max_size=200),
    wanted=st.sets(st.integers(0, 8), min_size=1, max_size=4),
)
def test_prefix_ranges_property(states, wanted, ):
    t = make_table(s=states)
    hf = HeapFile(t, ("s",), DiskModel())
    ranks = hf.prefix_ranks(1)
    # Map raw wanted values to ranks present in the data.
    sorted_vals = np.unique(np.asarray(states))
    wanted_ranks = np.array(
        [int(np.searchsorted(sorted_vals, w)) for w in wanted if w in set(states)]
    )
    ranges = hf.prefix_value_ranges(1, wanted_ranks)
    covered = np.zeros(hf.nrows, dtype=bool)
    for s, e in ranges:
        covered[s:e] = True
    assert (covered == np.isin(ranks, wanted_ranks)).all()
