"""Refresh streams, maintenance-aware design, transitions, solver satellites.

Covers the update pipeline above the storage layer:

* :class:`~repro.workloads.refresh.RefreshStream` determinism and shape;
* the maintenance cost model's locality signal and the ILP's update/query
  mix knob (``update_weight=0`` provably inert, heavy mixes provably
  narrower);
* transition execution: refresh-off bit-identity with
  :meth:`~repro.design.migration.DesignDiff.apply`, and benefit-per-byte
  deployment order never scoring worse than its reverse;
* the HiGHS fix-and-polish warm start (same optimum as a cold solve, polish
  short-circuit when the LP bound certifies it);
* the incremental k-means grouping memo (bit-identical on unchanged cells).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.grouping import GroupingMemo, enumerate_query_groups
from repro.design.ilp_formulation import build_design_ilp, choose_candidates
from repro.design.kmeans import kmeans
from repro.design.maintenance import MaintenanceModel, MaintenanceTable, arrival_locality
from repro.design.migration import (
    DesignDiff,
    execute_transition,
    score_deployment_order,
)
from repro.engine import EvalSession, use_session
from repro.ilp.solver import fix_and_polish, solve
from repro.relational.query import Workload
from repro.storage.executor import PhysicalDatabase
from repro.storage.update import RefreshExecutor
from repro.workloads.refresh import RefreshStream
from repro.workloads.registry import make

CONFIG = dict(t0=1, alphas=(0.0, 0.25), use_feedback=False)


@pytest.fixture(scope="module")
def inst():
    return make(
        "ssb-refresh",
        lineorder_rows=6_000,
        seed=3,
        rounds=2,
        insert_fraction=0.04,
        delete_fraction=0.02,
    )


@pytest.fixture(scope="module")
def budget(inst):
    return int(inst.total_base_bytes() * 0.6)


def _designer(inst, workload=None, **overrides):
    return CoraddDesigner(
        inst.flat_tables,
        workload if workload is not None else inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=DesignerConfig(**{**CONFIG, **overrides}),
    )


# -------------------------------------------------------------- refresh streams


class TestRefreshStream:
    def test_deterministic(self, inst):
        flat = inst.flat_tables["lineorder"]
        streams = [
            RefreshStream(
                flat, "lineorder", ("orderkey", "linenumber"), "orderdate",
                rounds=3, insert_fraction=0.03, delete_fraction=0.01, seed=5,
            )
            for _ in range(2)
        ]
        a, b = streams[0].batches(), streams[1].batches()
        assert len(a) == len(b) == 6  # insert + delete per round
        for ba, bb in zip(a, b):
            assert ba.kind == bb.kind and ba.fact == bb.fact
            if ba.kind == "insert":
                for name in ba.columns:
                    assert np.array_equal(ba.columns[name], bb.columns[name])
            else:
                assert ba.delete_predicates == bb.delete_predicates

    def test_seed_changes_content(self, inst):
        flat = inst.flat_tables["lineorder"]
        mk = lambda s: RefreshStream(
            flat, "lineorder", ("orderkey", "linenumber"), "orderdate",
            rounds=1, insert_fraction=0.03, seed=s,
        ).batches()[0]
        assert not np.array_equal(
            mk(0).columns["custkey"], mk(1).columns["custkey"]
        )

    def test_insert_keys_are_fresh_and_monotone(self, inst):
        flat = inst.flat_tables["lineorder"]
        stream = RefreshStream(
            flat, "lineorder", ("orderkey", "linenumber"), "orderdate",
            rounds=2, insert_fraction=0.03, delete_fraction=0.0,
        )
        max_existing = int(flat.column("orderkey").max())
        seen = []
        for batch in stream:
            keys = batch.columns["orderkey"]
            assert keys.min() > max_existing
            assert np.all(np.diff(keys) > 0)
            seen.append(keys)
        assert seen[1].min() > seen[0].max()  # batches keep advancing

    def test_inserts_sample_recent_band(self, inst):
        flat = inst.flat_tables["lineorder"]
        stream = RefreshStream(
            flat, "lineorder", ("orderkey", "linenumber"), "orderdate",
            rounds=1, insert_fraction=0.05, recency_quantile=0.9,
        )
        batch = stream.batches()[0]
        cutoff = np.quantile(flat.column("orderdate"), 0.9)
        assert batch.columns["orderdate"].min() >= cutoff

    def test_delete_thresholds_advance(self, inst):
        flat = inst.flat_tables["lineorder"]
        stream = RefreshStream(
            flat, "lineorder", ("orderkey", "linenumber"), "orderdate",
            rounds=3, insert_fraction=0.01, delete_fraction=0.02,
        )
        thresholds = [
            b.delete_predicates[0].hi for b in stream if b.kind == "delete"
        ]
        assert thresholds == sorted(thresholds)
        assert len(set(thresholds)) == len(thresholds)

    def test_registry_variants_attach_streams(self):
        for name, fact in (("ssb-refresh", "lineorder"), ("tpch-refresh", "lineitem")):
            bench = make(name, scale=0.05, rounds=2)
            assert bench.refresh is not None
            assert bench.refresh.fact == fact
            assert len(bench.refresh.batches()) >= 2


# ------------------------------------------------------- maintenance-aware ILP


class TestMaintenanceAwareDesign:
    def test_arrival_locality_signal(self, inst):
        flat = inst.flat_tables["lineorder"]
        n = flat.nrows
        pos = np.arange(n)
        assert arrival_locality(pos, flat.column("orderkey")) > 0.99
        assert arrival_locality(pos, flat.column("orderdate")) > 0.9
        assert arrival_locality(pos, flat.column("custkey")) < 0.3

    def test_zero_weight_is_bit_identical(self, inst, budget):
        query_only = _designer(inst).design(budget)
        weighted_zero = _designer(inst, update_weight=0.0).design(budget)
        assert query_only.ilp.chosen_ids == weighted_zero.ilp.chosen_ids
        assert query_only.ilp.objective == weighted_zero.ilp.objective
        assert query_only.ilp.assignment == weighted_zero.ilp.assignment
        assert weighted_zero.ilp.maintenance_seconds == 0.0

    def test_zero_weight_table_matches_no_table(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        assert problem.maintenance is None
        model = build_design_ilp(problem)
        stats = designer.state.stats["lineorder"]
        table = MaintenanceTable(
            {"lineorder": MaintenanceModel(stats, designer.disk)}, 0.0
        )
        problem.maintenance = table
        model_zero = build_design_ilp(problem)
        assert {
            name: var.obj for name, var in model.variables.items()
        } == {name: var.obj for name, var in model_zero.variables.items()}

    def test_update_heavy_mix_narrows_the_design(self, inst, budget):
        query_only = _designer(inst).design(budget)
        heavy = _designer(inst, update_weight=1.0).design(budget)
        assert query_only.chosen, "fixture must choose objects when read-only"
        assert heavy.size_bytes < query_only.size_bytes
        # And the charged maintenance reflects the model, not zero.
        mid = _designer(inst, update_weight=0.02).design(budget)
        if mid.chosen:
            assert mid.ilp.maintenance_seconds > 0.0

    def test_maintenance_prefers_correlated_clusterings(self, inst, budget):
        designer = _designer(inst)
        designer.enumerate()
        stats = designer.state.stats["lineorder"]
        model = MaintenanceModel(stats, designer.disk, pool_pages=1_024)
        mvs = [c for c in designer.state.candidates if c.kind == "mv"]
        by_key = {}
        for cand in mvs:
            by_key.setdefault(cand.cluster_key[:1], cand)
        correlated = [
            model.candidate_seconds(c, 10_000)
            for k, c in by_key.items()
            if k and k[0] in ("orderkey", "orderdate")
        ]
        uncorrelated = [
            model.candidate_seconds(c, 10_000)
            for k, c in by_key.items()
            if k and k[0] in ("custkey", "partkey", "suppkey")
        ]
        if correlated and uncorrelated:
            assert min(uncorrelated) > max(correlated)


# ------------------------------------------------------------------ transitions


class TestTransitions:
    def _two_phase(self, inst, budget, session):
        queries = list(inst.workload)
        designer = _designer(inst, workload=Workload("p0", queries[:8]))
        d0 = designer.design(budget)
        db = d0.materialize(session)
        d1 = designer.update(Workload("p1", queries[3:12]), budget)
        return d0, d1, db

    def test_refresh_off_transition_bit_identical_to_apply(self, inst, budget):
        session = EvalSession()
        with use_session(session):
            d0, d1, db = self._two_phase(inst, budget, session)
            db_apply = PhysicalDatabase()
            db_apply.objects = dict(db.objects)
            db_exec = PhysicalDatabase()
            db_exec.objects = dict(db.objects)
            ref = DesignDiff(d0, d1).apply(db_apply, session=session)
            report = execute_transition(
                DesignDiff(d0, d1), db_exec, session=session
            )
            assert list(ref.objects) == list(report.final_db.objects)
            for q in d1.workload:
                a = ref.run(q)
                b = report.final_db.run(q)
                assert a.object_name == b.object_name
                assert a.plan == b.plan
                assert a.result.cost == b.result.cost
                assert np.array_equal(a.result.mask, b.result.mask)

    def test_bpb_order_never_scores_worse_than_reverse(self, inst, budget):
        session = EvalSession()
        with use_session(session):
            # A budget *increase* over an unchanged workload: every build's
            # benefit is well-defined (both designs priced every query), the
            # regime where benefit-per-byte ordering is meaningful.
            designer = _designer(inst)
            d0 = designer.design(int(budget * 0.2))
            db = d0.materialize(session)
            d1 = designer.design(budget)
            diff = DesignDiff(d0, d1)
            plan = diff.plan()
            if len(plan.builds) < 2:
                pytest.skip("fixture produced fewer than 2 builds")
            forward = score_deployment_order(diff, db, session=session)
            reverse = score_deployment_order(
                diff, db, order=list(reversed(forward.order)), session=session
            )
            assert forward.query_seconds <= reverse.query_seconds + 1e-12
            # Scoring is deterministic.
            again = score_deployment_order(diff, db, session=session)
            assert again.query_seconds == forward.query_seconds

    def test_transition_with_refreshes_stays_correct(self, inst, budget):
        session = EvalSession()
        with use_session(session):
            d0, d1, db = self._two_phase(inst, budget, session)
            executor = RefreshExecutor(db, pool_pages=2_048, session=session)
            report = execute_transition(
                DesignDiff(d0, d1),
                db,
                session=session,
                refreshes=inst.refresh.batches(),
                refresh_executor=executor,
            )
            assert report.refresh_seconds > 0.0
            final = report.final_db
            base = final.object("lineorder").heapfile
            assert base.version > 0  # mutations really landed mid-migration
            for q in d1.workload:
                choice = final.run(q)
                obj = final.object(choice.object_name)
                got = set(
                    obj.heapfile.source_rowids[choice.result.mask].tolist()
                )
                mask = q.mask(base.table)
                if base.live is not None:
                    mask = mask & base.live
                want = set(base.source_rowids[mask].tolist())
                assert got == want, q.name

    def test_order_validation(self, inst, budget):
        session = EvalSession()
        with use_session(session):
            d0, d1, db = self._two_phase(inst, budget, session)
            diff = DesignDiff(d0, d1)
            if not diff.plan().builds:
                pytest.skip("no builds to misorder")
            with pytest.raises(ValueError):
                execute_transition(
                    diff, db, session=session, order=["not-a-build"]
                )


# ---------------------------------------------------------------- fix & polish


class TestFixAndPolish:
    def test_scipy_warm_equals_cold(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        cold = choose_candidates(problem, backend="scipy")
        warm = choose_candidates(
            problem, backend="scipy", warm_start=cold.chosen_ids
        )
        assert warm.chosen_ids == cold.chosen_ids
        assert warm.objective == pytest.approx(cold.objective, abs=1e-9)

    def test_polish_result_is_optimal_on_design_problem(self, inst, budget):
        from repro.design.ilp_formulation import incumbent_from_chosen

        designer = _designer(inst)
        problem = designer.problem(budget)
        model = build_design_ilp(problem)
        cold = choose_candidates(problem, backend="scipy")
        incumbent = incumbent_from_chosen(problem, model, cold.chosen_ids)
        solution = solve(model, backend="scipy", warm_start=incumbent)
        assert solution.status == "optimal"
        assert solution.objective == pytest.approx(cold.objective, abs=1e-9)
        # Whether the polish short-circuit fired (LP bound tight) or the
        # full solve ran, the path must be one of the two warm outcomes.
        assert solution.backend in ("scipy", "scipy-polish")

    def test_polish_short_circuits_on_tight_relaxation(self):
        from repro.ilp.model import MILPModel

        # A model whose LP relaxation is integral: an optimal incumbent must
        # be certified by the bound and skip the full MILP entirely.
        model = MILPModel("tight")
        model.add_binary("y[a]", obj=-2.0)
        model.add_binary("y[b]", obj=-1.0)
        model.add_constraint({"y[a]": 1.0}, "<=", 1.0, name="ca")
        model.add_constraint({"y[b]": 1.0}, "<=", 1.0, name="cb")
        incumbent = {"y[a]": 1.0, "y[b]": 1.0}
        solution = solve(model, backend="scipy", warm_start=incumbent)
        assert solution.status == "optimal"
        assert solution.objective == pytest.approx(-3.0, abs=1e-9)
        assert solution.backend == "scipy-polish"

    def test_polish_bounds_above_optimum(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        model = build_design_ilp(problem)
        from repro.design.ilp_formulation import incumbent_from_chosen

        # An arbitrary feasible-but-poor incumbent: choose nothing.
        incumbent = incumbent_from_chosen(problem, model, [])
        polished = fix_and_polish(model, incumbent)
        cold = choose_candidates(problem, backend="scipy")
        assert polished.status == "optimal"
        assert polished.objective >= cold.objective - 1e-9
        assert polished.objective <= model.evaluate(incumbent) + 1e-9

    def test_infeasible_incumbent_falls_back(self, inst, budget):
        designer = _designer(inst)
        problem = designer.problem(budget)
        model = build_design_ilp(problem)
        y_vars = [n for n in model.variables if n.startswith("y[")]
        if not y_vars:
            pytest.skip("no candidates")
        # All candidates at once blows the budget: infeasible point.
        bogus = {name: 1.0 for name in y_vars}
        cold = choose_candidates(problem, backend="scipy")
        solution = solve(model, backend="scipy", warm_start=bogus)
        assert solution.objective == pytest.approx(cold.objective, abs=1e-9)


# ------------------------------------------------------------- grouping memo


class TestGroupingMemo:
    def _inputs(self, inst, names_slice):
        designer = _designer(inst)
        enumerator = designer.state.enumerators[0]
        queries = enumerator.queries[names_slice]
        from repro.design.selectivity import build_selectivity_vectors

        vectors = build_selectivity_vectors(queries, enumerator.stats)
        return queries, vectors, enumerator.stats

    def test_unchanged_cells_reuse_bit_identically(self, inst):
        queries, vectors, stats = self._inputs(inst, slice(0, 8))
        kwargs = dict(alphas=(0.0, 0.25), seed=0)
        cold = enumerate_query_groups(queries, vectors, stats, **kwargs)
        memo = GroupingMemo()
        first = enumerate_query_groups(
            queries, vectors, stats, memo=memo, **kwargs
        )
        assert first == cold
        slots_digests = {
            slot: s.digest for slot, s in memo.slots.items()
        }
        second = enumerate_query_groups(
            queries, vectors, stats, memo=memo, **kwargs
        )
        assert second == cold  # replayed from the memo, bit-identically
        assert {
            slot: s.digest for slot, s in memo.slots.items()
        } == slots_digests

    def test_drifted_cells_warm_seed_and_stay_valid(self, inst):
        queries, vectors, stats = self._inputs(inst, slice(0, 8))
        memo = GroupingMemo()
        kwargs = dict(alphas=(0.0, 0.25), seed=0)
        enumerate_query_groups(queries, vectors, stats, memo=memo, **kwargs)
        drifted, dvectors, _ = self._inputs(inst, slice(2, 10))
        groups = enumerate_query_groups(
            drifted, dvectors, stats, memo=memo, **kwargs
        )
        names = {q.name for q in drifted}
        for name in names:
            assert frozenset([name]) in groups  # singletons always present
        assert frozenset(names) in groups
        for group in groups:
            assert group <= names  # no stale queries leak from the memo

    def test_kmeans_init_centers_deterministic(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(40, 4))
        base = kmeans(points, 4, seed=1)
        warm1 = kmeans(points, 4, seed=1, init_centers=base.centers)
        warm2 = kmeans(points, 4, seed=1, init_centers=base.centers)
        assert np.array_equal(warm1.labels, warm2.labels)
        # Seeding with the converged centers reproduces the clustering.
        assert warm1.inertia <= base.inertia + 1e-9

    def test_kmeans_partial_centers_complete(self):
        rng = np.random.default_rng(0)
        points = rng.normal(size=(30, 3))
        partial = points[:2]
        result = kmeans(points, 5, seed=2, init_centers=partial)
        assert len(np.unique(result.labels)) <= 5
        assert result.centers.shape == (5, 3)
