"""Evaluation engine: caching must be observationally invisible.

Property tests across every registered workload family: with a shared
:class:`~repro.engine.EvalSession`, plan choices, simulated costs and result
masks are bit-identical to uncached evaluation; sessions over different data
never share cache entries; the materialization and plan caches actually hit
(and invalidate) when they should.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import EvalSession, get_session, use_session
from repro.experiments.harness import evaluate_design
from repro.storage.executor import PhysicalDatabase, PhysicalObject
from repro.storage.layout import HeapFile
from repro.workloads.registry import make

CONFIG = DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False)


def _tiny_instance(name: str, seed: int | None = None):
    if name == "ssb":
        return make("ssb", seed=seed, lineorder_rows=4000)
    if name == "apb":
        return make("apb", seed=seed, actuals_rows=4000)
    if name == "tpch":
        return make("tpch", seed=seed, scale=0.05)
    return make("synth", seed=seed, scale=0.2)


def _design(inst, frac: float = 0.75):
    designer = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=CONFIG,
    )
    return designer.design(int(inst.total_base_bytes() * frac))


def _assert_identical(plain, cached):
    assert plain.real_seconds == cached.real_seconds
    assert set(plain.plans) == set(cached.plans)
    for qname, a in plain.plans.items():
        b = cached.plans[qname]
        assert a.plan == b.plan
        assert a.object_name == b.object_name
        assert a.result.cost == b.result.cost
        assert np.array_equal(a.result.mask, b.result.mask)


class TestCachedEqualsUncached:
    """The correctness bar of the engine: identical plans, costs, masks."""

    @pytest.mark.parametrize("name", ["synth", "ssb", "apb", "tpch"])
    def test_cached_matches_uncached(self, name):
        inst = _tiny_instance(name)
        design = _design(inst)
        assert get_session() is None
        plain = evaluate_design(design)  # no ambient session: uncached
        with use_session() as session:
            cached = evaluate_design(design)
        _assert_identical(plain, cached)
        # The caches were actually exercised, not bypassed.
        assert session.stats["mask_misses"] > 0
        assert session.stats["heapfile_misses"] > 0

    def test_second_evaluation_hits_caches(self):
        design = _design(_tiny_instance("synth"))
        with use_session() as session:
            first = evaluate_design(design)
            second = evaluate_design(design)
        _assert_identical(first, second)
        assert session.stats["heapfile_hits"] > 0
        assert session.stats["conjunction_hits"] > 0

    def test_materialized_databases_share_heapfiles(self):
        design = _design(_tiny_instance("synth"))
        with use_session():
            db1 = design.materialize()
            db2 = design.materialize()
        assert set(db1.objects) == set(db2.objects)
        for name in db1.objects:
            assert db1.objects[name].heapfile is db2.objects[name].heapfile

    def test_cached_masks_are_frozen(self):
        design = _design(_tiny_instance("synth"))
        with use_session():
            evaluated = evaluate_design(design)
        choice = next(iter(evaluated.plans.values()))
        with pytest.raises(ValueError):
            choice.result.mask[:] = False


class TestSessionIsolation:
    def test_sessions_over_different_data_share_nothing(self):
        inst_a = _tiny_instance("synth", seed=1)
        inst_b = _tiny_instance("synth", seed=2)
        design_a = _design(inst_a)
        design_b = _design(inst_b)
        with use_session() as session_a:
            evaluate_design(design_a)
        with use_session() as session_b:
            evaluate_design(design_b)
        # Content-derived keys: different data can never collide, so the
        # cache key sets of the two sessions are fully disjoint.
        assert not set(session_a._masks) & set(session_b._masks)
        assert not set(session_a._conjunctions) & set(session_b._conjunctions)
        assert not set(session_a._heapfiles) & set(session_b._heapfiles)

    def test_sessions_do_not_leak_ambiently(self):
        with use_session() as outer:
            assert get_session() is outer
            with use_session() as inner:
                assert get_session() is inner
            assert get_session() is outer
        assert get_session() is None

    def test_explicit_session_param_wins(self):
        design = _design(_tiny_instance("synth"))
        mine = EvalSession()
        evaluate_design(design, session=mine)
        assert mine.stats["heapfile_misses"] > 0


class TestPlanMemoization:
    @pytest.fixture
    def simple_db(self):
        inst = _tiny_instance("synth")
        fact = next(iter(inst.flat_tables))
        hf = HeapFile(
            inst.flat_tables[fact], inst.primary_keys[fact], _disk(), name=fact
        )
        return inst, PhysicalDatabase([PhysicalObject(hf)])

    def test_repeated_run_returns_memoized_choice(self, simple_db):
        inst, db = simple_db
        query = inst.workload.queries[0]
        first = db.run(query)
        assert db._plan_cache
        assert db.run(query) is first

    def test_add_invalidates_plan_cache(self, simple_db):
        inst, db = simple_db
        fact = next(iter(inst.flat_tables))
        db.run(inst.workload.queries[0])
        assert db._plan_cache
        copy = PhysicalObject(
            HeapFile(
                inst.flat_tables[fact],
                inst.primary_keys[fact],
                _disk(),
                name=f"{fact}_copy",
            )
        )
        db.add(copy)
        assert not db._plan_cache

    def test_plan_caching_can_be_disabled(self, simple_db):
        inst, db = simple_db
        db.plan_caching = False
        query = inst.workload.queries[0]
        first = db.run(query)
        second = db.run(query)
        assert not db._plan_cache
        assert first is not second
        assert first.plan == second.plan
        assert first.result.cost == second.result.cost

    def test_total_seconds_consistent_with_and_without_memo(self, simple_db):
        inst, db = simple_db
        memoized = db.total_seconds(inst.workload)
        db.plan_caching = False
        db._plan_cache.clear()
        assert db.total_seconds(inst.workload) == memoized


def _disk():
    from repro.storage.disk import DiskModel

    return DiskModel()


class TestQueryFingerprint:
    def test_same_content_same_fingerprint(self):
        from repro.relational.query import Aggregate, EqPredicate, Query

        a = Query("a", "f", [EqPredicate("x", 1.0)], [Aggregate("sum", ("y",))],
                  frequency=1.0)
        b = Query("b", "f", [EqPredicate("x", 1.0)], [Aggregate("sum", ("y",))],
                  frequency=9.0)
        assert a.fingerprint() == b.fingerprint()

    def test_different_constants_differ(self):
        from repro.relational.query import EqPredicate, Query

        a = Query("a", "f", [EqPredicate("x", 1.0)])
        b = Query("b", "f", [EqPredicate("x", 2.0)])
        assert a.fingerprint() != b.fingerprint()
