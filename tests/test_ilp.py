"""MILP substrate: model building, simplex, branch & bound, backends."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy.optimize import linprog

from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.model import MILPModel
from repro.ilp.simplex import solve_simplex
from repro.ilp.solver import solve


class TestModelBuilding:
    def test_duplicate_variable_rejected(self):
        m = MILPModel()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_var("x")

    def test_unknown_variable_in_constraint(self):
        m = MILPModel()
        m.add_var("x")
        with pytest.raises(KeyError):
            m.add_constraint({"y": 1.0}, "<=", 1.0)

    def test_bad_sense_rejected(self):
        m = MILPModel()
        m.add_var("x")
        with pytest.raises(ValueError):
            m.add_constraint({"x": 1.0}, "<", 1.0)

    def test_bad_bounds_rejected(self):
        m = MILPModel()
        with pytest.raises(ValueError):
            m.add_var("x", lb=2.0, ub=1.0)

    def test_counts(self):
        m = MILPModel()
        m.add_binary("y")
        m.add_var("x", ub=1.0)
        m.add_constraint({"y": 1, "x": 1}, "<=", 1)
        assert m.num_variables == 2
        assert m.num_integer_variables == 1
        assert m.num_constraints == 1

    def test_evaluate_and_feasible(self):
        m = MILPModel()
        m.add_binary("y", obj=2.0)
        m.add_objective_constant(1.0)
        m.add_constraint({"y": 1.0}, "<=", 1.0)
        assert m.evaluate({"y": 1.0}) == 3.0
        assert m.is_feasible({"y": 1.0})
        assert not m.is_feasible({"y": 0.5})  # integrality
        assert not m.is_feasible({"y": 2.0})  # bound

    def test_to_arrays_shapes(self):
        m = MILPModel()
        m.add_binary("y")
        m.add_var("x", ub=3.0, obj=1.5)
        m.add_constraint({"y": 2.0, "x": -1.0}, ">=", 0.5)
        arrays = m.to_arrays()
        assert arrays.c.tolist() == [0.0, 1.5]
        assert arrays.A.shape == (1, 2)
        assert arrays.senses == [">="]
        assert arrays.integrality.tolist() == [1, 0]


def lp_model(c, A_ub, b_ub, bounds) -> MILPModel:
    m = MILPModel()
    for j, (coef, (lb, ub)) in enumerate(zip(c, bounds)):
        m.add_var(f"v{j}", lb=lb, ub=ub, obj=coef)
    for row, rhs in zip(A_ub, b_ub):
        coeffs = {f"v{j}": a for j, a in enumerate(row) if a}
        if coeffs:  # all-zero rows carry no constraint
            m.add_constraint(coeffs, "<=", rhs)
    return m


class TestSimplex:
    def test_simple_lp(self):
        # max x + y s.t. x + y <= 1 -> min -(x+y), optimum -1.
        m = lp_model([-1, -1], [[1, 1]], [1], [(0, 10), (0, 10)])
        res = solve_simplex(m.to_arrays())
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-1.0)

    def test_equality_constraint(self):
        m = MILPModel()
        m.add_var("x", obj=1.0, ub=10)
        m.add_var("y", obj=2.0, ub=10)
        m.add_constraint({"x": 1, "y": 1}, "==", 4)
        res = solve_simplex(m.to_arrays())
        assert res.status == "optimal"
        assert res.objective == pytest.approx(4.0)  # all weight on x

    def test_infeasible(self):
        m = MILPModel()
        m.add_var("x", ub=1.0)
        m.add_constraint({"x": 1.0}, ">=", 5.0)
        assert solve_simplex(m.to_arrays()).status == "infeasible"

    def test_unbounded(self):
        m = MILPModel()
        m.add_var("x", obj=-1.0)  # minimize -x with x unbounded above
        m.add_constraint({"x": -1.0}, "<=", 0.0)
        assert solve_simplex(m.to_arrays()).status == "unbounded"

    def test_shifted_lower_bounds(self):
        m = MILPModel()
        m.add_var("x", lb=2.0, ub=8.0, obj=1.0)
        res = solve_simplex(m.to_arrays())
        assert res.objective == pytest.approx(2.0)
        assert res.x[0] == pytest.approx(2.0)

    def test_infeasible_bounds(self):
        m = MILPModel()
        m.add_var("x", lb=0, ub=10)
        arrays = m.to_arrays()
        res = solve_simplex(arrays, extra_bounds={0: (5.0, 3.0)})
        assert res.status == "infeasible"


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(1, 4),
    m_rows=st.integers(1, 4),
    data=st.data(),
)
def test_simplex_matches_scipy_on_random_lps(n, m_rows, data):
    """Property: our simplex agrees with HiGHS on random bounded LPs."""
    rng_vals = data.draw(
        st.lists(
            st.integers(-5, 5), min_size=n * m_rows + n + m_rows, max_size=n * m_rows + n + m_rows
        )
    )
    A = np.array(rng_vals[: n * m_rows], dtype=float).reshape(m_rows, n)
    c = np.array(rng_vals[n * m_rows : n * m_rows + n], dtype=float)
    b = np.abs(np.array(rng_vals[n * m_rows + n :], dtype=float)) + 1.0
    model = lp_model(c, A, b, [(0.0, 10.0)] * n)
    ours = solve_simplex(model.to_arrays())
    # Feed scipy only the non-zero rows, mirroring the model builder.
    keep = np.abs(A).sum(axis=1) > 0
    ref = linprog(
        c,
        A_ub=A[keep] if keep.any() else None,
        b_ub=b[keep] if keep.any() else None,
        bounds=[(0, 10)] * n,
        method="highs",
    )
    assert ours.status == "optimal"
    assert ref.status == 0
    assert ours.objective == pytest.approx(float(ref.fun), abs=1e-6)


def knapsack_model(values, weights, capacity) -> MILPModel:
    m = MILPModel()
    for i, v in enumerate(values):
        m.add_binary(f"y{i}", obj=-float(v))
    m.add_constraint(
        {f"y{i}": float(w) for i, w in enumerate(weights)}, "<=", float(capacity)
    )
    return m


class TestBranchAndBound:
    def test_knapsack_optimal(self):
        m = knapsack_model([6, 5, 4], [3, 2, 2], 4)
        res = solve_branch_and_bound(m)
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-9.0)

    def test_infeasible_integer_program(self):
        m = MILPModel()
        m.add_binary("y")
        m.add_constraint({"y": 2.0}, "==", 1.0)  # y = 0.5 required
        assert solve_branch_and_bound(m).status == "infeasible"

    def test_simplex_relaxation_backend(self):
        m = knapsack_model([6, 5, 4], [3, 2, 2], 4)
        res = solve_branch_and_bound(m, relaxation="simplex")
        assert res.status == "optimal"
        assert res.objective == pytest.approx(-9.0)


@settings(max_examples=30, deadline=None)
@given(
    values=st.lists(st.integers(1, 20), min_size=2, max_size=7),
    data=st.data(),
)
def test_bnb_matches_scipy_milp_on_random_knapsacks(values, data):
    weights = data.draw(
        st.lists(st.integers(1, 10), min_size=len(values), max_size=len(values))
    )
    capacity = data.draw(st.integers(1, sum(weights)))
    model = knapsack_model(values, weights, capacity)
    ours = solve(model, backend="bnb")
    ref = solve(model, backend="scipy")
    assert ours.status == ref.status == "optimal"
    assert ours.objective == pytest.approx(ref.objective, abs=1e-6)


class TestSolverFacade:
    def test_backends_agree(self):
        m = knapsack_model([10, 7, 7, 3], [4, 3, 3, 1], 6)
        results = {be: solve(m, backend=be).objective for be in ("scipy", "bnb", "bnb-simplex")}
        assert len({round(v, 6) for v in results.values()}) == 1

    def test_chosen_helper(self):
        m = knapsack_model([6, 5, 4], [3, 2, 2], 4)
        sol = solve(m, backend="scipy")
        assert sorted(sol.chosen("y")) == ["y1", "y2"]

    def test_objective_constant_included(self):
        m = knapsack_model([6, 5, 4], [3, 2, 2], 4)
        m.add_objective_constant(100.0)
        for be in ("scipy", "bnb"):
            assert solve(m, backend=be).objective == pytest.approx(91.0)

    def test_unknown_backend(self):
        with pytest.raises(ValueError):
            solve(MILPModel(), backend="gurobi")

    def test_infeasible_reported(self):
        m = MILPModel()
        m.add_binary("y")
        m.add_constraint({"y": 1.0}, ">=", 2.0)
        assert solve(m, backend="scipy").status == "infeasible"
        assert solve(m, backend="bnb").status == "infeasible"
