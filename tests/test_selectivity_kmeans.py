"""Selectivity vectors/propagation and k-means."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.kmeans import kmeans
from repro.design.selectivity import (
    build_selectivity_vectors,
    propagate_selectivities,
)
from repro.relational.query import EqPredicate, Query, RangePredicate
from repro.stats.collector import TableStatistics
from tests.conftest import make_people


@pytest.fixture(scope="module")
def stats():
    return TableStatistics(make_people(n=40_000))


class TestSelectivityVectors:
    def test_raw_vector_values(self, stats):
        q = Query("q", "people", [EqPredicate("state", 7)])
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("state", "city", "salary"), propagate=False
        )
        vec = vectors.vector("q")
        assert vec["state"] == pytest.approx(1 / 50, rel=0.3)
        assert vec["city"] == 1.0
        assert vec["salary"] == 1.0

    def test_propagation_through_partial_fd(self, stats):
        """A predicate on city propagates to state divided by
        strength(state -> city) ~ 1/20 — the Table 2 mechanism."""
        q = Query("q_city140", "people", [EqPredicate("city", 140)])
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("state", "city", "region"), propagate=True
        )
        vec = vectors.vector("q_city140")
        # city sel itself must be untouched by propagation (~1/1000).
        assert vec["city"] == pytest.approx(1 / 1000, rel=0.6)
        assert vec["state"] == pytest.approx(vec["city"] * 20, rel=0.5)
        # region is reachable transitively; must also tighten below 1.
        assert vec["region"] < 1.0

    def test_propagation_through_perfect_fd_copies(self, stats):
        """A predicate on the coarse attribute (state) propagates to the
        fine one (city, strength(city -> state) = 1) at equal selectivity —
        exactly how Q1.1's year=1993 gave yearmonth 0.15 in Table 2."""
        q = Query("q_state7", "people", [EqPredicate("state", 7)])
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("state", "city"), propagate=True
        )
        vec = vectors.vector("q_state7")
        assert vec["city"] == pytest.approx(vec["state"], rel=0.01)

    def test_propagation_only_decreases(self, stats):
        q = Query(
            "q", "people", [EqPredicate("city", 140), RangePredicate("salary", 50, 99)]
        )
        raw = build_selectivity_vectors(
            [q], stats, attrs=("state", "city", "region", "salary"), propagate=False
        )
        prop = build_selectivity_vectors(
            [q], stats, attrs=("state", "city", "region", "salary"), propagate=True
        )
        for attr in raw.attrs:
            assert prop.value("q", attr) <= raw.value("q", attr) + 1e-12

    def test_termination_within_attr_count(self, stats):
        q = Query("q", "people", [EqPredicate("city", 140)])
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("state", "city", "region", "salary"), propagate=False
        )
        steps = propagate_selectivities(vectors, stats)
        assert steps <= len(vectors.attrs) + 1

    def test_composite_sources_tracked(self, stats):
        q = Query(
            "q", "people", [EqPredicate("state", 7), RangePredicate("salary", 50, 60)]
        )
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("state", "salary"), propagate=True
        )
        assert ("salary", "state") in vectors.vector("q")

    def test_as_point_order(self, stats):
        q = Query("q", "people", [EqPredicate("state", 7)])
        vectors = build_selectivity_vectors(
            [q], stats, attrs=("salary", "state"), propagate=False
        )
        point = vectors.as_point("q")
        assert point[0] == 1.0  # salary
        assert point[1] < 1.0  # state


class TestKMeans:
    def test_separates_obvious_clusters(self):
        points = np.array([[0, 0], [0.1, 0], [5, 5], [5.1, 5]])
        result = kmeans(points, 2, seed=0)
        assert result.labels[0] == result.labels[1]
        assert result.labels[2] == result.labels[3]
        assert result.labels[0] != result.labels[2]

    def test_k_one_groups_everything(self):
        points = np.random.default_rng(0).random((10, 3))
        result = kmeans(points, 1)
        assert set(result.labels.tolist()) == {0}

    def test_k_capped_at_n(self):
        points = np.zeros((3, 2))
        result = kmeans(points, 10)
        assert len(result.centers) == 3

    def test_deterministic_given_seed(self):
        points = np.random.default_rng(1).random((30, 4))
        a = kmeans(points, 4, seed=7)
        b = kmeans(points, 4, seed=7)
        assert np.array_equal(a.labels, b.labels)

    def test_validation(self):
        with pytest.raises(ValueError):
            kmeans(np.zeros((3, 2)), 0)
        with pytest.raises(ValueError):
            kmeans(np.zeros(3), 2)

    def test_empty_input(self):
        result = kmeans(np.zeros((0, 2)), 3)
        assert len(result.labels) == 0


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(2, 30),
    k=st.integers(1, 6),
    seed=st.integers(0, 10),
)
def test_kmeans_invariants(n, k, seed):
    rng = np.random.default_rng(seed)
    points = rng.random((n, 3))
    result = kmeans(points, k, seed=seed)
    k_eff = min(k, n)
    # Every point labelled with an existing center.
    assert result.labels.min() >= 0
    assert result.labels.max() < k_eff
    assert result.inertia >= 0
    # Each point sits with its nearest center (Lloyd fixed point).
    d2 = ((points[:, None, :] - result.centers[None, :, :]) ** 2).sum(axis=2)
    assert np.allclose(d2[np.arange(n), result.labels], d2.min(axis=1), atol=1e-9)
