"""The benchmark registry: uniform construction of every workload by name."""

import numpy as np
import pytest

from repro.workloads import registry
from repro.workloads.base import BenchmarkInstance

# Small enough that constructing all four stays fast.
TINY = {
    "ssb": {"lineorder_rows": 2_000},
    "apb": {"actuals_rows": 2_000},
    "tpch": {"scale": 0.05},
    "synth": {"rows": 2_000},
}


def test_all_benchmarks_registered():
    assert {"ssb", "apb", "tpch", "synth"} <= set(registry.available())


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="available"):
        registry.make("nope")


@pytest.mark.parametrize("name", sorted(TINY))
def test_round_trip_constructs_instance(name):
    inst = registry.make(name, **TINY[name])
    assert isinstance(inst, BenchmarkInstance)
    assert inst.name == name
    assert len(inst.workload) > 0
    # Every fact has a flat table covering every query attribute — the
    # contract the designer relies on.
    for q in inst.workload:
        flat = inst.flat_tables[q.fact_table]
        for attr in q.attributes():
            assert flat.has_column(attr), (name, q.name, attr)
        assert q.fact_table in inst.primary_keys


@pytest.mark.parametrize("name", sorted(TINY))
def test_uniform_knobs_accepted(name):
    inst = registry.make(name, scale=0.05, seed=123, skew=0.5)
    assert isinstance(inst, BenchmarkInstance)


@pytest.mark.parametrize("name", sorted(TINY))
def test_same_seed_same_instance(name):
    a = registry.make(name, seed=5, **TINY[name])
    b = registry.make(name, seed=5, **TINY[name])
    for tname, ta in a.tables.items():
        tb = b.tables[tname]
        assert ta.nrows == tb.nrows, tname
        for col in ta.column_names:
            assert np.array_equal(ta.column(col), tb.column(col)), (tname, col)


def test_default_seed_is_canonical():
    a = registry.make("tpch", **TINY["tpch"])
    b = registry.make("tpch", seed=registry.get("tpch").default_seed, **TINY["tpch"])
    li_a, li_b = a.tables["lineitem"], b.tables["lineitem"]
    assert np.array_equal(li_a.column("l_partkey"), li_b.column("l_partkey"))


def test_explicit_row_counts_are_honored():
    """The adapters floor only scale-derived defaults; an explicit row
    count must reach the generator untouched."""
    assert registry.make("ssb", lineorder_rows=50).flat_tables["lineorder"].nrows == 50
    assert registry.make("apb", actuals_rows=60).flat_tables["actuals"].nrows == 60


def test_scale_validation():
    with pytest.raises(ValueError):
        registry.make("tpch", scale=0.0)
    with pytest.raises(ValueError):
        registry.make("tpch", skew=-1.0)


class TestAugmentedVariants:
    """Workload *variants*: augmented workloads constructible by name, so
    experiments stop importing per-benchmark ``augment_workload``."""

    def test_variants_registered(self):
        assert {"ssb-augmented", "tpch-augmented"} <= set(registry.available())

    @pytest.mark.parametrize(
        "name,base", [("ssb-augmented", "ssb"), ("tpch-augmented", "tpch")]
    )
    def test_default_factor_quadruples_queries(self, name, base):
        inst = registry.make(name, **TINY[base])
        plain = registry.make(base, **TINY[base])
        assert len(inst.workload) == 4 * len(plain.workload)

    def test_factor_one_is_the_base_workload(self):
        inst = registry.make("ssb-augmented", augment_factor=1, **TINY["ssb"])
        plain = registry.make("ssb", **TINY["ssb"])
        assert [q.name for q in inst.workload] == [q.name for q in plain.workload]

    def test_variant_matches_direct_augmentation(self):
        from repro.workloads.tpch import augment_workload

        inst = registry.make("tpch-augmented", augment_factor=4, **TINY["tpch"])
        plain = registry.make("tpch", **TINY["tpch"])
        direct = augment_workload(plain.workload, factor=4)
        assert [q.name for q in inst.workload] == [q.name for q in direct]
        for got, want in zip(inst.workload, direct):
            assert got.fingerprint() == want.fingerprint()

    def test_variant_shares_tables_with_base(self):
        inst = registry.make("tpch-augmented", **TINY["tpch"])
        plain = registry.make("tpch", **TINY["tpch"])
        for fact, flat in inst.flat_tables.items():
            want = plain.flat_tables[fact]
            assert flat.nrows == want.nrows
            assert np.array_equal(
                flat.column(flat.column_names[0]), want.column(want.column_names[0])
            )

    def test_bad_factor_rejected(self):
        with pytest.raises(ValueError):
            registry.make("ssb-augmented", augment_factor=0, **TINY["ssb"])


def test_register_replaces_and_lists():
    made = {}

    def factory(scale=1.0, seed=0, skew=0.0):
        made["knobs"] = (scale, seed, skew)
        return registry.make("synth", rows=200, seed=seed)

    registry.register("testonly", factory, default_seed=77, description="x")
    try:
        inst = registry.make("testonly", scale=2.0, skew=0.25)
        assert isinstance(inst, BenchmarkInstance)
        assert made["knobs"] == (2.0, 77, 0.25)
        assert "testonly" in registry.available()
    finally:
        registry._REGISTRY.pop("testonly", None)
