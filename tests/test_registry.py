"""The benchmark registry: uniform construction of every workload by name."""

import numpy as np
import pytest

from repro.workloads import registry
from repro.workloads.base import BenchmarkInstance

# Small enough that constructing all four stays fast.
TINY = {
    "ssb": {"lineorder_rows": 2_000},
    "apb": {"actuals_rows": 2_000},
    "tpch": {"scale": 0.05},
    "synth": {"rows": 2_000},
}


def test_all_benchmarks_registered():
    assert {"ssb", "apb", "tpch", "synth"} <= set(registry.available())


def test_unknown_name_raises_with_choices():
    with pytest.raises(KeyError, match="available"):
        registry.make("nope")


@pytest.mark.parametrize("name", sorted(TINY))
def test_round_trip_constructs_instance(name):
    inst = registry.make(name, **TINY[name])
    assert isinstance(inst, BenchmarkInstance)
    assert inst.name == name
    assert len(inst.workload) > 0
    # Every fact has a flat table covering every query attribute — the
    # contract the designer relies on.
    for q in inst.workload:
        flat = inst.flat_tables[q.fact_table]
        for attr in q.attributes():
            assert flat.has_column(attr), (name, q.name, attr)
        assert q.fact_table in inst.primary_keys


@pytest.mark.parametrize("name", sorted(TINY))
def test_uniform_knobs_accepted(name):
    inst = registry.make(name, scale=0.05, seed=123, skew=0.5)
    assert isinstance(inst, BenchmarkInstance)


@pytest.mark.parametrize("name", sorted(TINY))
def test_same_seed_same_instance(name):
    a = registry.make(name, seed=5, **TINY[name])
    b = registry.make(name, seed=5, **TINY[name])
    for tname, ta in a.tables.items():
        tb = b.tables[tname]
        assert ta.nrows == tb.nrows, tname
        for col in ta.column_names:
            assert np.array_equal(ta.column(col), tb.column(col)), (tname, col)


def test_default_seed_is_canonical():
    a = registry.make("tpch", **TINY["tpch"])
    b = registry.make("tpch", seed=registry.get("tpch").default_seed, **TINY["tpch"])
    li_a, li_b = a.tables["lineitem"], b.tables["lineitem"]
    assert np.array_equal(li_a.column("l_partkey"), li_b.column("l_partkey"))


def test_explicit_row_counts_are_honored():
    """The adapters floor only scale-derived defaults; an explicit row
    count must reach the generator untouched."""
    assert registry.make("ssb", lineorder_rows=50).flat_tables["lineorder"].nrows == 50
    assert registry.make("apb", actuals_rows=60).flat_tables["actuals"].nrows == 60


def test_scale_validation():
    with pytest.raises(ValueError):
        registry.make("tpch", scale=0.0)
    with pytest.raises(ValueError):
        registry.make("tpch", skew=-1.0)


def test_register_replaces_and_lists():
    made = {}

    def factory(scale=1.0, seed=0, skew=0.0):
        made["knobs"] = (scale, seed, skew)
        return registry.make("synth", rows=200, seed=seed)

    registry.register("testonly", factory, default_seed=77, description="x")
    try:
        inst = registry.make("testonly", scale=2.0, skew=0.25)
        assert isinstance(inst, BenchmarkInstance)
        assert made["knobs"] == (2.0, 77, 0.25)
        assert "testonly" in registry.available()
    finally:
        registry._REGISTRY.pop("testonly", None)
