"""Seed plumbing: every generator is a pure function of its explicit seed.

Regression guard for the audit that removed any reliance on global NumPy
state: polluting ``np.random``'s global generator between calls must not
change any generated table, and the same seed must reproduce bit-identical
instances while different seeds must not.
"""

import numpy as np
import pytest

from repro.workloads.apb import generate_apb
from repro.workloads.ssb import augment_workload, generate_ssb
from repro.workloads.synth import generate_synth
from repro.workloads.tpch import generate_tpch

GENERATORS = {
    "ssb": lambda seed: generate_ssb(lineorder_rows=2_000, seed=seed),
    "apb": lambda seed: generate_apb(actuals_rows=2_000, seed=seed),
    "tpch": lambda seed: generate_tpch(scale=0.05, seed=seed),
    "synth": lambda seed: generate_synth(rows=2_000, seed=seed),
}


def _tables_equal(a, b) -> bool:
    if set(a.tables) != set(b.tables):
        return False
    for name, ta in a.tables.items():
        tb = b.tables[name]
        if ta.nrows != tb.nrows or ta.column_names != tb.column_names:
            return False
        for col in ta.column_names:
            if not np.array_equal(ta.column(col), tb.column(col)):
                return False
    return True


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_same_seed_identical_tables(name):
    gen = GENERATORS[name]
    assert _tables_equal(gen(3), gen(3))


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_different_seed_differs(name):
    gen = GENERATORS[name]
    assert not _tables_equal(gen(3), gen(4))


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_immune_to_global_numpy_state(name):
    gen = GENERATORS[name]
    np.random.seed(0)
    a = gen(3)
    np.random.seed(12345)
    np.random.random(100)
    b = gen(3)
    assert _tables_equal(a, b)


@pytest.mark.parametrize("name", sorted(GENERATORS))
def test_same_seed_identical_workloads(name):
    a, b = GENERATORS[name](3), GENERATORS[name](3)
    assert [repr(q) for q in a.workload] == [repr(q) for q in b.workload]
    assert [q.group_by for q in a.workload] == [q.group_by for q in b.workload]


def test_augmentation_deterministic():
    base = generate_ssb(lineorder_rows=1_000, seed=1).workload
    a = augment_workload(base, factor=4, seed=7)
    b = augment_workload(base, factor=4, seed=7)
    assert [repr(q) for q in a] == [repr(q) for q in b]
    assert [q.group_by for q in a] == [q.group_by for q in b]
