"""Design-layer units: grouping, clustering designer, MV sizing, domination."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.costmodel.correlation_aware import CorrelationAwareCostModel
from repro.design.clustering import ClusteredIndexDesigner, order_preserving_merges
from repro.design.dominate import dominates, prune_dominated
from repro.design.grouping import enumerate_query_groups, extended_vectors
from repro.design.mv import (
    KIND_FACT_RECLUSTER,
    KIND_MV,
    CandidateSet,
    MVCandidate,
    fact_recluster_size_bytes,
    mv_size_bytes,
    ordered_mv_attrs,
)
from repro.design.selectivity import build_selectivity_vectors
from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
)
from repro.stats.collector import TableStatistics
from repro.storage.disk import DiskModel
from tests.conftest import make_people


@pytest.fixture(scope="module")
def stats():
    return TableStatistics(make_people(n=40_000))


@pytest.fixture(scope="module")
def disk():
    return DiskModel()


def queries_fixture() -> list[Query]:
    return [
        Query("qa", "people", [EqPredicate("state", 3)], [Aggregate("sum", ("salary",))]),
        Query("qb", "people", [EqPredicate("state", 4)], [Aggregate("sum", ("salary",))]),
        Query("qc", "people", [EqPredicate("city", 100)], [Aggregate("avg", ("region",))]),
    ]


class TestOrderPreservingMerges:
    def test_counts_binomial(self):
        merges = order_preserving_merges(("a", "b"), ("c", "d"), max_results=1000)
        assert len(merges) == 6  # C(4, 2)
        assert ("a", "b", "c", "d") in merges
        assert ("c", "d", "a", "b") in merges

    def test_orders_preserved(self):
        for merge in order_preserving_merges(("a", "b"), ("c", "d"), 1000):
            assert merge.index("a") < merge.index("b")
            assert merge.index("c") < merge.index("d")

    def test_shared_attrs_deduped_keeping_first_key(self):
        merges = order_preserving_merges(("a", "b"), ("b", "c"), 1000)
        for merge in merges:
            assert merge.count("b") == 1

    def test_cap_keeps_concatenations(self):
        merges = order_preserving_merges(
            ("a", "b", "c", "d"), ("e", "f", "g", "h"), max_results=5
        )
        assert len(merges) <= 7
        assert ("a", "b", "c", "d", "e", "f", "g", "h") in merges
        assert ("e", "f", "g", "h", "a", "b", "c", "d") in merges

    def test_empty_sides(self):
        assert order_preserving_merges((), ("x",)) == [("x",)]
        assert order_preserving_merges(("x",), ()) == [("x",)]


@settings(max_examples=40, deadline=None)
@given(
    a=st.lists(st.sampled_from("abcd"), max_size=3, unique=True),
    b=st.lists(st.sampled_from("efgh"), max_size=3, unique=True),
)
def test_merge_properties(a, b):
    a, b = tuple(a), tuple(b)
    merges = order_preserving_merges(a, b, max_results=10_000)
    for merge in merges:
        assert sorted(merge) == sorted(set(a) | set(b))
    # Distinct interleavings (no duplicates).
    assert len(set(merges)) == len(merges)


class TestClusteredIndexDesigner:
    def make_designer(self, stats, disk) -> ClusteredIndexDesigner:
        model = CorrelationAwareCostModel(stats, disk)
        return ClusteredIndexDesigner(stats=stats, disk=disk, cost_model=model)

    def test_dedicated_key_orders_by_kind_then_selectivity(self, stats, disk):
        designer = self.make_designer(stats, disk)
        q = Query(
            "q",
            "people",
            [
                RangePredicate("salary", 50, 99),     # range, sel ~0.28
                EqPredicate("state", 3),              # eq, sel 1/50
                InPredicate("region", (1, 2)),        # IN, sel 0.4
                EqPredicate("city", 70),              # eq, sel 1/1000
            ],
        )
        key = designer.predicate_order(q)
        assert key == ("city", "state", "salary", "region")

    def test_drop_useless_caps_length(self, stats, disk):
        designer = self.make_designer(stats, disk)
        designer.max_key_attrs = 2
        key = designer.drop_useless(
            ("state", "city", "salary"), ("state", "city", "salary")
        )
        assert len(key) <= 2

    def test_drop_useless_stops_at_distinct_explosion(self, stats, disk):
        designer = self.make_designer(stats, disk)
        designer.distinct_page_factor = 0.01  # absurdly tight cap
        key = designer.drop_useless(
            ("city", "salary", "state"), ("city", "salary", "state")
        )
        assert key == ("city",)

    def test_design_for_group_returns_sorted_topt(self, stats, disk):
        designer = self.make_designer(stats, disk)
        queries = queries_fixture()
        attrs = ordered_mv_attrs((), queries)
        ranked = designer.design_for_group(queries, attrs, t=3)
        assert 1 <= len(ranked) <= 3
        scores = [s for _, s in ranked]
        assert scores == sorted(scores)

    def test_single_query_dedicated(self, stats, disk):
        designer = self.make_designer(stats, disk)
        q = queries_fixture()[0]
        attrs = ordered_mv_attrs((), [q])
        ranked = designer.design_for_group([q], attrs, t=1)
        assert ranked[0][0][0] == "state"

    def test_interleaving_beats_concat_only(self, stats, disk):
        """The Section 4.2 claim: restricting the merge to concatenation
        can only produce equal-or-worse best keys."""
        queries = queries_fixture()
        attrs = ordered_mv_attrs((), queries)
        full = self.make_designer(stats, disk)
        concat = self.make_designer(stats, disk)
        concat.concat_only = True
        best_full = full.design_for_group(queries, attrs, t=1)[0][1]
        best_concat = concat.design_for_group(queries, attrs, t=1)[0][1]
        assert best_full <= best_concat + 1e-12

    def test_validation(self, stats, disk):
        designer = self.make_designer(stats, disk)
        with pytest.raises(ValueError):
            designer.design_for_group([], ("state",), t=1)
        with pytest.raises(ValueError):
            designer.design_for_group(queries_fixture(), ("state",), t=0)


class TestGrouping:
    def test_singletons_and_full_group_always_present(self, stats):
        queries = queries_fixture()
        vectors = build_selectivity_vectors(queries, stats)
        groups = enumerate_query_groups(queries, vectors, stats, alphas=(0.0,))
        names = frozenset(q.name for q in queries)
        assert frozenset(["qa"]) in groups
        assert frozenset(["qb"]) in groups
        assert frozenset(["qc"]) in groups
        assert names in groups

    def test_groups_deduplicated(self, stats):
        queries = queries_fixture()
        vectors = build_selectivity_vectors(queries, stats)
        groups = enumerate_query_groups(queries, vectors, stats)
        assert len(groups) == len(set(groups))

    def test_extended_vectors_alpha_term(self, stats):
        queries = queries_fixture()
        vectors = build_selectivity_vectors(queries, stats)
        zero = extended_vectors(queries, vectors, stats, alpha=0.0)
        half = extended_vectors(queries, vectors, stats, alpha=0.5)
        n_attrs = len(vectors.attrs)
        assert (zero[:, n_attrs:] == 0).all()
        assert half[:, n_attrs:].max() > 0
        # Selectivity half is untouched by alpha.
        assert np.allclose(zero[:, :n_attrs], half[:, :n_attrs])

    def test_empty_workload(self, stats):
        vectors = build_selectivity_vectors([], stats, attrs=("state",))
        assert enumerate_query_groups([], vectors, stats) == []


class TestMVSizing:
    def test_ordered_mv_attrs_cluster_key_first(self):
        queries = queries_fixture()
        attrs = ordered_mv_attrs(("city", "state"), queries)
        assert attrs[:2] == ("city", "state")
        assert set(attrs) >= set(queries[0].attributes())

    def test_mv_size_scales_with_width(self, stats, disk):
        narrow = mv_size_bytes(stats, disk, ("state", "salary"), ("state",))
        wide = mv_size_bytes(stats, disk, ("state", "salary", "city", "region"), ("state",))
        assert wide > narrow

    def test_mv_size_nearly_clustering_independent(self, stats, disk):
        """Section 6.1: 'the size of an MV is nearly independent of its
        choice of clustered index'."""
        attrs = ("state", "city", "salary")
        a = mv_size_bytes(stats, disk, attrs, ("state",))
        b = mv_size_bytes(stats, disk, attrs, ("salary", "city"))
        assert abs(a - b) / max(a, b) < 0.02

    def test_fact_recluster_charges_pk_index(self, stats, disk):
        from repro.storage.btree import secondary_index_bytes

        size = fact_recluster_size_bytes(stats, disk, ("city",))
        assert size == secondary_index_bytes(stats.nrows, 4, disk.page_size)
        assert size > 0
        # Wider PKs cost more.
        assert fact_recluster_size_bytes(stats, disk, ("city", "salary")) > size


def cand(cid, size, runtimes, kind=KIND_MV, attrs=("a", "b")) -> MVCandidate:
    c = MVCandidate(
        cand_id=cid,
        fact="f",
        group=frozenset(runtimes),
        attrs=attrs,
        cluster_key=("a",),
        size_bytes=size,
        kind=kind,
    )
    c.runtimes.update(runtimes)
    return c


class TestCandidateSet:
    def test_add_and_dedupe(self):
        cs = CandidateSet()
        assert cs.add(cand("m1", 10, {"q1": 1.0})) is not None
        assert cs.add(cand("m2", 10, {"q1": 2.0})) is None  # same signature
        assert len(cs) == 1

    def test_duplicate_id_rejected(self):
        cs = CandidateSet()
        cs.add(cand("m1", 10, {"q1": 1.0}))
        with pytest.raises(ValueError):
            cs.add(cand("m1", 10, {"q1": 1.0}, attrs=("a", "b", "c")))

    def test_remove(self):
        cs = CandidateSet()
        cs.add(cand("m1", 10, {"q1": 1.0}))
        cs.remove("m1")
        assert len(cs) == 0
        # Signature freed: the same shape can be re-added.
        assert cs.add(cand("m2", 10, {"q1": 1.0})) is not None


class TestDomination:
    """Table 4 of the paper, verbatim."""

    def table4(self):
        mv1 = cand("MV1", 1 << 30, {"Q1": 1.0, "Q3": 1.0}, attrs=("a", "b"))
        mv2 = cand("MV2", 2 << 30, {"Q1": 5.0, "Q3": 2.0}, attrs=("a", "b", "c"))
        mv3 = cand(
            "MV3", 3 << 30, {"Q1": 5.0, "Q2": 5.0, "Q3": 5.0}, attrs=("a", "b", "c", "d")
        )
        return mv1, mv2, mv3

    def test_mv1_dominates_mv2_not_mv3(self):
        mv1, mv2, mv3 = self.table4()
        assert dominates(mv1, mv2)
        assert not dominates(mv1, mv3)  # MV3 answers Q2, MV1 cannot
        assert not dominates(mv2, mv1)
        assert not dominates(mv3, mv1)

    def test_prune_removes_only_mv2(self):
        cs = CandidateSet()
        for c in self.table4():
            cs.add(c)
        before, after = prune_dominated(cs)
        assert (before, after) == (3, 2)
        ids = {c.cand_id for c in cs}
        assert ids == {"MV1", "MV3"}

    def test_equal_candidates_keep_one(self):
        cs = CandidateSet()
        cs.add(cand("A", 10, {"q": 1.0}, attrs=("a", "b")))
        cs.add(cand("B", 10, {"q": 1.0}, attrs=("a", "c")))
        prune_dominated(cs)
        assert len(cs) == 2  # identical stats: neither strictly better

    def test_strictly_smaller_same_speed_dominates(self):
        cs = CandidateSet()
        cs.add(cand("small", 5, {"q": 1.0}, attrs=("a", "b")))
        cs.add(cand("big", 10, {"q": 1.0}, attrs=("a", "c")))
        prune_dominated(cs)
        assert {c.cand_id for c in cs} == {"small"}

    def test_recluster_not_removed_by_mv(self):
        cs = CandidateSet()
        cs.add(cand("mv", 5, {"q": 1.0}, attrs=("a", "b")))
        cs.add(cand("fr", 10, {"q": 2.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "c")))
        prune_dominated(cs)
        assert len(cs) == 2

    def test_recluster_can_remove_recluster(self):
        cs = CandidateSet()
        cs.add(cand("fr1", 5, {"q": 1.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "b")))
        cs.add(cand("fr2", 10, {"q": 2.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "c")))
        prune_dominated(cs)
        assert {c.cand_id for c in cs} == {"fr1"}

    def test_prune_idempotent(self):
        cs = CandidateSet()
        for c in self.table4():
            cs.add(c)
        prune_dominated(cs)
        before, after = prune_dominated(cs)
        assert before == after
