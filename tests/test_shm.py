"""ShmArena: zero-copy shared-memory registration, attach, and cleanup.

The arena's contract is that sharing is observationally invisible: an
attached view has the very same bytes (hence the same content digest, hence
the same session cache keys) as the array it mirrors, segments never
outlive their ``map()`` scope in ``/dev/shm``, and forked children can
attach but never mutate or tear down parent-owned state.
"""

from __future__ import annotations

import multiprocessing
import os

import numpy as np
import pytest

from repro.engine import EvalSession
from repro.engine.shm import (
    DEFAULT_SLAB_BYTES,
    SHARE_MIN_BYTES,
    ShmArena,
    ShmRef,
    attach_ref,
    shareable,
    shm_available,
)

needs_shm = pytest.mark.skipif(
    not shm_available(), reason="platform has no file-backed POSIX shm mount"
)

needs_fork = pytest.mark.skipif(
    "fork" not in multiprocessing.get_all_start_methods(),
    reason="platform cannot fork worker processes",
)


def _shm_entries() -> set[str]:
    return set(os.listdir("/dev/shm"))


@needs_shm
class TestRoundTrip:
    def test_register_attach_round_trip(self):
        arena = ShmArena()
        try:
            for arr in (
                np.arange(10_000, dtype=np.int64),
                np.linspace(0.0, 1.0, 5_000),
                (np.arange(6_000) % 7 == 0),
                np.arange(8_000, dtype=np.int32).reshape(2_000, 4),
            ):
                ref = arena.register(arr)
                view = attach_ref(ref)
                assert view.dtype == arr.dtype
                assert view.shape == arr.shape
                assert np.array_equal(view, arr)
        finally:
            arena.dispose()

    def test_refs_are_tiny_and_picklable(self):
        import pickle

        arena = ShmArena()
        try:
            arr = np.arange(100_000, dtype=np.int64)
            ref = arena.register(arr)
            assert isinstance(ref, ShmRef)
            assert ref.nbytes == arr.nbytes
            # The whole point: the token that crosses the process boundary
            # is O(100) bytes however large the array is.
            assert len(pickle.dumps(ref)) < 500
            clone = pickle.loads(pickle.dumps(ref))
            assert np.array_equal(attach_ref(clone), arr)
        finally:
            arena.dispose()

    def test_zero_length_arrays_travel_by_value(self):
        arena = ShmArena()
        try:
            ref = arena.register(np.empty(0, dtype=np.float64))
            assert ref.segment == "" and ref.nbytes == 0
            view = attach_ref(ref)
            assert view.shape == (0,) and view.dtype == np.float64
        finally:
            arena.dispose()

    def test_registration_is_memoized_by_identity(self):
        arena = ShmArena()
        try:
            arr = np.arange(50_000)
            ref1 = arena.register(arr)
            ref2 = arena.register(arr)
            assert ref1 is ref2
            assert arena.bytes_registered == arr.nbytes
            # An equal-content but distinct array is a distinct registration
            # (identity memo, same discipline as EvalSession.array_key).
            ref3 = arena.register(arr.copy())
            assert ref3 is not ref1
        finally:
            arena.dispose()

    def test_small_slabs_pack_one_segment(self):
        arena = ShmArena()
        try:
            for _ in range(8):
                arena.register(np.random.default_rng(1).integers(0, 9, 2_048))
            assert arena.segments == 1
            # An oversized array gets its own dedicated segment.
            arena.register(np.zeros(DEFAULT_SLAB_BYTES + 1, dtype=np.uint8))
            assert arena.segments == 2
        finally:
            arena.dispose()


@needs_shm
class TestDigestIdentity:
    def test_views_share_the_content_key(self):
        """Attached views digest to the same content key as the source —
        what makes every content-keyed session cache treat them as the
        same array."""
        session = EvalSession()
        arena = ShmArena()
        try:
            arr = np.arange(25_000, dtype=np.int64)
            ref = arena.register(arr)
            attached = attach_ref(ref)
            vended = arena.register_view(arr)
            assert session.array_key(arr) == session.array_key(attached)
            assert session.array_key(arr) == session.array_key(vended)
        finally:
            arena.dispose()

    def test_vended_views_are_read_only(self):
        arena = ShmArena()
        try:
            view = arena.register_view(np.arange(10_000))
            with pytest.raises(ValueError):
                view[0] = 99
        finally:
            arena.dispose()


@needs_shm
class TestCleanup:
    def test_dispose_leaves_no_leaked_segments(self):
        before = _shm_entries()
        arena = ShmArena()
        names = []
        arr = np.arange(200_000, dtype=np.int64)
        arena.register(arr)
        names = arena.segment_names
        assert names and all(n.lstrip("/") in _shm_entries() for n in names)
        arena.dispose()
        after = _shm_entries()
        assert after - before == set()

    def test_dispose_is_idempotent_and_blocks_registration(self):
        arena = ShmArena()
        arena.register(np.arange(5_000))
        arena.dispose()
        arena.dispose()
        with pytest.raises(RuntimeError):
            arena.register(np.arange(5_000))

    def test_vended_views_survive_dispose(self):
        """Unlink removes the name; the pages live until the last mapping
        drops — so parent-side heap-file columns rebound to arena views
        stay valid after the sweep disposes the arena."""
        before = _shm_entries()
        arena = ShmArena()
        arr = np.arange(100_000, dtype=np.int64)
        view = arena.register_view(arr)
        arena.dispose()
        assert _shm_entries() - before == set()
        assert np.array_equal(view, arr)

    def test_finalizer_unlinks_on_garbage_collection(self):
        before = _shm_entries()
        arena = ShmArena()
        arena.register(np.arange(100_000, dtype=np.int64))
        del arena
        assert _shm_entries() - before == set()


@needs_shm
@needs_fork
class TestForkSafety:
    def test_child_cannot_register_or_dispose(self):
        ctx = multiprocessing.get_context("fork")
        arena = ShmArena()
        try:
            ref = arena.register(np.arange(50_000, dtype=np.int64))
            names = arena.segment_names

            def child(queue):
                try:
                    arena.register(np.arange(10))
                    queue.put(("register", "no error"))
                except RuntimeError:
                    queue.put(("register", "raised"))
                arena.dispose()  # must be a silent no-op in the child
                queue.put(("alive", all(
                    n.lstrip("/") in os.listdir("/dev/shm") for n in names
                )))
                view = attach_ref(ref)
                queue.put(("sum", int(view.sum())))

            queue = ctx.SimpleQueue()
            proc = ctx.Process(target=child, args=(queue,))
            proc.start()
            results = dict(queue.get() for _ in range(3))
            proc.join()
            assert proc.exitcode == 0
            assert results["register"] == "raised"
            assert results["alive"] is True  # child dispose tore nothing down
            assert results["sum"] == int(np.arange(50_000, dtype=np.int64).sum())
        finally:
            arena.dispose()


class TestShareable:
    def test_threshold(self):
        assert not shareable(np.zeros(1))
        assert not shareable([1, 2, 3])
        assert not shareable(b"x" * SHARE_MIN_BYTES)
        assert shareable(np.zeros(SHARE_MIN_BYTES, dtype=np.uint8))
