"""ILP feedback mechanics at unit granularity."""

import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.feedback import FeedbackConfig, run_ilp_feedback
from repro.design.ilp_formulation import DesignProblem, choose_candidates
from repro.design.mv import KIND_MV


@pytest.fixture(scope="module")
def designer(ssb_small):
    return CoraddDesigner(
        ssb_small.flat_tables,
        ssb_small.workload,
        ssb_small.primary_keys,
        ssb_small.fk_attrs,
        config=DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False),
    )


class TestFeedbackMechanics:
    def test_adds_expanded_groups(self, designer, ssb_small):
        candidates = designer.enumerate()
        pool_before = len(candidates)
        budget = int(ssb_small.total_base_bytes() * 0.4)
        outcome = run_ilp_feedback(
            designer.enumerators,
            candidates,
            list(ssb_small.workload),
            designer.base_seconds(),
            budget,
            config=FeedbackConfig(max_iterations=1),
        )
        # The first iteration always proposes candidates (expansions and
        # reclusterings of the chosen MVs)...
        assert len(candidates) >= pool_before
        # ...and never loses to the plain solve on the original pool.
        assert outcome.design.status in ("optimal", "heuristic")

    def test_objective_history_monotone(self, designer, ssb_small):
        budget = int(ssb_small.total_base_bytes() * 0.6)
        outcome = run_ilp_feedback(
            designer.enumerators,
            designer.enumerate(),
            list(ssb_small.workload),
            designer.base_seconds(),
            budget,
            config=FeedbackConfig(max_iterations=3),
        )
        hist = outcome.objective_history
        assert all(b <= a + 1e-9 for a, b in zip(hist, hist[1:]))

    def test_oversize_expansions_discarded(self, designer, ssb_small):
        """Expanded MVs larger than the whole budget must not survive in
        the pool (Section 6.1's 'as long as it does not exceed the overall
        space budget')."""
        candidates = designer.enumerate()
        max_ordinal_before = max(
            int(c.cand_id[2:]) for c in candidates if c.kind == KIND_MV
        )
        tiny_budget = int(ssb_small.total_base_bytes() * 0.12)
        run_ilp_feedback(
            designer.enumerators,
            candidates,
            list(ssb_small.workload),
            designer.base_seconds(),
            tiny_budget,
            config=FeedbackConfig(max_iterations=1),
        )
        # Every *feedback-produced* MV candidate respects the budget; the
        # initial enumeration may legitimately contain bigger ones.
        for cand in candidates:
            if cand.kind == KIND_MV and int(cand.cand_id[2:]) > max_ordinal_before:
                assert cand.size_bytes <= tiny_budget

    def test_feedback_respects_budget_in_solution(self, designer, ssb_small):
        budget = int(ssb_small.total_base_bytes() * 0.3)
        candidates = designer.enumerate()
        outcome = run_ilp_feedback(
            designer.enumerators,
            candidates,
            list(ssb_small.workload),
            designer.base_seconds(),
            budget,
            config=FeedbackConfig(max_iterations=2),
        )
        used = sum(
            candidates.candidate(cid).size_bytes
            for cid in outcome.design.chosen_ids
        )
        assert used <= budget

    def test_zero_iterations_config(self, designer, ssb_small):
        budget = int(ssb_small.total_base_bytes() * 0.5)
        outcome = run_ilp_feedback(
            designer.enumerators,
            designer.enumerate(),
            list(ssb_small.workload),
            designer.base_seconds(),
            budget,
            config=FeedbackConfig(max_iterations=0),
        )
        plain = choose_candidates(
            DesignProblem(
                designer.enumerate(),
                list(ssb_small.workload),
                designer.base_seconds(),
                budget,
            )
        )
        # No iterations: identical to the plain solve.
        assert outcome.design.objective == pytest.approx(plain.objective)
        assert outcome.candidates_added == 0
