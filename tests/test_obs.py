"""Observability: invisible when off, exact when on.

The layer's contract has three legs, each tested here:

* **invisibility** — plans, simulated costs and result masks are
  bit-identical with instrumentation on vs off, and the disabled path
  (no ambient tracer/registry/monitor) costs one contextvar read per site;
* **commutativity** — metric payloads merge order-free (counters add,
  gauges max, histograms component-wise), which is what lets worker
  metrics ride the existing snapshot merge-back from forked
  :class:`~repro.engine.ParallelSweep` workers;
* **parity** — the online :class:`~repro.obs.drift.CostModelMonitor`
  replayed over Figure 10's offline rows reproduces the experiment's
  per-query error ratios exactly, and a noisy interleaved online stream
  flags the same high-error queries the offline figure does.

Dyadic-rational metric values (halves, quarters) are used in the merge
tests so float addition is exact and "equal" means ``==``.
"""

from __future__ import annotations

import json
import pickle
from time import perf_counter
from types import SimpleNamespace

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import (
    EvalSession,
    ParallelSweep,
    export_snapshot,
    fork_available,
    merge_snapshots,
    use_session,
)
from repro.experiments.harness import evaluate_design
from repro.obs import (
    NULL_SPAN,
    CostModelMonitor,
    MetricsRegistry,
    Observation,
    Tracer,
    observed,
)
from repro.obs.drift import COST_FLOOR, use_monitor
from repro.obs.metrics import (
    Histogram,
    count,
    merge_payloads,
    observe,
    set_gauge,
    use_metrics,
)
from repro.obs.trace import annotate, span, use_tracer
from repro.workloads.registry import make

CONFIG = DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False)


@pytest.fixture(scope="module")
def instance():
    return make("tpch", scale=0.05, seed=7)


def _fresh_designer(instance):
    return CoraddDesigner(
        instance.flat_tables,
        instance.workload,
        instance.primary_keys,
        instance.fk_attrs,
        config=CONFIG,
    )


def _assert_identical(a, b):
    assert a.real_seconds == b.real_seconds
    assert a.model_seconds == b.model_seconds
    for qname, x in a.plans.items():
        y = b.plans[qname]
        assert x.plan == y.plan
        assert x.object_name == y.object_name
        assert x.result.cost == y.result.cost
        assert np.array_equal(x.result.mask, y.result.mask)


# ------------------------------------------------------------------- tracing


class TestTracer:
    def test_nesting_attrs_and_tree(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer", phase=1):
                with span("inner"):
                    annotate(rows=8)
            with span("second"):
                pass
        assert [s.name for s in tracer.spans] == ["outer", "second"]
        outer = tracer.spans[0]
        assert [c.name for c in outer.children] == ["inner"]
        assert outer.attrs == {"phase": 1}
        assert outer.children[0].attrs == {"rows": 8}
        assert outer.seconds >= outer.children[0].seconds >= 0.0

        data = json.loads(tracer.to_json())
        assert data == tracer.to_dict()
        assert data["spans"][0]["children"][0]["name"] == "inner"
        rendered = tracer.render()
        assert "outer" in rendered and "  inner" in rendered

    def test_span_durations_publish_to_ambient_metrics(self):
        registry = MetricsRegistry()
        with use_tracer(), use_metrics(registry):
            with span("work"):
                pass
            with span("work"):
                pass
        hist = registry.histogram("span.work")
        assert hist is not None and hist.count == 2
        assert hist.total >= 0.0

    def test_annotate_targets_innermost_open_span(self):
        tracer = Tracer()
        with use_tracer(tracer):
            with span("outer"):
                with span("inner"):
                    annotate(depth=2)
                annotate(depth=1)
        assert tracer.spans[0].attrs == {"depth": 1}
        assert tracer.spans[0].children[0].attrs == {"depth": 2}


class TestDisabledPath:
    def test_null_span_is_a_shared_singleton(self):
        # Structural zero-allocation guarantee: every disabled span() call
        # returns the same object, entering yields None, annotate no-ops.
        assert span("a") is span("b") is NULL_SPAN
        with span("anything", attr=1) as inner:
            assert inner is None
        NULL_SPAN.annotate(ignored=True)
        annotate(ignored=True)  # no open span, no tracer: must not raise

    def test_metric_helpers_noop_without_registry(self):
        count("nobody.listening")
        observe("nobody.listening", 1.0)
        set_gauge("nobody.listening", 1.0)

    def test_disabled_span_overhead_is_tiny(self):
        # A generous absolute guard (the real cost is ~100ns/call): the
        # disabled path must stay one contextvar read + identity check.
        n = 50_000
        start = perf_counter()
        for _ in range(n):
            with span("hot"):
                pass
        per_call = (perf_counter() - start) / n
        assert per_call < 20e-6, f"{per_call * 1e6:.2f} us per disabled span"


# ------------------------------------------------------------------- metrics


class TestMetricsMerge:
    def _payload_a(self):
        r = MetricsRegistry()
        r.inc("hits", 3)
        r.inc("bytes", 0.5)
        r.set_gauge("peak", 4.0)
        r.observe("lat", 0.25)
        r.observe("lat", 1.0)
        return r.export()

    def _payload_b(self):
        r = MetricsRegistry()
        r.inc("hits", 2)
        r.inc("misses", 7)
        r.set_gauge("peak", 2.5)
        r.observe("lat", 0.5)
        return r.export()

    def test_merge_is_commutative_and_exact(self):
        ab = merge_payloads(self._payload_a(), self._payload_b())
        ba = merge_payloads(self._payload_b(), self._payload_a())
        assert ab == ba
        assert ab["counters"] == {"hits": 5, "bytes": 0.5, "misses": 7}
        assert ab["gauges"] == {"peak": 4.0}  # max, not last-writer-wins
        lat = ab["histograms"]["lat"]
        assert lat["count"] == 3
        assert lat["total"] == 1.75  # dyadic values: float addition exact
        assert lat["min"] == 0.25 and lat["max"] == 1.0

    def test_histogram_buckets_are_powers_of_two(self):
        h = Histogram()
        for v in (0.25, 0.3, 1.0, 1.9, 0.0):
            h.observe(v)
        data = h.to_dict()
        # 0.25/0.3 -> bucket -2, 1.0/1.9 -> bucket 0, zero gets its own.
        assert data["buckets"]["-2"] == 2
        assert data["buckets"]["0"] == 2
        assert h.count == 5

    def test_histogram_round_trip(self):
        h = Histogram()
        h.observe(0.5)
        h.observe(2.0)
        again = Histogram.from_dict(h.to_dict())
        assert again.to_dict() == h.to_dict()

    def test_empty_merge_is_falsy(self):
        assert merge_payloads() == {}
        assert merge_payloads({}, {}) == {}

    def test_ambient_helpers_record(self):
        with use_metrics() as registry:
            count("c", 2)
            count("c")
            set_gauge("g", 1.5)
            observe("h", 0.75)
        assert registry.counter("c") == 3
        assert registry.gauges["g"] == 1.5
        assert registry.histogram("h").count == 1


class TestSnapshotMetrics:
    def test_snapshot_carries_metrics_through_pickle(self):
        session = EvalSession()
        registry = MetricsRegistry()
        registry.inc("engine.cache.mask_hits", 4)
        snap = export_snapshot(session, metrics=registry.export())
        again = pickle.loads(pickle.dumps(snap))
        assert again.metrics["counters"] == {"engine.cache.mask_hits": 4}

    def test_merge_snapshots_merges_metrics_commutatively(self):
        session = EvalSession()
        a = MetricsRegistry()
        a.inc("hits", 2)
        a.observe("lat", 0.5)
        b = MetricsRegistry()
        b.inc("hits", 1.25)
        b.observe("lat", 0.25)
        snap_a = export_snapshot(session, metrics=a.export())
        snap_b = export_snapshot(session, metrics=b.export())
        ab = merge_snapshots(snap_a, snap_b)
        ba = merge_snapshots(snap_b, snap_a)
        assert ab.metrics == ba.metrics
        assert ab.metrics["counters"]["hits"] == 3.25
        assert ab.metrics["histograms"]["lat"]["count"] == 2

    def test_metricless_snapshots_merge_to_empty_payload(self):
        session = EvalSession()
        merged = merge_snapshots(export_snapshot(session), export_snapshot(session))
        assert merged.metrics == {}


# ------------------------------------------------- engine cache counters


class TestEngineCacheMetrics:
    def test_session_publishes_cache_deltas(self, instance):
        designer = _fresh_designer(instance)
        design = designer.design(int(instance.total_base_bytes() * 0.75))
        session = EvalSession()
        with use_metrics() as registry, use_session(session):
            evaluate_design(design)
            session.publish_metrics()
            first = dict(registry.counters)
            # Publishing again with no new work must add nothing (deltas).
            session.publish_metrics()
            assert dict(registry.counters) == first
            evaluate_design(design)
            session.publish_metrics()
        assert registry.counter("engine.cache.mask_misses") > 0
        assert registry.counter("engine.cache.mask_bytes") > 0
        # The second evaluation hit the warm caches.
        assert registry.counter("engine.cache.scan_hits") > 0
        assert (
            registry.counter("engine.cache.mask_misses")
            == session.stats["mask_misses"]
        )

    @pytest.mark.skipif(
        not fork_available(), reason="platform cannot fork worker processes"
    )
    def test_worker_metrics_ride_the_snapshot_merge_back(self, instance):
        designer = _fresh_designer(instance)
        base = instance.total_base_bytes()
        designs = [designer.design(int(base * f)) for f in (0.5, 1.0, 1.5, 2.0)]

        def evaluate(design):
            count("obs_test.items")
            return evaluate_design(design).without_design()

        session = EvalSession()
        with use_metrics() as registry:
            sweep = ParallelSweep(workers=2)
            assert sweep.parallel
            evaluated = sweep.map(evaluate, designs, session=session)
        assert len(evaluated) == len(designs)
        # Every item counted exactly once, whether it ran in the parent
        # (warmup heads) or in a forked worker (payload on the delta).
        assert registry.counter("obs_test.items") == len(designs)
        # Worker-side cache work came home as engine.cache.* counters too.
        assert registry.counter("engine.cache.mask_misses") > 0

    @pytest.mark.skipif(
        not fork_available(), reason="platform cannot fork worker processes"
    )
    def test_parallel_metrics_match_serial_totals(self, instance):
        designer = _fresh_designer(instance)
        base = instance.total_base_bytes()
        designs = [designer.design(int(base * f)) for f in (0.5, 1.0, 1.5, 2.0)]

        def evaluate(design):
            return evaluate_design(design).without_design()

        totals = {}
        for workers, scheduler in ((1, "steal"), (2, "chunks"), (2, "steal")):
            session = EvalSession()
            with use_metrics() as registry:
                ParallelSweep(workers=workers, scheduler=scheduler).map(
                    evaluate, designs, session=session
                )
            totals[workers, scheduler] = registry.counter(
                "engine.cache.mask_misses"
            )
        # Contiguous chunks co-locate each worker's items in one session, so
        # the union of work done (cache misses) equals the serial sweep's.
        assert totals[1, "steal"] == totals[2, "chunks"] > 0
        # Per-item stealing isolates items on whichever worker pulls them;
        # a cache entry shared by two items on different workers is missed
        # once per worker, so the honest bound is >= — never fewer misses,
        # and results stay bit-identical either way (TestParallelIdentity).
        assert totals[2, "steal"] >= totals[1, "steal"]


# -------------------------------------------------------------- bit identity


class TestObservationalInvisibility:
    def test_design_and_evaluation_identical_with_obs_on(self, instance):
        budget = int(instance.total_base_bytes() * 0.75)

        def arm():
            designer = _fresh_designer(instance)
            design = designer.design(budget)
            session = EvalSession()
            with use_session(session):
                ev = evaluate_design(design)
                session.publish_metrics()
            return design, ev

        plain_design, plain_ev = arm()
        with observed("identity") as obs:
            traced_design, traced_ev = arm()

        assert [c.cand_id for c in traced_design.chosen] == [
            c.cand_id for c in plain_design.chosen
        ]
        assert traced_design.expected_seconds == plain_design.expected_seconds
        assert traced_design.ilp.assignment == plain_design.ilp.assignment
        _assert_identical(plain_ev, traced_ev)

        # ... and the observed arm actually observed: stage spans recorded,
        # cache counters populated, every query drift-monitored.
        names = {s.name for s in obs.tracer.spans}
        assert {"designer.profile", "designer.enumerate", "designer.solve"} <= names
        assert obs.metrics.counter("ilp.solves") >= 1
        assert obs.metrics.counter("engine.cache.mask_misses") > 0
        assert obs.monitor.observations == len(plain_ev.real_seconds)

    def test_report_is_json_serializable_and_versioned(self, tmp_path):
        with observed("report") as obs:
            with span("stage", detail="x"):
                count("c", 1)
            obs.monitor.observe("q1", modeled=1.0, measured=2.0)
        path = obs.write(tmp_path / "TRACE_report.json")
        data = json.loads(path.read_text())
        assert data["name"] == "report"
        assert data["version"] == 1
        assert data["trace"]["spans"][0]["name"] == "stage"
        assert data["metrics"]["counters"] == {"c": 1}
        assert data["drift"]["queries"]["q1"]["error"] == 2.0


# ------------------------------------------------------------------ drift


class TestCostModelMonitor:
    def test_ewma_seeds_from_first_sample(self):
        monitor = CostModelMonitor(alpha=0.5)
        signal = monitor.observe("q", modeled=2.0, measured=5.0)
        assert signal.ratio == 2.5
        assert signal.error == 2.5  # seeded, not pulled toward zero

    def test_ewma_smoothing_is_exact_with_dyadic_samples(self):
        monitor = CostModelMonitor(alpha=0.5)
        monitor.observe("q", modeled=1.0, measured=2.0)  # error = 2.0
        s = monitor.observe("q", modeled=1.0, measured=4.0)
        assert s.error == 0.5 * 4.0 + 0.5 * 2.0 == 3.0

    def test_threshold_and_min_samples(self):
        monitor = CostModelMonitor(alpha=1.0, threshold=2.0, min_samples=2)
        first = monitor.observe("q", modeled=1.0, measured=10.0)
        assert not first.drifted  # error is high but sample count is not
        second = monitor.observe("q", modeled=1.0, measured=10.0)
        assert second.drifted
        assert monitor.drifted_queries() == ["q"]
        calm = monitor.observe("ok", modeled=1.0, measured=1.0)
        assert not calm.drifted
        assert monitor.drifted_queries() == ["q"]

    def test_zero_model_cost_is_clamped_finite(self):
        signal = CostModelMonitor().observe("q", modeled=0.0, measured=1.0)
        assert signal.ratio == 1.0 / COST_FLOOR
        assert np.isfinite(signal.error)

    def test_observe_design_feeds_every_query(self):
        evaluated = SimpleNamespace(
            model_seconds={"a": 1.0, "b": 2.0},
            real_seconds={"a": 2.0, "b": 2.0},
        )
        monitor = CostModelMonitor()
        signals = monitor.observe_design(evaluated)
        assert {s.query for s in signals} == {"a", "b"}
        assert monitor.error("a") == 2.0
        assert monitor.error("b") == 1.0

    def test_harness_feeds_ambient_monitor(self, instance):
        designer = _fresh_designer(instance)
        design = designer.design(int(instance.total_base_bytes() * 0.75))
        with use_monitor() as monitor:
            ev = evaluate_design(design)
        assert monitor.observations == len(ev.real_seconds)
        for name, measured in ev.real_seconds.items():
            modeled = ev.model_seconds[name]
            assert monitor.error(name) == measured / max(modeled, COST_FLOOR)

    def test_invalid_config_rejected(self):
        with pytest.raises(ValueError):
            CostModelMonitor(alpha=0.0)
        with pytest.raises(ValueError):
            CostModelMonitor(alpha=1.5)
        with pytest.raises(ValueError):
            CostModelMonitor(threshold=0.0)


class TestFig10Parity:
    """The monitor online == Figure 10 offline, on the same data."""

    @pytest.fixture(scope="class")
    def fig10_rows(self):
        from repro.experiments.fig10_cost_model_error import run_fig10

        result = run_fig10(lineorder_rows=60_000, synopsis_rows=16_384)
        return result.rows

    def test_replay_reproduces_offline_error_ratios_exactly(self, fig10_rows):
        samples = [
            (row["clustering"], row["commercial_model_s"], row["real_s"])
            for row in fig10_rows
        ]
        monitor = CostModelMonitor.replay(samples)
        for row in fig10_rows:
            offline = row["real_s"] / max(row["commercial_model_s"], COST_FLOOR)
            assert monitor.error(row["clustering"]) == offline

    def test_online_stream_flags_the_offline_high_error_queries(
        self, fig10_rows
    ):
        offline = {
            row["clustering"]: row["real_s"]
            / max(row["commercial_model_s"], COST_FLOOR)
            for row in fig10_rows
        }
        # Place the threshold in the widest geometric gap of the offline
        # error spectrum, so "high-error" is unambiguous on this data.
        ranked = sorted(offline.values())
        gaps = [
            (ranked[i + 1] / ranked[i], i) for i in range(len(ranked) - 1)
        ]
        widest, i = max(gaps)
        assert widest > 1.5, "fig10 errors should separate clearly"
        threshold = float(np.sqrt(ranked[i] * ranked[i + 1]))
        expected = sorted(q for q, e in offline.items() if e >= threshold)
        assert expected and len(expected) < len(offline)

        # Interleaved online stream with deterministic +-5% measurement
        # noise: the EWMA must converge to the same flag set.
        jitter = (1.0, 1.05, 0.95, 1.02, 0.98)
        monitor = CostModelMonitor(
            alpha=0.3, threshold=threshold, min_samples=3
        )
        for factor in jitter:
            for row in fig10_rows:
                monitor.observe(
                    row["clustering"],
                    row["commercial_model_s"],
                    row["real_s"] * factor,
                )
        assert monitor.drifted_queries() == expected


# ----------------------------------------------- refresh + ilp instrumentation


class TestLayerMetricsSmoke:
    def test_refresh_executor_publishes_spans_and_metrics(self):
        from repro.storage.update import RefreshExecutor

        inst = make(
            "ssb-refresh",
            lineorder_rows=6_000,
            seed=3,
            rounds=2,
            insert_fraction=0.04,
            delete_fraction=0.02,
        )
        designer = CoraddDesigner(
            inst.flat_tables,
            inst.workload,
            inst.primary_keys,
            inst.fk_attrs,
            config=CONFIG,
        )
        design = designer.design(int(inst.total_base_bytes() * 0.6))
        with observed("refresh") as obs:
            session = EvalSession()
            with use_session(session):
                db = design.materialize(session)
                executor = RefreshExecutor(db, pool_pages=2_048, session=session)
                for batch in inst.refresh.batches():
                    executor.apply(batch)
                executor.flush()
        counters = obs.metrics.counters
        assert counters.get("storage.refresh.insert_batches", 0) > 0
        # Touched pages read in on miss; dirty ones settle at flush (the
        # pool here is big enough that nothing evicts mid-stream).
        assert counters.get("storage.refresh.page_reads", 0) > 0
        assert counters.get("storage.refresh.flush_writes", 0) > 0
        pool_traffic = counters.get("storage.bufferpool.hits", 0) + counters.get(
            "storage.bufferpool.misses", 0
        )
        assert pool_traffic > 0
        batch_hist = obs.metrics.histogram("storage.refresh.batch_seconds")
        assert batch_hist is not None and batch_hist.count > 0

        def names(spans):
            out = set()
            for s in spans:
                out.add(s.name)
                out |= names(s.children)
            return out

        assert "refresh.insert" in names(obs.tracer.spans)

    def test_ilp_solver_annotates_and_counts(self):
        from repro.ilp.model import MILPModel
        from repro.ilp.solver import solve

        def tiny_model():
            m = MILPModel("tiny")
            m.add_binary("x", obj=-2.0)
            m.add_binary("y", obj=-1.0)
            m.add_constraint({"x": 1.0, "y": 1.0}, "<=", 1.0)
            return m

        with observed("ilp") as obs:
            cold = solve(tiny_model(), backend="scipy")
            warm = solve(
                tiny_model(), backend="scipy", warm_start={"x": 1.0, "y": 0.0}
            )
        assert cold.objective == warm.objective == -2.0
        assert obs.metrics.counter("ilp.solves") == 2
        assert obs.metrics.counter("ilp.warm_starts") == 1
        # The polished incumbent matched the LP bound, so the warm solve
        # was certified without a cold MILP.
        assert obs.metrics.counter("ilp.polish_certified") == 1
        assert warm.backend == "scipy-polish"
        ilp_spans = [s for s in obs.tracer.spans if s.name == "ilp.solve"]
        assert len(ilp_spans) == 2
        assert ilp_spans[0].attrs["status"] == "optimal"
        assert ilp_spans[1].attrs["warm"] is True
        assert ilp_spans[1].attrs["warm_outcome"] == "polish-certified"
        assert "lp_bound" in ilp_spans[1].attrs
