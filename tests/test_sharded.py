"""Sharded heap files: pruning soundness, bit-identity, routing, design."""

import numpy as np
import pytest

from repro.design.ilp_formulation import DesignProblem, choose_candidates
from repro.design.mv import CandidateSet, MVCandidate, mv_size_bytes
from repro.design.shard_candidates import ShardCandidateEnumerator
from repro.costmodel.base import ObjectGeometry
from repro.costmodel.correlation_aware import CorrelationAwareCostModel
from repro.engine.parallel import ParallelSweep
from repro.engine.session import EvalSession, use_session
from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
)
from repro.stats.collector import TableStatistics
from repro.storage.access import full_scan
from repro.storage.disk import DiskModel
from repro.storage.executor import PhysicalDatabase, PhysicalObject
from repro.storage.layout import HeapFile
from repro.storage.sharded import (
    HASH,
    RANGE,
    ShardSpec,
    ShardedHeapFile,
    choose_shard_key,
    run_workload_shard_parallel,
    sharded_fact_object,
    sharded_scan,
)
from repro.storage.update import RefreshExecutor
from tests.conftest import make_people


@pytest.fixture(scope="module")
def disk():
    return DiskModel()


@pytest.fixture(scope="module")
def people():
    return make_people(n=12_000, seed=3)


def random_query(rng, name="q"):
    """A random conjunctive query over the people columns (eq/range/in)."""
    preds = []
    picks = rng.choice(["state", "region", "city", "salary"],
                       size=rng.integers(1, 3), replace=False)
    for attr in picks:
        hi = {"state": 50, "region": 5, "city": 1020, "salary": 200}[attr]
        kind = rng.integers(0, 3)
        if kind == 0:
            preds.append(EqPredicate(attr, float(rng.integers(0, hi + 1))))
        elif kind == 1:
            lo = int(rng.integers(0, hi))
            preds.append(RangePredicate(
                attr, float(lo), float(rng.integers(lo, hi + 1))
            ))
        else:
            vals = rng.integers(0, hi + 1, size=int(rng.integers(1, 4)))
            preds.append(InPredicate(attr, tuple(float(v) for v in vals)))
    return Query(name, "people", preds,
                 aggregates=[Aggregate("sum", ("salary",))])


def selected_sources(hf, result):
    return np.sort(np.asarray(hf.source_rowids)[result.mask])


def test_pruning_never_drops_rows(people, disk):
    """Property: a pruned shard holds zero live rows matching the query."""
    rng = np.random.default_rng(7)
    for scheme in (RANGE, HASH):
        shf = ShardedHeapFile(
            people, ("state",), disk, ShardSpec(5, "state", scheme),
            name="people",
        )
        for i in range(40):
            q = random_query(rng, f"p{i}")
            survivors = set(int(s) for s in shf.shards_for_query(q))
            for s, shard in enumerate(shf.shards):
                if s in survivors:
                    continue
                mask = q.mask(shard.table)
                if shard.live is not None:
                    mask &= shard.live
                assert mask.sum() == 0, (
                    f"{scheme}: pruned shard {s} holds matches for {q}"
                )


@pytest.mark.parametrize("scheme", [RANGE, HASH])
@pytest.mark.parametrize("with_session", [False, True])
def test_bit_identity_fuzz(people, disk, scheme, with_session):
    """Sharded answers == unsharded answers (selected rows and aggregates),
    across mutations: pristine, with an insert tail, with tombstones."""
    rng = np.random.default_rng(11)
    shf = ShardedHeapFile(
        people, ("state", "city"), disk, ShardSpec(4, "city", scheme),
        name="people",
    )
    hf = HeapFile(people, ("state", "city"), disk, name="people")
    ctx = use_session(EvalSession()) if with_session else None
    if ctx is not None:
        ctx.__enter__()
    try:
        def check(tag):
            for i in range(25):
                q = random_query(rng, f"{tag}{i}")
                res_s = sharded_scan(shf, q)
                res_u = full_scan(hf, q)
                assert np.array_equal(
                    selected_sources(shf, res_s), selected_sources(hf, res_u)
                ), f"{tag}: rows differ for {q}"
                sal_s = np.sort(shf.table.column("salary")[res_s.mask])
                sal_u = np.sort(hf.table.column("salary")[res_u.mask])
                assert np.array_equal(sal_s, sal_u)

        check("pristine")
        # Insert a tail (values beyond the build distribution widen zones).
        batch = {
            "state": rng.integers(0, 51, 400),
            "region": rng.integers(0, 6, 400),
            "city": rng.integers(0, 1021, 400),
            "salary": rng.integers(20, 220, 400),
        }
        ids = np.arange(people.nrows, people.nrows + 400, dtype=np.int64)
        shf.insert(batch, ids)
        hf.insert(batch, ids)
        check("tail")
        # Tombstone a slice by provenance.
        doomed = rng.choice(people.nrows + 400, size=600, replace=False)
        shf.delete_source(doomed.astype(np.int64))
        hf.delete_source(doomed.astype(np.int64))
        check("tombstoned")
    finally:
        if ctx is not None:
            ctx.__exit__(None, None, None)


def test_cost_charges_only_surviving_shards(people, disk):
    shf = ShardedHeapFile(
        people, ("state",), disk, ShardSpec(4, "state"), name="people"
    )
    hf = HeapFile(people, ("state",), disk, name="people")
    q = Query("q", "people", [EqPredicate("city", 205.0)],
              aggregates=[Aggregate("sum", ("salary",))])
    res = sharded_scan(shf, q)
    survivors = set(int(s) for s in shf.shards_for_query(q))
    assert len(survivors) < shf.spec.shards  # pruning fired
    assert {d.shard for d in res.shard_details} == survivors
    # The total cost is exactly the sum of the surviving shards' costs.
    total = sum((d.cost for d in res.shard_details),
                start=type(res.cost)(0.0, 0, 0, 0))
    assert total == res.cost
    # Only surviving pages are charged; pages_avoided is the complement.
    assert res.cost.pages_read < hf.npages
    pruned_pages = sum(
        shard.npages for s, shard in enumerate(shf.shards)
        if s not in survivors
    )
    assert res.pages_avoided == pruned_pages > 0


def test_refresh_routing_conservation(people, disk):
    """RefreshExecutor routes every batch row to exactly one shard, lands it
    inside that shard's key interval, and deletes match the unsharded
    reference."""
    rng = np.random.default_rng(5)
    db = PhysicalDatabase(
        [sharded_fact_object(people, "people", ("state",),
                             ShardSpec(4, "state"), disk)]
    )
    ref = PhysicalDatabase(
        [PhysicalObject(HeapFile(people, ("state",), disk, name="people"))]
    )
    ex = RefreshExecutor(db, disk=disk, session=None, compact_threshold=0.05)
    ex_ref = RefreshExecutor(ref, disk=disk, session=None,
                             compact_threshold=0.05)
    shf = db.object("people").heapfile
    before = [s.nrows for s in shf.shards]
    n = 800
    batch = {
        "state": rng.integers(0, 51, n),
        "region": rng.integers(0, 6, n),
        "city": rng.integers(0, 1021, n),
        "salary": rng.integers(20, 220, n),
    }
    out = ex.apply_insert("people", batch)
    out_ref = ex_ref.apply_insert("people", batch)
    assert out.rows == out_ref.rows == n
    shf = db.object("people").heapfile  # may have been privatized
    deltas = {
        s: shf.shards[s].nrows - before[s]
        for s in range(4) if shf.shards[s].nrows != before[s]
    }
    # Conservation: every row landed in exactly one shard.
    assert sum(deltas.values()) == n
    assert deltas == shf.last_route
    # Routing correctness: the batch rows in each shard route back to it.
    expected = shf.shard_map.route(batch["state"])
    for s, count in deltas.items():
        assert int((expected == s).sum()) == count
    # Deletes: same doomed rows as the unsharded reference.
    removed = ex.apply_delete("people", [RangePredicate("state", 0, 7)])
    removed_ref = ex_ref.apply_delete("people", [RangePredicate("state", 0, 7)])
    assert removed.rows == removed_ref.rows > 0
    assert shf.live_rows == ref.object("people").heapfile.live_rows


def test_refresh_hot_shard_compaction(people, disk):
    """A hot shard's churn triggers per-shard compaction; cold shards keep
    their layout, and answers survive the reorganization."""
    db = PhysicalDatabase(
        [sharded_fact_object(people, "people", ("state",),
                             ShardSpec(4, "state"), disk)]
    )
    ex = RefreshExecutor(db, disk=disk, session=None, compact_threshold=0.1)
    shf = db.object("people").heapfile
    hot = int(shf.shard_map.route(np.asarray([3.0]))[0])
    cold_epochs = [
        s.sorted_epoch for i, s in enumerate(shf.shards) if i != hot
    ]
    n = max(600, int(0.2 * shf.shards[hot].nrows))
    rng = np.random.default_rng(9)
    batch = {
        "state": np.full(n, 3),
        "region": np.zeros(n, dtype=np.int64),
        "city": np.full(n, 65),
        "salary": rng.integers(20, 220, n),
    }
    ex.apply_insert("people", batch)
    shf = db.object("people").heapfile
    assert ex.compactions >= 1
    assert shf.shards[hot].tail_rows == 0  # hot shard was reorganized
    assert [
        s.sorted_epoch for i, s in enumerate(shf.shards) if i != hot
    ] == cold_epochs  # cold shards untouched
    q = Query("q", "people", [EqPredicate("state", 3.0)],
              aggregates=[Aggregate("count", ("state",))])
    ref = HeapFile(people, ("state",), disk, name="people")
    ref.insert(batch, np.arange(people.nrows, people.nrows + n,
                                dtype=np.int64))
    res_s = sharded_scan(shf, q)
    res_u = full_scan(ref, q)
    assert np.array_equal(
        selected_sources(shf, res_s), selected_sources(ref, res_u)
    )


def test_shard_parallel_matches_serial(people, disk):
    queries = [
        Query("q1", "people", [EqPredicate("city", 105.0)],
              aggregates=[Aggregate("sum", ("salary",))]),
        Query("q2", "people", [RangePredicate("state", 10, 20)],
              aggregates=[Aggregate("count", ("state",))]),
        Query("q3", "people", [RangePredicate("salary", 100, 150)],
              aggregates=[Aggregate("sum", ("salary",))]),
        Query("q4", "people", [InPredicate("state", (2.0, 44.0))],
              aggregates=[Aggregate("sum", ("salary",))]),
    ]
    with use_session(EvalSession()) as session:
        db = PhysicalDatabase(
            [sharded_fact_object(people, "people", ("state",),
                                 ShardSpec(4, "state"), disk)],
            plan_caching=False,
        )
        serial = {q.name: db.run(q) for q in queries}
        sweep = ParallelSweep(workers=2)
        parallel = run_workload_shard_parallel(db, queries, sweep,
                                               session=session)
    assert set(parallel) == set(serial)
    for name, s in serial.items():
        p = parallel[name]
        assert p.object_name == s.object_name
        assert p.plan == s.plan
        assert p.result.cost == s.result.cost  # bit-identical, not approx
        assert np.array_equal(p.result.mask, s.result.mask)


def test_choose_shard_key_prefers_correlated(people):
    stats = TableStatistics(people, synopsis_rows=2048, seed=0)
    queries = [
        Query("a", "people", [EqPredicate("state", 3.0)], frequency=5.0),
        Query("b", "people", [RangePredicate("region", 1, 2)], frequency=3.0),
    ]
    key = choose_shard_key(stats, queries, 4)
    # state/city/region form a hierarchy; salary is uncorrelated with the
    # predicates, so the key must come from the hierarchy.
    assert key in ("state", "city")


def test_ilp_shard_candidates_no_worse_and_strictly_better(people, disk):
    stats = TableStatistics(people, synopsis_rows=2048, seed=0)
    queries = [
        Query("hot1", "people",
              [EqPredicate("state", 3.0), RangePredicate("salary", 50, 80)],
              aggregates=[Aggregate("sum", ("salary",))], frequency=10.0),
        Query("hot2", "people", [EqPredicate("state", 5.0)],
              aggregates=[Aggregate("sum", ("salary",))], frequency=8.0),
        Query("cold", "people", [RangePredicate("city", 400, 900)],
              aggregates=[Aggregate("count", ("city",))], frequency=1.0),
    ]
    shf = ShardedHeapFile(people, ("city",), disk, ShardSpec(4, "city"),
                          name="people")
    enum = ShardCandidateEnumerator("people", shf, queries, disk)
    base = enum.base_seconds()
    model = CorrelationAwareCostModel(stats, disk)

    def add_global(cands):
        for q in queries:
            key = tuple(p.attr for p in
                        sorted(q.predicates, key=lambda p: p.kind))
            attrs = key + tuple(a for a in q.attributes() if a not in key)
            c = MVCandidate(
                cands.next_id("gmv"), "people", frozenset([q.name]),
                attrs, key, mv_size_bytes(stats, disk, attrs, key),
            )
            g = ObjectGeometry.from_attrs(stats, disk, attrs, key)
            for q2 in queries:
                if c.covers(q2):
                    c.runtimes[q2.name] = model.query_seconds(g, q2)
            cands.add(c)

    global_only = CandidateSet()
    add_global(global_only)
    with_shards = CandidateSet()
    add_global(with_shards)
    enum.add_shard_candidates(with_shards)
    assert len(with_shards) > len(global_only)
    sizes = sorted(c.size_bytes for c in global_only)
    budgets = [sizes[0] // 2, sizes[0], sum(sizes) // 2, sum(sizes)]
    strict_win = False
    for budget in budgets:
        dg = choose_candidates(DesignProblem(global_only, queries, base,
                                             budget))
        ds = choose_candidates(DesignProblem(with_shards, queries, base,
                                             budget))
        assert ds.objective <= dg.objective + 1e-9, (
            f"budget {budget}: shard candidates made the design worse"
        )
        if ds.objective < dg.objective - 1e-9:
            strict_win = True
    assert strict_win, "no budget where shard-local candidates won"


def test_registry_sharded_variants():
    from repro.workloads.registry import make

    inst = make("ssb-sharded", scale=0.02)
    assert inst.sharding is not None
    spec = inst.sharding["lineorder"]
    assert spec.shards == 4 and spec.scheme == RANGE
    assert inst.flat_tables["lineorder"].has_column(spec.key)
    inst2 = make("tpch-sharded", scale=0.02, shards=6,
                 shard_key="l_orderkey", shard_scheme="hash")
    assert inst2.sharding["lineitem"] == ShardSpec(6, "l_orderkey", HASH)
