"""Shared fixtures: a small correlated table and a small SSB instance.

Session-scoped where generation is expensive; tests must not mutate them.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.relational.query import Aggregate, EqPredicate, Query, RangePredicate
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import INT16, INT32
from repro.stats.collector import TableStatistics
from repro.storage.disk import DiskModel
from repro.workloads.ssb import generate_ssb


@pytest.fixture(scope="session")
def disk() -> DiskModel:
    return DiskModel()


def make_people(n: int = 20_000, seed: int = 0) -> Table:
    """A People-like table with the paper's running example correlations:
    city -> state (strength 1), state -> region (strength 1), salary
    uncorrelated with geography."""
    rng = np.random.default_rng(seed)
    state = rng.integers(0, 50, n)
    schema = TableSchema(
        "people",
        [
            Column("state", INT16),
            Column("region", INT16),
            Column("city", INT32),
            Column("salary", INT32),
        ],
    )
    return Table(
        schema,
        {
            "state": state,
            "region": state // 10,
            "city": state * 20 + rng.integers(0, 20, n),
            "salary": rng.integers(20, 200, n),
        },
    )


def make_wide_people(n: int = 150_000, seed: int = 0, pad_cols: int = 10) -> Table:
    """make_people plus wide padding columns, so that rows per page drop
    low enough for scattered matches to out-distance the readahead gap —
    the regime where fragment counts differ visibly."""
    rng = np.random.default_rng(seed)
    state = rng.integers(0, 50, n)
    from repro.relational.types import INT64

    cols = [
        Column("state", INT16),
        Column("region", INT16),
        Column("city", INT32),
        Column("salary", INT32),
    ] + [Column(f"pad{i}", INT64) for i in range(pad_cols)]
    data = {
        "state": state,
        "region": state // 10,
        "city": state * 20 + rng.integers(0, 20, n),
        "salary": rng.integers(20, 200, n),
    }
    for i in range(pad_cols):
        data[f"pad{i}"] = rng.integers(0, 1_000_000, n)
    return Table(TableSchema("people_wide", cols), data)


@pytest.fixture(scope="session")
def people() -> Table:
    return make_people()


@pytest.fixture(scope="session")
def people_stats(people) -> TableStatistics:
    return TableStatistics(people)


@pytest.fixture(scope="session")
def city_query() -> Query:
    return Query(
        "city_avg",
        "people",
        [EqPredicate("city", 123.0)],
        [Aggregate("avg", ("salary",))],
    )


@pytest.fixture(scope="session")
def salary_query() -> Query:
    return Query(
        "salary_band",
        "people",
        [RangePredicate("salary", 50, 60)],
        [Aggregate("sum", ("salary",))],
    )


@pytest.fixture(scope="session")
def ssb_small():
    """A small SSB instance shared by integration tests."""
    return generate_ssb(lineorder_rows=20_000, seed=1)
