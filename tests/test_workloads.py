"""Workload generators: SSB and APB-1 structure, correlations, queries."""

import numpy as np
import pytest

from repro.relational.query import EqPredicate
from repro.stats.collector import TableStatistics
from repro.workloads.apb import apb_queries, generate_apb
from repro.workloads.ssb import augment_workload, generate_ssb, ssb_queries
from repro.workloads.synth import (
    child_codes,
    date_dimension,
    datekey_add_days,
    noisy_offset,
)


class TestSynthHelpers:
    def test_child_codes_embed_parent(self):
        rng = np.random.default_rng(0)
        parents = np.array([0, 1, 2])
        children = child_codes(parents, 10, rng)
        assert (children // 10 == parents).all()

    def test_child_codes_validation(self):
        with pytest.raises(ValueError):
            child_codes(np.array([1]), 0, np.random.default_rng(0))

    def test_noisy_offset_strictly_after(self):
        rng = np.random.default_rng(0)
        base = np.arange(100)
        off = noisy_offset(base, 5, rng)
        assert (off > base).all()
        assert (off <= base + 5).all()

    def test_date_dimension_shape(self):
        cols = date_dimension(1992, 2)
        assert len(cols["datekey"]) == 2 * 365
        assert cols["year"].min() == 1992
        assert cols["year"].max() == 1993
        assert cols["weeknum"].max() <= 53
        assert cols["yearmonth"].min() == 199201

    def test_datekey_add_days_rolls_months(self):
        cal = date_dimension(1994, 1)["datekey"]
        out = datekey_add_days(np.array([19940131]), np.array([1]), cal)
        assert out[0] == 19940201

    def test_datekey_add_days_clamps_at_end(self):
        cal = date_dimension(1994, 1)["datekey"]
        out = datekey_add_days(np.array([19941231]), np.array([10]), cal)
        assert out[0] == 19941231

    def test_datekey_add_days_rejects_bad_dates(self):
        cal = date_dimension(1994, 1)["datekey"]
        with pytest.raises(ValueError):
            datekey_add_days(np.array([19940230]), np.array([1]), cal)


@pytest.fixture(scope="module")
def ssb():
    return generate_ssb(lineorder_rows=20_000, seed=5)


class TestSSB:
    def test_instance_shape(self, ssb):
        assert set(ssb.tables) == {"lineorder", "date", "customer", "supplier", "part"}
        assert ssb.flat_tables["lineorder"].nrows == 20_000
        assert len(ssb.workload) == 13

    def test_flat_has_all_query_attrs(self, ssb):
        flat = ssb.flat_tables["lineorder"]
        for q in ssb.workload:
            for attr in q.attributes():
                assert flat.has_column(attr), (q.name, attr)

    def test_date_hierarchy_strengths(self, ssb):
        stats = TableStatistics(ssb.flat_tables["lineorder"])
        assert stats.strength(("yearmonth",), ("year",)) == pytest.approx(1.0)
        assert stats.strength(("orderdate",), ("yearmonth",)) == pytest.approx(1.0)
        # year only weakly determines yearmonth (~ 1/12).
        assert stats.strength(("year",), ("yearmonth",)) < 0.2

    def test_geography_hierarchy(self, ssb):
        stats = TableStatistics(ssb.flat_tables["lineorder"])
        assert stats.strength(("c_city",), ("c_nation",)) == pytest.approx(1.0)
        assert stats.strength(("c_nation",), ("c_region",)) == pytest.approx(1.0)
        assert stats.strength(("p_brand",), ("p_category",)) == pytest.approx(1.0)

    def test_commitdate_correlated_with_orderdate(self, ssb):
        flat = ssb.flat_tables["lineorder"]
        od = flat.column("orderdate").astype(np.int64)
        cd = flat.column("commitdate").astype(np.int64)
        assert (cd >= od).all()
        # Within ~3 months in datekey space.
        assert np.median(cd - od) < 400

    def test_orderkeys_follow_time(self, ssb):
        flat = ssb.tables["lineorder"]
        order = np.argsort(flat.column("orderkey"))
        od = flat.column("orderdate")[order]
        assert (np.diff(od) >= 0).all()

    def test_paper_selectivities(self, ssb):
        """Table 1's headline numbers, within generation noise."""
        flat = ssb.flat_tables["lineorder"]
        q11 = ssb.workload.query("Q1.1")
        sels = {p.attr: p.selectivity(flat) for p in q11.predicates}
        assert sels["year"] == pytest.approx(1 / 7, rel=0.15)
        assert sels["discount"] == pytest.approx(3 / 11, rel=0.15)
        assert sels["quantity"] == pytest.approx(0.48, rel=0.15)
        q12 = ssb.workload.query("Q1.2")
        ym = q12.predicate_on("yearmonth")
        assert ym.selectivity(flat) == pytest.approx(1 / 84, rel=0.5)

    def test_most_queries_match_rows(self, ssb):
        """Needle queries (Q3.3/Q3.4: two cities x two cities) may match
        nothing at 20k rows — SSB scale 4 had 24M — but the bulk of the
        workload must select something, and nothing should select
        everything."""
        flat = ssb.flat_tables["lineorder"]
        fractions = {q.name: q.mask(flat).mean() for q in ssb.workload}
        nonzero = sum(1 for f in fractions.values() if f > 0)
        assert nonzero >= 11
        assert max(fractions.values()) < 0.6

    def test_queries_standalone(self):
        w = ssb_queries()
        assert len(w) == 13
        assert {q.fact_table for q in w} == {"lineorder"}


class TestSSBAugmentation:
    def test_factor_and_names(self, ssb):
        aug = augment_workload(ssb.workload, factor=4)
        assert len(aug) == 52
        assert aug.query("Q1.1v3") is not None

    def test_variants_stay_in_domain(self, ssb):
        flat = ssb.flat_tables["lineorder"]
        aug = augment_workload(ssb.workload, factor=4)
        nonzero = sum(1 for q in aug if q.mask(flat).sum() > 0)
        # Needle variants may match nothing at this scale (see above), but
        # shifting must not push the bulk of predicates out of domain.
        assert nonzero >= 0.8 * len(aug)

    def test_variants_differ_from_originals(self, ssb):
        aug = augment_workload(ssb.workload, factor=2)
        base = ssb.workload.query("Q1.1")
        variant = aug.query("Q1.1v1")
        assert str(variant.predicates[0]) != str(base.predicates[0])

    def test_factor_one_is_identity(self, ssb):
        aug = augment_workload(ssb.workload, factor=1)
        assert len(aug) == 13


@pytest.fixture(scope="module")
def apb():
    return generate_apb(actuals_rows=20_000, seed=6)


class TestAPB:
    def test_two_facts(self, apb):
        assert set(apb.flat_tables) == {"actuals", "budget"}
        assert apb.flat_tables["budget"].nrows == 5_000

    def test_31_queries_split(self, apb):
        assert len(apb.workload) == 31
        facts = [q.fact_table for q in apb.workload]
        assert facts.count("actuals") == 21
        assert facts.count("budget") == 10

    def test_product_hierarchy_perfect(self, apb):
        stats = TableStatistics(apb.flat_tables["actuals"])
        for lower, upper in (
            ("prodkey", "p_class"),
            ("p_class", "p_group"),
            ("p_group", "p_family"),
            ("p_family", "p_line"),
            ("p_line", "p_division"),
        ):
            assert stats.strength((lower,), (upper,)) == pytest.approx(1.0), lower

    def test_time_hierarchy(self, apb):
        stats = TableStatistics(apb.flat_tables["actuals"])
        assert stats.strength(("month",), ("quarter",)) == pytest.approx(1.0)
        assert stats.strength(("quarter",), ("year",)) == pytest.approx(1.0)

    def test_store_hierarchy(self, apb):
        stats = TableStatistics(apb.flat_tables["actuals"])
        assert stats.strength(("storekey",), ("retailer",)) == pytest.approx(1.0)

    def test_queries_match_rows(self, apb):
        nonzero = 0
        for q in apb.workload:
            flat = apb.flat_tables[q.fact_table]
            if q.mask(flat).sum() > 0:
                nonzero += 1
        # Store/product-code point lookups may be empty at 20k rows.
        assert nonzero >= 28

    def test_density_drives_default_rows(self):
        inst = generate_apb(density=0.0001, seed=1)
        possible = 24 * 2400 * 900 * 10
        assert inst.flat_tables["actuals"].nrows == pytest.approx(
            0.0001 * possible, rel=0.01
        )

    def test_facts_time_ordered(self, apb):
        months = apb.tables["actuals"].column("month")
        assert (np.diff(months) >= 0).all()
