"""Property test: the Section 5.1 ILP equals brute-force enumeration.

On small random design problems, the ILP's optimum must match the best
objective over *every* feasible subset of candidates — the strongest
correctness statement available for the formulation + solver stack.
"""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.design.ilp_formulation import DesignProblem, choose_candidates
from repro.design.mv import KIND_FACT_RECLUSTER, KIND_MV, CandidateSet, MVCandidate
from repro.relational.query import Aggregate, EqPredicate, Query


def brute_force_optimum(problem: DesignProblem) -> float:
    cands = list(problem.candidates)
    best = float("inf")
    recluster_facts = {
        c.cand_id: c.fact for c in cands if c.kind == KIND_FACT_RECLUSTER
    }
    for r in range(len(cands) + 1):
        for subset in itertools.combinations(cands, r):
            if sum(c.size_bytes for c in subset) > problem.budget_bytes:
                continue
            facts = [recluster_facts[c.cand_id] for c in subset if c.cand_id in recluster_facts]
            if len(facts) != len(set(facts)):
                continue
            total = 0.0
            for q in problem.queries:
                t = problem.base_seconds[q.name]
                for c in subset:
                    rt = c.runtimes.get(q.name)
                    if rt is not None and rt < t:
                        t = rt
                total += q.frequency * t
            best = min(best, total)
    return best


@settings(max_examples=25, deadline=None)
@given(
    n_cands=st.integers(1, 7),
    n_queries=st.integers(1, 4),
    seed=st.integers(0, 1_000),
)
def test_ilp_matches_brute_force(n_cands, n_queries, seed):
    rng = np.random.default_rng(seed)
    queries = [
        Query(
            f"q{i}",
            "f",
            [EqPredicate("a", float(i))],
            [Aggregate("sum", ("m",))],
            frequency=float(rng.integers(1, 4)),
        )
        for i in range(n_queries)
    ]
    base = {q.name: float(rng.uniform(5, 20)) for q in queries}
    candidates = CandidateSet()
    for i in range(n_cands):
        kind = KIND_FACT_RECLUSTER if rng.random() < 0.25 else KIND_MV
        cand = MVCandidate(
            cand_id=f"c{i}",
            fact="f",
            group=frozenset(),
            attrs=("a", "m", f"pad{i}"),
            cluster_key=("a",),
            size_bytes=int(rng.integers(1, 50)),
            kind=kind,
        )
        for q in queries:
            if rng.random() < 0.7:
                cand.runtimes[q.name] = float(base[q.name] * rng.uniform(0.1, 1.3))
        candidates.add(cand)
    budget = int(rng.integers(1, 120))
    problem = DesignProblem(candidates, queries, base, budget)
    ilp = choose_candidates(problem)
    brute = brute_force_optimum(problem)
    assert ilp.objective == pytest.approx(brute, abs=1e-6)
    # The reported assignment must recompute to the same objective.
    total = sum(q.frequency * ilp.expected_seconds[q.name] for q in queries)
    assert total == pytest.approx(ilp.objective, abs=1e-6)
