"""Correlation Maps: structure, bucketing, designer."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm.bucketing import bucket_codes, candidate_widths, entries_match
from repro.cm.correlation_map import CorrelationMap
from repro.cm.designer import CMDesigner
from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
)
from repro.storage.access import cm_scan, full_scan
from repro.storage.btree import secondary_index_bytes
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from tests.conftest import make_people


@pytest.fixture(scope="module")
def disk():
    return DiskModel()


@pytest.fixture(scope="module")
def by_state(disk):
    return HeapFile(make_people(n=40_000), ("state",), disk, name="by_state")


class TestBucketing:
    def test_bucket_codes_identity(self):
        v = np.array([5, 17, 23])
        assert np.array_equal(bucket_codes(v, 1), v)

    def test_bucket_codes_truncate(self):
        assert list(bucket_codes(np.array([0, 9, 10, 19, 20]), 10)) == [0, 0, 1, 1, 2]

    def test_bucket_width_validation(self):
        with pytest.raises(ValueError):
            bucket_codes(np.array([1]), 0)

    def test_entries_match_eq(self):
        buckets = np.array([0, 1, 2])
        assert list(entries_match(EqPredicate("a", 15), buckets, 10)) == [
            False, True, False,
        ]

    def test_entries_match_range_conservative(self):
        buckets = np.array([0, 1, 2, 3])
        # Range 8..12 straddles buckets 0 and 1.
        mask = entries_match(RangePredicate("a", 8, 12), buckets, 10)
        assert list(mask) == [True, True, False, False]

    def test_entries_match_in(self):
        buckets = np.array([0, 1, 2])
        mask = entries_match(InPredicate("a", (5, 25)), buckets, 10)
        assert list(mask) == [True, False, True]

    def test_candidate_widths_ladder(self):
        widths = candidate_widths(1000)
        assert widths[0] == 1
        assert all(b > a for a, b in zip(widths, widths[1:]))
        assert candidate_widths(2) == [1]


class TestCorrelationMap:
    def test_entry_count_is_distinct_keys(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        assert cm.n_entries == by_state.table.distinct_count(("city",))
        # city -> state is a perfect FD: one posting per entry.
        assert cm.total_postings == cm.n_entries

    def test_size_far_below_dense_btree(self, by_state, disk):
        cm = CorrelationMap(by_state, ("city",))
        dense = secondary_index_bytes(by_state.nrows, 4, disk.page_size)
        assert cm.size_bytes * 10 < dense

    def test_uncorrelated_key_has_fat_postings(self, disk):
        hf = HeapFile(make_people(n=40_000), ("salary",), disk)
        cm = CorrelationMap(hf, ("city",))
        assert cm.total_postings > 20 * cm.n_entries

    def test_lookup_eq_exact(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        q = Query("q", "people", [EqPredicate("city", 123)])
        codes = cm.lookup(q)
        # city=123 belongs to state 6 only (city = state*20 + k).
        ranks = by_state.prefix_codes_for_rows(
            1, by_state.table.column("city") == 123
        )
        assert np.array_equal(codes, ranks)

    def test_lookup_returns_none_without_predicate(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        q = Query("q", "people", [EqPredicate("salary", 55)])
        assert cm.lookup(q) is None

    def test_lookup_no_match_returns_empty(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        q = Query("q", "people", [EqPredicate("city", 99_999)])
        assert len(cm.lookup(q)) == 0

    def test_cm_scan_answers_match_full_scan(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        q = Query(
            "q", "people", [EqPredicate("city", 250)], [Aggregate("sum", ("salary",))]
        )
        scan = cm_scan(by_state, q, cm)
        full = full_scan(by_state, q)
        assert np.array_equal(scan.mask, full.mask)

    def test_cm_scan_cheaper_when_correlated(self, by_state):
        cm = CorrelationMap(by_state, ("city",))
        q = Query("q", "people", [EqPredicate("city", 250)])
        scan = cm_scan(by_state, q, cm)
        full = full_scan(by_state, q)
        assert scan.seconds < full.seconds

    def test_key_bucketing_shrinks_and_stays_exact(self, by_state):
        exact = CorrelationMap(by_state, ("city",), key_widths=(1,))
        bucketed = CorrelationMap(by_state, ("city",), key_widths=(16,))
        assert bucketed.n_entries < exact.n_entries
        assert bucketed.size_bytes < exact.size_bytes
        q = Query("q", "people", [EqPredicate("city", 333)])
        # Bucketing adds false positives (superset of groups), never misses.
        exact_codes = set(exact.lookup(q).tolist())
        bucket_codes_ = set(bucketed.lookup(q).tolist())
        assert exact_codes <= bucket_codes_

    def test_cluster_bucketing_expands_ranks(self, by_state):
        cm = CorrelationMap(by_state, ("city",), cluster_width=4)
        q = Query("q", "people", [EqPredicate("city", 123)])
        codes = cm.lookup(q)
        # Bucket expansion yields rank multiples-of-4 blocks.
        assert len(codes) >= 4 or len(codes) == by_state.prefix_distinct_count(1)

    def test_composite_key(self, by_state):
        cm = CorrelationMap(by_state, ("city", "salary"))
        q = Query(
            "q",
            "people",
            [EqPredicate("city", 123), RangePredicate("salary", 50, 60)],
        )
        codes = cm.lookup(q)
        assert codes is not None
        truth = by_state.prefix_codes_for_rows(1, q.mask(by_state.table))
        assert set(truth.tolist()) <= set(codes.tolist())

    def test_validation(self, by_state, disk):
        with pytest.raises(ValueError):
            CorrelationMap(by_state, ())
        with pytest.raises(ValueError):
            CorrelationMap(by_state, ("city",), key_widths=(1, 2))
        with pytest.raises(ValueError):
            CorrelationMap(by_state, ("city",), cluster_width=0)
        unclustered = HeapFile(make_people(1000), (), disk)
        with pytest.raises(ValueError):
            CorrelationMap(unclustered, ("city",))


@settings(max_examples=25, deadline=None)
@given(
    width=st.sampled_from([1, 2, 8, 32]),
    cluster_width=st.sampled_from([1, 2, 8]),
    city=st.integers(0, 999),
)
def test_cm_scan_never_misses_rows(width, cluster_width, city, ):
    """Property: whatever the bucketing, a CM-guided scan covers every
    matching row (false positives allowed, false negatives never)."""
    hf = HeapFile(make_people(n=5_000, seed=9), ("state",), DiskModel())
    cm = CorrelationMap(hf, ("city",), key_widths=(width,), cluster_width=cluster_width)
    q = Query("q", "people", [EqPredicate("city", city)])
    codes = cm.lookup(q)
    covered = np.zeros(hf.nrows, dtype=bool)
    for s, e in hf.prefix_value_ranges(cm.depth, codes):
        covered[s:e] = True
    assert (covered | ~q.mask(hf.table)).all()


class TestCMDesigner:
    def test_designer_picks_beneficial_cm(self, by_state):
        q = Query(
            "q", "people", [EqPredicate("city", 400)], [Aggregate("avg", ("salary",))]
        )
        designer = CMDesigner()
        cm, seconds = designer.best_cm_for_query(by_state, q)
        assert cm is not None
        assert seconds < full_scan(by_state, q).seconds

    def test_designer_skips_clustered_prefix(self, by_state):
        q = Query("q", "people", [EqPredicate("state", 3)])
        designer = CMDesigner()
        assert designer.candidate_keys(by_state, q) == []

    def test_designer_respects_budget(self, disk):
        hf = HeapFile(make_people(n=40_000), ("salary",), disk)
        q = Query("q", "people", [EqPredicate("city", 400)])
        tight = CMDesigner(budget_bytes=64)  # nothing fits
        cm, _ = tight.best_cm_for_query(hf, q)
        assert cm is None

    def test_design_dedupes_across_queries(self, by_state):
        q1 = Query("q1", "people", [EqPredicate("city", 100)])
        q2 = Query("q2", "people", [EqPredicate("city", 200)])
        cms = CMDesigner().design(by_state, [q1, q2])
        names = [cm.name for cm in cms]
        assert len(names) == len(set(names))
        assert len(cms) <= 2
