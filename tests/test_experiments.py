"""Smoke tests: every paper experiment runs end to end at tiny scale and
produces the paper's qualitative shape."""

import pytest

from repro.experiments.fig05_ilp_vs_greedy import run_fig05
from repro.experiments.fig06_ilp_scaling import run_fig06, synthetic_problem
from repro.experiments.fig07_feedback import run_fig07
from repro.experiments.fig09_apb import run_fig09
from repro.experiments.fig10_cost_model_error import run_fig10
from repro.experiments.fig11_ssb import run_fig11
from repro.experiments.fig14_maintenance import run_fig14
from repro.experiments.report import ExperimentResult, format_report
from repro.experiments.tables12_selectivity import run_tables12


class TestReport:
    def test_format_contains_rows_and_notes(self):
        r = ExperimentResult(
            name="x", title="T", columns=["a", "b"], paper_expectation="exp"
        )
        r.add_row(a=1, b=2.5)
        r.notes.append("hello")
        text = format_report(r)
        assert "X | T" in text
        assert "2.500" in text
        assert "note: hello" in text
        assert "paper: exp" in text

    def test_column_values(self):
        r = ExperimentResult(name="x", title="T", columns=["a"])
        r.add_row(a=1)
        r.add_row(a=2)
        assert r.column_values("a") == [1, 2]


class TestTables12:
    def test_shapes_and_propagation(self):
        t1, t2 = run_tables12(lineorder_rows=15_000)
        assert len(t1.rows) == 3
        # Table 1: yearmonth unpredicated in Q1.1.
        row11 = t1.rows[0]
        assert row11["yearmonth"] == 1.0
        # Table 2: propagation filled it in (~ year's selectivity).
        prop11 = t2.rows[0]
        assert prop11["yearmonth"] < 0.5
        # Q1.3 carries a (year, weeknum) composite.
        assert t2.rows[2]["year,weeknum"] is not None


class TestFig05:
    def test_greedy_never_better(self):
        r = run_fig05(
            lineorder_rows=15_000,
            fractions=(0.2, 0.6),
            t0=1,
            alphas=(0.0, 0.5),
        )
        for row in r.rows:
            assert row["greedy_expected"] >= row["ilp_expected"] - 1e-9


class TestFig06:
    def test_synthetic_problem_structure(self):
        p = synthetic_problem(50, n_queries=5, seed=1)
        assert len(p.candidates) == 50
        assert len(p.queries) == 5

    def test_scaling_rows(self):
        r = run_fig06(sizes=(100, 300), n_queries=5)
        assert [row["n_candidates"] for row in r.rows] == [100, 300]
        assert all(row["status"] == "optimal" for row in r.rows)


class TestFig07:
    def test_feedback_at_least_matches_ilp(self):
        r = run_fig07(lineorder_rows=10_000, n_queries=5, fractions=(0.3, 0.8))
        for row in r.rows:
            assert row["feedback_over_opt"] <= row["ilp_over_opt"] + 1e-6
            assert row["ilp_over_opt"] >= 1.0 - 1e-6


class TestFig09:
    def test_coradd_not_slower(self):
        r = run_fig09(
            actuals_rows=20_000, fractions=(0.5, 1.5), t0=1, use_feedback=False
        )
        assert len(r.rows) == 2
        # At the generous budget CORADD must win.
        assert r.rows[-1]["speedup"] >= 1.0


class TestFig10:
    def test_commercial_flat_and_real_spread(self):
        r = run_fig10(lineorder_rows=60_000, synopsis_rows=16_384)
        commercial = {round(row["commercial_model_s"], 9) for row in r.rows}
        assert len(commercial) == 1  # flat line
        reals = [row["real_s"] for row in r.rows]
        assert max(reals) / min(reals) > 5.0
        by_key = {row["clustering"]: row["real_s"] for row in r.rows}
        assert by_key["orderdate"] < by_key["custkey"]


class TestFig11:
    def test_three_designers_compared(self):
        r = run_fig11(
            lineorder_rows=15_000,
            fractions=(1.0,),
            t0=1,
            use_feedback=False,
            augment_factor=2,
        )
        row = r.rows[0]
        assert row["coradd_real"] <= row["commercial_real"]
        assert row["coradd_real"] > 0 and row["naive_real"] > 0


class TestFig14:
    def test_knee_shape(self):
        r = run_fig14(n_inserts=20_000, pool_pages=2_048)
        slowdowns = [row["slowdown_vs_first"] for row in r.rows]
        assert slowdowns[0] == pytest.approx(1.0)
        assert slowdowns[-1] > 5.0
        hit_rates = [row["hit_rate"] for row in r.rows]
        assert hit_rates[0] > hit_rates[-1]
