"""Session snapshots: round-trips are lossless, merges are commutative.

The contract: exporting a session's caches, shipping them through pickle,
and installing them into a fresh session must (a) leave every evaluation
result bit-identical and (b) actually *hit* — the imported entries do the
work, not fresh computation.  Merging two workers' snapshots must not
depend on merge order.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import (
    EvalSession,
    ShmArena,
    export_snapshot,
    merge_snapshots,
    shm_available,
    snapshot_nbytes,
    snapshot_shared_nbytes,
    use_session,
)
from repro.experiments.harness import evaluate_design
from repro.workloads.registry import make

CONFIG = DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False)


@pytest.fixture(scope="module")
def instance():
    return make("tpch", scale=0.05, seed=7)


@pytest.fixture(scope="module")
def designer(instance):
    return CoraddDesigner(
        instance.flat_tables,
        instance.workload,
        instance.primary_keys,
        instance.fk_attrs,
        config=CONFIG,
    )


def _design(instance, designer, frac):
    return designer.design(int(instance.total_base_bytes() * frac))


def _assert_identical(a, b):
    assert a.real_seconds == b.real_seconds
    for qname, x in a.plans.items():
        y = b.plans[qname]
        assert x.plan == y.plan
        assert x.object_name == y.object_name
        assert x.result.cost == y.result.cost
        assert np.array_equal(x.result.mask, y.result.mask)


class TestRoundTrip:
    def test_pickled_snapshot_reproduces_evaluation(self, instance, designer):
        design = _design(instance, designer, 0.75)
        source = EvalSession()
        with use_session(source):
            first = evaluate_design(design)
        snapshot = pickle.loads(pickle.dumps(export_snapshot(source)))

        fresh = EvalSession()
        snapshot.install(fresh)
        with use_session(fresh):
            second = evaluate_design(design)
        _assert_identical(first, second)
        # The imported entries did the work: orderings skipped the sorts,
        # CM choices skipped the probe phase, scan results skipped plan
        # execution, and no mask was recomputed.
        assert fresh.stats["ordering_hits"] > 0
        assert fresh.stats["ordering_misses"] == 0
        # The whole-object CM-design cache hits first; either way no CM
        # probe reruns.
        assert fresh.stats["cm_hits"] + fresh.stats["cm_choice_hits"] > 0
        assert fresh.stats["cm_choice_misses"] == 0
        assert fresh.stats["scan_hits"] > 0
        assert fresh.stats["mask_misses"] == 0

    def test_imported_masks_are_bit_identical_and_frozen(
        self, instance, designer
    ):
        design = _design(instance, designer, 0.75)
        source = EvalSession()
        with use_session(source):
            evaluate_design(design)
        snapshot = pickle.loads(pickle.dumps(export_snapshot(source)))
        fresh = EvalSession()
        snapshot.install(fresh)
        assert set(source._masks) == set(fresh._masks)
        for key, mask in source._masks.items():
            other = fresh._masks[key]
            assert np.array_equal(mask, other)
            with pytest.raises(ValueError):
                other[:] = False

    def test_detached_cms_answer_lookups(self, instance, designer):
        from repro.cm.correlation_map import CorrelationMap
        from repro.storage.disk import DiskModel
        from repro.storage.layout import HeapFile

        design = _design(instance, designer, 0.75)
        fact = next(iter(instance.flat_tables))
        hf = HeapFile(
            instance.flat_tables[fact],
            instance.primary_keys[fact],
            DiskModel(),
            name=fact,
        )
        key_attr = next(
            a
            for q in design.workload
            for a in q.predicate_attrs()
            if a not in hf.cluster_key
        )
        cm = CorrelationMap(hf, (key_attr,), cluster_width=4)
        clone = pickle.loads(pickle.dumps(cm.detached()))
        assert clone.heapfile is None
        assert clone.size_bytes == cm.size_bytes
        for query in design.workload:
            a = cm.lookup(query)
            b = clone.lookup(query)
            if a is None:
                assert b is None
            else:
                assert np.array_equal(a, b)

    def test_delta_export_is_disjoint_from_baseline(self, instance, designer):
        session = EvalSession()
        with use_session(session):
            evaluate_design(_design(instance, designer, 0.5))
        baseline = session.cache_keys()
        with use_session(session):
            evaluate_design(_design(instance, designer, 1.5))
        delta = export_snapshot(session, exclude=baseline)
        for name, keys in delta.key_sets().items():
            assert not keys & baseline[name]
        # Baseline + delta = everything.
        full = export_snapshot(session)
        for name, keys in full.key_sets().items():
            assert keys == baseline[name] | delta.key_sets()[name]


@pytest.mark.skipif(not shm_available(), reason="no POSIX shm mount")
class TestArenaSnapshots:
    def test_arena_export_reproduces_evaluation(self, instance, designer):
        """A snapshot whose big arrays crossed as ShmRef tokens installs
        into the same cache state — evaluation is bit-identical and every
        tier hits, exactly like the plain pickled round-trip above."""
        design = _design(instance, designer, 0.75)
        source = EvalSession()
        with use_session(source):
            first = evaluate_design(design)
        arena = ShmArena()
        try:
            snapshot = pickle.loads(
                pickle.dumps(export_snapshot(source, arena=arena))
            )
            fresh = EvalSession()
            snapshot.install(fresh)
            with use_session(fresh):
                second = evaluate_design(design)
            _assert_identical(first, second)
            assert fresh.stats["ordering_misses"] == 0
            assert fresh.stats["cm_choice_misses"] == 0
            assert fresh.stats["mask_misses"] == 0
        finally:
            arena.dispose()

    def test_arena_shrinks_the_pickled_payload(self, instance, designer):
        design = _design(instance, designer, 0.75)
        source = EvalSession()
        with use_session(source):
            evaluate_design(design)
        plain = export_snapshot(source)
        arena = ShmArena()
        try:
            shared = export_snapshot(source, arena=arena)
            # Bytes moved out of the payload are accounted, not lost.
            assert snapshot_shared_nbytes(shared) > 0
            assert snapshot_shared_nbytes(plain) == 0
            assert snapshot_nbytes(shared) < snapshot_nbytes(plain)
            assert len(pickle.dumps(shared)) < len(pickle.dumps(plain))
        finally:
            arena.dispose()

    def test_arena_install_is_idempotent(self, instance, designer):
        """Installing the same shm-backed snapshot twice (the sweep's sync
        message replays against a session that already has the baseline)
        must resolve refs at most once and never error."""
        design = _design(instance, designer, 0.5)
        source = EvalSession()
        with use_session(source):
            first = evaluate_design(design)
        arena = ShmArena()
        try:
            snapshot = pickle.loads(
                pickle.dumps(export_snapshot(source, arena=arena))
            )
            fresh = EvalSession()
            snapshot.install(fresh)
            snapshot.install(fresh)
            with use_session(fresh):
                _assert_identical(first, evaluate_design(design))
        finally:
            arena.dispose()


class TestMerge:
    def test_merge_is_order_independent(self, instance, designer):
        design_a = _design(instance, designer, 0.5)
        design_b = _design(instance, designer, 1.5)
        session_a = EvalSession()
        with use_session(session_a):
            result_a = evaluate_design(design_a)
        session_b = EvalSession()
        with use_session(session_b):
            result_b = evaluate_design(design_b)
        snap_a = export_snapshot(session_a)
        snap_b = export_snapshot(session_b)

        merged_ab = merge_snapshots(snap_a, snap_b)
        merged_ba = merge_snapshots(snap_b, snap_a)
        assert merged_ab.key_sets() == merged_ba.key_sets()

        for merged in (merged_ab, merged_ba):
            fresh = EvalSession()
            pickle.loads(pickle.dumps(merged)).install(fresh)
            with use_session(fresh):
                _assert_identical(result_a, evaluate_design(design_a))
                _assert_identical(result_b, evaluate_design(design_b))
            # Both workers' entries landed: no sort or CM probe reran.
            assert fresh.stats["ordering_misses"] == 0
            assert fresh.stats["cm_choice_misses"] == 0

    def test_merge_rejects_version_mismatch(self):
        snap = export_snapshot(EvalSession())
        snap.version = 99
        with pytest.raises(ValueError):
            merge_snapshots(snap)
