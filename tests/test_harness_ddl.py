"""Experiment harness details and DDL export."""

import pytest

from repro.design.baselines import CommercialDesigner
from repro.design.ddl import design_to_ddl
from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.mv import KIND_FACT_RECLUSTER, KIND_MV
from repro.experiments.harness import (
    budget_ladder,
    evaluate_design,
    evaluate_design_model_guided,
)


@pytest.fixture(scope="module")
def designer(ssb_small):
    return CoraddDesigner(
        ssb_small.flat_tables,
        ssb_small.workload,
        ssb_small.primary_keys,
        ssb_small.fk_attrs,
        config=DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False),
    )


@pytest.fixture(scope="module")
def design(designer, ssb_small):
    return designer.design(int(ssb_small.total_base_bytes() * 0.8))


class TestBudgetLadder:
    def test_fractions(self):
        assert budget_ladder(1000, (0.5, 1.0, 2.0)) == [500, 1000, 2000]

    def test_floor_at_one(self):
        assert budget_ladder(10, (0.0001,)) == [1]


class TestEvaluateDesign:
    def test_totals_weighted_by_frequency(self, design):
        evaluated = evaluate_design(design)
        manual = sum(
            q.frequency * evaluated.real_seconds[q.name] for q in design.workload
        )
        assert evaluated.real_total == pytest.approx(manual)
        assert set(evaluated.plans) == {q.name for q in design.workload}

    def test_reuses_prematerialized_db(self, design):
        db = design.materialize()
        a = evaluate_design(design, db=db)
        b = evaluate_design(design, db=db)
        assert a.real_total == pytest.approx(b.real_total)

    def test_model_seconds_mirror_design(self, design):
        evaluated = evaluate_design(design)
        assert evaluated.model_seconds == design.expected_seconds


class TestModelGuidedEvaluation:
    def test_model_guided_never_faster_than_oracle(self, ssb_small):
        """Plan choice by a blind model can only match or lose to the
        oracle executor on the same physical database."""
        commercial = CommercialDesigner(
            ssb_small.flat_tables, ssb_small.workload, ssb_small.primary_keys
        )
        d = commercial.design(int(ssb_small.total_base_bytes()))
        db = d.materialize()
        oracle = evaluate_design(d, db=db)
        guided = evaluate_design_model_guided(d, commercial.oblivious_models, db=db)
        assert guided.real_total >= oracle.real_total - 1e-9

    def test_guided_plans_are_executable(self, ssb_small):
        commercial = CommercialDesigner(
            ssb_small.flat_tables, ssb_small.workload, ssb_small.primary_keys
        )
        d = commercial.design(int(ssb_small.total_base_bytes() * 0.5))
        evaluated = evaluate_design_model_guided(d, commercial.oblivious_models)
        for name, plan in evaluated.plans.items():
            assert plan.seconds > 0, name


class TestDDLExport:
    def test_contains_mv_statements(self, design):
        ddl = design_to_ddl(design, include_cms=False)
        mvs = [c for c in design.chosen if c.kind == KIND_MV]
        for cand in mvs:
            assert f"CREATE MATERIALIZED VIEW {cand.cand_id}" in ddl
            assert ", ".join(cand.cluster_key) in ddl

    def test_recluster_statements(self, designer, ssb_small):
        # Sweep budgets until a re-clustering is chosen.
        for frac in (0.1, 0.2, 0.4):
            d = designer.design(int(ssb_small.total_base_bytes() * frac))
            if any(c.kind == KIND_FACT_RECLUSTER for c in d.chosen):
                ddl = design_to_ddl(d, include_cms=False)
                assert "CREATE CLUSTERED INDEX" in ddl
                assert "PK maintenance" in ddl
                return
        pytest.skip("no budget chose a fact re-clustering")

    def test_cm_comments_present(self, design):
        ddl = design_to_ddl(design, include_cms=True)
        assert "CORRELATION MAP" in ddl

    def test_header_reports_budget(self, design):
        ddl = design_to_ddl(design, include_cms=False)
        assert ddl.startswith("-- CORADD design @ budget")
        assert "expected workload time" in ddl

    def test_deterministic(self, design):
        assert design_to_ddl(design, include_cms=False) == design_to_ddl(
            design, include_cms=False
        )
