"""TPC-H generator: cardinalities, bridge FK integrity, correlations,
query-suite selectivities, augmentation."""

import numpy as np
import pytest

from repro.stats.collector import TableStatistics
from repro.workloads.tpch import (
    PARTSUPP_PER_PART,
    augment_workload,
    generate_tpch,
    tpch_cardinalities,
    tpch_queries,
)


@pytest.fixture(scope="module")
def tpch():
    return generate_tpch(scale=0.5, seed=9)


class TestCardinalities:
    @pytest.mark.parametrize("scale", [0.25, 0.5, 1.0])
    def test_tables_match_spec_ratios(self, scale):
        inst = generate_tpch(scale=scale, seed=1)
        card = tpch_cardinalities(scale)
        for name, want in card.items():
            assert inst.tables[name].nrows == want, name

    def test_fixed_dimension_sizes(self):
        card = tpch_cardinalities(1.0)
        assert card["region"] == 5
        assert card["nation"] == 25
        assert card["partsupp"] == PARTSUPP_PER_PART * card["part"]
        # The SF-1/100 ratios: customer : orders = 1 : 10, part 2k, supp 100.
        assert card["orders"] == 10 * card["customer"]

    def test_lineitem_averages_four_lines_per_order(self, tpch):
        norders = tpch.tables["orders"].nrows
        nlines = tpch.tables["lineitem"].nrows
        assert 3.5 * norders <= nlines <= 4.5 * norders

    def test_floors_at_tiny_scale(self):
        inst = generate_tpch(scale=0.001, seed=1)
        # The supplier floor is 25 so every nation keeps at least one.
        assert inst.tables["supplier"].nrows >= 25
        assert inst.tables["orders"].nrows >= 50

    @pytest.mark.parametrize("scale", [0.05, 0.25])
    def test_every_nation_has_suppliers_and_customers(self, scale):
        inst = generate_tpch(scale=scale, seed=1)
        for t, col in (("supplier", "s_nationkey"), ("customer", "c_nationkey")):
            present = set(inst.tables[t].column(col).tolist())
            assert present == set(range(25)), (scale, t)

    def test_orders_rows_override(self):
        inst = generate_tpch(scale=1.0, seed=1, orders_rows=500)
        assert inst.tables["orders"].nrows == 500
        # Dimensions still follow scale.
        assert inst.tables["customer"].nrows == tpch_cardinalities(1.0)["customer"]


class TestForeignKeyIntegrity:
    def test_lineitem_reaches_orders(self, tpch):
        l_orderkey = tpch.tables["lineitem"].column("l_orderkey")
        o_orderkey = tpch.tables["orders"].column("o_orderkey")
        assert np.isin(l_orderkey, o_orderkey).all()

    def test_orders_bridge_reaches_customer(self, tpch):
        o_custkey = tpch.tables["orders"].column("o_custkey")
        c_custkey = tpch.tables["customer"].column("c_custkey")
        assert np.isin(o_custkey, c_custkey).all()

    def test_one_third_of_customers_never_order(self, tpch):
        o_custkey = tpch.tables["orders"].column("o_custkey")
        assert (o_custkey % 3 != 0).all()

    def test_lineitem_supplier_pairs_exist_in_partsupp(self, tpch):
        li = tpch.tables["lineitem"]
        ps = tpch.tables["partsupp"]
        nsupp = tpch.tables["supplier"].nrows + 1
        pairs = li.column("l_partkey") * nsupp + li.column("l_suppkey")
        ps_pairs = ps.column("ps_partkey") * nsupp + ps.column("ps_suppkey")
        assert np.isin(pairs, ps_pairs).all()

    def test_partsupp_is_four_distinct_suppliers_per_part(self, tpch):
        ps = tpch.tables["partsupp"]
        pairs = set(zip(ps.column("ps_partkey"), ps.column("ps_suppkey")))
        assert len(pairs) == ps.nrows

    def test_nation_region_complete(self, tpch):
        n = tpch.tables["nation"]
        assert np.isin(
            n.column("n_regionkey"), tpch.tables["region"].column("r_regionkey")
        ).all()
        for t, col in (("customer", "c_nationkey"), ("supplier", "s_nationkey")):
            assert np.isin(
                tpch.tables[t].column(col), n.column("n_nationkey")
            ).all()


class TestBridgeFlattening:
    def test_flat_matches_star_schema_walk(self, tpch):
        flat = tpch.flat_tables["lineitem"]
        assert (
            tpch.star.flattened_schema("lineitem").column_names
            == flat.column_names
        )

    def test_customer_attrs_arrive_via_bridge(self, tpch):
        """Every flat row's customer-side values must equal the values of
        the customer its *order* points at — the two-hop join is faithful."""
        flat = tpch.flat_tables["lineitem"]
        cust = tpch.tables["customer"]
        seg_by_key = np.zeros(cust.nrows + 1, dtype=np.int64)
        seg_by_key[cust.column("c_custkey")] = cust.column("c_mktsegment")
        assert (
            flat.column("c_mktsegment") == seg_by_key[flat.column("o_custkey")]
        ).all()

    def test_flat_covers_every_query_attr(self, tpch):
        flat = tpch.flat_tables["lineitem"]
        for q in tpch.workload:
            for attr in q.attributes():
                assert flat.has_column(attr), (q.name, attr)

    def test_dual_duty_orderkey(self, tpch):
        """l_orderkey determines o_orderdate (orders load in date order) —
        the correlation that makes PK clustering ~ time clustering."""
        stats = TableStatistics(tpch.flat_tables["lineitem"])
        assert stats.strength(("l_orderkey",), ("o_orderdate",)) == pytest.approx(1.0)
        flat = tpch.flat_tables["lineitem"]
        order = np.argsort(flat.column("l_orderkey"), kind="stable")
        assert (np.diff(flat.column("o_orderdate")[order]) >= 0).all()

    def test_hierarchy_strengths(self, tpch):
        stats = TableStatistics(tpch.flat_tables["lineitem"])
        for det, dep in (
            ("o_orderdate", "o_yearmonth"),
            ("o_yearmonth", "o_year"),
            ("c_nation", "c_region"),
            ("s_nation", "s_region"),
            ("p_type", "p_brand"),
            ("p_brand", "p_mfgr"),
            ("l_returnflag", "l_linestatus"),
        ):
            assert stats.strength((det,), (dep,)) == pytest.approx(1.0), det

    def test_shipdate_trails_orderdate(self, tpch):
        flat = tpch.flat_tables["lineitem"]
        od = flat.column("o_orderdate")
        sd = flat.column("l_shipdate")
        assert (sd > od).all()
        # Strong but imperfect correlation: within ~4 months of datekeys.
        assert np.median(sd - od) < 500


class TestQuerySuite:
    def test_twelve_queries_on_lineitem(self):
        w = tpch_queries()
        assert len(w) == 12
        assert {q.fact_table for q in w} == {"lineitem"}

    def test_shapes_cover_range_in_eq_groupby(self):
        from repro.relational.query import (
            EqPredicate,
            InPredicate,
            RangePredicate,
        )

        w = tpch_queries()
        kinds = {type(p) for q in w for p in q.predicates}
        assert kinds == {EqPredicate, InPredicate, RangePredicate}
        assert any(q.group_by for q in w)
        assert any(not q.group_by for q in w)

    def test_selectivities_in_expected_bands(self, tpch):
        """Design constants imply these bands; generation noise stays well
        inside them at 30k rows."""
        flat = tpch.flat_tables["lineitem"]
        sel = {q.name: q.selectivity(flat) for q in tpch.workload}
        assert sel["TQ1"] > 0.9  # pricing summary scans nearly everything
        assert sel["TQ5"] == pytest.approx(1 / 5 * 1 / 7, rel=0.35)
        assert sel["TQ6"] == pytest.approx(1 / 7 * 3 / 11 * 23 / 50, rel=0.35)
        assert sel["TQ4"] == pytest.approx(3 / 84, rel=0.35)
        # Every query matches something even at half scale.
        assert all(s > 0 for s in sel.values())
        # ... and nothing but TQ1 comes close to a full scan.
        assert max(s for n, s in sel.items() if n != "TQ1") < 0.1

    def test_predicate_selectivities_match_encodings(self, tpch):
        flat = tpch.flat_tables["lineitem"]
        q6 = tpch.workload.query("TQ6")
        by_attr = {p.attr: p.selectivity(flat) for p in q6.predicates}
        assert by_attr["l_shipyear"] == pytest.approx(1 / 7, rel=0.2)
        assert by_attr["l_discount"] == pytest.approx(3 / 11, rel=0.2)
        assert by_attr["l_quantity"] == pytest.approx(23 / 50, rel=0.2)


class TestAugmentation:
    def test_factor_and_names(self, tpch):
        aug = augment_workload(tpch.workload, factor=4)
        assert len(aug) == 48
        assert aug.query("TQ5v3") is not None

    def test_variants_stay_in_domain(self, tpch):
        flat = tpch.flat_tables["lineitem"]
        aug = augment_workload(tpch.workload, factor=4)
        nonzero = sum(1 for q in aug if q.mask(flat).sum() > 0)
        assert nonzero >= 0.8 * len(aug)

    def test_variants_differ_from_originals(self, tpch):
        aug = augment_workload(tpch.workload, factor=2)
        base = tpch.workload.query("TQ5")
        variant = aug.query("TQ5v1")
        assert str(variant.predicates[0]) != str(base.predicates[0])

    def test_yearmonth_ranges_stay_on_the_calendar(self, tpch):
        """Shifted YYYYMM windows must never contain nonexistent months
        (199313...) or leave the 1992-1998 calendar — that would make the
        variant trivially empty and free for the designer.  (A variant may
        still be empty for *semantic* reasons — e.g. open-line returnflags
        against old date windows — which the 80%-nonzero test tolerates.)"""
        from repro.relational.query import RangePredicate

        aug = augment_workload(tpch.workload, factor=4)
        for q in aug:
            for p in q.predicates:
                if not isinstance(p, RangePredicate):
                    continue
                if p.attr not in ("o_yearmonth", "l_shipyearmonth"):
                    continue
                for bound in (p.lo, p.hi):
                    month = int(bound) % 100
                    year = int(bound) // 100
                    assert 1 <= month <= 12, (q.name, str(p))
                    assert 1992 <= year <= 1998, (q.name, str(p))


class TestSkew:
    def test_zero_skew_is_uniform(self):
        inst = generate_tpch(scale=0.25, seed=3, skew=0.0)
        counts = np.bincount(inst.tables["lineitem"].column("l_partkey"))[1:]
        assert counts.max() < 12 * counts.mean()

    def test_skew_concentrates_part_popularity(self):
        uniform = generate_tpch(scale=0.25, seed=3, skew=0.0)
        skewed = generate_tpch(scale=0.25, seed=3, skew=1.2)

        def top_share(inst):
            counts = np.bincount(inst.tables["lineitem"].column("l_partkey"))
            counts = np.sort(counts)[::-1]
            return counts[:10].sum() / counts.sum()

        assert top_share(skewed) > 3 * top_share(uniform)

    def test_skew_preserves_fk_integrity(self):
        inst = generate_tpch(scale=0.25, seed=3, skew=1.5)
        li = inst.tables["lineitem"]
        nsupp = inst.tables["supplier"].nrows + 1
        pairs = li.column("l_partkey") * nsupp + li.column("l_suppkey")
        ps = inst.tables["partsupp"]
        ps_pairs = ps.column("ps_partkey") * nsupp + ps.column("ps_suppkey")
        assert np.isin(pairs, ps_pairs).all()
