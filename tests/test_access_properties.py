"""Property tests across the physical layer: every plan, same answer;
costs ordered by physics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cm.correlation_map import CorrelationMap
from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
)
from repro.storage.access import (
    clustered_scan,
    cm_scan,
    full_scan,
    secondary_btree_scan,
)
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from tests.test_table import make_table

DISK = DiskModel()


@st.composite
def table_and_query(draw):
    """A random 3-column table plus a random conjunctive query over it."""
    n = draw(st.integers(20, 400))
    rng = np.random.default_rng(draw(st.integers(0, 10_000)))
    a = rng.integers(0, 10, n)
    b = a * 5 + rng.integers(0, 5, n)  # b determines a
    m = rng.integers(0, 100, n)
    table = make_table(a=a, b=b, m=m)
    preds = []
    kind = draw(st.sampled_from(["eq", "range", "in"]))
    if kind == "eq":
        preds.append(EqPredicate("b", draw(st.integers(0, 54))))
    elif kind == "range":
        lo = draw(st.integers(0, 50))
        preds.append(RangePredicate("b", lo, lo + draw(st.integers(0, 10))))
    else:
        vals = draw(st.sets(st.integers(0, 54), min_size=1, max_size=4))
        preds.append(InPredicate("b", tuple(vals)))
    if draw(st.booleans()):
        preds.append(RangePredicate("m", 0, draw(st.integers(10, 99))))
    query = Query("q", "t", preds, [Aggregate("sum", ("m",))])
    return table, query


@settings(max_examples=60, deadline=None)
@given(tq=table_and_query(), cluster=st.sampled_from([("a",), ("a", "b"), ("m",)]))
def test_every_plan_same_result(tq, cluster):
    """Full scan, clustered scan, secondary scan, CM scan: identical masks
    — plans differ in cost, never in answers."""
    table, query = tq
    hf = HeapFile(table, cluster, DISK)
    reference = full_scan(hf, query)
    candidates = [
        clustered_scan(hf, query),
        secondary_btree_scan(hf, query, ("b",)),
        cm_scan(hf, query, CorrelationMap(hf, ("b",), cluster_width=2)),
    ]
    for result in candidates:
        if result is None:
            continue
        assert np.array_equal(result.mask, reference.mask), result.plan


@settings(max_examples=60, deadline=None)
@given(tq=table_and_query())
def test_cost_sanity(tq):
    """Physical invariants: non-negative costs, full scan touches every
    page, nothing reads more pages than a couple of full scans."""
    table, query = tq
    hf = HeapFile(table, ("a",), DISK)
    fs = full_scan(hf, query)
    assert fs.cost.pages_read == hf.npages
    for result in (
        clustered_scan(hf, query),
        secondary_btree_scan(hf, query, ("b",)),
    ):
        if result is None:
            continue
        assert result.seconds >= 0
        assert result.cost.fragments >= 0
        assert result.cost.pages_read <= 2 * hf.npages + 2


@settings(max_examples=40, deadline=None)
@given(
    n=st.integers(100, 2_000),
    key_attr=st.sampled_from(["a", "b"]),
    seed=st.integers(0, 100),
)
def test_cm_size_bounded_by_distinct_pairs(n, key_attr, seed):
    """A CM never stores more postings than distinct (key, cluster) pairs."""
    rng = np.random.default_rng(seed)
    a = rng.integers(0, 20, n)
    table = make_table(a=a, b=a * 3 + rng.integers(0, 3, n), m=rng.integers(0, 50, n))
    hf = HeapFile(table, ("m",), DISK)
    cm = CorrelationMap(hf, (key_attr,))
    pairs = table.distinct_count((key_attr, "m"))
    assert cm.total_postings <= pairs
    assert cm.n_entries == table.distinct_count((key_attr,))


class TestPublicAPI:
    def test_top_level_exports_resolve(self):
        import repro

        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_version(self):
        import repro

        assert repro.__version__ == "1.0.0"

    def test_subpackage_exports_resolve(self):
        import repro.cm as cm
        import repro.costmodel as costmodel
        import repro.design as design
        import repro.ilp as ilp
        import repro.relational as relational
        import repro.stats as stats
        import repro.storage as storage
        import repro.workloads as workloads

        for module in (relational, storage, stats, cm, costmodel, ilp, design, workloads):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, (module.__name__, name)

    def test_every_module_documented(self):
        """Documentation guard: every repro module ships a docstring."""
        import importlib
        import pkgutil

        import repro

        for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
            module = importlib.import_module(info.name)
            assert module.__doc__, f"{info.name} lacks a module docstring"
