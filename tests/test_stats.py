"""Statistics substrate: histograms, sampling, distinct estimation, FDs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.query import EqPredicate, InPredicate, RangePredicate
from repro.stats.correlation import CorrelationModel, strength
from repro.stats.distinct import (
    GibbonsDistinctSampler,
    adaptive_estimator,
    chao_estimator,
    exact_distinct,
    gee_estimator,
    gibbons_distinct,
    scale_distinct,
)
from repro.stats.histogram import EquiDepthHistogram, EquiWidthHistogram
from repro.stats.sampling import bernoulli_sample_indices, reservoir_sample_indices
from tests.conftest import make_people


class TestHistograms:
    def test_eq_estimate_uniform(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, 50_000)
        hist = EquiWidthHistogram(values, nbuckets=100)
        est = hist.estimate(EqPredicate("a", 42))
        assert est == pytest.approx(0.01, rel=0.3)

    def test_range_estimate_uniform(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 100, 50_000)
        hist = EquiWidthHistogram(values, nbuckets=50)
        est = hist.estimate(RangePredicate("a", 10, 29))
        assert est == pytest.approx(0.2, rel=0.2)

    def test_in_estimate_sums(self):
        values = np.repeat(np.arange(10), 100)
        hist = EquiWidthHistogram(values, nbuckets=10)
        est = hist.estimate(InPredicate("a", (1, 2)))
        assert est == pytest.approx(0.2, rel=0.4)

    def test_out_of_range_is_zero(self):
        hist = EquiWidthHistogram(np.arange(100), nbuckets=10)
        assert hist.estimate(EqPredicate("a", 1000)) == 0.0
        assert hist.estimate(RangePredicate("a", -50, -10)) == 0.0

    def test_empty_column(self):
        hist = EquiWidthHistogram(np.array([]), nbuckets=4)
        assert hist.estimate(EqPredicate("a", 1)) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            EquiWidthHistogram(np.arange(5), nbuckets=0)
        with pytest.raises(ValueError):
            EquiDepthHistogram(np.arange(5), nbuckets=0)
        with pytest.raises(TypeError):
            EquiWidthHistogram(np.arange(5)).estimate("not a predicate")  # type: ignore[arg-type]

    def test_equidepth_range(self):
        rng = np.random.default_rng(1)
        values = rng.exponential(10, 40_000)  # skewed on purpose
        hist = EquiDepthHistogram(values, nbuckets=64)
        lo, hi = np.quantile(values, [0.25, 0.75])
        assert hist.range_fraction(lo, hi) == pytest.approx(0.5, abs=0.05)
        assert hist.range_fraction(-10, -1) == 0.0


class TestSampling:
    def test_reservoir_size_and_range(self):
        idx = reservoir_sample_indices(1000, 50, seed=1)
        assert len(idx) == 50
        assert len(np.unique(idx)) == 50
        assert idx.min() >= 0 and idx.max() < 1000
        assert (np.diff(idx) > 0).all()

    def test_reservoir_small_population(self):
        assert len(reservoir_sample_indices(5, 50)) == 5
        assert len(reservoir_sample_indices(0, 50)) == 0

    def test_reservoir_deterministic(self):
        a = reservoir_sample_indices(1000, 10, seed=9)
        b = reservoir_sample_indices(1000, 10, seed=9)
        assert np.array_equal(a, b)

    def test_reservoir_roughly_uniform(self):
        hits = np.zeros(100)
        for seed in range(200):
            hits[reservoir_sample_indices(100, 10, seed=seed)] += 1
        # Each index expected 20 hits; allow generous slack.
        assert hits.min() > 5
        assert hits.max() < 45

    def test_bernoulli_rate(self):
        idx = bernoulli_sample_indices(100_000, 0.1, seed=2)
        assert len(idx) == pytest.approx(10_000, rel=0.1)

    def test_bernoulli_validation(self):
        with pytest.raises(ValueError):
            bernoulli_sample_indices(10, 1.5)
        with pytest.raises(ValueError):
            reservoir_sample_indices(-1, 5)


class TestDistinctEstimators:
    def test_exact(self):
        assert exact_distinct(np.array([1, 1, 2, 3])) == 3
        assert exact_distinct(np.array([])) == 0

    def test_gee_full_sample_is_exact_when_no_singletons(self):
        values = np.repeat(np.arange(50), 4)
        assert gee_estimator(values, len(values)) == 50

    def test_gee_scales_singletons(self):
        sample = np.arange(100)  # all singletons
        est = gee_estimator(sample, 10_000)
        assert est == pytest.approx(np.sqrt(100) * 100)

    def test_chao_known_case(self):
        # 4 singletons, 2 doubletons, 1 tripleton: d=7, f1=4, f2=2.
        sample = np.array([1, 2, 3, 4, 5, 5, 6, 6, 7, 7, 7])
        assert chao_estimator(sample) == pytest.approx(7 + 16 / 4)

    def test_estimators_reasonable_on_uniform(self):
        rng = np.random.default_rng(5)
        population = rng.integers(0, 1000, 100_000)
        true_d = exact_distinct(population)
        sample = rng.choice(population, 5_000, replace=False)
        for name in ("gee", "chao", "ae"):
            est = scale_distinct(sample, len(population), name)
            assert est == pytest.approx(true_d, rel=0.35), name

    def test_ae_clamped_to_feasible(self):
        sample = np.array([1, 2, 3])
        est = adaptive_estimator(sample, 10)
        assert 3 <= est <= 10

    def test_ae_no_singletons_returns_d(self):
        sample = np.repeat(np.arange(10), 3)
        assert adaptive_estimator(sample, 1000) == 10

    def test_errors(self):
        with pytest.raises(ValueError):
            gee_estimator(np.arange(10), 5)
        with pytest.raises(ValueError):
            scale_distinct(np.arange(3), 100, "nope")

    def test_gibbons_accuracy(self):
        rng = np.random.default_rng(7)
        values = rng.integers(0, 5_000, 200_000)
        true_d = exact_distinct(values)
        est = gibbons_distinct(values, max_size=1024)
        assert est == pytest.approx(true_d, rel=0.25)

    def test_gibbons_exact_when_small(self):
        values = np.arange(100)
        assert gibbons_distinct(values, max_size=1024) == 100

    def test_gibbons_incremental(self):
        sampler = GibbonsDistinctSampler(max_size=512)
        rng = np.random.default_rng(8)
        for _ in range(10):
            sampler.add_batch(rng.integers(0, 2_000, 10_000))
        assert sampler.estimate() == pytest.approx(2_000, rel=0.3)

    def test_gibbons_validation(self):
        with pytest.raises(ValueError):
            GibbonsDistinctSampler(0)


@settings(max_examples=40, deadline=None)
@given(st.lists(st.integers(0, 30), min_size=1, max_size=200))
def test_estimators_at_least_observed(sample):
    """Every estimator must report at least the observed distinct count."""
    arr = np.array(sample)
    d = exact_distinct(arr)
    assert gee_estimator(arr, len(arr) * 10) >= d - 1e-9
    assert chao_estimator(arr) >= d - 1e-9
    assert adaptive_estimator(arr, len(arr) * 10) >= d - 1e-9


class TestCorrelation:
    def test_perfect_fd(self, ):
        people = make_people()
        assert strength(people, ("city",), ("state",)) == pytest.approx(1.0)
        assert strength(people, ("state",), ("region",)) == pytest.approx(1.0)

    def test_weak_direction(self):
        people = make_people()
        s = strength(people, ("state",), ("city",))
        # Each state fans out to ~20 cities.
        assert s == pytest.approx(1 / 20, rel=0.2)

    def test_no_correlation(self):
        people = make_people()
        s = strength(people, ("salary",), ("city",))
        assert s < 0.05

    def test_composite_determinant(self):
        people = make_people()
        s = strength(people, ("state", "city"), ("region",))
        assert s == pytest.approx(1.0)

    def test_empty_determinant_rejected(self):
        with pytest.raises(ValueError):
            strength(make_people(), (), ("state",))

    def test_model_caching_and_strong_pairs(self):
        people = make_people()
        model = CorrelationModel(people, attrs=("city", "state", "region", "salary"))
        s1 = model.strength(("city",), ("state",))
        s2 = model.strength(("city",), ("state",))
        assert s1 == s2 == pytest.approx(1.0)
        pairs = model.strong_pairs(threshold=0.9)
        directed = {(a, b) for a, b, _ in pairs}
        assert ("city", "state") in directed
        assert ("city", "region") in directed
        assert ("salary", "city") not in directed

    def test_sampled_strength_close_to_exact(self):
        people = make_people(n=50_000)
        sample = people.sample(4_000, seed=0)
        s = strength(sample, ("city",), ("state",), n_total=people.nrows, estimator="ae")
        assert s == pytest.approx(1.0, abs=0.15)
