"""Fault injection, sweep supervision, and crash-safe migrations.

The robustness contract: under *any* deterministic fault schedule —
worker crashes, hangs, per-item exceptions, shared-memory corruption,
solver timeouts, mid-migration death — the system degrades instead of
deadlocking or corrupting, and every recovered result is bit-identical
to the fault-free serial run.  Covers:

* :class:`~repro.engine.faults.FaultPlan` semantics (matching, ``at`` /
  ``times`` windows, env grammar, seeded random schedules);
* the supervised steal pool: crash/hang/raise recovery, requeue,
  respawn, pool collapse to in-parent serial execution, pipe hygiene;
* typed :class:`~repro.engine.shm.ShmAttachError` on missing / truncated /
  digest-mismatched / fault-corrupted segments, and the orphan-segment
  backstop sweep;
* :class:`~repro.design.migration.MigrationJournal`: resume *and*
  rollback after death at **every** step boundary, refresh batches
  consumed exactly once across an interrupt;
* the ILP facade's ``deadline_s`` degraded answers (warm incumbent,
  LP-round repair).
"""

from __future__ import annotations

import dataclasses
import multiprocessing as mp
import os
from multiprocessing import resource_tracker, shared_memory

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.migration import (
    DesignDiff,
    MigrationJournal,
    execute_transition,
)
from repro.engine import (
    EvalSession,
    FaultPlan,
    FaultSpec,
    InjectedFault,
    ParallelSweep,
    ShmArena,
    ShmAttachError,
    fork_available,
    get_faults,
    plan_from_env,
    shm_available,
    sweep_orphan_segments,
    use_faults,
    use_session,
)
from repro.engine.shm import attach_ref
from repro.engine.parallel import _StealPool
from repro.ilp.model import MILPModel
from repro.ilp.solver import solve
from repro.obs.metrics import MetricsRegistry, use_metrics
from repro.relational.query import Workload
from repro.storage.executor import PhysicalDatabase
from repro.storage.update import RefreshExecutor
from repro.workloads.registry import make

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork worker processes"
)
needs_shm = pytest.mark.skipif(
    not shm_available(), reason="no usable shared-memory mount"
)


def _square(x: int) -> int:
    return x * x


ITEMS = list(range(10))
EXPECTED = [_square(x) for x in ITEMS]


# ------------------------------------------------------------------ fault plans


class TestFaultPlan:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultSpec("sweep.task", "explode")

    def test_site_and_key_matching(self):
        plan = FaultPlan(FaultSpec("sweep.task", "raise", key=3))
        assert plan.fire("sweep.probe", key=3) is None
        assert plan.fire("sweep.task", key=2) is None
        with pytest.raises(InjectedFault) as err:
            plan.fire("sweep.task", key=3)
        assert err.value.site == "sweep.task" and err.value.key == 3

    def test_keyless_spec_matches_every_key(self):
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        assert plan.fire("ilp.solve").kind == "timeout"
        assert plan.fire("ilp.solve", key="anything").kind == "timeout"

    def test_at_window(self):
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout", at=1))
        assert plan.fire("ilp.solve") is None  # hit 0: skipped
        assert plan.fire("ilp.solve") is not None  # hit 1: fires
        assert plan.fire("ilp.solve") is None  # hit 2: past the window

    def test_times_cap(self):
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout", times=2))
        assert plan.fire("ilp.solve") is not None
        assert plan.fire("ilp.solve") is not None
        assert plan.fire("ilp.solve") is None

    def test_advisory_kinds_return_spec(self):
        plan = FaultPlan(FaultSpec("shm.attach", "corrupt", key="seg-1"))
        spec = plan.fire("shm.attach", key="seg-1")
        assert spec is not None and spec.kind == "corrupt"

    def test_fire_counts_metric(self):
        registry = MetricsRegistry()
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        with use_metrics(registry):
            plan.fire("ilp.solve")
        assert registry.counters["faults.injected.timeout"] == 1

    def test_ambient_scope(self):
        assert get_faults() is None
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        with use_faults(plan):
            assert get_faults() is plan
        assert get_faults() is None

    def test_env_grammar(self):
        plan = plan_from_env(
            "sweep.task:crash@2; ilp.solve:timeout; shm.attach:corrupt@seg-a"
        )
        assert [s.describe() for s in plan.specs] == [
            "sweep.task@2:crash", "ilp.solve:timeout", "shm.attach@seg-a:corrupt",
        ]
        assert plan.specs[0].key == 2  # numeric keys parse as ints
        assert plan.specs[2].key == "seg-a"  # segment keys stay strings
        assert plan_from_env("") is None
        with pytest.raises(ValueError, match="expected site:kind"):
            plan_from_env("sweep.task")

    def test_random_schedules_are_seed_deterministic(self):
        a = FaultPlan.random(7, n_items=32, rate=0.4)
        b = FaultPlan.random(7, n_items=32, rate=0.4)
        assert a.describe() == b.describe()
        others = {FaultPlan.random(s, n_items=32, rate=0.4).describe()
                  for s in range(8)}
        assert len(others) > 1  # seeds actually vary the schedule


# ---------------------------------------------------------- sweep supervision


@needs_fork
class TestSupervisedSweep:
    def _run(self, plan, **sweep_kwargs):
        sweep = ParallelSweep(workers=sweep_kwargs.pop("workers", 2),
                              **sweep_kwargs)
        with use_faults(plan):
            results = sweep.map(_square, ITEMS)
        return results, sweep.last_stats["supervision"]

    def test_persistent_crash_degrades_to_parent(self):
        registry = MetricsRegistry()
        with use_metrics(registry):
            results, sup = self._run(
                FaultPlan(FaultSpec("sweep.task", "crash", key=3))
            )
        assert results == EXPECTED
        # Every retry lands on a fresh process whose plan counters are
        # zero, so the crash fires on every host until the supervisor
        # gives the item to the parent (where sites do not fire).
        assert sup["deaths"] >= 1 and sup["parent_runs"] >= 1
        assert registry.counters["sweep.faults.worker_deaths"] >= 1
        assert registry.counters["sweep.faults.parent_runs"] >= 1

    def test_item_exception_requeues_and_completes(self):
        results, sup = self._run(
            FaultPlan(FaultSpec("sweep.task", "raise", key=5, times=1))
        )
        assert results == EXPECTED
        assert sup["item_errors"] >= 1

    def test_hang_is_killed_and_requeued(self):
        results, sup = self._run(
            FaultPlan(FaultSpec("sweep.task", "hang", key=2, delay_s=30.0)),
            item_timeout_s=0.5,
        )
        assert results == EXPECTED
        assert sup["hung_kills"] >= 1

    def test_total_collapse_finishes_serially_in_parent(self):
        results, sup = self._run(
            FaultPlan(FaultSpec("sweep.task", "crash")),  # every task, every host
            max_respawns=0,
            max_item_retries=0,
        )
        assert results == EXPECTED
        assert sup["pool_collapsed"] and sup["parent_runs"] == len(ITEMS)

    def test_unsupervised_baseline_still_exact(self):
        results, sup = self._run(None, supervise=False)
        assert results == EXPECTED
        assert not sup["supervised"]
        assert sup["deaths"] == 0

    @pytest.mark.parametrize("seed", range(6))
    def test_randomized_schedules_stay_exact(self, seed):
        plan = FaultPlan.random(
            seed, n_items=len(ITEMS), kinds=("crash", "raise"), rate=0.3
        )
        results, _ = self._run(plan, workers=3)
        assert results == EXPECTED

    def test_randomized_hangs_stay_exact(self):
        plan = FaultPlan.random(
            11, n_items=len(ITEMS), kinds=("hang",), rate=0.2, delay_s=30.0
        )
        assert plan.specs  # seed 11 draws at least one hang
        results, sup = self._run(plan, item_timeout_s=0.5)
        assert results == EXPECTED
        assert sup["hung_kills"] >= 1


@needs_fork
class TestPipeHygiene:
    def _payload(self):
        return (_square, ITEMS, None, [], None, False, None)

    def test_shutdown_closes_every_pipe_end(self):
        pool = _StealPool(mp.get_context("fork"), 2, self._payload())
        handles = list(pool.workers.values())
        results: dict[int, int] = {}
        pool.run_round(
            "task", range(len(ITEMS)), lambda k, i, r: results.__setitem__(i, r)
        )
        pool.shutdown()
        assert [results[i] for i in range(len(ITEMS))] == EXPECTED
        assert not pool.workers
        for h in handles:
            assert h.inbox.closed and h.outbox.closed
            assert not h.proc.is_alive()

    def test_terminate_closes_every_pipe_end(self):
        pool = _StealPool(mp.get_context("fork"), 2, self._payload())
        handles = list(pool.workers.values())
        pool.terminate()
        assert not pool.workers
        for h in handles:
            assert h.inbox.closed and h.outbox.closed
            assert not h.proc.is_alive()


# ----------------------------------------------- design sweeps under faults


@pytest.fixture(scope="module")
def tpch_designs():
    inst = make("tpch", scale=0.05, seed=3)
    designer = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False),
    )
    base = inst.total_base_bytes()
    return [designer.design(int(base * f)) for f in (0.5, 1.0, 1.5)]


def _assert_identical(a, b):
    assert a.real_seconds == b.real_seconds
    for qname, x in a.plans.items():
        y = b.plans[qname]
        assert x.plan == y.plan and x.object_name == y.object_name
        assert x.result.cost == y.result.cost
        assert np.array_equal(x.result.mask, y.result.mask)


@needs_fork
class TestFaultySweepIdentity:
    def test_crashing_ladder_sweep_is_bit_identical(self, tpch_designs):
        from repro.experiments.harness import evaluate_design

        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        sweep = ParallelSweep(workers=2)
        with use_faults(FaultPlan(FaultSpec("sweep.task", "crash", key=1))):
            parallel = sweep.map(
                evaluate_design, tpch_designs, session=EvalSession()
            )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        assert sweep.last_stats["supervision"]["deaths"] >= 1

    @needs_shm
    def test_poisoned_shm_falls_back_to_pickled_payloads(self, tpch_designs):
        from repro.experiments.harness import evaluate_design

        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        sweep = ParallelSweep(workers=2)
        # Every attach in every worker fails: the pool must poison shared
        # memory once and respawn onto by-value payloads, not collapse.
        with use_faults(FaultPlan(FaultSpec("shm.attach", "corrupt"))):
            parallel = sweep.map(
                evaluate_design, tpch_designs, session=EvalSession()
            )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        assert sweep.last_stats["supervision"]["shm_fallback"]


# ------------------------------------------------------------ shm hardening


@needs_shm
class TestShmAttachErrors:
    def _registered_ref(self):
        arena = ShmArena()
        ref = arena.register(np.arange(4096, dtype=np.int64))
        return arena, ref

    def test_missing_segment_is_typed(self):
        arena, ref = self._registered_ref()
        arena.dispose()
        with pytest.raises(ShmAttachError, match="segment unavailable"):
            attach_ref(ref)

    def test_digest_mismatch_is_typed(self):
        arena, ref = self._registered_ref()
        try:
            bad = dataclasses.replace(ref, digest="00" * 16)
            with pytest.raises(ShmAttachError, match="digest mismatch"):
                attach_ref(bad)
            assert attach_ref(ref).shape == ref.shape  # original still fine
        finally:
            arena.dispose()

    def test_truncated_segment_is_typed(self):
        arena, ref = self._registered_ref()
        try:
            bad = dataclasses.replace(ref, offset=ref.offset + (1 << 30))
            with pytest.raises(ShmAttachError, match="truncated"):
                attach_ref(bad)
        finally:
            arena.dispose()

    def test_injected_corruption_is_typed_and_counted(self):
        arena, ref = self._registered_ref()
        registry = MetricsRegistry()
        try:
            plan = FaultPlan(FaultSpec("shm.attach", "corrupt", key=ref.segment))
            with use_faults(plan), use_metrics(registry):
                with pytest.raises(ShmAttachError, match="injected"):
                    attach_ref(ref)
        finally:
            arena.dispose()
        assert registry.counters["engine.shm.attach_errors"] == 1

    def test_orphan_sweep_reclaims_only_dead_owners(self):
        child = mp.get_context("fork").Process(target=lambda: None)
        child.start()
        child.join()
        dead = shared_memory.SharedMemory(
            name=f"repro-shm-{child.pid}-0-deadbeef", create=True, size=64
        )
        dead.close()
        resource_tracker.unregister(dead._name, "shared_memory")
        live = shared_memory.SharedMemory(
            name=f"repro-shm-{os.getpid()}-0-cafecafe", create=True, size=64
        )
        try:
            swept = sweep_orphan_segments()
            assert dead.name in swept
            assert live.name not in swept
            assert os.path.exists(f"/dev/shm/{live.name}")
        finally:
            live.close()
            live.unlink()


# ------------------------------------------------------- crash-safe migration


@pytest.fixture(scope="module")
def migration_world():
    """Two ssb-refresh designs, their materialized db, and a warm session."""
    inst = make(
        "ssb-refresh", lineorder_rows=6_000, seed=3, rounds=2,
        insert_fraction=0.04, delete_fraction=0.02,
    )
    budget = int(inst.total_base_bytes() * 0.6)
    session = EvalSession()
    with use_session(session):
        queries = list(inst.workload)
        designer = CoraddDesigner(
            inst.flat_tables, Workload("p0", queries[:8]), inst.primary_keys,
            inst.fk_attrs,
            config=DesignerConfig(t0=1, alphas=(0.0, 0.25), use_feedback=False),
        )
        d0 = designer.design(budget)
        db0 = d0.materialize(session)
        d1 = designer.update(Workload("p1", queries[3:12]), budget)
    return inst, d0, d1, db0, session


def _copy_db(db0):
    db = PhysicalDatabase()
    db.objects = dict(db0.objects)
    return db


def _assert_same_db(a, b, workload):
    assert list(a.objects) == list(b.objects)
    for q in workload:
        x, y = a.run(q), b.run(q)
        assert x.object_name == y.object_name, q.name
        assert x.plan == y.plan, q.name
        assert x.result.cost == y.result.cost, q.name
        assert np.array_equal(x.result.mask, y.result.mask), q.name


class TestMigrationJournal:
    def _planned_steps(self, d0, d1, db0, session):
        journal = MigrationJournal()
        execute_transition(
            DesignDiff(d0, d1), _copy_db(db0), session=session, journal=journal
        )
        assert journal.state == "committed"
        return journal.planned

    def test_resume_at_every_step_boundary(self, migration_world):
        _, d0, d1, db0, session = migration_world
        with use_session(session):
            planned = self._planned_steps(d0, d1, db0, session)
            assert planned  # the two phases disagree on at least one object
            ref = DesignDiff(d0, d1).apply(_copy_db(db0), session=session)
            for boundary in range(len(planned) + 1):
                db = _copy_db(db0)
                journal = MigrationJournal()
                plan = FaultPlan(
                    FaultSpec("migration.step", "raise", key=boundary)
                )
                with use_faults(plan):
                    with pytest.raises(InjectedFault):
                        execute_transition(
                            DesignDiff(d0, d1), db,
                            session=session, journal=journal,
                        )
                assert journal.in_progress and journal.completed == boundary
                report = journal.resume(DesignDiff(d0, d1), db, session=session)
                assert journal.state == "committed"
                _assert_same_db(ref, report.final_db, d1.workload)

    def test_rollback_at_every_step_boundary(self, migration_world):
        _, d0, d1, db0, session = migration_world
        with use_session(session):
            planned = self._planned_steps(d0, d1, db0, session)
            for boundary in range(len(planned) + 1):
                db = _copy_db(db0)
                journal = MigrationJournal()
                plan = FaultPlan(
                    FaultSpec("migration.step", "raise", key=boundary)
                )
                with use_faults(plan):
                    with pytest.raises(InjectedFault):
                        execute_transition(
                            DesignDiff(d0, d1), db,
                            session=session, journal=journal,
                        )
                journal.rollback(db)
                assert journal.state == "aborted"
                _assert_same_db(_copy_db(db0), db, d0.workload)
                journal.rollback(db)  # idempotent
                _assert_same_db(_copy_db(db0), db, d0.workload)

    def test_interrupted_refreshes_are_consumed_exactly_once(
        self, migration_world
    ):
        inst, d0, d1, db0, session = migration_world
        with use_session(session):
            db = _copy_db(db0)
            executor = RefreshExecutor(db, pool_pages=2_048, session=session)
            batches = inst.refresh.batches()
            journal = MigrationJournal()
            kwargs = dict(
                session=session, refreshes=batches, refresh_executor=executor,
                journal=journal,
            )
            plan = FaultPlan(FaultSpec("migration.step", "raise", key=1))
            with use_faults(plan):
                with pytest.raises(InjectedFault):
                    execute_transition(DesignDiff(d0, d1), db, **kwargs)
            consumed_at_death = journal.refreshes_consumed
            report = execute_transition(DesignDiff(d0, d1), db, **kwargs)
            assert journal.state == "committed"
            assert journal.refreshes_consumed == len(batches)
            assert report.refresh_seconds >= 0.0
            # Every live row is answered from exactly the mutated base state:
            # a double-applied (or dropped) batch would break containment.
            final = report.final_db
            base = final.object("lineorder").heapfile
            assert consumed_at_death <= len(batches)
            for q in d1.workload:
                choice = final.run(q)
                obj = final.object(choice.object_name)
                got = set(
                    obj.heapfile.source_rowids[choice.result.mask].tolist()
                )
                mask = q.mask(base.table)
                if base.live is not None:
                    mask = mask & base.live
                want = set(base.source_rowids[mask].tolist())
                assert got == want, q.name

    def test_journal_misuse_is_rejected(self, migration_world):
        _, d0, d1, db0, session = migration_world
        journal = MigrationJournal()
        journal.begin([("drop", "x")], _copy_db(db0))
        with pytest.raises(RuntimeError, match="does not match"):
            journal.begin([("drop", "y")], _copy_db(db0))
        with pytest.raises(RuntimeError, match="out of order"):
            journal.mark_done(1)
        journal.commit()
        with pytest.raises(RuntimeError, match="cannot resume"):
            journal.resume(DesignDiff(d0, d1), _copy_db(db0), session=session)
        with pytest.raises(RuntimeError, match="cannot roll back"):
            journal.rollback(_copy_db(db0))
        with pytest.raises(RuntimeError, match="cannot reuse"):
            journal.begin([("drop", "x")], _copy_db(db0))


# ------------------------------------------------------------- ILP deadlines


class TestIlpDeadline:
    def _model(self):
        model = MILPModel("deadline-toy")
        model.add_var("x", lb=0.0, ub=1.0, integer=True, obj=1.0)
        model.add_var("y", lb=0.0, ub=1.0, integer=True, obj=2.0)
        model.add_constraint({"x": 1.0, "y": 1.0}, ">=", 1.0)
        return model

    def test_without_faults_deadline_is_inert(self):
        solution = solve(self._model(), backend="scipy", deadline_s=30.0)
        assert solution.status == "optimal"
        assert solution.objective == pytest.approx(1.0)

    def test_injected_timeout_degrades_to_warm_incumbent(self):
        registry = MetricsRegistry()
        warm = {"x": 0.0, "y": 1.0}  # feasible, deliberately suboptimal
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        with use_faults(plan), use_metrics(registry):
            solution = solve(
                self._model(), backend="scipy",
                warm_start=warm, deadline_s=5.0,
            )
        assert solution.status == "deadline"
        assert solution.backend == "degraded-incumbent"
        assert solution.values == warm
        assert registry.counters["ilp.deadline_degraded"] == 1

    def test_injected_timeout_without_warm_start_repairs_the_lp(self):
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        with use_faults(plan):
            solution = solve(self._model(), backend="scipy", deadline_s=5.0)
        assert solution.status == "deadline"
        assert solution.backend == "degraded-greedy"
        model = self._model()
        assert model.is_feasible(solution.values)

    def test_timeout_fault_without_deadline_changes_nothing(self):
        plan = FaultPlan(FaultSpec("ilp.solve", "timeout"))
        with use_faults(plan):
            solution = solve(self._model(), backend="scipy")
        assert solution.status == "optimal"
