"""Executor plan choice and buffer-pool maintenance simulation."""

import numpy as np
import pytest

from repro.cm.correlation_map import CorrelationMap
from repro.relational.query import Aggregate, EqPredicate, Query, Workload
from repro.storage.bufferpool import BufferPool, simulate_insert_workload
from repro.storage.disk import DiskModel
from repro.storage.executor import PhysicalDatabase, PhysicalObject
from repro.storage.layout import HeapFile
from tests.conftest import make_people


@pytest.fixture(scope="module")
def db():
    people = make_people(n=40_000)
    disk = DiskModel()
    base = PhysicalObject(HeapFile(people, ("state",), disk, name="people"))
    mv_table = people.project(["city", "state", "salary"], new_name="mv_city")
    mv_hf = HeapFile(mv_table, ("state", "city"), disk, name="mv_city")
    mv = PhysicalObject(mv_hf, cms=[CorrelationMap(mv_hf, ("city",), depth=2)])
    return PhysicalDatabase([base, mv])


class TestExecutor:
    def test_duplicate_object_rejected(self, db):
        with pytest.raises(ValueError, match="duplicate"):
            db.add(db.object("people"))

    def test_coverage(self, db):
        q_all = Query("q", "people", [EqPredicate("region", 2)])
        covering = db.covering_objects(q_all)
        assert [o.name for o in covering] == ["people"]  # mv lacks region

    def test_run_picks_cheapest(self, db):
        q = Query(
            "q", "people", [EqPredicate("city", 123)], [Aggregate("avg", ("salary",))]
        )
        choice = db.run(q)
        # The narrow MV must beat scanning the wider base heap (the winning
        # plan on such a small MV may legitimately be its full scan).
        assert choice.object_name == "mv_city"
        base_plans = db.plans_for(q, db.object("people"))
        assert choice.seconds <= min(p.seconds for p in base_plans)

    def test_run_errors_without_coverage(self, db):
        q = Query("q", "people", [EqPredicate("nope", 1)])
        with pytest.raises(ValueError, match="covers"):
            db.run(q)

    def test_workload_totals(self, db):
        w = Workload(
            "w",
            [
                Query("q1", "people", [EqPredicate("state", 4)], frequency=2.0),
                Query("q2", "people", [EqPredicate("region", 1)]),
            ],
        )
        per_query = db.run_workload(w)
        assert set(per_query) == {"q1", "q2"}
        total = db.total_seconds(w)
        assert total == pytest.approx(
            2.0 * per_query["q1"].seconds + per_query["q2"].seconds
        )

    def test_secondary_bytes_accounting(self, db):
        mv = db.object("mv_city")
        assert mv.secondary_bytes() == sum(cm.size_bytes for cm in mv.cms)
        mv_with_btree = PhysicalObject(mv.heapfile, btree_keys=[("city",)])
        assert mv_with_btree.secondary_bytes() > 0


class TestBufferPool:
    def test_lru_eviction_order(self):
        pool = BufferPool(2)
        pool.access(0, 1)
        pool.access(0, 2)
        pool.access(0, 1)  # refresh page 1
        pool.access(0, 3)  # evicts page 2 (LRU)
        assert pool.dirty_evictions == 1
        assert len(pool) == 2

    def test_hit_miss_counting(self):
        pool = BufferPool(4)
        pool.access(0, 1)
        pool.access(0, 1)
        assert pool.hits == 1
        assert pool.misses == 1

    def test_clean_pages_evict_free(self):
        pool = BufferPool(1)
        pool.access(0, 1, dirty=False)
        pool.access(0, 2, dirty=False)
        assert pool.clean_evictions == 1
        assert pool.dirty_evictions == 0

    def test_flush_counts_dirty(self):
        pool = BufferPool(4)
        pool.access(0, 1, dirty=True)
        pool.access(0, 2, dirty=False)
        assert pool.flush() == 1
        assert len(pool) == 0

    def test_capacity_validation(self):
        with pytest.raises(ValueError):
            BufferPool(0)

    def test_insert_sim_monotone_in_extra_size(self):
        disk = DiskModel()
        elapsed = []
        for extra in (64, 512, 4096):
            sim = simulate_insert_workload(
                n_inserts=20_000,
                base_table_pages=1024,
                extra_object_pages=[extra, extra],
                pool_pages=2048,
                disk=disk,
            )
            elapsed.append(sim.elapsed_s)
        assert elapsed[0] < elapsed[1] < elapsed[2]

    def test_insert_sim_knee_when_pool_overflows(self):
        """Figure 14's mechanism: crossing the pool size explodes cost."""
        disk = DiskModel()
        fits = simulate_insert_workload(
            20_000, 512, [256], pool_pages=2048, disk=disk
        )
        thrash = simulate_insert_workload(
            20_000, 512, [4096], pool_pages=2048, disk=disk
        )
        assert thrash.elapsed_s > 5 * fits.elapsed_s
        assert thrash.hit_rate < fits.hit_rate

    def test_insert_sim_validation(self):
        with pytest.raises(ValueError):
            simulate_insert_workload(-1, 10, [], 10, DiskModel())
