"""Unit + property tests: disk model, fragments, B+Tree sizing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storage.btree import (
    btree_fanout,
    btree_height,
    clustered_overhead_bytes,
    secondary_index_bytes,
)
from repro.storage.disk import DiskModel
from repro.storage.fragments import (
    coalesce_pages,
    fragment_count,
    pages_for_rowids,
    pages_spanned,
)


class TestDiskModel:
    def test_defaults_sane(self):
        d = DiskModel()
        assert d.page_read_s < d.seek_cost_s  # seeks dominate, as on disk
        assert d.rows_per_page(100) >= 1

    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(page_size=0)
        with pytest.raises(ValueError):
            DiskModel(fill_factor=1.5)
        with pytest.raises(ValueError):
            DiskModel(sequential_mb_per_s=0)
        with pytest.raises(ValueError):
            DiskModel(fragment_gap_pages=-1)

    def test_pages_for_rows(self):
        d = DiskModel(page_size=1000, fill_factor=1.0)
        assert d.pages_for_rows(0, 100) == 0
        assert d.pages_for_rows(10, 100) == 1
        assert d.pages_for_rows(11, 100) == 2

    def test_wide_rows_still_fit_one_per_page(self):
        d = DiskModel(page_size=1000)
        assert d.rows_per_page(5000) == 1

    def test_scan_seconds_composition(self):
        d = DiskModel()
        assert d.scan_seconds(10, 2) == pytest.approx(
            2 * d.seek_cost_s + 10 * d.page_read_s
        )
        assert d.full_scan_seconds(10) == d.scan_seconds(10, 1)

    def test_rejects_nonpositive_row_bytes(self):
        with pytest.raises(ValueError):
            DiskModel().rows_per_page(0)


class TestFragments:
    def test_pages_for_rowids(self):
        pages = pages_for_rowids(np.array([0, 1, 99, 100, 250]), 100)
        assert list(pages) == [0, 1, 2]

    def test_empty(self):
        assert len(pages_for_rowids(np.array([]), 10)) == 0
        assert coalesce_pages(np.array([]), 2) == []
        assert fragment_count(np.array([]), 2) == 0

    def test_coalesce_gap_zero(self):
        frags = coalesce_pages(np.array([1, 2, 3, 7, 8, 20]), 0)
        assert frags == [(1, 3), (7, 8), (20, 20)]

    def test_coalesce_bridges_gap(self):
        # Gap 3 bridges holes of up to 3 pages.
        frags = coalesce_pages(np.array([1, 5, 20]), 3)
        assert frags == [(1, 5), (20, 20)]

    def test_pages_spanned_includes_holes(self):
        assert pages_spanned([(1, 5), (20, 20)]) == 6

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            pages_for_rowids(np.array([1]), 0)
        with pytest.raises(ValueError):
            coalesce_pages(np.array([1]), -1)


@settings(max_examples=80, deadline=None)
@given(
    pages=st.lists(st.integers(0, 400), min_size=1, max_size=80, unique=True),
    gap=st.integers(0, 10),
)
def test_coalesce_invariants(pages, gap):
    pages = np.sort(np.array(pages))
    frags = coalesce_pages(pages, gap)
    # Count agrees with the cheap counter.
    assert len(frags) == fragment_count(pages, gap)
    # Every page falls inside exactly one fragment; fragments are sorted,
    # non-overlapping and separated by more than the gap.
    for p in pages:
        assert sum(1 for a, b in frags if a <= p <= b) == 1
    for (a1, b1), (a2, b2) in zip(frags, frags[1:]):
        assert b1 < a2
        assert a2 - b1 > gap + 1
    # Spanned pages at least cover the distinct pages.
    assert pages_spanned(frags) >= len(pages)


class TestBTree:
    def test_height_grows_with_leaves(self):
        assert btree_height(1, 8) == 1
        h_small = btree_height(100, 8)
        h_big = btree_height(1_000_000, 8)
        assert h_small < h_big <= 5

    def test_height_nonpositive_leaves(self):
        assert btree_height(0, 8) == 1

    def test_fanout_decreases_with_key_width(self):
        assert btree_fanout(4, 8192) > btree_fanout(64, 8192)
        with pytest.raises(ValueError):
            btree_fanout(0, 8192)

    def test_secondary_index_scales_linearly_ish(self):
        s1 = secondary_index_bytes(10_000, 8)
        s2 = secondary_index_bytes(20_000, 8)
        assert 1.8 < s2 / s1 < 2.2
        assert secondary_index_bytes(0, 8) == 0

    def test_secondary_index_dense_is_big(self):
        # One entry per row: 1M rows with 8-byte keys is tens of MB.
        assert secondary_index_bytes(1_000_000, 8) > 16 * (1 << 20)

    def test_clustered_overhead_is_small(self):
        heap_pages = 10_000
        overhead = clustered_overhead_bytes(heap_pages, 8)
        assert overhead < 0.02 * heap_pages * 8192
        assert clustered_overhead_bytes(0, 8) == 0
