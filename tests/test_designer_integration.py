"""Integration: the full CORADD pipeline, feedback, baselines, on small SSB."""

import pytest

from repro.design.baselines import CommercialDesigner, NaiveDesigner
from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.design.feedback import FeedbackConfig, run_ilp_feedback
from repro.design.mv import KIND_FACT_RECLUSTER, KIND_MV
from repro.experiments.harness import (
    evaluate_design,
    evaluate_design_model_guided,
    verify_answers,
)


@pytest.fixture(scope="module")
def designer(ssb_small):
    config = DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5), use_feedback=False)
    return CoraddDesigner(
        ssb_small.flat_tables,
        ssb_small.workload,
        ssb_small.primary_keys,
        ssb_small.fk_attrs,
        config=config,
    )


@pytest.fixture(scope="module")
def budget(ssb_small):
    return int(ssb_small.total_base_bytes())


@pytest.fixture(scope="module")
def design(designer, budget):
    return designer.design(budget)


@pytest.fixture(scope="module")
def evaluated(design):
    return evaluate_design(design)


class TestEnumeration:
    def test_pool_nonempty_and_pruned(self, designer):
        candidates = designer.enumerate()
        assert len(candidates) > 10
        stats = designer.enumeration_stats
        assert stats["after_domination"] <= stats["enumerated"]

    def test_pool_contains_both_kinds(self, designer):
        candidates = designer.enumerate()
        kinds = {c.kind for c in candidates}
        assert kinds == {KIND_MV, KIND_FACT_RECLUSTER}

    def test_runtimes_filled_for_covered_queries(self, designer, ssb_small):
        for cand in designer.enumerate():
            for q in ssb_small.workload:
                if cand.covers(q):
                    assert q.name in cand.runtimes
                    assert cand.runtimes[q.name] > 0

    def test_base_seconds_complete(self, designer, ssb_small):
        base = designer.base_seconds()
        assert set(base) == {q.name for q in ssb_small.workload}

    def test_unknown_fact_rejected(self, ssb_small):
        from repro.relational.query import EqPredicate, Query, Workload

        bad = Workload("bad", [Query("q", "nope", [EqPredicate("a", 1)])])
        with pytest.raises(KeyError):
            CoraddDesigner(
                ssb_small.flat_tables, bad, ssb_small.primary_keys
            )


class TestDesign:
    def test_within_budget(self, design, budget):
        assert design.size_bytes <= budget

    def test_expected_total_consistent(self, design):
        assert design.total_expected_seconds == pytest.approx(
            design.ilp.objective, rel=1e-6
        )

    def test_design_beats_base(self, design, designer):
        base_total = sum(designer.base_seconds().values())
        assert design.total_expected_seconds < base_total

    def test_budget_monotonicity(self, designer, budget):
        tight = designer.design(budget // 8)
        loose = designer.design(budget)
        assert loose.total_expected_seconds <= tight.total_expected_seconds + 1e-9

    def test_summary_mentions_every_object(self, design):
        text = design.summary()
        for cand in design.chosen:
            assert cand.cand_id in text


class TestMaterialization:
    def test_objects_exist(self, design, evaluated):
        db = design.materialize()
        assert "lineorder" in db.objects
        for cand in design.chosen:
            if cand.kind == KIND_MV:
                assert cand.cand_id in db.objects

    def test_answers_match_base_tables(self, design):
        """Every query must return identical aggregates on the design."""
        assert verify_answers(design)

    def test_real_close_to_model(self, evaluated):
        """CORADD-Model ~= CORADD (Figure 9's property)."""
        assert evaluated.real_total == pytest.approx(
            evaluated.model_total, rel=1.0
        )
        assert evaluated.real_total > 0

    def test_recluster_adds_pk_index(self, designer, ssb_small, budget):
        # Find any design that re-clusters the fact; the PK secondary index
        # must be attached for uniqueness maintenance.
        for frac in (0.15, 0.3, 0.5):
            d = designer.design(int(budget * frac))
            recluster = [c for c in d.chosen if c.kind == KIND_FACT_RECLUSTER]
            if recluster:
                db = d.materialize()
                fact_obj = db.object("lineorder")
                assert ssb_small.primary_keys["lineorder"] in fact_obj.btree_keys
                return
        pytest.skip("no budget in the sweep chose a fact re-clustering")


class TestFeedback:
    def test_feedback_never_worse(self, designer, budget, ssb_small):
        plain = designer.design(budget // 3, feedback=False)
        outcome = run_ilp_feedback(
            designer.enumerators,
            designer.enumerate(),
            list(ssb_small.workload),
            designer.base_seconds(),
            budget // 3,
            config=FeedbackConfig(max_iterations=2),
        )
        assert outcome.design.objective <= plain.ilp.objective + 1e-9
        assert outcome.iterations >= 1
        assert outcome.objective_history[0] >= outcome.objective_history[-1] - 1e-9

    def test_designer_feedback_flag(self, designer, budget):
        d = designer.design(budget // 3, feedback=True)
        assert d.size_bytes <= budget // 3


class TestBaselines:
    def test_naive_only_dedicated_and_reclusters(self, ssb_small, budget):
        naive = NaiveDesigner(
            ssb_small.flat_tables,
            ssb_small.workload,
            ssb_small.primary_keys,
            ssb_small.fk_attrs,
        )
        for cand in naive.enumerate():
            if cand.kind == KIND_MV:
                assert len(cand.group) == 1

    def test_naive_design_runs(self, ssb_small, budget):
        naive = NaiveDesigner(
            ssb_small.flat_tables,
            ssb_small.workload,
            ssb_small.primary_keys,
            ssb_small.fk_attrs,
        )
        d = naive.design(budget)
        assert d.size_bytes <= budget
        assert verify_answers(d)

    def test_commercial_design_runs_and_sizes_btrees(self, ssb_small, budget):
        commercial = CommercialDesigner(
            ssb_small.flat_tables, ssb_small.workload, ssb_small.primary_keys
        )
        pool = commercial.enumerate()
        assert any(c.btree_keys for c in pool if c.kind == KIND_MV)
        d = commercial.design(budget)
        assert d.size_bytes <= budget
        ev = evaluate_design_model_guided(d, commercial.oblivious_models)
        assert ev.real_total > 0

    def test_coradd_beats_commercial_for_real(self, designer, ssb_small, budget):
        """The headline claim, at small scale: CORADD's measured runtime is
        at least as good as the emulated commercial designer's."""
        coradd_eval = evaluate_design(designer.design(budget))
        commercial = CommercialDesigner(
            ssb_small.flat_tables, ssb_small.workload, ssb_small.primary_keys
        )
        commercial_eval = evaluate_design_model_guided(
            commercial.design(budget), commercial.oblivious_models
        )
        assert coradd_eval.real_total < commercial_eval.real_total
