"""TableStatistics: selectivities, synopsis estimates, layout estimation."""

import numpy as np
import pytest

from repro.relational.query import Aggregate, EqPredicate, Query, RangePredicate
from repro.stats.collector import TableStatistics
from tests.conftest import make_people


@pytest.fixture(scope="module")
def people():
    return make_people(n=60_000, seed=2)


@pytest.fixture(scope="module")
def stats(people):
    return TableStatistics(people, synopsis_rows=6_000, seed=0)


class TestSelectivities:
    def test_predicate_selectivity_exact(self, stats, people):
        q = Query("q", "people", [EqPredicate("state", 7)])
        expected = float((people.column("state") == 7).mean())
        assert stats.predicate_selectivity(q, "state") == pytest.approx(expected)

    def test_unpredicated_attr_is_one(self, stats):
        q = Query("q", "people", [EqPredicate("state", 7)])
        assert stats.predicate_selectivity(q, "salary") == 1.0

    def test_query_selectivity_conjunctive(self, stats, people):
        q = Query(
            "q",
            "people",
            [EqPredicate("state", 7), RangePredicate("salary", 50, 100)],
        )
        expected = float(q.mask(people).mean())
        assert stats.query_selectivity(q) == pytest.approx(expected)

    def test_memoization_returns_same_object(self, stats):
        q = Query("q_memo", "people", [EqPredicate("state", 3)])
        a = stats.predicate_selectivity(q, "state")
        b = stats.predicate_selectivity(q, "state")
        assert a == b

    def test_histogram_close_to_exact(self, stats, people):
        hist = stats.histogram("salary")
        pred = RangePredicate("salary", 50, 100)
        exact = pred.selectivity(people)
        assert hist.estimate(pred) == pytest.approx(exact, rel=0.2)


class TestSynopsisEstimates:
    def test_sample_mask_restricts_attrs(self, stats):
        q = Query(
            "q",
            "people",
            [EqPredicate("state", 7), RangePredicate("salary", 50, 60)],
        )
        full = stats.sample_mask(q)
        state_only = stats.sample_mask(q, attrs=("state",))
        assert full.sum() <= state_only.sum()

    def test_distinct_among_counts_cooccurring(self, stats):
        # All rows with state=7 share exactly one state value...
        q = Query("q", "people", [EqPredicate("state", 7)])
        mask = stats.sample_mask(q)
        assert stats.distinct_among(mask, ("state",)) == pytest.approx(1.0)
        # ...and about 20 cities.
        cities = stats.distinct_among(mask, ("city",))
        assert 10 <= cities <= 25

    def test_distinct_among_empty_mask(self, stats):
        mask = np.zeros(stats.synopsis.nrows, dtype=bool)
        assert stats.distinct_among(mask, ("state",)) == 0.0

    def test_distinct_capped_by_global(self, stats):
        q = Query("q", "people", [RangePredicate("salary", 20, 200)])
        mask = stats.sample_mask(q)
        assert stats.distinct_among(mask, ("state",)) <= stats.distinct(("state",))


class TestLayoutEstimation:
    """The fragments/fraction estimator behind the cost model."""

    def test_correlated_predicate_few_fragments(self, stats):
        # city determines state: under a (state,) clustering, one city's
        # rows live inside one state's band -> ~1 fragment.
        q = Query("q", "people", [EqPredicate("state", 7)])
        layout = stats.estimate_layout(("state",), q, gap_rows=500)
        assert layout is not None
        fragments, fraction = layout
        assert fragments <= 2
        assert fraction == pytest.approx(1 / 50, rel=0.5)

    def test_uncorrelated_predicate_many_fragments(self, stats):
        q = Query("q", "people", [EqPredicate("state", 7)])
        layout = stats.estimate_layout(("salary",), q, gap_rows=5)
        assert layout is not None
        fragments, fraction = layout
        assert fragments > 20
        # Group expansion: state=7 co-occurs with a large share of salary
        # values, so much of the table is scanned.
        assert fraction > 0.3

    def test_returns_none_when_too_selective(self, stats):
        q = Query("q", "people", [EqPredicate("city", 10_000)])  # matches nothing
        assert stats.estimate_layout(("state",), q, gap_rows=100) is None

    def test_empty_cluster_key_returns_none(self, stats):
        q = Query("q", "people", [EqPredicate("state", 7)])
        assert stats.estimate_layout((), q, gap_rows=100) is None

    def test_btree_semantics_scattered(self, stats):
        """expand_groups=False: scattered matches cost ~one fragment per
        match; clustered matches collapse to ~one fragment."""
        q = Query("q", "people", [EqPredicate("state", 7)])
        scattered = stats.estimate_layout(
            ("salary",), q, gap_rows=10, expand_groups=False
        )
        packed = stats.estimate_layout(
            ("state",), q, gap_rows=500, expand_groups=False
        )
        assert scattered is not None and packed is not None
        assert scattered[0] > 10 * packed[0]
        # B+Tree sweeps matching rows plus readahead-bridged holes: the
        # fraction sits between raw selectivity and a few multiples of it,
        # far below the group-expanded CM fraction.
        assert 1 / 50 <= scattered[1] < 5 / 50

    def test_pred_attrs_filter(self, stats):
        q = Query(
            "q",
            "people",
            [EqPredicate("state", 7), RangePredicate("salary", 50, 55)],
        )
        wide = stats.estimate_layout(("state",), q, 100, pred_attrs=("state",))
        narrow = stats.estimate_layout(("state",), q, 100)
        assert wide is not None
        # Restricting predicates can only scan more (or equal).
        if narrow is not None:
            assert wide[1] >= narrow[1] - 1e-12
