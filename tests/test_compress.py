"""Workload compression: dedup, clustering, streaming top-k.

The contract under test: the log front-end is *lossless in weight* — every
event's count lands in exactly one representative's frequency, to the
float64 ulp — and *deterministic in shape* — fingerprints, cluster
assignments and representative order depend only on (templates, spec,
code), never on log seed or iteration order.  With a representative budget
at or above the unique-query count, compression is the identity and the
designer produces a bit-identical design.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.relational.query import Workload
from repro.stats.collector import TableStatistics
from repro.workloads.compress import (
    StreamingCompressor,
    compress_workload,
    dedup_log,
    generate_log,
    materialize_code,
)
from repro.workloads.registry import make

CONFIG = dict(t0=1, alphas=(0.0, 0.25), use_feedback=False)


@pytest.fixture(scope="module")
def inst():
    return make(
        "ssb-log",
        lineorder_rows=6_000,
        seed=3,
        log_queries=50_000,
        log_slots=8,
    )


@pytest.fixture(scope="module")
def deduped(inst):
    return dedup_log(inst.log)


@pytest.fixture(scope="module")
def stats(inst):
    return {
        fact: TableStatistics(inst.flat_tables[fact])
        for fact in inst.workload.fact_tables()
    }


# ------------------------------------------------------------------- dedup


class TestDedup:
    def test_weight_conserved_exactly(self, inst, deduped):
        # Integer event counts summed in float64: exact, not approximate.
        assert deduped.total_weight == float(len(inst.log))
        assert deduped.n_entries == len(inst.log)

    def test_ratio_reflects_folding(self, inst, deduped):
        assert len(deduped.workload) <= deduped.n_unique_codes
        assert deduped.ratio == len(inst.log) / len(deduped.workload)
        assert deduped.ratio > 10.0

    def test_fingerprints_stable_across_log_seeds(self, inst):
        # Different log seeds draw different mixes, but a given code always
        # materializes to the same fingerprint — so the deduped workloads
        # agree wherever their logs overlap.
        log_a = generate_log(
            inst.workload, inst.log.spec, n_queries=20_000, n_slots=8, seed=1
        )
        log_b = generate_log(
            inst.workload, inst.log.spec, n_queries=20_000, n_slots=8, seed=2
        )
        by_name_a = {
            q.name: q.fingerprint() for q in dedup_log(log_a).workload
        }
        by_name_b = {
            q.name: q.fingerprint() for q in dedup_log(log_b).workload
        }
        shared = set(by_name_a) & set(by_name_b)
        assert shared
        for name in shared:
            assert by_name_a[name] == by_name_b[name]

    def test_dedup_deterministic(self, inst, deduped):
        again = dedup_log(inst.log)
        assert [q.name for q in again.workload] == [
            q.name for q in deduped.workload
        ]
        assert [q.frequency for q in again.workload] == [
            q.frequency for q in deduped.workload
        ]

    def test_materialize_slot_zero_is_template(self, inst):
        n_slots = inst.log.n_slots
        template = inst.workload.queries[2]
        q = materialize_code(
            inst.workload, inst.log.spec, 2 * n_slots, n_slots, frequency=7.0
        )
        assert q.name == template.name
        assert q.fingerprint() == template.fingerprint()
        assert q.frequency == 7.0

    def test_entries_match_codes(self, inst):
        log = inst.log
        codes = log.codes()
        for i in (0, len(log) // 2, len(log) - 1):
            q = log.entry(i)
            expected = materialize_code(
                log.templates, log.spec, int(codes[i]), log.n_slots
            )
            assert q.fingerprint() == expected.fingerprint()


# -------------------------------------------------------------- clustering


class TestCompressWorkload:
    def test_weight_conserved_exactly(self, inst, deduped, stats):
        compressed = compress_workload(
            deduped.workload, stats, max_representatives=12
        )
        assert compressed.total_weight == float(len(inst.log))
        assert compressed.n_representatives <= 12

    def test_deterministic(self, deduped, stats):
        a = compress_workload(deduped.workload, stats, max_representatives=10)
        b = compress_workload(deduped.workload, stats, max_representatives=10)
        assert [q.name for q in a.workload] == [q.name for q in b.workload]
        assert [q.frequency for q in a.workload] == [
            q.frequency for q in b.workload
        ]
        assert a.assignment == b.assignment

    def test_assignment_covers_every_input(self, deduped, stats):
        compressed = compress_workload(
            deduped.workload, stats, max_representatives=10
        )
        rep_names = {q.name for q in compressed.workload}
        assert set(compressed.assignment) == {
            q.name for q in deduped.workload
        }
        assert set(compressed.assignment.values()) == rep_names
        # Weight flows along the assignment: each representative's
        # frequency is the exact sum of its members'.
        by_rep: dict[str, float] = {}
        for q in deduped.workload:
            by_rep[compressed.assignment[q.name]] = (
                by_rep.get(compressed.assignment[q.name], 0.0) + q.frequency
            )
        for rep in compressed.workload:
            assert rep.frequency == pytest.approx(by_rep[rep.name], rel=1e-12)

    def test_heavy_hitters_pinned_verbatim(self, deduped, stats):
        compressed = compress_workload(
            deduped.workload, stats, max_representatives=12, head_share=0.5
        )
        by_weight = sorted(
            deduped.workload, key=lambda q: -q.frequency
        )
        reps = {q.name: q for q in compressed.workload}
        # The heaviest input query survives under its own name with its own
        # weight folded in (it may also absorb tail members as a medoid).
        heaviest = by_weight[0]
        assert compressed.assignment[heaviest.name] == heaviest.name
        assert reps[heaviest.name].frequency >= heaviest.frequency

    def test_identity_when_budget_covers(self, deduped, stats):
        n = len(deduped.workload)
        compressed = compress_workload(
            deduped.workload, stats, max_representatives=n
        )
        assert [q.name for q in compressed.workload] == [
            q.name for q in deduped.workload
        ]
        assert [q.frequency for q in compressed.workload] == [
            q.frequency for q in deduped.workload
        ]

    def test_design_parity_on_small_log(self, inst, stats):
        # A budget >= the unique-query count makes compression the
        # identity, so the designer must produce a bit-identical design.
        log = generate_log(
            inst.workload, inst.log.spec, n_queries=5_000, n_slots=4, seed=5
        )
        deduped = dedup_log(log)
        compressed = compress_workload(
            deduped.workload, stats, max_representatives=len(deduped.workload)
        )

        def _design(workload: Workload):
            designer = CoraddDesigner(
                inst.flat_tables,
                workload,
                inst.primary_keys,
                inst.fk_attrs,
                config=DesignerConfig(**CONFIG),
            )
            return designer.design(int(inst.total_base_bytes() * 0.6))

        full = _design(deduped.workload)
        comp = _design(compressed.workload)
        assert comp.ilp.chosen_ids == full.ilp.chosen_ids
        assert comp.ilp.assignment == full.ilp.assignment
        assert comp.total_expected_seconds == pytest.approx(
            full.total_expected_seconds, rel=1e-12
        )

    def test_rejects_bad_knobs(self, deduped, stats):
        with pytest.raises(ValueError):
            compress_workload(deduped.workload, stats, max_representatives=0)
        with pytest.raises(ValueError):
            compress_workload(
                deduped.workload, stats, max_representatives=4, head_share=1.5
            )


# --------------------------------------------------------------- streaming


class TestStreamingCompressor:
    def _mix(self, inst, template_ids, n, seed=0):
        rng = np.random.default_rng(seed)
        tids = rng.choice(np.asarray(template_ids), size=n)
        slots = np.zeros(n, dtype=np.int64)
        return tids, slots

    def test_first_poll_emits_full_mix(self, inst):
        comp = StreamingCompressor.for_log(inst.log, capacity=8)
        tids, slots = self._mix(inst, [0, 1, 2], 5_000)
        comp.observe(tids, slots)
        delta = comp.poll()
        assert delta is not None
        assert len(delta.added) == 3
        assert not delta.removed
        assert comp.emissions == 1

    def test_steady_mix_stays_quiet(self, inst):
        comp = StreamingCompressor.for_log(inst.log, capacity=8)
        tids, slots = self._mix(inst, [0, 1, 2], 5_000)
        comp.observe(tids, slots)
        assert comp.poll() is not None
        for seed in (1, 2, 3):
            more_t, more_s = self._mix(inst, [0, 1, 2], 5_000, seed=seed)
            comp.observe(more_t, more_s)
            assert comp.poll() is None

    def test_shift_emits_delta_and_decay_evicts(self, inst):
        comp = StreamingCompressor.for_log(
            inst.log, capacity=3, half_life=2_000.0
        )
        tids, slots = self._mix(inst, [0, 1, 2], 6_000)
        comp.observe(tids, slots)
        assert comp.poll() is not None
        before = {q.name for q in comp.current_workload()}
        # A hard pivot to disjoint templates: after several half-lives the
        # old mix's decayed weights fall out of the top-k entirely.
        tids2, slots2 = self._mix(inst, [3, 4, 5], 20_000, seed=9)
        comp.observe(tids2, slots2)
        delta = comp.poll()
        assert delta is not None
        after = {q.name for q in comp.current_workload()}
        assert after.isdisjoint(before)
        assert {q.name for q in delta.added} == after
        assert set(delta.removed) == before

    def test_reweight_not_churn_on_same_mix(self, inst):
        # The same codes at shifted proportions re-emit as reweights (and
        # possibly additions), never as remove+add churn of live names.
        comp = StreamingCompressor.for_log(
            inst.log, capacity=4, half_life=1_000.0, shift_threshold=0.1
        )
        tids, slots = self._mix(inst, [0, 1], 4_000)
        comp.observe(tids, slots)
        assert comp.poll() is not None
        rng = np.random.default_rng(7)
        skewed = rng.choice(np.array([0, 1]), size=8_000, p=[0.95, 0.05])
        comp.observe(skewed, np.zeros(8_000, dtype=np.int64))
        delta = comp.poll()
        assert delta is not None
        assert not delta.removed
        assert not delta.added
        assert delta.reweighted

    def test_decay_batch_matches_event_at_a_time(self, inst):
        batch = StreamingCompressor.for_log(inst.log, half_life=100.0)
        single = StreamingCompressor.for_log(inst.log, half_life=100.0)
        rng = np.random.default_rng(11)
        tids = rng.integers(0, 6, size=300)
        slots = rng.integers(0, inst.log.n_slots, size=300)
        batch.observe(tids, slots)
        for t, s in zip(tids, slots):
            single.observe(np.array([t]), np.array([s]))
        np.testing.assert_allclose(
            batch._weights, single._weights, rtol=1e-10, atol=1e-12
        )

    def test_observe_log_slice(self, inst):
        comp = StreamingCompressor.for_log(inst.log)
        comp.observe_log(inst.log, start=0, end=10_000)
        assert comp.events == 10_000
        workload = comp.current_workload()
        assert 0 < len(workload) <= comp.capacity
