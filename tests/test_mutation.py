"""Mutation invalidation: inserts/deletes through every cache tier.

The contract under test: after ``HeapFile.insert`` / ``delete_source`` /
``compact`` — applied through a :class:`~repro.storage.update.
RefreshExecutor` — every plan on every object returns post-mutation-correct
results, with or without an :class:`~repro.engine.EvalSession`, with or
without ``scan_caching``; the session observes mutations as content-key
bumps (never stale hits); and the buffer-pool analytic model tracks the
simulation it abstracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import EvalSession, use_session
from repro.relational.query import EqPredicate, Query, RangePredicate
from repro.storage.bufferpool import (
    estimate_insert_io,
    estimate_insert_seconds,
    simulate_insert_workload,
)
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from repro.storage.update import RefreshExecutor
from repro.workloads.registry import make

CONFIG = dict(t0=1, alphas=(0.0, 0.25), use_feedback=False)


@pytest.fixture(scope="module")
def inst():
    return make(
        "ssb-refresh",
        lineorder_rows=6_000,
        seed=3,
        rounds=3,
        insert_fraction=0.05,
        delete_fraction=0.02,
    )


def _materialized(inst, session):
    designer = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=DesignerConfig(**CONFIG),
    )
    design = designer.design(int(inst.total_base_bytes() * 0.6))
    return design, design.materialize(session)


def _logical_rows(db, fact, query):
    """Ground truth: source row ids matching ``query`` over the live rows
    of the base fact object (which carries every flat column)."""
    base = db.object(fact).heapfile
    mask = query.mask(base.table)
    if base.live is not None:
        mask = mask & base.live
    return set(base.source_rowids[mask].tolist())


def _apply_stream(inst, db, session, **kwargs):
    executor = RefreshExecutor(db, pool_pages=2_048, session=session, **kwargs)
    total = 0.0
    for batch in inst.refresh:
        total += executor.apply(batch).seconds
    total += executor.flush()
    return executor, total


# ------------------------------------------------------------------ heap file


class TestHeapFileMutation:
    def _file(self, nrows=500, seed=0):
        from repro.relational.schema import Column, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import INT32

        rng = np.random.default_rng(seed)
        schema = TableSchema(
            "t", [Column("k", INT32), Column("v", INT32)], primary_key=("k",)
        )
        table = Table(
            schema,
            {
                "k": rng.permutation(nrows).astype(np.int64),
                "v": rng.integers(0, 50, nrows),
            },
        )
        return table, HeapFile(table, ("k",), DiskModel(), name="t")

    def test_insert_appends_to_tail(self):
        _, hf = self._file()
        before = hf.nrows
        pages = hf.insert({"k": np.array([1000, 1001]), "v": np.array([1, 2])})
        assert hf.nrows == before + 2
        assert hf.tail_rows == 2
        assert hf.sorted_rows == before
        assert len(pages) == 2
        # Sorted region untouched: prefix ranges still valid.
        assert hf.prefix_distinct_count(1) == before
        assert hf.version == 1

    def test_insert_target_pages_follow_cluster_position(self):
        _, hf = self._file()
        lo = hf.insert({"k": np.array([-1]), "v": np.array([0])})
        hi = hf.insert({"k": np.array([10_000]), "v": np.array([0])})
        assert lo[0] == 0  # smallest key lands on the first page
        assert hi[0] >= lo[0]

    def test_delete_tombstones_and_preserves_pages(self):
        _, hf = self._file()
        npages = hf.npages
        doomed = hf.delete_rows(np.arange(10))
        assert len(doomed) == 10
        assert hf.live_rows == hf.nrows - 10
        assert hf.npages == npages  # space reclaimed only at compaction
        again = hf.delete_rows(np.arange(10))
        assert len(again) == 0  # already dead

    def test_delete_source_propagates_to_projection(self):
        table, hf = self._file()
        proj = HeapFile(
            table.project(["v", "k"], new_name="p"), ("v",), DiskModel(), name="p"
        )
        victim_sources = hf.source_rowids[:5]
        rowids = proj.delete_source(victim_sources)
        assert len(rowids) == 5
        assert set(proj.source_rowids[rowids].tolist()) == set(
            victim_sources.tolist()
        )

    def test_compact_restores_invariants(self):
        _, hf = self._file()
        hf.insert({"k": np.array([7_000, 6_000]), "v": np.array([1, 2])})
        hf.delete_rows(np.array([0, 1, 2]))
        live = hf.live_rows
        stats = hf.compact()
        assert stats.rows_merged == 2
        assert stats.rows_reclaimed == 3
        assert hf.tail_rows == 0
        assert hf.live is None
        assert hf.nrows == live
        ks = hf.table.column("k")
        assert np.all(ks[1:] >= ks[:-1])  # clustered order restored

    def test_mutable_copy_isolates(self):
        _, hf = self._file()
        hf.shared = True
        clone = hf.mutable_copy()
        clone.insert({"k": np.array([9_999]), "v": np.array([0])})
        clone.delete_rows(np.array([0]))
        assert hf.tail_rows == 0 and hf.live is None and hf.version == 0
        assert clone.tail_rows == 1 and clone.live is not None


# ------------------------------------------------------- end-to-end invalidation


class TestMutationInvalidation:
    def test_all_plans_correct_after_refresh_stream(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            _, _ = _apply_stream(inst, db, session)
            for query in inst.workload:
                want = _logical_rows(db, "lineorder", query)
                for obj in db.covering_objects(query):
                    for res in db.plans_for(query, obj):
                        got = set(
                            obj.heapfile.source_rowids[res.mask].tolist()
                        )
                        assert got == want, (query.name, obj.name, res.plan)

    def test_plan_memo_invalidated_by_mutation(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            query = list(inst.workload)[0]
            before = db.run(query)
            _apply_stream(inst, db, session)
            after = db.run(query)
            # The memo must not replay the pre-mutation execution: the base
            # fact grew, so any full/clustered scan costs more now.
            assert after.result.cost != before.result.cost or (
                after.result.mask.sum() != before.result.mask.sum()
            )

    def test_scan_caching_off_agrees_bit_identically(self, inst):
        def run(scan_caching):
            session = EvalSession(scan_caching=scan_caching)
            with use_session(session):
                _, db = _materialized(inst, session)
                _apply_stream(inst, db, session)
                out = {}
                for query in inst.workload:
                    choice = db.run(query)
                    out[query.name] = (
                        choice.object_name,
                        choice.plan,
                        choice.result.cost,
                        choice.result.mask.tobytes(),
                    )
                return out

        assert run(True) == run(False)

    def test_no_session_agrees_with_session(self, inst):
        def run(with_session):
            session = EvalSession() if with_session else None
            ctx = use_session(session) if session is not None else None
            db = None
            if ctx is not None:
                with ctx:
                    _, db = _materialized(inst, session)
                    _apply_stream(inst, db, session)
                    return {
                        q.name: (
                            db.run(q).plan,
                            db.run(q).result.cost,
                            db.run(q).result.mask.tobytes(),
                        )
                        for q in inst.workload
                    }
            _, db = _materialized(inst, None)
            _apply_stream(inst, db, None)
            return {
                q.name: (
                    db.run(q).plan,
                    db.run(q).result.cost,
                    db.run(q).result.mask.tobytes(),
                )
                for q in inst.workload
            }

        assert run(True) == run(False)

    def test_session_key_bumps_on_mutation(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            obj = db.object("lineorder")
            executor = RefreshExecutor(db, pool_pages=512, session=session)
            batch = inst.refresh.batches()[0]
            executor.apply(batch)
            mutated = db.object("lineorder").heapfile
            key_after = session.heapfile_key(mutated)
            assert key_after is not None
            executor.apply(inst.refresh.batches()[1])
            assert session.heapfile_key(mutated) != key_after

    def test_shared_file_stays_pristine_for_other_databases(self, inst):
        session = EvalSession()
        with use_session(session):
            design, db_a = _materialized(inst, session)
            db_b = design.materialize(session)
            rows_before = db_b.object("lineorder").heapfile.nrows
            _apply_stream(inst, db_a, session)
            # db_b shares the session-cached pristine files; db_a mutated
            # private copies.
            assert db_b.object("lineorder").heapfile.nrows == rows_before
            assert db_a.object("lineorder").heapfile.nrows != rows_before


# --------------------------------------------------------------- CM refresh


class TestCMRefresh:
    def test_tail_insert_is_noop_and_compact_rebuilds(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            executor = RefreshExecutor(
                db, pool_pages=2_048, session=session, compact_threshold=0.0
            )
            cm_objs = [o for o in db.objects.values() if o.cms]
            assert cm_objs, "fixture must materialize at least one CM"
            executor.apply(inst.refresh.batches()[0])
            obj = cm_objs[0]
            hf = obj.heapfile
            assert hf.tail_rows > 0
            cm = obj.cms[0]
            assert cm.refresh(hf) is False  # tail insert: no rebuild
            entries_before = cm.n_entries
            hf.compact()
            assert cm.refresh(hf) is True  # compaction: rank space moved
            assert cm._entry_rows_built == hf.nrows
            assert cm.n_entries >= 1
            # The rebuilt CM still answers correctly.
            for query in inst.workload:
                from repro.storage.access import cm_scan

                res = cm_scan(hf, query, cm)
                if res is None:
                    continue
                want_mask = query.mask(hf.table)
                if hf.live is not None:
                    want_mask = want_mask & hf.live
                assert np.array_equal(res.mask, want_mask), query.name


# ------------------------------------------------------- analytic pool model


class TestAnalyticInsertModel:
    DISK = DiskModel()

    def test_wider_objects_cost_more(self):
        costs = [
            estimate_insert_seconds(5_000, pages, 64, 1_024, 0.0, self.DISK)
            for pages in (256, 1_024, 8_192)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_locality_is_cheaper(self):
        costs = [
            estimate_insert_seconds(5_000, 4_096, 64, 1_024, loc, self.DISK)
            for loc in (0.0, 0.5, 1.0)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_matches_simulation_order_of_magnitude(self):
        n, pages, pool, rpp = 20_000, 4_096, 1_024, 64
        for locality in (0.0, 0.9):
            sim = simulate_insert_workload(
                n_inserts=n,
                base_table_pages=16,
                extra_object_pages=[pages],
                pool_pages=pool,
                disk=self.DISK,
                rows_per_page=rpp,
                object_localities=[locality],
            )
            est_reads, est_writes = estimate_insert_io(
                n, pages, rpp, pool, locality
            )
            est = est_reads + est_writes
            measured = sim.page_reads + sim.page_writes
            assert measured > 0
            # The closed form is an abstraction of the sim (which also
            # carries the base table's appends): demand agreement within 3x.
            assert est / measured < 3.0 and measured / est < 3.0, (
                locality, est, measured,
            )

    def test_estimate_monotone_in_inserts(self):
        a = estimate_insert_seconds(1_000, 2_048, 64, 512, 0.2, self.DISK)
        b = estimate_insert_seconds(10_000, 2_048, 64, 512, 0.2, self.DISK)
        assert 0.0 < a < b
