"""Mutation invalidation: inserts/deletes through every cache tier.

The contract under test: after ``HeapFile.insert`` / ``delete_source`` /
``compact`` — applied through a :class:`~repro.storage.update.
RefreshExecutor` — every plan on every object returns post-mutation-correct
results, with or without an :class:`~repro.engine.EvalSession`, with or
without ``scan_caching``; the session observes mutations as content-key
bumps (never stale hits); and the buffer-pool analytic model tracks the
simulation it abstracts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import EvalSession, use_session
from repro.relational.query import EqPredicate, Query, RangePredicate
from repro.storage.bufferpool import (
    estimate_insert_io,
    estimate_insert_seconds,
    simulate_insert_workload,
)
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from repro.storage.update import RefreshExecutor
from repro.workloads.registry import make

CONFIG = dict(t0=1, alphas=(0.0, 0.25), use_feedback=False)


@pytest.fixture(scope="module")
def inst():
    return make(
        "ssb-refresh",
        lineorder_rows=6_000,
        seed=3,
        rounds=3,
        insert_fraction=0.05,
        delete_fraction=0.02,
    )


def _materialized(inst, session):
    designer = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=DesignerConfig(**CONFIG),
    )
    design = designer.design(int(inst.total_base_bytes() * 0.6))
    return design, design.materialize(session)


def _logical_rows(db, fact, query):
    """Ground truth: source row ids matching ``query`` over the live rows
    of the base fact object (which carries every flat column)."""
    base = db.object(fact).heapfile
    mask = query.mask(base.table)
    if base.live is not None:
        mask = mask & base.live
    return set(base.source_rowids[mask].tolist())


def _apply_stream(inst, db, session, **kwargs):
    executor = RefreshExecutor(db, pool_pages=2_048, session=session, **kwargs)
    total = 0.0
    for batch in inst.refresh:
        total += executor.apply(batch).seconds
    total += executor.flush()
    return executor, total


# ------------------------------------------------------------------ heap file


class TestHeapFileMutation:
    def _file(self, nrows=500, seed=0):
        from repro.relational.schema import Column, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import INT32

        rng = np.random.default_rng(seed)
        schema = TableSchema(
            "t", [Column("k", INT32), Column("v", INT32)], primary_key=("k",)
        )
        table = Table(
            schema,
            {
                "k": rng.permutation(nrows).astype(np.int64),
                "v": rng.integers(0, 50, nrows),
            },
        )
        return table, HeapFile(table, ("k",), DiskModel(), name="t")

    def test_insert_appends_to_tail(self):
        _, hf = self._file()
        before = hf.nrows
        pages = hf.insert({"k": np.array([1000, 1001]), "v": np.array([1, 2])})
        assert hf.nrows == before + 2
        assert hf.tail_rows == 2
        assert hf.sorted_rows == before
        assert len(pages) == 2
        # Sorted region untouched: prefix ranges still valid.
        assert hf.prefix_distinct_count(1) == before
        assert hf.version == 1

    def test_insert_target_pages_follow_cluster_position(self):
        _, hf = self._file()
        lo = hf.insert({"k": np.array([-1]), "v": np.array([0])})
        hi = hf.insert({"k": np.array([10_000]), "v": np.array([0])})
        assert lo[0] == 0  # smallest key lands on the first page
        assert hi[0] >= lo[0]

    def test_delete_tombstones_and_preserves_pages(self):
        _, hf = self._file()
        npages = hf.npages
        doomed = hf.delete_rows(np.arange(10))
        assert len(doomed) == 10
        assert hf.live_rows == hf.nrows - 10
        assert hf.npages == npages  # space reclaimed only at compaction
        again = hf.delete_rows(np.arange(10))
        assert len(again) == 0  # already dead

    def test_delete_source_propagates_to_projection(self):
        table, hf = self._file()
        proj = HeapFile(
            table.project(["v", "k"], new_name="p"), ("v",), DiskModel(), name="p"
        )
        victim_sources = hf.source_rowids[:5]
        rowids = proj.delete_source(victim_sources)
        assert len(rowids) == 5
        assert set(proj.source_rowids[rowids].tolist()) == set(
            victim_sources.tolist()
        )

    def test_compact_restores_invariants(self):
        _, hf = self._file()
        hf.insert({"k": np.array([7_000, 6_000]), "v": np.array([1, 2])})
        hf.delete_rows(np.array([0, 1, 2]))
        live = hf.live_rows
        stats = hf.compact()
        assert stats.rows_merged == 2
        assert stats.rows_reclaimed == 3
        assert hf.tail_rows == 0
        assert hf.live is None
        assert hf.nrows == live
        ks = hf.table.column("k")
        assert np.all(ks[1:] >= ks[:-1])  # clustered order restored

    def test_mutable_copy_isolates(self):
        _, hf = self._file()
        hf.shared = True
        clone = hf.mutable_copy()
        clone.insert({"k": np.array([9_999]), "v": np.array([0])})
        clone.delete_rows(np.array([0]))
        assert hf.tail_rows == 0 and hf.live is None and hf.version == 0
        assert clone.tail_rows == 1 and clone.live is not None


# ------------------------------------------------------- end-to-end invalidation


class TestMutationInvalidation:
    def test_all_plans_correct_after_refresh_stream(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            _, _ = _apply_stream(inst, db, session)
            for query in inst.workload:
                want = _logical_rows(db, "lineorder", query)
                for obj in db.covering_objects(query):
                    for res in db.plans_for(query, obj):
                        got = set(
                            obj.heapfile.source_rowids[res.mask].tolist()
                        )
                        assert got == want, (query.name, obj.name, res.plan)

    def test_plan_memo_invalidated_by_mutation(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            query = list(inst.workload)[0]
            before = db.run(query)
            _apply_stream(inst, db, session)
            after = db.run(query)
            # The memo must not replay the pre-mutation execution: the base
            # fact grew, so any full/clustered scan costs more now.
            assert after.result.cost != before.result.cost or (
                after.result.mask.sum() != before.result.mask.sum()
            )

    def test_scan_caching_off_agrees_bit_identically(self, inst):
        def run(scan_caching):
            session = EvalSession(scan_caching=scan_caching)
            with use_session(session):
                _, db = _materialized(inst, session)
                _apply_stream(inst, db, session)
                out = {}
                for query in inst.workload:
                    choice = db.run(query)
                    out[query.name] = (
                        choice.object_name,
                        choice.plan,
                        choice.result.cost,
                        choice.result.mask.tobytes(),
                    )
                return out

        assert run(True) == run(False)

    def test_no_session_agrees_with_session(self, inst):
        def run(with_session):
            session = EvalSession() if with_session else None
            ctx = use_session(session) if session is not None else None
            db = None
            if ctx is not None:
                with ctx:
                    _, db = _materialized(inst, session)
                    _apply_stream(inst, db, session)
                    return {
                        q.name: (
                            db.run(q).plan,
                            db.run(q).result.cost,
                            db.run(q).result.mask.tobytes(),
                        )
                        for q in inst.workload
                    }
            _, db = _materialized(inst, None)
            _apply_stream(inst, db, None)
            return {
                q.name: (
                    db.run(q).plan,
                    db.run(q).result.cost,
                    db.run(q).result.mask.tobytes(),
                )
                for q in inst.workload
            }

        assert run(True) == run(False)

    def test_session_key_bumps_on_mutation(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            obj = db.object("lineorder")
            executor = RefreshExecutor(db, pool_pages=512, session=session)
            batch = inst.refresh.batches()[0]
            executor.apply(batch)
            mutated = db.object("lineorder").heapfile
            key_after = session.heapfile_key(mutated)
            assert key_after is not None
            executor.apply(inst.refresh.batches()[1])
            assert session.heapfile_key(mutated) != key_after

    def test_shared_file_stays_pristine_for_other_databases(self, inst):
        session = EvalSession()
        with use_session(session):
            design, db_a = _materialized(inst, session)
            db_b = design.materialize(session)
            rows_before = db_b.object("lineorder").heapfile.nrows
            _apply_stream(inst, db_a, session)
            # db_b shares the session-cached pristine files; db_a mutated
            # private copies.
            assert db_b.object("lineorder").heapfile.nrows == rows_before
            assert db_a.object("lineorder").heapfile.nrows != rows_before


# --------------------------------------------------------------- CM refresh


class TestCMRefresh:
    def test_tail_insert_is_noop_and_compact_rebuilds(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            executor = RefreshExecutor(
                db, pool_pages=2_048, session=session, compact_threshold=0.0
            )
            cm_objs = [o for o in db.objects.values() if o.cms]
            assert cm_objs, "fixture must materialize at least one CM"
            executor.apply(inst.refresh.batches()[0])
            obj = cm_objs[0]
            hf = obj.heapfile
            assert hf.tail_rows > 0
            cm = obj.cms[0]
            assert cm.refresh(hf) is False  # tail insert: no rebuild
            entries_before = cm.n_entries
            hf.compact()
            assert cm.refresh(hf) is True  # compaction: rank space moved
            assert cm._entry_rows_built == hf.nrows
            assert cm.n_entries >= 1
            # The rebuilt CM still answers correctly.
            for query in inst.workload:
                from repro.storage.access import cm_scan

                res = cm_scan(hf, query, cm)
                if res is None:
                    continue
                want_mask = query.mask(hf.table)
                if hf.live is not None:
                    want_mask = want_mask & hf.live
                assert np.array_equal(res.mask, want_mask), query.name


# ------------------------------------------------------- analytic pool model


class TestAnalyticInsertModel:
    DISK = DiskModel()

    def test_wider_objects_cost_more(self):
        costs = [
            estimate_insert_seconds(5_000, pages, 64, 1_024, 0.0, self.DISK)
            for pages in (256, 1_024, 8_192)
        ]
        assert costs[0] < costs[1] < costs[2]

    def test_locality_is_cheaper(self):
        costs = [
            estimate_insert_seconds(5_000, 4_096, 64, 1_024, loc, self.DISK)
            for loc in (0.0, 0.5, 1.0)
        ]
        assert costs[0] > costs[1] > costs[2]

    def test_matches_simulation_order_of_magnitude(self):
        n, pages, pool, rpp = 20_000, 4_096, 1_024, 64
        for locality in (0.0, 0.9):
            sim = simulate_insert_workload(
                n_inserts=n,
                base_table_pages=16,
                extra_object_pages=[pages],
                pool_pages=pool,
                disk=self.DISK,
                rows_per_page=rpp,
                object_localities=[locality],
            )
            est_reads, est_writes = estimate_insert_io(
                n, pages, rpp, pool, locality
            )
            est = est_reads + est_writes
            measured = sim.page_reads + sim.page_writes
            assert measured > 0
            # The closed form is an abstraction of the sim (which also
            # carries the base table's appends): demand agreement within 3x.
            assert est / measured < 3.0 and measured / est < 3.0, (
                locality, est, measured,
            )

    def test_estimate_monotone_in_inserts(self):
        a = estimate_insert_seconds(1_000, 2_048, 64, 512, 0.2, self.DISK)
        b = estimate_insert_seconds(10_000, 2_048, 64, 512, 0.2, self.DISK)
        assert 0.0 < a < b


# ------------------------------------------------------------------ tail merge


class TestTailMerge:
    """Incremental compaction: ``tail_merge`` must be bit-identical to the
    full rewrite while touching only the affected suffix, and the CM's
    ``refresh_merged`` must keep lookups exact (supersets at worst) without
    a from-scratch rebuild when the merge boundary is high."""

    def _file(self, nrows=3_000, seed=0):
        from repro.relational.schema import Column, TableSchema
        from repro.relational.table import Table
        from repro.relational.types import INT32

        rng = np.random.default_rng(seed)
        schema = TableSchema(
            "t", [Column("k", INT32), Column("v", INT32)], primary_key=("k",)
        )
        table = Table(
            schema,
            {
                "k": rng.permutation(nrows).astype(np.int64),
                "v": rng.integers(0, 60, nrows),
            },
        )
        return table, HeapFile(table, ("k",), DiskModel(), name="t")

    def _twin(self, mutate, seed=0, nrows=3_000):
        """Apply ``mutate`` to two identical files; tail-merge one, fully
        compact the other."""
        table_a, a = self._file(nrows=nrows, seed=seed)
        table_b, b = self._file(nrows=nrows, seed=seed)
        mutate(a)
        mutate(b)
        return a, a.tail_merge(), b, b.compact()

    @pytest.mark.parametrize("seed", [0, 1])
    def test_bit_identical_to_compact(self, seed):
        rng = np.random.default_rng(seed + 100)

        def mutate(hf):
            n = hf.nrows
            hf.insert(
                {
                    "k": rng.integers(0, n, size=80).astype(np.int64),
                    "v": rng.integers(0, 60, size=80),
                }
            )
            hf.delete_rows(rng.choice(n, size=40, replace=False))

        rng_state = rng.bit_generator.state
        a, _, b, _ = self._twin(
            lambda hf: (
                rng.bit_generator.__setstate__(rng_state),
                mutate(hf),
            )[-1],
            seed=seed,
        )
        for col in a.table.column_names:
            assert np.array_equal(a.table.column(col), b.table.column(col))
        assert np.array_equal(a.source_rowids, b.source_rowids)
        assert a.live is None and a.tail_rows == 0
        assert a.sorted_rows == a.nrows

    def test_recent_inserts_touch_only_suffix(self):
        # Tail keys above the whole sorted region: the boundary is the old
        # sorted extent and the merge touches a handful of pages where the
        # rewrite touches them all.
        def mutate(hf):
            n = hf.nrows
            hf.insert(
                {
                    "k": np.arange(n, n + 64).astype(np.int64),
                    "v": np.arange(64, dtype=np.int64) % 60,
                }
            )

        a, stats_a, b, stats_b = self._twin(mutate, nrows=30_000)
        assert stats_a.merged_from_row == 30_000
        merge_io = stats_a.pages_read + stats_a.pages_written
        rewrite_io = stats_b.pages_read + stats_b.pages_written
        assert merge_io < rewrite_io / 4
        for col in a.table.column_names:
            assert np.array_equal(a.table.column(col), b.table.column(col))

    def test_cm_incremental_refresh_is_exact(self):
        from repro.cm.correlation_map import CorrelationMap

        _, hf = self._file()
        cm = CorrelationMap(hf, ("v",), depth=1, cluster_width=4)
        n = hf.nrows
        hf.insert(
            {
                "k": np.arange(n, n + 200).astype(np.int64),
                "v": (np.arange(200, dtype=np.int64) * 7) % 60,
            }
        )
        stats = hf.tail_merge()
        outcome = cm.refresh_merged(hf, merged_from_row=stats.merged_from_row)
        assert outcome == "incremental"
        fresh = CorrelationMap(hf, ("v",), depth=1, cluster_width=4)
        # Every incremental lookup covers the fresh map's buckets: plans
        # built on it read at most a few extra pages, never miss rows.
        for lo, hi in ((0, 10), (25, 40), (50, 59)):
            probe = Query(
                "probe", "t", [RangePredicate("v", float(lo), float(hi))]
            )
            assert np.isin(fresh.lookup(probe), cm.lookup(probe)).all()

    def test_cm_refresh_merged_noop_and_rebuild(self):
        from repro.cm.correlation_map import CorrelationMap

        _, hf = self._file()
        cm = CorrelationMap(hf, ("v",), depth=1, cluster_width=4)
        assert cm.refresh_merged(hf, merged_from_row=0) == "noop"
        # Low-boundary merges leave most entry rows stale: amortization
        # demands a rebuild, not an ever-growing posting superset.
        rng = np.random.default_rng(2)
        hf.insert(
            {
                "k": rng.integers(0, 100, size=150).astype(np.int64),
                "v": rng.integers(0, 60, size=150),
            }
        )
        stats = hf.tail_merge()
        assert stats.merged_from_row < hf.nrows // 2
        assert (
            cm.refresh_merged(hf, merged_from_row=stats.merged_from_row)
            == "rebuild"
        )

    def test_executor_modes_agree_and_count(self, inst):
        from repro.obs import observed

        def run(compaction):
            with observed(f"refresh-{compaction}") as obs:
                session = EvalSession()
                with use_session(session):
                    _, db = _materialized(inst, session)
                    executor, _ = _apply_stream(
                        inst,
                        db,
                        session,
                        compaction=compaction,
                        compact_threshold=0.02,
                    )
                    out = {}
                    for query in inst.workload:
                        choice = db.run(query)
                        out[query.name] = (
                            choice.result.mask.sum(),
                            set(
                                db.object(choice.object_name)
                                .heapfile.source_rowids[choice.result.mask]
                                .tolist()
                            ),
                        )
            return executor, out, obs.metrics.counters

    # Same stream, same threshold: both modes compact, both answer
    # identically; only the I/O path differs.
        rewrite_ex, rewrite_out, _ = run("rewrite")
        merge_ex, merge_out, counters = run("tail-merge")
        assert rewrite_ex.compactions > 0
        assert merge_ex.compactions > 0
        assert merge_out == rewrite_out
        assert counters.get("storage.refresh.tail_merges", 0) > 0
        assert (
            counters.get("storage.refresh.cm_incremental", 0)
            + counters.get("storage.refresh.cm_rebuilds", 0)
        ) >= 0

    def test_invalid_compaction_mode_raises(self, inst):
        session = EvalSession()
        with use_session(session):
            _, db = _materialized(inst, session)
            with pytest.raises(ValueError, match="compaction"):
                RefreshExecutor(db, session=session, compaction="vacuum")
