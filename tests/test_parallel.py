"""ParallelSweep: sharded evaluation is bit-identical to serial.

The parallel layer must be invisible everywhere caching is: plan choices,
simulated costs and result masks from a multiprocess sweep equal the serial
ones exactly.  These tests also cover the deterministic partitioner, the
serial fallback, the harness loop, per-fact enumeration fan-out, and the
``scan_caching`` flag that reproduces the PR 2 engine.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.engine import (
    EvalSession,
    ParallelSweep,
    fork_available,
    shm_available,
    use_session,
)
from repro.engine.parallel import partition_chunks
from repro.experiments.harness import (
    CM_PROBE,
    evaluate_design,
    evaluate_designs,
)
from repro.workloads.registry import make

CONFIG = DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False)

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="platform cannot fork worker processes"
)


@pytest.fixture(scope="module")
def tpch_designs():
    inst = make("tpch", scale=0.05, seed=3)
    designer = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=CONFIG,
    )
    base = inst.total_base_bytes()
    return [designer.design(int(base * f)) for f in (0.5, 1.0, 1.5, 2.0)]


def _assert_identical(a, b):
    assert a.real_seconds == b.real_seconds
    for qname, x in a.plans.items():
        y = b.plans[qname]
        assert x.plan == y.plan
        assert x.object_name == y.object_name
        assert x.result.cost == y.result.cost
        assert np.array_equal(x.result.mask, y.result.mask)


class TestPartition:
    def test_contiguous_even_and_deterministic(self):
        assert partition_chunks(range(5), 2) == [[0, 1, 2], [3, 4]]
        assert partition_chunks(range(7), 3) == [[0, 1, 2], [3, 4], [5, 6]]
        assert partition_chunks(range(2), 4) == [[0], [1]]
        assert partition_chunks([], 4) == [[]] or partition_chunks([], 4) == []

    def test_partition_covers_every_index_once(self):
        for n in range(1, 9):
            for w in range(1, 6):
                chunks = partition_chunks(range(n), w)
                flat = [i for chunk in chunks for i in chunk]
                assert flat == list(range(n))

    def test_rejects_nonpositive_chunk_counts(self):
        with pytest.raises(ValueError, match="chunks must be >= 1"):
            partition_chunks(range(5), 0)
        with pytest.raises(ValueError, match="chunks must be >= 1"):
            partition_chunks(range(5), -2)


class TestSerialFallback:
    def test_workers_one_is_a_plain_loop(self, tpch_designs):
        session = EvalSession()
        sweep = ParallelSweep(workers=1)
        assert not sweep.parallel
        parallel = sweep.map(evaluate_design, tpch_designs, session=session)
        plain = []
        with use_session(EvalSession()):
            for design in tpch_designs:
                plain.append(evaluate_design(design))
        for a, b in zip(plain, parallel):
            _assert_identical(a, b)

    def test_single_item_never_forks(self, tpch_designs):
        result = ParallelSweep(workers=4).map(
            evaluate_design, tpch_designs[:1], session=EvalSession()
        )
        assert len(result) == 1
        assert result[0].real_seconds


@needs_fork
class TestParallelIdentity:
    @pytest.mark.parametrize("workers", [2, 3])
    def test_sharded_sweep_is_bit_identical(self, tpch_designs, workers):
        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        session = EvalSession()
        parallel = ParallelSweep(workers=workers).map(
            evaluate_design, tpch_designs, session=session
        )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        # Worker deltas merged back: the parent session now has the scan
        # results every budget produced, not just the warmed head's.
        assert session.stats["scan_misses"] > 0 or session._scan_results

    def test_warmup_disabled_still_identical(self, tpch_designs):
        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        parallel = ParallelSweep(workers=2, warmup=False).map(
            evaluate_design, tpch_designs, session=EvalSession()
        )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)

    def test_map_without_session(self, tpch_designs):
        doubled = ParallelSweep(workers=2).map(
            lambda x: x * 2, list(range(8))
        )
        assert doubled == [0, 2, 4, 6, 8, 10, 12, 14]


@needs_fork
class TestHarnessLoop:
    def test_evaluate_designs_matches_serial(self, tpch_designs):
        serial = evaluate_designs(tpch_designs, workers=1)
        parallel = evaluate_designs(tpch_designs, workers=2)
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
            assert b.design is a.design  # reattached, not shipped


class TestEnumerationFanout:
    def _designer(self):
        inst = make("apb", seed=5, actuals_rows=3000)
        assert len(inst.workload.fact_tables()) > 1  # the fan-out is real
        return CoraddDesigner(
            inst.flat_tables,
            inst.workload,
            inst.primary_keys,
            inst.fk_attrs,
            config=CONFIG,
        )

    @needs_fork
    def test_parallel_enumeration_is_bit_identical(self):
        serial = list(self._designer().enumerate())
        parallel = list(self._designer().enumerate(workers=2))
        assert len(serial) == len(parallel)
        for a, b in zip(serial, parallel):
            assert a.cand_id == b.cand_id
            assert a.signature() == b.signature()
            assert a.size_bytes == b.size_bytes
            assert a.runtimes == b.runtimes
            assert a.btree_keys == b.btree_keys

    def test_single_fact_workload_skips_fanout(self, tpch_designs):
        inst = make("tpch", scale=0.05, seed=3)
        designer = CoraddDesigner(
            inst.flat_tables,
            inst.workload,
            inst.primary_keys,
            inst.fk_attrs,
            config=CONFIG,
        )
        assert len(designer.enumerators) == 1
        assert len(designer.enumerate(workers=4)) > 0


@needs_fork
class TestExperimentWorkersKnob:
    def test_run_tpch_rows_identical_across_workers(self):
        from repro.experiments.tpch_design import run_tpch

        kwargs = dict(
            scale=0.05, fractions=(0.5, 1.0, 2.0), seed=9, use_feedback=False
        )
        serial = run_tpch(workers=1, **kwargs)
        parallel = run_tpch(workers=2, **kwargs)
        assert serial.rows == parallel.rows


@needs_fork
class TestWorkStealing:
    """The steal scheduler's contract: whichever idle worker pulls which
    item, in whatever order stragglers resolve, results are bit-identical
    to a serial sweep and the merged-back cache is the same cache."""

    def test_identical_under_randomized_stragglers(self, tpch_designs):
        """Per-item delays drawn from a fixed seed scramble completion
        order, so dispatch order != completion order — steal-order
        independence is exercised for real."""
        delays = np.random.default_rng(17).uniform(
            0.0, 0.05, len(tpch_designs)
        )

        def evaluate(design):
            time.sleep(delays[tpch_designs.index(design)])
            return evaluate_design(design)

        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        sweep = ParallelSweep(workers=3, scheduler="steal")
        parallel = sweep.map(evaluate, tpch_designs, session=EvalSession())
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        assert sweep.last_stats["scheduler"] == "steal"

    def test_merged_cache_equals_serial_cache(self, tpch_designs):
        """Delta merge-back completeness: after the sweep the parent
        session holds exactly the cache entries a serial sweep computes —
        keys are content-derived, so set equality is semantic equality."""
        serial_session = EvalSession()
        with use_session(serial_session):
            for design in tpch_designs:
                evaluate_design(design)
        sweep_session = EvalSession()
        ParallelSweep(workers=2).map(
            evaluate_design, tpch_designs, session=sweep_session
        )
        serial_keys = serial_session.cache_keys()
        sweep_keys = sweep_session.cache_keys()
        assert set(serial_keys) == set(sweep_keys)
        for cache in serial_keys:
            assert serial_keys[cache] == sweep_keys[cache], cache

    def test_steal_and_chunks_schedulers_agree(self, tpch_designs):
        results = {}
        for scheduler in ("steal", "chunks"):
            results[scheduler] = ParallelSweep(
                workers=2, scheduler=scheduler
            ).map(evaluate_design, tpch_designs, session=EvalSession())
        for a, b in zip(results["steal"], results["chunks"]):
            _assert_identical(a, b)

    def test_shared_memory_off_is_identical(self, tpch_designs):
        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        sweep = ParallelSweep(workers=2, shared_memory=False)
        parallel = sweep.map(
            evaluate_design, tpch_designs, session=EvalSession()
        )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        assert sweep.last_stats["shm_bytes"] == 0

    @pytest.mark.skipif(not shm_available(), reason="no POSIX shm mount")
    def test_shared_memory_on_ships_arrays_by_reference(self, tpch_designs):
        sweep = ParallelSweep(workers=2, shared_memory=True)
        sweep.map(evaluate_design, tpch_designs, session=EvalSession())
        stats = sweep.last_stats
        assert stats["shm_bytes"] > 0
        assert stats["shm_segments"] >= 1
        # The bytes that crossed by reference dwarf what stayed inline.
        assert stats["snapshot_shared_bytes"] > stats["snapshot_array_bytes"]

    def test_unknown_scheduler_rejected(self):
        with pytest.raises(ValueError, match="scheduler"):
            ParallelSweep(workers=2, scheduler="fifo")

    def test_per_worker_accounting(self, tpch_designs):
        sweep = ParallelSweep(workers=2)
        sweep.map(evaluate_design, tpch_designs, session=EvalSession())
        stats = sweep.last_stats
        # Warmup ran item 0 in the parent; workers handled the rest, and
        # every dispatched task is attributed to exactly one worker.
        assert stats["tasks"] == len(tpch_designs) - 1
        assert len(stats["worker_tasks"]) == len(stats["worker_busy_seconds"])
        assert sum(stats["worker_tasks"]) == stats["tasks"]


@needs_fork
class TestWarmupProbe:
    def test_cm_probe_shards_first_item_probes(self, tpch_designs):
        """The PR 3 leftover: the warmup item's per-query CM probes fan
        out across the pool, land under the same keys the serial path
        uses, and leave results bit-identical."""
        with use_session(EvalSession()):
            serial = [evaluate_design(d) for d in tpch_designs]
        session = EvalSession()
        with use_session(session):
            expected_tasks = CM_PROBE.tasks((tpch_designs[0],))
        sweep = ParallelSweep(workers=2)
        parallel = sweep.map(
            evaluate_design, tpch_designs, session=session, probe=CM_PROBE
        )
        for a, b in zip(serial, parallel):
            _assert_identical(a, b)
        if expected_tasks:  # designs with CMs: the probe phase really ran
            assert sweep.last_stats["probe_tasks"] == len(expected_tasks)
            assert session._cm_choices

    def test_probe_tasks_skip_already_cached_choices(self, tpch_designs):
        session = EvalSession()
        ParallelSweep(workers=2).map(
            evaluate_design, tpch_designs, session=session, probe=CM_PROBE
        )
        with use_session(session):
            again = CM_PROBE.tasks((tpch_designs[0],))
        assert again == []


class TestScanCachingFlag:
    def test_flag_off_reproduces_pr2_engine(self, tpch_designs):
        design = tpch_designs[0]
        pr2 = EvalSession(scan_caching=False)
        with use_session(pr2):
            a = evaluate_design(design)
            b = evaluate_design(design)
        _assert_identical(a, b)
        for stat in (
            "ordering_hits", "ordering_misses",
            "fragment_hits", "fragment_misses",
            "expansion_hits", "expansion_misses",
            "scan_hits", "scan_misses",
        ):
            assert pr2.stats[stat] == 0

    def test_flag_on_hits_scan_tier_on_repeat(self, tpch_designs):
        design = tpch_designs[0]
        session = EvalSession()
        with use_session(session):
            a = evaluate_design(design)
            b = evaluate_design(design)
        _assert_identical(a, b)
        assert session.stats["scan_hits"] > 0
        assert session.stats["ordering_misses"] > 0
