"""Cost models: correlation-aware tracks clustering; oblivious is blind."""

import pytest

from repro.costmodel.base import ObjectGeometry
from repro.costmodel.correlation_aware import CorrelationAwareCostModel, expected_runs
from repro.costmodel.oblivious import ObliviousCostModel, cardenas_pages
from repro.relational.query import Aggregate, EqPredicate, Query, RangePredicate
from repro.stats.collector import TableStatistics
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from tests.conftest import make_people


@pytest.fixture(scope="module")
def people():
    return make_people(n=60_000, seed=4)


@pytest.fixture(scope="module")
def stats(people):
    return TableStatistics(people, synopsis_rows=6_000)


@pytest.fixture(scope="module")
def disk():
    return DiskModel()


ATTRS = ("state", "region", "city", "salary")


def geom(stats, disk, key):
    return ObjectGeometry.from_attrs(stats, disk, ATTRS, key)


class TestObjectGeometry:
    def test_from_attrs(self, stats, disk):
        g = geom(stats, disk, ("state",))
        assert g.nrows == stats.nrows
        assert g.row_bytes == 12
        assert g.npages == disk.pages_for_rows(stats.nrows, 12)
        assert g.full_scan_s > 0

    def test_cluster_key_must_be_in_attrs(self, stats, disk):
        with pytest.raises(ValueError):
            ObjectGeometry.from_attrs(stats, disk, ("state",), ("city",))

    def test_covers(self, stats, disk):
        g = geom(stats, disk, ("state",))
        q = Query("q", "people", [EqPredicate("city", 5)], [Aggregate("sum", ("salary",))])
        assert g.covers(q)
        q2 = Query("q", "people", [EqPredicate("nope", 5)])
        assert not g.covers(q2)

    def test_from_heapfile_matches(self, people, disk, stats):
        hf = HeapFile(people.project(list(ATTRS)), ("state",), disk)
        g = ObjectGeometry.from_heapfile(hf)
        assert g.npages == hf.npages
        assert g.cluster_key == ("state",)


class TestExpectedRuns:
    def test_limits(self):
        assert expected_runs(0, 100) == 0.0
        assert expected_runs(100, 100) == 1.0
        assert expected_runs(1, 100) == pytest.approx(1.0)

    def test_middle_is_many(self):
        assert expected_runs(50, 100) == pytest.approx(25.5)


class TestCorrelationAwareModel:
    def test_uncovered_query_is_infinite(self, stats, disk):
        model = CorrelationAwareCostModel(stats, disk)
        q = Query("q", "people", [EqPredicate("nope", 1)])
        assert model.query_seconds(geom(stats, disk, ("state",)), q) == float("inf")

    def test_never_worse_than_full_scan(self, stats, disk):
        model = CorrelationAwareCostModel(stats, disk)
        g = geom(stats, disk, ("salary",))
        q = Query("q", "people", [EqPredicate("city", 123)])
        full = g.full_scan_s + disk.seek_cost_s
        assert model.query_seconds(g, q) <= full + 1e-12

    def test_correlated_clustering_estimated_cheaper(self, stats, disk):
        """The model must prefer clusterings correlated with predicates —
        the property the whole designer rests on."""
        model = CorrelationAwareCostModel(stats, disk)
        q = Query("q", "people", [EqPredicate("city", 123)])
        corr = model.query_seconds(geom(stats, disk, ("state",)), q)
        uncorr = model.query_seconds(geom(stats, disk, ("salary",)), q)
        assert corr < uncorr

    def test_clustered_prefix_beats_cm(self, stats, disk):
        model = CorrelationAwareCostModel(stats, disk)
        q = Query("q", "people", [EqPredicate("state", 7)])
        est = model.explain(geom(stats, disk, ("state",)), q)
        assert est.plan.startswith("clustered")
        assert est.fragments == pytest.approx(1.0, abs=1.0)

    def test_use_cm_flag_disables_cm_plans(self, stats, disk):
        with_cm = CorrelationAwareCostModel(stats, disk, use_cm=True)
        without = CorrelationAwareCostModel(stats, disk, use_cm=False)
        g = geom(stats, disk, ("state",))
        q = Query("q", "people", [EqPredicate("city", 123)])
        assert with_cm.query_seconds(g, q) <= without.query_seconds(g, q)
        assert without.explain(g, q).plan == "full_scan"

    def test_secondary_btree_plan_tracks_clustering(self, disk):
        # Wide rows, so scattered matches out-distance the readahead gap
        # (narrow rows genuinely coalesce into one fragment either way),
        # and a deep synopsis so the 1/1000 predicate leaves enough sample
        # matches for the layout estimator.
        from tests.conftest import make_wide_people

        wide = make_wide_people(n=120_000, seed=4)
        deep = TableStatistics(wide, synopsis_rows=24_000)
        model = CorrelationAwareCostModel(deep, disk)
        q = Query("q", "people", [EqPredicate("city", 123)])
        attrs = tuple(wide.column_names)
        corr = model.secondary_btree_plan(
            ObjectGeometry.from_attrs(deep, disk, attrs, ("state",)), q, ("city",)
        )
        uncorr = model.secondary_btree_plan(
            ObjectGeometry.from_attrs(deep, disk, attrs, ("salary",)), q, ("city",)
        )
        assert corr.seconds < uncorr.seconds
        assert corr.fragments < uncorr.fragments

    def test_model_close_to_simulator(self, people, stats, disk):
        """Model estimates should land within a small factor of measured
        simulated runtimes — the CORADD-Model ~= CORADD property."""
        from repro.storage.access import clustered_scan

        model = CorrelationAwareCostModel(stats, disk)
        hf = HeapFile(people.project(list(ATTRS)), ("state",), disk)
        q = Query("q", "people", [EqPredicate("state", 7)])
        measured = clustered_scan(hf, q).seconds
        estimated = model.query_seconds(ObjectGeometry.from_heapfile(hf), q)
        assert estimated == pytest.approx(measured, rel=1.0)


class TestObliviousModel:
    def test_cardenas_limits(self):
        assert cardenas_pages(100, 0) == 0.0
        assert cardenas_pages(100, 1) == pytest.approx(1.0)
        assert cardenas_pages(100, 10_000) == pytest.approx(100.0, rel=0.01)

    def test_flat_across_clusterings(self, stats, disk):
        """Figure 10's defining property: identical secondary-plan estimates
        for every clustered key."""
        model = ObliviousCostModel(stats, disk)
        q = Query("q", "people", [EqPredicate("city", 123)])
        estimates = {
            model.secondary_index_plan(geom(stats, disk, key), q).seconds
            for key in (("state",), ("salary",), ("city",), ("region",))
        }
        assert len(estimates) == 1

    def test_independence_assumption(self, stats, disk):
        """Conjunctive selectivity is multiplied even when predicates are
        redundant (city implies state)."""
        model = ObliviousCostModel(stats, disk)
        q_both = Query(
            "q", "people", [EqPredicate("city", 123), EqPredicate("state", 6)]
        )
        q_city = Query("q2", "people", [EqPredicate("city", 123)])
        g = geom(stats, disk, ("region",))
        both = model.secondary_index_plan(g, q_both)
        city = model.secondary_index_plan(g, q_city)
        # Redundant predicate shrinks the oblivious estimate (wrongly).
        assert both.seconds < city.seconds

    def test_no_seek_penalty_makes_it_optimistic(self, people, stats, disk):
        """The oblivious estimate must undercut the real scattered scan."""
        from repro.storage.access import secondary_btree_scan

        model = ObliviousCostModel(stats, disk)
        hf = HeapFile(people.project(list(ATTRS)), ("salary",), disk)
        q = Query("q", "people", [EqPredicate("city", 123)])
        real = secondary_btree_scan(hf, q, ("city",)).seconds
        est = model.secondary_index_plan(ObjectGeometry.from_heapfile(hf), q).seconds
        assert est < real

    def test_plan_options_structure(self, stats, disk):
        model = ObliviousCostModel(stats, disk)
        g = geom(stats, disk, ("state",))
        q = Query("q", "people", [EqPredicate("state", 3), EqPredicate("city", 70)])
        options = model.plan_options(g, q, btree_keys=(("city",),))
        kinds = {kind for kind, _, _ in options}
        assert kinds == {"full", "clustered", "secondary"}

    def test_uncovered_is_infinite(self, stats, disk):
        model = ObliviousCostModel(stats, disk)
        q = Query("q", "people", [EqPredicate("nope", 1)])
        assert model.query_seconds(geom(stats, disk, ("state",)), q) == float("inf")
