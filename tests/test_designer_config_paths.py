"""Designer configuration paths not covered by the main integration tests."""

import pytest

from repro.design.designer import CoraddDesigner, DesignerConfig
from repro.experiments.harness import evaluate_design


@pytest.fixture(scope="module")
def budget(ssb_small):
    return int(ssb_small.total_base_bytes() * 0.6)


def make_designer(ssb_small, **config_kwargs):
    config = DesignerConfig(
        t0=1, alphas=(0.0, 0.5), use_feedback=False, **config_kwargs
    )
    return CoraddDesigner(
        ssb_small.flat_tables,
        ssb_small.workload,
        ssb_small.primary_keys,
        ssb_small.fk_attrs,
        config=config,
    )


class TestNoCMs:
    def test_design_without_cms(self, ssb_small, budget):
        """use_cms=False: the cost model prices clustered scans only and
        materialization attaches no CMs — a pure-MV designer."""
        designer = make_designer(ssb_small, use_cms=False)
        design = designer.design(budget)
        assert design.size_bytes <= budget
        db = design.materialize()
        assert all(not obj.cms for obj in db.objects.values())
        evaluated = evaluate_design(design)
        assert evaluated.real_total > 0

    def test_cms_improve_designs(self, ssb_small, budget):
        """With CMs available the model never expects worse designs —
        the CM plan space is a superset."""
        with_cms = make_designer(ssb_small, use_cms=True).design(budget)
        without = make_designer(ssb_small, use_cms=False).design(budget)
        assert (
            with_cms.total_expected_seconds
            <= without.total_expected_seconds + 1e-9
        )


class TestNoDominationPruning:
    def test_same_optimum_with_and_without_pruning(self, ssb_small, budget):
        """Domination pruning is an optimization, not an approximation:
        the ILP optimum must be identical (Section 5.3's guarantee)."""
        pruned = make_designer(ssb_small, prune_dominated=True)
        unpruned = make_designer(ssb_small, prune_dominated=False)
        d1 = pruned.design(budget)
        d2 = unpruned.design(budget)
        assert d1.ilp.objective == pytest.approx(d2.ilp.objective, rel=1e-9)
        assert len(unpruned.enumerate()) >= len(pruned.enumerate())


class TestSolverBackendConfig:
    def test_bnb_backend_matches_scipy(self, ssb_small, budget):
        scipy_designer = make_designer(ssb_small, solver_backend="scipy")
        bnb_designer = make_designer(ssb_small, solver_backend="bnb")
        d_scipy = scipy_designer.design(budget)
        d_bnb = bnb_designer.design(budget)
        assert d_scipy.ilp.objective == pytest.approx(
            d_bnb.ilp.objective, rel=1e-6
        )


class TestMaxK:
    def test_max_k_caps_group_sweep(self, ssb_small, budget):
        capped = make_designer(ssb_small, max_k=3)
        design = capped.design(budget)
        assert design.size_bytes <= budget
        # Singletons are still seeded regardless of the cap.
        singles = [c for c in capped.enumerate() if len(c.group) == 1]
        assert singles
