"""Unit tests for predicates, queries, workloads."""

import numpy as np
import pytest

from repro.relational.query import (
    KIND_EQ,
    KIND_IN,
    KIND_RANGE,
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from tests.test_table import make_table


class TestPredicates:
    def test_eq_mask(self):
        p = EqPredicate("a", 2)
        assert list(p.mask(np.array([1, 2, 2, 3]))) == [False, True, True, False]
        assert p.kind == KIND_EQ
        assert p.value_range() == (2, 2)

    def test_range_mask_inclusive(self):
        p = RangePredicate("a", 2, 4)
        assert list(p.mask(np.array([1, 2, 4, 5]))) == [False, True, True, False]
        assert p.kind == KIND_RANGE

    def test_range_rejects_empty(self):
        with pytest.raises(ValueError):
            RangePredicate("a", 5, 2)

    def test_in_mask_and_normalization(self):
        p = InPredicate("a", (3, 1, 3))
        assert p.values == (1, 3)
        assert list(p.mask(np.array([1, 2, 3]))) == [True, False, True]
        assert p.kind == KIND_IN
        assert p.value_range() == (1, 3)

    def test_in_rejects_empty(self):
        with pytest.raises(ValueError):
            InPredicate("a", ())

    def test_selectivity_exact(self):
        t = make_table(a=[1, 1, 2, 3])
        assert EqPredicate("a", 1).selectivity(t) == pytest.approx(0.5)
        assert RangePredicate("a", 2, 3).selectivity(t) == pytest.approx(0.5)

    def test_kind_ordering_matches_paper(self):
        # Section 4.2: equality before range before IN.
        assert KIND_EQ < KIND_RANGE < KIND_IN


class TestQuery:
    def make_query(self) -> Query:
        return Query(
            "q",
            "fact",
            [EqPredicate("a", 1), RangePredicate("b", 0, 5)],
            [Aggregate("sum", ("m", "n"))],
            group_by=("g",),
            order_by=("o",),
        )

    def test_attribute_sets(self):
        q = self.make_query()
        assert q.predicate_attrs() == ("a", "b")
        assert q.target_attrs() == ("m", "n", "g", "o")
        assert q.attributes() == ("a", "b", "m", "n", "g", "o")

    def test_predicate_on(self):
        q = self.make_query()
        assert q.predicate_on("a") is not None
        assert q.predicate_on("zzz") is None

    def test_duplicate_predicate_attr_rejected(self):
        with pytest.raises(ValueError, match="multiple predicates"):
            Query("q", "f", [EqPredicate("a", 1), EqPredicate("a", 2)])

    def test_nonpositive_frequency_rejected(self):
        with pytest.raises(ValueError):
            Query("q", "f", [EqPredicate("a", 1)], frequency=0)

    def test_mask_conjunction(self):
        t = make_table(a=[1, 1, 2], b=[0, 9, 0], m=[1, 1, 1], n=[1, 1, 1], g=[0, 0, 0], o=[0, 0, 0])
        q = self.make_query()
        assert list(q.mask(t)) == [True, False, False]
        assert q.selectivity(t) == pytest.approx(1 / 3)

    def test_answer_aggregates(self):
        t = make_table(a=[1, 1, 2], m=[2, 3, 100])
        q = Query(
            "q",
            "f",
            [EqPredicate("a", 1)],
            [
                Aggregate("sum", ("m",)),
                Aggregate("avg", ("m",)),
                Aggregate("min", ("m",)),
                Aggregate("max", ("m",)),
                Aggregate("count", ("m",)),
            ],
        )
        ans = q.answer(t)
        assert ans["sum(m)"] == 5
        assert ans["avg(m)"] == pytest.approx(2.5)
        assert ans["min(m)"] == 2
        assert ans["max(m)"] == 3
        assert ans["count(m)"] == 2
        assert ans["count"] == 2

    def test_answer_product_aggregate(self):
        t = make_table(a=[1, 1], p=[10, 20], d=[2, 3])
        q = Query("q", "f", [EqPredicate("a", 1)], [Aggregate("sum", ("p", "d"))])
        assert q.answer(t)["sum(p*d)"] == 10 * 2 + 20 * 3

    def test_unknown_aggregate_rejected(self):
        t = make_table(a=[1], m=[1])
        q = Query("q", "f", [EqPredicate("a", 1)], [Aggregate("median", ("m",))])
        with pytest.raises(ValueError, match="unknown aggregate"):
            q.answer(t)


class TestWorkload:
    def queries(self):
        return [
            Query("q1", "f1", [EqPredicate("a", 1)], [Aggregate("sum", ("m",))]),
            Query("q2", "f2", [EqPredicate("b", 1)], [Aggregate("sum", ("m",))]),
            Query("q3", "f1", [EqPredicate("c", 1)], [Aggregate("sum", ("n",))]),
        ]

    def test_duplicate_names_rejected(self):
        qs = self.queries()
        qs.append(Query("q1", "f1", [EqPredicate("z", 1)]))
        with pytest.raises(ValueError, match="duplicate"):
            Workload("w", qs)

    def test_fact_tables_in_order(self):
        assert Workload("w", self.queries()).fact_tables() == ["f1", "f2"]

    def test_queries_for_fact(self):
        w = Workload("w", self.queries())
        assert [q.name for q in w.queries_for_fact("f1")] == ["q1", "q3"]

    def test_attribute_universe(self):
        w = Workload("w", self.queries())
        assert w.attribute_universe("f1") == ("a", "m", "c", "n")
        assert set(w.attribute_universe()) == {"a", "b", "c", "m", "n"}

    def test_lookup(self):
        w = Workload("w", self.queries())
        assert w.query("q2").fact_table == "f2"
        with pytest.raises(KeyError):
            w.query("zzz")
