"""The Section 5.1 design ILP: correctness of the formulation itself."""

import pytest

from repro.design.baselines import greedy_mk
from repro.design.ilp_formulation import (
    DesignProblem,
    build_design_ilp,
    choose_candidates,
)
from repro.design.mv import KIND_FACT_RECLUSTER, CandidateSet
from repro.relational.query import Aggregate, EqPredicate, Query
from tests.test_design_units import cand


def make_queries(names):
    return [
        Query(name, "f", [EqPredicate("a", i)], [Aggregate("sum", ("b",))])
        for i, name in enumerate(names)
    ]


def problem_of(cands, queries, base, budget) -> DesignProblem:
    cs = CandidateSet()
    for c in cands:
        assert cs.add(c) is not None
    return DesignProblem(cs, queries, base, budget)


class TestChains:
    def test_chain_sorted_and_filtered(self):
        queries = make_queries(["q1"])
        p = problem_of(
            [
                cand("fast", 10, {"q1": 1.0}, attrs=("a", "b")),
                cand("slow", 10, {"q1": 5.0}, attrs=("a", "b", "x")),
                cand("useless", 10, {"q1": 50.0}, attrs=("a", "b", "y")),
            ],
            queries,
            {"q1": 10.0},
            100,
        )
        chain = p.chain_for(queries[0])
        assert [c.cand_id for _, c in chain] == ["fast", "slow"]


class TestKnownOptima:
    def test_picks_best_within_budget(self):
        queries = make_queries(["q1", "q2"])
        p = problem_of(
            [
                cand("m1", 60, {"q1": 1.0}, attrs=("a", "b")),
                cand("m2", 60, {"q2": 1.0}, attrs=("a", "b", "x")),
                cand("shared", 80, {"q1": 3.0, "q2": 3.0}, attrs=("a", "b", "y")),
            ],
            queries,
            {"q1": 10.0, "q2": 10.0},
            100,
        )
        # Budget 100: can't take both dedicated (120); shared (80) total 6
        # beats one dedicated + base (11).
        design = choose_candidates(p)
        assert design.chosen_ids == ["shared"]
        assert design.objective == pytest.approx(6.0)
        assert design.assignment == {"q1": "shared", "q2": "shared"}

    def test_bigger_budget_prefers_dedicated_pair(self):
        queries = make_queries(["q1", "q2"])
        p = problem_of(
            [
                cand("m1", 60, {"q1": 1.0}, attrs=("a", "b")),
                cand("m2", 60, {"q2": 1.0}, attrs=("a", "b", "x")),
                cand("shared", 80, {"q1": 3.0, "q2": 3.0}, attrs=("a", "b", "y")),
            ],
            queries,
            {"q1": 10.0, "q2": 10.0},
            130,
        )
        design = choose_candidates(p)
        assert sorted(design.chosen_ids) == ["m1", "m2"]
        assert design.objective == pytest.approx(2.0)

    def test_nothing_fits_returns_base(self):
        queries = make_queries(["q1"])
        p = problem_of(
            [cand("m1", 1000, {"q1": 1.0}, attrs=("a", "b"))],
            queries,
            {"q1": 7.0},
            10,
        )
        design = choose_candidates(p)
        assert design.chosen_ids == []
        assert design.objective == pytest.approx(7.0)
        assert design.assignment["q1"] is None

    def test_no_useful_candidates_short_circuits(self):
        queries = make_queries(["q1"])
        p = problem_of(
            [cand("m1", 10, {"q1": 99.0}, attrs=("a", "b"))],  # slower than base
            queries,
            {"q1": 7.0},
            100,
        )
        design = choose_candidates(p)
        assert design.status == "optimal"
        assert design.chosen_ids == []
        assert design.num_variables == 0

    def test_objective_equals_recomputed_total(self):
        queries = make_queries(["q1", "q2", "q3"])
        p = problem_of(
            [
                cand("m1", 30, {"q1": 1.0, "q2": 4.0}, attrs=("a", "b")),
                cand("m2", 40, {"q2": 2.0, "q3": 2.5}, attrs=("a", "b", "x")),
                cand("m3", 50, {"q1": 0.5, "q3": 6.0}, attrs=("a", "b", "y")),
            ],
            queries,
            {"q1": 10.0, "q2": 9.0, "q3": 8.0},
            75,
        )
        design = choose_candidates(p)
        total = sum(design.expected_seconds.values())
        assert design.objective == pytest.approx(total)

    def test_frequencies_weight_objective(self):
        q_hot = Query("hot", "f", [EqPredicate("a", 1)], frequency=10.0)
        q_cold = Query("cold", "f", [EqPredicate("a", 2)], frequency=1.0)
        p = problem_of(
            [
                cand("m_hot", 50, {"hot": 1.0}, attrs=("a", "b")),
                cand("m_cold", 50, {"cold": 1.0}, attrs=("a", "b", "x")),
            ],
            [q_hot, q_cold],
            {"hot": 5.0, "cold": 5.0},
            50,
        )
        design = choose_candidates(p)
        assert design.chosen_ids == ["m_hot"]

    def test_one_clustering_per_fact(self):
        queries = make_queries(["q1", "q2"])
        p = problem_of(
            [
                cand("fr1", 10, {"q1": 1.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "b")),
                cand("fr2", 10, {"q2": 1.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "b", "x")),
            ],
            queries,
            {"q1": 10.0, "q2": 10.0},
            1000,
        )
        design = choose_candidates(p)
        assert len(design.chosen_ids) == 1  # condition (4)

    def test_dense_and_prefix_encodings_agree(self):
        """The prefix-sum encoding must give the same optimum as the paper's
        literal constraint rows."""
        import repro.design.ilp_formulation as f

        queries = make_queries(["q1", "q2"])
        cands = [
            cand(f"m{i}", 20 + i, {"q1": 10.0 - i * 0.1, "q2": 9.0 - i * 0.05},
                 attrs=("a", "b", f"x{i}"))
            for i in range(12)
        ]
        p = problem_of(cands, queries, {"q1": 20.0, "q2": 20.0}, 70)
        old = f._DENSE_CHAIN_LIMIT
        try:
            f._DENSE_CHAIN_LIMIT = 64
            dense = choose_candidates(p)
            f._DENSE_CHAIN_LIMIT = 2
            prefix = choose_candidates(p)
        finally:
            f._DENSE_CHAIN_LIMIT = old
        assert dense.objective == pytest.approx(prefix.objective)
        assert dense.chosen_ids == prefix.chosen_ids

    def test_model_statistics_exposed(self):
        queries = make_queries(["q1"])
        p = problem_of(
            [cand("m1", 10, {"q1": 1.0}, attrs=("a", "b"))], queries, {"q1": 5.0}, 100
        )
        model = build_design_ilp(p)
        assert model.num_variables >= 2  # y + at least one x
        design = choose_candidates(p)
        assert design.num_variables == model.num_variables
        assert design.solve_seconds >= 0


class TestGreedyMK:
    def shared_problem(self):
        queries = make_queries(["q1", "q2", "q3"])
        cands = [
            cand("m1", 60, {"q1": 1.0}, attrs=("a", "b")),
            cand("m2", 60, {"q2": 1.0}, attrs=("a", "b", "x")),
            cand("m3", 60, {"q3": 1.0}, attrs=("a", "b", "y")),
            cand("big", 100, {"q1": 4.0, "q2": 4.0, "q3": 4.0}, attrs=("a", "b", "z")),
        ]
        return problem_of(cands, queries, {"q1": 10.0, "q2": 10.0, "q3": 10.0}, 120)

    def test_greedy_never_beats_ilp(self):
        p = self.shared_problem()
        ilp = choose_candidates(p)
        greedy = greedy_mk(p, m=2)
        assert greedy.objective >= ilp.objective - 1e-9

    def test_greedy_respects_budget(self):
        p = self.shared_problem()
        greedy = greedy_mk(p, m=2)
        used = sum(
            p.candidates.candidate(cid).size_bytes for cid in greedy.chosen_ids
        )
        assert used <= p.budget_bytes

    def test_greedy_respects_one_clustering_per_fact(self):
        queries = make_queries(["q1", "q2"])
        p = problem_of(
            [
                cand("fr1", 10, {"q1": 1.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "b")),
                cand("fr2", 10, {"q2": 1.0}, kind=KIND_FACT_RECLUSTER, attrs=("a", "b", "x")),
            ],
            queries,
            {"q1": 10.0, "q2": 10.0},
            1000,
        )
        greedy = greedy_mk(p, m=2)
        assert len(greedy.chosen_ids) <= 1

    def test_greedy_empty_pool(self):
        p = problem_of([], make_queries(["q1"]), {"q1": 3.0}, 10)
        greedy = greedy_mk(p)
        assert greedy.chosen_ids == []
        assert greedy.objective == pytest.approx(3.0)

    def test_greedy_m1_still_seeds(self):
        p = self.shared_problem()
        greedy = greedy_mk(p, m=1)
        assert greedy.objective < sum(p.base_seconds.values())

    def test_greedy_k_caps_candidates(self):
        p = self.shared_problem()
        greedy = greedy_mk(p, m=1, k=1)
        assert len(greedy.chosen_ids) <= 1
