"""Unit + property tests for columnar tables and the hash join."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table, hash_join
from repro.relational.types import INT32, INT64


def make_table(**cols) -> Table:
    schema = TableSchema("t", [Column(n, INT64) for n in cols])
    return Table(schema, {n: np.asarray(v) for n, v in cols.items()})


class TestTableBasics:
    def test_nrows(self):
        assert make_table(a=[1, 2, 3]).nrows == 3

    def test_ragged_columns_rejected(self):
        schema = TableSchema("t", [Column("a", INT64), Column("b", INT64)])
        with pytest.raises(ValueError, match="ragged"):
            Table(schema, {"a": np.array([1]), "b": np.array([1, 2])})

    def test_missing_column_rejected(self):
        schema = TableSchema("t", [Column("a", INT64), Column("b", INT64)])
        with pytest.raises(ValueError, match="missing"):
            Table(schema, {"a": np.array([1])})

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError):
            make_table(a=[1]).column("z")

    def test_project_dedup_and_order(self):
        t = make_table(a=[1], b=[2], c=[3])
        p = t.project(["c", "a", "c"])
        assert p.column_names == ["a", "c"]

    def test_select_mask_and_index(self):
        t = make_table(a=[10, 20, 30])
        assert list(t.select(np.array([True, False, True])).column("a")) == [10, 30]
        assert list(t.select(np.array([2, 0])).column("a")) == [30, 10]

    def test_order_by_lexicographic(self):
        t = make_table(a=[2, 1, 2, 1], b=[1, 2, 0, 1])
        s = t.order_by(("a", "b"))
        assert list(zip(s.column("a"), s.column("b"))) == [
            (1, 1), (1, 2), (2, 0), (2, 1),
        ]

    def test_order_by_empty_key_is_identity(self):
        t = make_table(a=[3, 1, 2])
        assert list(t.order_by(()).column("a")) == [3, 1, 2]

    def test_distinct_count_single_and_joint(self):
        t = make_table(a=[1, 1, 2, 2], b=[1, 2, 1, 1])
        assert t.distinct_count(("a",)) == 2
        assert t.distinct_count(("b",)) == 2
        assert t.distinct_count(("a", "b")) == 3
        assert t.distinct_count(()) == 1

    def test_distinct_rows(self):
        t = make_table(a=[1, 1, 2], b=[5, 5, 6])
        d = t.distinct_rows(("a", "b"))
        assert d.nrows == 2

    def test_sample_bounds_and_determinism(self):
        t = make_table(a=list(range(100)))
        s1 = t.sample(10, seed=3)
        s2 = t.sample(10, seed=3)
        assert s1.nrows == 10
        assert list(s1.column("a")) == list(s2.column("a"))
        assert t.sample(1000).nrows == 100

    def test_total_bytes(self):
        t = make_table(a=[1, 2], b=[3, 4])
        assert t.total_bytes() == 2 * 16
        assert t.total_bytes(("a",)) == 16

    def test_decode_without_decoder(self):
        assert make_table(a=[7]).decode("a", 7) == 7

    def test_decode_with_decoder(self):
        schema = TableSchema("t", [Column("a", INT32)])
        t = Table(schema, {"a": np.array([0, 1])}, decoders={"a": ["x", "y"]})
        assert t.decode("a", 1) == "y"


@settings(max_examples=50, deadline=None)
@given(
    values=st.lists(
        st.tuples(st.integers(0, 5), st.integers(0, 5)), min_size=1, max_size=60
    )
)
def test_joint_distinct_matches_python_set(values):
    a = [v[0] for v in values]
    b = [v[1] for v in values]
    t = make_table(a=a, b=b)
    assert t.distinct_count(("a", "b")) == len(set(values))


@settings(max_examples=50, deadline=None)
@given(
    keys=st.lists(st.integers(0, 9), min_size=1, max_size=50),
)
def test_sort_permutation_sorts(keys):
    t = make_table(a=keys)
    perm = t.sort_permutation(("a",))
    arr = np.asarray(keys)[perm]
    assert (np.diff(arr) >= 0).all()


class TestHashJoin:
    def test_join_pulls_dimension_columns(self):
        left = make_table(fk=[2, 1, 2], m=[10, 20, 30])
        right = make_table(dk=[1, 2], attr=[100, 200])
        joined = hash_join(left, right, "fk", "dk")
        assert joined.column_names == ["fk", "m", "attr"]
        assert list(joined.column("attr")) == [200, 100, 200]

    def test_join_preserves_left_order_and_count(self):
        left = make_table(fk=[3, 3, 1, 2], m=[1, 2, 3, 4])
        right = make_table(dk=[1, 2, 3], attr=[10, 20, 30])
        joined = hash_join(left, right, "fk", "dk")
        assert joined.nrows == left.nrows
        assert list(joined.column("m")) == [1, 2, 3, 4]

    def test_dangling_fk_rejected(self):
        left = make_table(fk=[9], m=[1])
        right = make_table(dk=[1], attr=[10])
        with pytest.raises(ValueError, match="dangling"):
            hash_join(left, right, "fk", "dk")

    def test_nonunique_right_key_rejected(self):
        left = make_table(fk=[1], m=[1])
        right = make_table(dk=[1, 1], attr=[10, 20])
        with pytest.raises(ValueError, match="not unique"):
            hash_join(left, right, "fk", "dk")

    def test_column_collision_rejected(self):
        left = make_table(fk=[1], attr=[5])
        right = make_table(dk=[1], attr=[10])
        with pytest.raises(ValueError, match="duplicate"):
            hash_join(left, right, "fk", "dk")
