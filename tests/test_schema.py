"""Unit tests: column types, table schemas, star schemas."""

import pytest

from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.types import CHAR, INT8, INT16, INT32, INT64, FLOAT64, ColumnType


class TestColumnType:
    def test_builtin_sizes(self):
        assert INT8.byte_size == 1
        assert INT16.byte_size == 2
        assert INT32.byte_size == 4
        assert INT64.byte_size == 8
        assert FLOAT64.byte_size == 8

    def test_char_width(self):
        assert CHAR(25).byte_size == 25
        assert CHAR(1).name == "char(1)"

    def test_rejects_nonpositive_size(self):
        with pytest.raises(ValueError):
            ColumnType("bad", 0)
        with pytest.raises(ValueError):
            CHAR(-1)

    def test_frozen(self):
        with pytest.raises(AttributeError):
            INT32.byte_size = 5  # type: ignore[misc]


def two_col_schema() -> TableSchema:
    return TableSchema(
        "t", [Column("a", INT32), Column("b", INT64)], primary_key=("a",)
    )


class TestTableSchema:
    def test_column_lookup(self):
        s = two_col_schema()
        assert s.column("a").byte_size == 4
        assert s.has_column("b")
        assert not s.has_column("c")

    def test_unknown_column_raises(self):
        with pytest.raises(KeyError, match="no column"):
            two_col_schema().column("zzz")

    def test_duplicate_columns_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            TableSchema("t", [Column("a", INT32), Column("a", INT64)])

    def test_empty_schema_rejected(self):
        with pytest.raises(ValueError):
            TableSchema("t", [])

    def test_primary_key_must_exist(self):
        with pytest.raises(ValueError, match="primary key"):
            TableSchema("t", [Column("a", INT32)], primary_key=("b",))

    def test_byte_size_all_and_subset(self):
        s = two_col_schema()
        assert s.byte_size() == 12
        assert s.byte_size(("b",)) == 8
        assert s.byte_size([]) == 0

    def test_project_preserves_order(self):
        s = TableSchema("t", [Column(n, INT32) for n in "abcd"])
        p = s.project(["d", "b"])
        assert p.column_names == ["b", "d"]

    def test_project_unknown_raises(self):
        with pytest.raises(KeyError):
            two_col_schema().project(["zzz"])


def small_star() -> StarSchema:
    star = StarSchema("s")
    star.add_fact(
        TableSchema(
            "fact",
            [Column("fk", INT32), Column("measure", INT64)],
            primary_key=("fk",),
        )
    )
    star.add_dimension(
        TableSchema("dim", [Column("dk", INT32), Column("attr", INT16)])
    )
    star.add_foreign_key(ForeignKey("fact", "fk", "dim", "dk"))
    return star


class TestStarSchema:
    def test_foreign_keys_recorded(self):
        star = small_star()
        assert len(star.fact_foreign_keys("fact")) == 1
        assert star.fact_foreign_keys("fact")[0].dim_table == "dim"

    def test_fk_requires_known_tables(self):
        star = small_star()
        with pytest.raises(KeyError):
            star.add_foreign_key(ForeignKey("nope", "fk", "dim", "dk"))
        with pytest.raises(KeyError):
            star.add_foreign_key(ForeignKey("fact", "fk", "nope", "dk"))

    def test_fk_requires_known_columns(self):
        star = small_star()
        with pytest.raises(KeyError):
            star.add_foreign_key(ForeignKey("fact", "zzz", "dim", "dk"))

    def test_flattened_schema_pulls_dim_columns(self):
        flat = small_star().flattened_schema("fact")
        assert flat.column_names == ["fk", "measure", "attr"]
        # The dimension's join key is not duplicated.
        assert not flat.has_column("dk")

    def test_flattened_rejects_collisions(self):
        star = small_star()
        star.add_dimension(
            TableSchema("dim2", [Column("dk2", INT32), Column("attr", INT16)])
        )
        star.facts["fact"].columns.append(Column("fk2", INT32))
        star.facts["fact"]._by_name["fk2"] = star.facts["fact"].columns[-1]
        star.add_foreign_key(ForeignKey("fact", "fk2", "dim2", "dk2"))
        with pytest.raises(ValueError, match="duplicate column"):
            star.flattened_schema("fact")

    def test_flattened_unknown_fact(self):
        with pytest.raises(KeyError):
            small_star().flattened_schema("nope")


class TestSnowflakeBridge:
    """Dimension-to-dimension (bridge) FKs: the TPC-H orders pattern."""

    def bridged_star(self) -> StarSchema:
        star = StarSchema("snow")
        star.add_fact(
            TableSchema(
                "fact",
                [Column("fk", INT32), Column("measure", INT64)],
                primary_key=("fk",),
            )
        )
        star.add_dimension(
            TableSchema(
                "bridge", [Column("bk", INT32), Column("far_fk", INT32)]
            )
        )
        star.add_dimension(
            TableSchema("far", [Column("fark", INT32), Column("attr", INT16)])
        )
        star.add_foreign_key(ForeignKey("fact", "fk", "bridge", "bk"))
        star.add_foreign_key(ForeignKey("bridge", "far_fk", "far", "fark"))
        return star

    def test_bridge_fk_accepted(self):
        star = self.bridged_star()
        assert len(star.fact_foreign_keys("bridge")) == 1

    def test_flattened_walks_through_bridge(self):
        flat = self.bridged_star().flattened_schema("fact")
        assert flat.column_names == ["fk", "measure", "far_fk", "attr"]

    def test_bridge_source_column_checked(self):
        star = self.bridged_star()
        with pytest.raises(KeyError):
            star.add_foreign_key(ForeignKey("bridge", "zzz", "far", "fark"))

    def test_cycle_fails_loudly_instead_of_recursing(self):
        star = self.bridged_star()
        star.dimensions["far"].columns.append(Column("back", INT32))
        star.dimensions["far"]._by_name["back"] = star.dimensions["far"].columns[-1]
        star.add_foreign_key(ForeignKey("far", "back", "bridge", "bk"))
        with pytest.raises(ValueError, match="multiple foreign keys"):
            star.flattened_schema("fact")

    def test_role_playing_dimension_fails_loudly(self):
        star = self.bridged_star()
        star.facts["fact"].columns.append(Column("fk2", INT32))
        star.facts["fact"]._by_name["fk2"] = star.facts["fact"].columns[-1]
        star.add_foreign_key(ForeignKey("fact", "fk2", "bridge", "bk"))
        with pytest.raises(ValueError, match="multiple foreign keys"):
            star.flattened_schema("fact")
