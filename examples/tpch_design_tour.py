#!/usr/bin/env python
"""A guided tour of the CORADD pipeline on TPC-H's normalized schema.

The interesting twist vs the SSB tour: TPC-H's fact reaches the customer-
and date-side attributes only through the ``orders`` bridge, and
``l_orderkey`` does dual duty as primary-key prefix and near-perfect
determinant of the order date.  The tour prints the correlation strengths
the designer discovers across that bridge, how they collapse the joint
selectivity of bridged predicates, and what the resulting designs buy at
several space budgets against the correlation-oblivious baseline.

Run:  python examples/tpch_design_tour.py
"""

from repro.design import CommercialDesigner, CoraddDesigner, DesignerConfig
from repro.experiments.harness import (
    budget_ladder,
    evaluate_design,
    evaluate_design_model_guided,
)
from repro.workloads.registry import make


def heading(text: str) -> None:
    print()
    print(f"=== {text} " + "=" * max(0, 64 - len(text)))


def main() -> None:
    inst = make("tpch", scale=0.5)
    flat = inst.flat_tables["lineitem"]
    print(f"TPC-H instance: {flat.nrows} lineitem rows "
          f"({inst.tables['orders'].nrows} orders, "
          f"{inst.tables['customer'].nrows} customers), "
          f"{flat.total_bytes() / (1 << 20):.1f} MB flattened")

    config = DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5))
    designer = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=config,
    )
    stats = designer.stats["lineitem"]

    heading("1. Correlations across the orders bridge")
    for det, dep in (
        ("l_orderkey", "o_orderdate"),   # the dual-duty key
        ("o_orderdate", "o_yearmonth"),
        ("o_yearmonth", "o_year"),
        ("l_shipdate", "o_yearmonth"),   # ships trail orders by <= 121 days
        ("c_nation", "c_region"),
        ("p_type", "p_brand"),
        ("l_returnflag", "l_linestatus"),
    ):
        s = stats.strength((det,), (dep,))
        print(f"  strength({det:>12} -> {dep:<12}) = {s:.3f}")

    heading("2. Bridge queries: what correlation awareness buys")
    for name in ("TQ5", "TQ10"):
        q = inst.workload.query(name)
        sel = q.selectivity(flat)
        naive = 1.0
        for p in q.predicates:
            naive *= p.selectivity(flat)
        print(f"  {name}: true selectivity {sel:.4f}, "
              f"independence assumption {naive:.4f} "
              f"({'fine' if abs(sel - naive) < 0.3 * max(sel, naive) else 'wrong'})")

    heading("3. Candidate enumeration + domination pruning")
    designer.enumerate()
    print(f"  enumerated {designer.enumeration_stats['enumerated']}, "
          f"{designer.enumeration_stats['after_domination']} after domination")

    heading("4. Budget sweep vs the correlation-oblivious designer")
    commercial = CommercialDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys
    )
    base_bytes = inst.total_base_bytes()
    fractions = (0.25, 0.5, 1.0)
    print(f"  {'budget':>8} {'objects':>8} {'CORADD':>9} {'Oblivious':>10} "
          f"{'speedup':>8}")
    for frac, budget in zip(fractions, budget_ladder(base_bytes, fractions)):
        design = designer.design(budget)
        cd = evaluate_design(design)
        md = evaluate_design_model_guided(
            commercial.design(budget), commercial.oblivious_models
        )
        print(f"  {frac:7.2f}x {len(design.chosen):8d} {cd.real_total:8.3f}s "
              f"{md.real_total:9.3f}s {md.real_total / cd.real_total:7.2f}x")

    heading("5. Where the time goes at the 1.0x budget")
    design = designer.design(base_bytes)
    evaluated = evaluate_design(design)
    worst = sorted(
        evaluated.plans.items(), key=lambda kv: kv[1].seconds, reverse=True
    )[:3]
    for name, plan in worst:
        print(f"  {name:<5} via {plan.plan:<12} on {plan.object_name:<24} "
              f"{plan.seconds * 1000:7.1f} ms")


if __name__ == "__main__":
    main()
