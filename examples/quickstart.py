#!/usr/bin/env python
"""Quickstart: design MVs + Correlation Maps for a tiny correlated table.

The running example from the paper's introduction: a People table where
city determines state and state determines region.  We define two
warehouse-style queries, let CORADD design within a space budget, and
measure the result on the simulated disk.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.design import CoraddDesigner, DesignerConfig
from repro.experiments.harness import evaluate_design
from repro.relational.query import Aggregate, EqPredicate, InPredicate, Query, Workload
from repro.relational.schema import Column, TableSchema
from repro.relational.table import Table
from repro.relational.types import INT16, INT32


def build_people(n: int = 100_000, seed: int = 0) -> Table:
    """People(name omitted, city, state, region, salary): geography is a
    hierarchy, so city -> state -> region are strongly correlated."""
    rng = np.random.default_rng(seed)
    state = rng.integers(0, 50, n)
    schema = TableSchema(
        "people",
        [
            Column("city", INT32),
            Column("state", INT16),
            Column("region", INT16),
            Column("salary", INT32),
        ],
    )
    return Table(
        schema,
        {
            "city": state * 20 + rng.integers(0, 20, n),
            "state": state,
            "region": state // 10,
            "salary": rng.integers(20_000, 200_000, n),
        },
    )


def main() -> None:
    people = build_people()
    workload = Workload(
        "people_queries",
        [
            Query(
                "avg_salary_by_city",
                "people",
                [InPredicate("city", (123, 456))],
                [Aggregate("avg", ("salary",))],
            ),
            Query(
                "sum_salary_in_region",
                "people",
                [EqPredicate("region", 2)],
                [Aggregate("sum", ("salary",))],
                group_by=("state",),
            ),
        ],
    )

    designer = CoraddDesigner(
        flat_tables={"people": people},
        workload=workload,
        # The paper's intro example: "if the table is clustered by state,
        # which is strongly correlated with city name, the entries of the
        # secondary index will only point to a small fraction of the pages".
        primary_keys={"people": ("state",)},
        config=DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5)),
    )

    budget = people.total_bytes()  # allow up to one extra copy of the data
    design = designer.design(budget)
    print(design.summary())
    print()

    evaluated = evaluate_design(design)
    base_total = sum(designer.base_seconds().values())
    print(f"base design (no extra objects): {base_total * 1000:8.1f} ms")
    print(f"CORADD design, model estimate : {evaluated.model_total * 1000:8.1f} ms")
    print(f"CORADD design, measured       : {evaluated.real_total * 1000:8.1f} ms")
    print()
    for name, plan in evaluated.plans.items():
        print(f"  {name:<24} -> {plan.object_name:<12} via {plan.plan}")


if __name__ == "__main__":
    main()
