#!/usr/bin/env python
"""APB-1 budget sweep: CORADD vs the emulated commercial designer.

A compact version of the paper's Figure 9 experiment: both designers get the
same APB-1 instance (two fact tables, 31 template queries) and a ladder of
space budgets; we print the four series the paper plots.

Run:  python examples/apb_budget_sweep.py
"""

from repro.design import CommercialDesigner, CoraddDesigner, DesignerConfig
from repro.engine import use_session
from repro.experiments.harness import (
    budget_ladder,
    evaluate_design,
    evaluate_design_model_guided,
)
from repro.workloads.registry import make


def main() -> None:
    inst = make("apb", actuals_rows=80_000)
    base_bytes = inst.total_base_bytes()
    print(f"APB-1: {inst.flat_tables['actuals'].nrows} actuals rows + "
          f"{inst.flat_tables['budget'].nrows} budget rows, "
          f"{base_bytes / (1 << 20):.1f} MB flattened, "
          f"{len(inst.workload)} queries")

    coradd = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5)),
    )
    commercial = CommercialDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys
    )

    fractions = (0.25, 0.5, 1.0, 2.0)
    print(f"\n{'budget':>8} {'CORADD':>10} {'CORADD-Model':>13} "
          f"{'Commercial':>11} {'Comm-Model':>11} {'speedup':>8}")
    # One evaluation-engine session for the whole ladder: sorted heap files,
    # CM designs and predicate masks are shared across budgets (results are
    # identical to uncached evaluation, just cheaper).
    with use_session() as session:
        for frac, budget in zip(fractions, budget_ladder(base_bytes, fractions)):
            cd = evaluate_design(coradd.design(budget))
            md = evaluate_design_model_guided(
                commercial.design(budget), commercial.oblivious_models
            )
            print(
                f"{frac:7.2f}x {cd.real_total:9.3f}s {cd.model_total:12.3f}s "
                f"{md.real_total:10.3f}s {md.model_total:10.3f}s "
                f"{md.real_total / cd.real_total:7.2f}x"
            )
    reused = session.stats["heapfile_hits"]
    print(f"\nengine session: {reused} heap-file materializations reused, "
          f"{session.stats['mask_hits']} predicate-mask cache hits")
    print("\npaper's shape: CORADD 1.5-3x faster tight, 5-6x large; its model")
    print("tracks reality while the commercial model is up to 6x optimistic.")


if __name__ == "__main__":
    main()
