#!/usr/bin/env python
"""A guided tour of the CORADD pipeline on the Star Schema Benchmark.

Walks through every stage of Figure 1 with printed intermediate artifacts:
statistics & FD strengths, selectivity vectors before/after propagation,
query groups, clustered-index merging, domination pruning, the ILP, ILP
feedback, CM design, and finally measured runtimes vs the base design.

Run:  python examples/ssb_design_tour.py
"""

from repro.design import CoraddDesigner, DesignerConfig
from repro.design.selectivity import build_selectivity_vectors
from repro.experiments.harness import evaluate_design
from repro.workloads.registry import make


def heading(text: str) -> None:
    print()
    print(f"=== {text} " + "=" * max(0, 64 - len(text)))


def main() -> None:
    inst = make("ssb", lineorder_rows=60_000)
    flat = inst.flat_tables["lineorder"]
    print(f"SSB instance: {flat.nrows} lineorder rows, "
          f"{flat.total_bytes() / (1 << 20):.1f} MB flattened")

    config = DesignerConfig(t0=2, alphas=(0.0, 0.25, 0.5))
    designer = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=config,
    )
    stats = designer.stats["lineorder"]

    heading("1. Correlation discovery (CORDS strengths)")
    for det, dep in (
        ("yearmonth", "year"),
        ("orderdate", "yearmonth"),
        ("c_city", "c_nation"),
        ("p_brand", "p_category"),
        ("year", "yearmonth"),
        ("weeknum", "yearmonth"),
    ):
        s = stats.strength((det,), (dep,))
        print(f"  strength({det:>10} -> {dep:<10}) = {s:.3f}")

    heading("2. Selectivity vectors (Q1.x, before vs after propagation)")
    queries = [inst.workload.query(n) for n in ("Q1.1", "Q1.2", "Q1.3")]
    attrs = ("year", "yearmonth", "weeknum", "discount", "quantity")
    raw = build_selectivity_vectors(queries, stats, attrs=attrs, propagate=False)
    prop = build_selectivity_vectors(queries, stats, attrs=attrs, propagate=True)
    print(f"  {'query':<6}" + "".join(f"{a:>12}" for a in attrs))
    for q in queries:
        print(f"  {q.name:<6}" + "".join(f"{raw.value(q.name, a):12.3f}" for a in attrs))
        print(f"   prop:" + "".join(f"{prop.value(q.name, a):12.3f}" for a in attrs))

    heading("3. Candidate enumeration + domination pruning")
    candidates = designer.enumerate()
    print(f"  enumerated {designer.enumeration_stats['enumerated']}, "
          f"{designer.enumeration_stats['after_domination']} after domination "
          f"(paper at their scale: 1600 -> 160)")
    largest = max(candidates, key=lambda c: len(c.group))
    print(f"  widest group: {sorted(largest.group)} "
          f"clustered on ({','.join(largest.cluster_key)})")

    heading("4. ILP selection + feedback across budgets")
    base_total = sum(designer.base_seconds().values())
    print(f"  base design total (model): {base_total:.3f} s")
    budget_fracs = (0.25, 0.5, 1.0)
    designs = {}
    for frac in budget_fracs:
        budget = int(inst.total_base_bytes() * frac)
        design = designer.design(budget)
        designs[frac] = design
        print(f"  budget {frac:4.2f}x base -> {len(design.chosen)} objects, "
              f"expected {design.total_expected_seconds:.3f} s "
              f"({design.ilp.num_variables} vars, "
              f"{design.ilp.num_constraints} constraints)")

    heading("5. Materialize the 1.0x design and measure")
    design = designs[1.0]
    print(design.summary())
    evaluated = evaluate_design(design)
    db = design.materialize()
    cms = sum(len(obj.cms) for obj in db.objects.values())
    print(f"  correlation maps built: {cms}")
    print(f"  measured total: {evaluated.real_total:.3f} s "
          f"(model said {evaluated.model_total:.3f} s, "
          f"base was {base_total:.3f} s)")
    worst = max(evaluated.plans.items(), key=lambda kv: kv[1].seconds)
    print(f"  slowest query: {worst[0]} via {worst[1].plan} "
          f"on {worst[1].object_name} ({worst[1].seconds * 1000:.1f} ms)")


if __name__ == "__main__":
    main()
