#!/usr/bin/env python
"""Bring your own schema: design for a custom star-schema workload.

Shows the full public API surface a downstream user needs: declare a star
schema, generate (or load) columnar data, flatten facts through their
foreign keys, declare queries with frequencies (the paper's compressed-
workload weighting, Section 5.3), design under several budgets, and compare
CORADD against Greedy(m,k) on the same candidate pool.

The scenario: a web-analytics warehouse.  ``events`` references ``pages``
(url -> section -> site) and ``clients`` (city -> country); hour-of-day and
day correlate through the timestamp hierarchy.

Run:  python examples/custom_workload.py
"""

import numpy as np

from repro.design import CoraddDesigner, DesignerConfig, greedy_mk
from repro.experiments.harness import evaluate_design
from repro.relational.query import Aggregate, EqPredicate, Query, RangePredicate, Workload
from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.table import Table, hash_join
from repro.relational.types import INT16, INT32, INT64


def build_instance(n_events: int = 120_000, seed: int = 3):
    rng = np.random.default_rng(seed)

    n_pages, n_clients = 2_000, 5_000
    section = rng.integers(0, 40, n_pages)
    pages = Table(
        TableSchema(
            "pages",
            [Column("page_id", INT32), Column("section", INT16), Column("site", INT16)],
            primary_key=("page_id",),
        ),
        {
            "page_id": np.arange(n_pages),
            "section": section,
            "site": section // 8,
        },
    )
    country = rng.integers(0, 30, n_clients)
    clients = Table(
        TableSchema(
            "clients",
            [Column("client_id", INT32), Column("city", INT32), Column("country", INT16)],
            primary_key=("client_id",),
        ),
        {
            "client_id": np.arange(n_clients),
            "city": country * 15 + rng.integers(0, 15, n_clients),
            "country": country,
        },
    )
    # Events arrive in time order; "day" determines "week" and "month".
    day = np.sort(rng.integers(0, 360, n_events))
    events = Table(
        TableSchema(
            "events",
            [
                Column("event_id", INT64),
                Column("page_id", INT32),
                Column("client_id", INT32),
                Column("day", INT16),
                Column("week", INT16),
                Column("month", INT16),
                Column("latency_ms", INT32),
                Column("bytes_out", INT32),
            ],
            primary_key=("event_id",),
        ),
        {
            "event_id": np.arange(n_events),
            "page_id": rng.integers(0, n_pages, n_events),
            "client_id": rng.integers(0, n_clients, n_events),
            "day": day,
            "week": day // 7,
            "month": day // 30,
            "latency_ms": rng.integers(1, 2_000, n_events),
            "bytes_out": rng.integers(100, 100_000, n_events),
        },
    )

    star = StarSchema("webstats")
    star.add_fact(events.schema)
    star.add_dimension(pages.schema)
    star.add_dimension(clients.schema)
    star.add_foreign_key(ForeignKey("events", "page_id", "pages", "page_id"))
    star.add_foreign_key(ForeignKey("events", "client_id", "clients", "client_id"))

    flat = hash_join(events, pages, "page_id", "page_id")
    flat = hash_join(flat, clients, "client_id", "client_id", new_name="events_flat")
    return star, {"events": flat}


def build_workload() -> Workload:
    return Workload(
        "webstats",
        [
            # Hot dashboard query: runs constantly (frequency 20).
            Query(
                "traffic_by_site_month",
                "events",
                [EqPredicate("month", 6)],
                [Aggregate("sum", ("bytes_out",))],
                group_by=("site",),
                frequency=20.0,
            ),
            Query(
                "latency_for_section",
                "events",
                [EqPredicate("section", 12), RangePredicate("week", 20, 29)],
                [Aggregate("avg", ("latency_ms",))],
                frequency=5.0,
            ),
            Query(
                "country_drilldown",
                "events",
                [EqPredicate("country", 7)],
                [Aggregate("sum", ("bytes_out",)), Aggregate("count", ("event_id",))],
                group_by=("city", "month"),
                frequency=3.0,
            ),
            Query(
                "city_spike_check",
                "events",
                [EqPredicate("city", 112), RangePredicate("day", 150, 180)],
                [Aggregate("max", ("latency_ms",))],
            ),
            Query(
                "weekly_site_report",
                "events",
                [RangePredicate("week", 40, 43), EqPredicate("site", 2)],
                [Aggregate("sum", ("bytes_out",))],
                group_by=("section", "week"),
                frequency=2.0,
            ),
        ],
    )


def main() -> None:
    _, flat_tables = build_instance()
    workload = build_workload()
    designer = CoraddDesigner(
        flat_tables,
        workload,
        primary_keys={"events": ("event_id",)},
        fk_attrs={"events": ("page_id", "client_id", "day")},
        config=DesignerConfig(t0=2, alphas=(0.0, 0.25, 0.5)),
    )
    base_bytes = flat_tables["events"].total_bytes()
    base_total = sum(
        q.frequency * s for q, s in zip(workload, designer.base_seconds().values())
    )

    print(f"events_flat: {flat_tables['events'].nrows} rows, "
          f"{base_bytes / (1 << 20):.1f} MB; "
          f"weighted base runtime {base_total:.3f} s\n")
    print(f"{'budget':>8} {'objects':>8} {'CORADD (model)':>15} "
          f"{'Greedy(2,k)':>12} {'CORADD (real)':>14}")
    for frac in (0.25, 0.5, 1.0):
        budget = int(base_bytes * frac)
        design = designer.design(budget)
        greedy = greedy_mk(designer.problem(budget), m=2)
        evaluated = evaluate_design(design)
        print(
            f"{frac:7.2f}x {len(design.chosen):8d} "
            f"{design.total_expected_seconds:14.3f}s "
            f"{greedy.objective:11.3f}s {evaluated.real_total:13.3f}s"
        )
    print("\nThe hot dashboard query dominates the weighted objective, so the")
    print("designer spends its budget on that query's MV first — exactly the")
    print("frequency weighting of Section 5.3.")


if __name__ == "__main__":
    main()
