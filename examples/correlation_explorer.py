#!/usr/bin/env python
"""Explore correlations and their physical consequences on SSB data.

Three views of the same phenomenon:

1. discovery — CORDS strengths over the flattened lineorder relation;
2. geometry — the Figure 13 experiment: where on disk do the matching
   tuples of a commitdate predicate live, under correlated vs uncorrelated
   clusterings (rendered as an ascii access map);
3. cost — the same scan priced by the correlation-aware and the
   commercial (oblivious) cost models.

Run:  python examples/correlation_explorer.py
"""

import numpy as np

from repro.costmodel.base import ObjectGeometry
from repro.costmodel.correlation_aware import CorrelationAwareCostModel
from repro.costmodel.oblivious import ObliviousCostModel
from repro.relational.query import Query, RangePredicate
from repro.stats.collector import TableStatistics
from repro.storage.access import secondary_btree_scan
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile
from repro.workloads.registry import make


def access_map(heapfile: HeapFile, query: Query, width: int = 72) -> str:
    """Figure 13-style ascii strip: '#' where the query touches pages."""
    mask = query.mask(heapfile.table)
    pages = heapfile.pages_for_rowids(np.nonzero(mask)[0])
    strip = [" "] * width
    for p in pages:
        strip[int(p * width / max(heapfile.npages, 1))] = "#"
    return "".join(strip)


def main() -> None:
    inst = make("ssb", lineorder_rows=120_000)
    flat = inst.flat_tables["lineorder"]
    disk = DiskModel()
    stats = TableStatistics(flat, synopsis_rows=16_384)

    print("=== 1. Correlation discovery (strength >= 0.8) ===")
    attrs = (
        "orderdate", "commitdate", "year", "yearmonth", "weeknum",
        "c_city", "c_nation", "c_region", "p_brand", "p_category", "p_mfgr",
    )
    for a, b, s in stats.corr.strong_pairs(threshold=0.8):
        if a in attrs and b in attrs:
            print(f"  {a:>11} -> {b:<11} strength {s:.3f}")

    query = Query(
        "probe", "lineorder", [RangePredicate("commitdate", 19940301, 19940307)]
    )
    print("\n=== 2. Access patterns for commitdate in [Mar 1, Mar 7] 1994 ===")
    print("    (each strip is the heap file, '#' = pages the scan touches)")
    for key in (("orderdate",), ("custkey",)):
        hf = HeapFile(flat, key, disk)
        scan = secondary_btree_scan(hf, query, ("commitdate",))
        label = f"clustered by {key[0]}"
        print(f"  {label:<24} |{access_map(hf, query)}|")
        print(
            f"  {'':<24}  fragments={scan.cost.fragments:<5} "
            f"pages={scan.cost.pages_read:<6} time={scan.seconds * 1000:.1f} ms"
        )

    print("=== 3. The same scan, as two cost models see it ===")
    cam = CorrelationAwareCostModel(stats, disk)
    obl = ObliviousCostModel(stats, disk)
    all_attrs = tuple(flat.column_names)
    print(f"  {'clustering':<12} {'correlation-aware':>18} {'oblivious':>12}")
    for key in (("orderdate",), ("yearmonth",), ("weeknum",), ("custkey",)):
        g = ObjectGeometry.from_attrs(stats, disk, all_attrs, key)
        cam_est = cam.secondary_btree_plan(g, query, ("commitdate",)).seconds
        obl_est = obl.secondary_index_plan(g, query).seconds
        print(f"  {key[0]:<12} {cam_est * 1000:15.1f} ms {obl_est * 1000:9.1f} ms")
    print("\nthe oblivious column is flat: that blindness is why the")
    print("commercial designer picks uncorrelated clusterings (Figure 10).")


if __name__ == "__main__":
    main()
