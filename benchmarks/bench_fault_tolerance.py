"""Supervision overhead and fault-recovery cost of the steal scheduler.

Three measurement groups, all on the supervised work-stealing pool of
:class:`~repro.engine.ParallelSweep` (PR 8); ``supervise=False`` restores
the previous blocking dispatcher and is the A/B baseline:

* **micro overhead arm** — a low-noise ladder of fixed-duration sleep
  items (wall-clock is dominated by the sleeps, so the supervisor's extra
  bookkeeping — sentinel waits, timeout math, respawn checks — is measured
  almost directly).  Fault-free supervised wall-clock must stay within
  2% of the unsupervised pool;
* **ladder overhead arm** — the same A/B on a real design-evaluation
  ladder (reported, not asserted: design evaluation is minutes-scale and
  noisy, the micro arm is the precise gauge);
* **recovery arm** — seeded random fault schedules
  (:meth:`~repro.engine.FaultPlan.random`, crash+raise) at increasing
  rates over the micro ladder: wall-clock and recovery event counts
  (worker deaths, requeues, respawns, in-parent runs) as a function of
  fault rate, with results asserted equal to the fault-free run at every
  rate.

Results land in ``benchmarks/results/BENCH_fault_tolerance.json``.
``REPRO_SMOKE=1`` shrinks the ladders and drops the perf bars (identity
is still asserted everywhere).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _micro_items() -> int:
    return 12 if _smoke() else 32


def _micro_sleep_s() -> float:
    return 0.03 if _smoke() else 0.06

def _fault_rates() -> tuple[float, ...]:
    return (0.0, 0.25) if _smoke() else (0.0, 0.125, 0.25, 0.5)


def _ladder_scale() -> float:
    return 0.05 if _smoke() else 0.1


def _ladder_fractions() -> tuple[float, ...]:
    if _smoke():
        return (0.5, 1.0, 1.5, 2.0)
    return (0.25, 0.5, 0.75, 1.0, 1.5, 2.0)


def _assert_identical(a, b) -> None:
    assert a.real_seconds == b.real_seconds
    for qname, x in a.plans.items():
        y = b.plans[qname]
        assert x.plan == y.plan and x.object_name == y.object_name
        assert x.result.cost == y.result.cost
        assert np.array_equal(x.result.mask, y.result.mask)


def bench_fault_tolerance(benchmark, save_report, observe):
    from repro.design.designer import CoraddDesigner, DesignerConfig
    from repro.engine import (
        EvalSession,
        FaultPlan,
        ParallelSweep,
        use_faults,
        use_session,
    )
    from repro.experiments.harness import CM_PROBE, evaluate_design
    from repro.experiments.report import ExperimentResult
    from repro.workloads.registry import make

    sleep_s = _micro_sleep_s()
    items = list(range(_micro_items()))

    def sleep_item(x: int) -> int:
        time.sleep(sleep_s)
        return x * x

    expected = [x * x for x in items]

    def timed_best_of(fn, repeats: int = 3):
        best = float("inf")
        out = None
        for _ in range(repeats):
            gc.collect()
            t0 = time.perf_counter()
            out = fn()
            best = min(best, time.perf_counter() - t0)
        return out, best

    def micro_arm(supervised: bool, plan=None, item_timeout_s=None):
        def run():
            sweep = ParallelSweep(
                workers=2, supervise=supervised, item_timeout_s=item_timeout_s
            )
            with use_faults(plan):
                results = sweep.map(sleep_item, items)
            assert results == expected
            return sweep.last_stats["supervision"]
        return run

    def overhead_arms():
        # Fault-free A/B: the PR 7 blocking dispatcher vs the supervisor.
        _, unsup_s = timed_best_of(micro_arm(False))
        _, sup_s = timed_best_of(micro_arm(True))
        micro = {
            "items": len(items),
            "sleep_seconds_per_item": sleep_s,
            "unsupervised_wall_seconds": round(unsup_s, 4),
            "supervised_wall_seconds": round(sup_s, 4),
            "overhead_pct": round(100.0 * (sup_s - unsup_s) / unsup_s, 3),
        }

        inst = make("tpch", scale=_ladder_scale(), seed=11)
        designer = CoraddDesigner(
            inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
            config=DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False),
        )
        base = inst.total_base_bytes()
        designs = [designer.design(int(base * f)) for f in _ladder_fractions()]
        with use_session(EvalSession()):
            reference = [evaluate_design(d) for d in designs]
        walls = {}
        for supervised in (False, True):
            sweep = ParallelSweep(workers=2, supervise=supervised)
            gc.collect()
            t0 = time.perf_counter()
            evaluated = sweep.map(
                evaluate_design, designs, session=EvalSession(), probe=CM_PROBE
            )
            walls[supervised] = time.perf_counter() - t0
            for a, b in zip(reference, evaluated):
                _assert_identical(a, b)
        ladder = {
            "budgets": len(designs),
            "scale": _ladder_scale(),
            "unsupervised_wall_seconds": round(walls[False], 3),
            "supervised_wall_seconds": round(walls[True], 3),
            "overhead_pct": round(
                100.0 * (walls[True] - walls[False]) / walls[False], 3
            ),
        }
        return micro, ladder

    def recovery_arms():
        arms = []
        for rate in _fault_rates():
            plan = (
                FaultPlan.random(
                    17, n_items=len(items), kinds=("crash", "raise"), rate=rate
                )
                if rate > 0
                else None
            )
            injected = len(plan.specs) if plan is not None else 0
            gc.collect()
            t0 = time.perf_counter()
            sup = micro_arm(True, plan=plan)()
            wall_s = time.perf_counter() - t0
            arms.append({
                "fault_rate": rate,
                "injected_faults": injected,
                "wall_seconds": round(wall_s, 4),
                "worker_deaths": sup["deaths"],
                "requeues": sup["requeues"],
                "respawns": sup["respawns"],
                "parent_runs": sup["parent_runs"],
                "item_errors": sup["item_errors"],
            })
        return arms

    def all_arms():
        micro, ladder = overhead_arms()
        recovery = recovery_arms()
        return micro, ladder, recovery

    micro, ladder, recovery = run_once(benchmark, all_arms)

    payload = {
        "bench": "fault_tolerance",
        "workers": 2,
        "cpu_count": os.cpu_count(),
        "smoke": _smoke(),
        "micro_overhead": micro,
        "ladder_overhead": ladder,
        "recovery": recovery,
        "identical_under_every_fault_schedule": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_fault_tolerance.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    result = ExperimentResult(
        name="fault_tolerance",
        title=(
            "Supervised steal pool: fault-free overhead vs the blocking "
            "dispatcher, and recovery wall-clock vs injected fault rate"
        ),
        columns=["arm", "wall_seconds", "overhead_pct", "deaths", "parent_runs"],
        paper_expectation=(
            "beyond the paper: supervision (sentinel waits, hang timers, "
            "respawn budget) costs < 2% fault-free wall-clock; results stay "
            "bit-identical under every injected fault schedule"
        ),
    )
    result.add_row(
        arm="micro unsupervised",
        wall_seconds=micro["unsupervised_wall_seconds"],
        overhead_pct=0.0, deaths=0, parent_runs=0,
    )
    result.add_row(
        arm="micro supervised",
        wall_seconds=micro["supervised_wall_seconds"],
        overhead_pct=micro["overhead_pct"], deaths=0, parent_runs=0,
    )
    result.add_row(
        arm="ladder supervised",
        wall_seconds=ladder["supervised_wall_seconds"],
        overhead_pct=ladder["overhead_pct"], deaths=0, parent_runs=0,
    )
    for arm in recovery:
        result.add_row(
            arm=f"faults rate={arm['fault_rate']}",
            wall_seconds=arm["wall_seconds"],
            overhead_pct=round(
                100.0
                * (arm["wall_seconds"] - recovery[0]["wall_seconds"])
                / recovery[0]["wall_seconds"],
                1,
            ),
            deaths=arm["worker_deaths"],
            parent_runs=arm["parent_runs"],
        )
    result.notes.append(
        f"{micro['items']} x {sleep_s}s micro items, "
        f"{ladder['budgets']}-budget tpch ladder at scale "
        f"{ladder['scale']}; recovery seeded by FaultPlan.random(17); "
        f"JSON: {out_path.name}"
    )
    save_report(result)

    if not _smoke():
        assert micro["overhead_pct"] < 2.0, micro
        faulty = [a for a in recovery if a["fault_rate"] > 0]
        assert any(a["worker_deaths"] > 0 for a in faulty), recovery
