"""Figure 9: CORADD vs the commercial designer on APB-1."""

from benchmarks.conftest import full_scale, run_once


def bench_fig09_apb(benchmark, save_report, observe):
    from repro.experiments.fig09_apb import run_fig09

    rows = 160_000 if full_scale() else 120_000
    result = run_once(benchmark, lambda: run_fig09(actuals_rows=rows))
    save_report(result)
    speedups = result.column_values("speedup")
    # The paper's shape: CORADD at least matches tight budgets and pulls
    # ahead by a growing factor as the budget loosens (1.5-3x -> 5-6x there).
    assert speedups[0] > 0.9
    assert max(speedups) > 1.5
    assert speedups[-1] >= speedups[0]
    # CORADD's model tracks its real runtime far better than commercial's:
    # commercial's error grows with budget (worst "in larger space budgets").
    last = result.rows[-1]
    assert last["comm_model_error"] > 1.2
    coradd_err = last["coradd_real"] / max(last["coradd_model"], 1e-12)
    assert coradd_err < last["comm_model_error"]
