"""Tables 1 & 2: selectivity vectors before/after propagation."""

from benchmarks.conftest import run_once


def bench_tables12(benchmark, save_report):
    from repro.experiments.tables12_selectivity import run_tables12

    table1, table2 = run_once(benchmark, lambda: run_tables12(lineorder_rows=60_000))
    save_report(table1)
    save_report(table2)
    # Table 1 shape: Q1.1 predicates year (~0.15) but not yearmonth.
    row11 = table1.rows[0]
    assert 0.1 < row11["year"] < 0.2
    assert row11["yearmonth"] == 1.0
    # Table 2 shape: propagation filled yearmonth with year's selectivity.
    prop11 = table2.rows[0]
    assert abs(prop11["yearmonth"] - prop11["year"]) < 0.02
