"""Ablation: Correlation Maps vs dense secondary B+Trees.

Section 2.1 / Appendix A-1: CMs store one entry per *distinct value pair*
instead of one per tuple, so on correlated attributes they are orders of
magnitude smaller than dense B+Trees while serving the same scans.  This
bench builds both structures for the SSB dimension attributes over an
orderdate-clustered lineorder and compares bytes and scan seconds.
"""

from benchmarks.conftest import make_benchmark, run_once
from repro.experiments.report import ExperimentResult


def _run() -> ExperimentResult:
    from repro.cm.correlation_map import CorrelationMap
    from repro.relational.query import EqPredicate, Query
    from repro.storage.access import cm_scan, secondary_btree_scan
    from repro.storage.btree import secondary_index_bytes
    from repro.storage.disk import DiskModel
    from repro.storage.layout import HeapFile

    inst = make_benchmark("ssb", lineorder_rows=120_000)
    flat = inst.flat_tables["lineorder"]
    disk = DiskModel()
    heapfile = HeapFile(flat, ("orderdate",), disk, name="lineorder")

    probes = [
        ("yearmonth", EqPredicate("yearmonth", 199406)),
        ("year", EqPredicate("year", 1995)),
        ("commitdate", EqPredicate("commitdate", 19940601)),
        ("weeknum", EqPredicate("weeknum", 20)),
    ]
    result = ExperimentResult(
        name="ablation_cm",
        title="CM vs dense B+Tree on orderdate-clustered lineorder",
        columns=[
            "attr",
            "cm_bytes",
            "btree_bytes",
            "compression",
            "cm_scan_s",
            "btree_scan_s",
        ],
        paper_expectation=(
            "CMs are distinct-value-to-distinct-value mappings: dramatically "
            "smaller than dense B+Trees, competitive or faster to scan when "
            "correlated with the clustering"
        ),
    )
    for attr, pred in probes:
        cm = CorrelationMap(heapfile, (attr,), cluster_width=4)
        query = Query(f"probe_{attr}", "lineorder", [pred])
        cm_res = cm_scan(heapfile, query, cm)
        bt_res = secondary_btree_scan(heapfile, query, (attr,))
        btree_bytes = secondary_index_bytes(
            heapfile.nrows, flat.schema.byte_size((attr,)), disk.page_size
        )
        result.add_row(
            attr=attr,
            cm_bytes=cm.size_bytes,
            btree_bytes=btree_bytes,
            compression=btree_bytes / cm.size_bytes,
            cm_scan_s=cm_res.seconds,
            btree_scan_s=bt_res.seconds,
        )
    return result


def bench_ablation_cm(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    compressions = result.column_values("compression")
    assert min(compressions) > 3.0
    # On the strongly correlated attributes, CMs compress by >50x.
    assert max(compressions) > 50.0
