"""Augmented (48-query) TPC-H budget sweep, and the evaluation-engine A/B.

Two benches:

* ``bench_tpch_augmented_sweep`` — the full-protocol sweep over the 4x
  variant-expanded TPC-H workload (the Figure-11 protocol on the normalized
  schema), constructed through the ``tpch-augmented`` registry variant.
* ``bench_engine_sweep_reuse`` — the same ladder of designs evaluated twice:
  once with no evaluation session (every budget re-sorts, re-designs CMs and
  re-computes masks) and once under one shared
  :class:`~repro.engine.EvalSession`.  Asserts the cached sweep is at least
  2x faster *and* produces bit-identical plans, costs and masks.

``REPRO_SMOKE=1`` shrinks everything to a CI-sized smoke run (and relaxes
the speedup bar, which is noisy at toy scale).
"""

from __future__ import annotations

import os
import time
from contextlib import nullcontext

import numpy as np

from benchmarks.conftest import full_scale, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _scale() -> float:
    if full_scale():
        return 1.0
    return 0.1 if _smoke() else 0.3


def bench_tpch_augmented_sweep(benchmark, save_report):
    from repro.experiments.tpch_design import run_tpch

    result = run_once(
        benchmark,
        lambda: run_tpch(
            scale=_scale(), fractions=(0.25, 0.5, 1.0), augment_factor=4
        ),
    )
    save_report(result)
    assert all(row["coradd_real"] > 0 for row in result.rows)
    speedups = result.column_values("speedup")
    assert all(s > 1.0 for s in speedups)
    if not _smoke():
        assert max(speedups) > 1.5


def bench_engine_sweep_reuse(benchmark, save_report):
    from repro.design.baselines import CommercialDesigner
    from repro.design.designer import CoraddDesigner, DesignerConfig
    from repro.engine import EvalSession, use_session
    from repro.experiments.harness import (
        budget_ladder,
        evaluate_design,
        evaluate_design_model_guided,
    )
    from repro.experiments.report import ExperimentResult
    from repro.workloads.registry import make

    inst = make("tpch-augmented", scale=_scale(), augment_factor=4)
    config = DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5), use_feedback=False)
    coradd = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=config,
    )
    commercial = CommercialDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys
    )
    fractions = (0.25, 0.5, 1.0, 2.0)
    budgets = budget_ladder(inst.total_base_bytes(), fractions)
    # The design phase (enumeration + ILP) is identical in both arms and not
    # what the engine caches; build the designs once, outside the timing.
    designs = [coradd.design(b) for b in budgets]
    commercial_designs = [commercial.design(b) for b in budgets]

    def sweep(scope):
        with scope:
            evaluated = []
            for design, cdesign in zip(designs, commercial_designs):
                evaluated.append(evaluate_design(design))
                evaluated.append(
                    evaluate_design_model_guided(
                        cdesign, commercial.oblivious_models
                    )
                )
            return evaluated

    t0 = time.perf_counter()
    plain = sweep(nullcontext())
    uncached_s = time.perf_counter() - t0

    session = EvalSession()
    t0 = time.perf_counter()
    cached = run_once(benchmark, lambda: sweep(use_session(session)))
    cached_s = time.perf_counter() - t0
    speedup = uncached_s / cached_s if cached_s else float("inf")

    # Observational invisibility: the cached sweep must be bit-identical.
    for a, b in zip(plain, cached):
        assert a.real_seconds == b.real_seconds
        for qname, choice in a.plans.items():
            other = b.plans[qname]
            assert choice.plan == other.plan
            assert choice.object_name == other.object_name
            assert choice.result.cost == other.result.cost
            assert np.array_equal(choice.result.mask, other.result.mask)

    result = ExperimentResult(
        name="engine_sweep_reuse",
        title=(
            f"Evaluation of {len(budgets)} budgets x {len(inst.workload)} "
            "augmented TPC-H queries: shared engine session vs uncached"
        ),
        columns=["arm", "wall_seconds", "speedup"],
        paper_expectation=(
            "beyond the paper: sweep-wide mask/materialization/CM reuse "
            ">= 2x wall-clock, with bit-identical plans, costs and masks"
        ),
    )
    result.add_row(arm="uncached", wall_seconds=uncached_s, speedup=1.0)
    result.add_row(arm="cached", wall_seconds=cached_s, speedup=speedup)
    result.notes.append(
        f"scale {_scale()}, fractions {fractions}; session stats: "
        + ", ".join(f"{k}={v}" for k, v in session.stats.items() if v)
    )
    save_report(result)
    assert speedup >= (1.2 if _smoke() else 2.0)
