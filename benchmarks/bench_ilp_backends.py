"""Ablation: solver backends on the real SSB design ILP.

The from-scratch branch & bound must find the same optimum as HiGHS; this
bench times both on the actual Section 5.1 model and asserts agreement.
"""

import pytest

from benchmarks.conftest import make_benchmark, run_once
from repro.experiments.report import ExperimentResult


def _build_problem():
    from repro.design.designer import CoraddDesigner, DesignerConfig

    inst = make_benchmark("ssb", lineorder_rows=30_000)
    designer = CoraddDesigner(
        inst.flat_tables,
        inst.workload,
        inst.primary_keys,
        inst.fk_attrs,
        config=DesignerConfig(t0=1, alphas=(0.0, 0.5), use_feedback=False),
    )
    return designer.problem(int(inst.total_base_bytes() * 0.5))


def _run() -> ExperimentResult:
    from repro.design.ilp_formulation import choose_candidates

    problem = _build_problem()
    result = ExperimentResult(
        name="ablation_ilp_backends",
        title="Design-ILP solve: scipy HiGHS vs from-scratch branch & bound",
        columns=["backend", "objective", "solve_s", "status"],
        paper_expectation="identical optima (the paper used a commercial solver)",
    )
    for backend in ("scipy", "bnb"):
        design = choose_candidates(problem, backend=backend)
        result.add_row(
            backend=backend,
            objective=design.objective,
            solve_s=design.solve_seconds,
            status=design.status,
        )
    return result


def bench_ilp_backends(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    objectives = result.column_values("objective")
    assert objectives[0] == pytest.approx(objectives[1], rel=1e-6)
    assert all(row["status"] == "optimal" for row in result.rows)
