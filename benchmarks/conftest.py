"""Benchmark-suite fixtures.

Each bench runs one paper experiment exactly once (``benchmark.pedantic``
with a single round — the experiments are minutes-scale, re-running them for
statistical calibration would be pointless), prints the reproduction report
next to the paper's expectation, and saves it under
``benchmarks/results/``.

Set ``REPRO_FULL=1`` to run the full-scale variants (e.g. the 20,000
candidate ILP point of Figure 6).  Set ``REPRO_TRACE=1`` to run benches
that take the ``observe`` fixture under the :mod:`repro.obs`
instrumentation, writing a ``TRACE_<bench>.json`` span/metrics/drift report
next to the ``BENCH_*.json`` artifacts.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.experiments.report import ExperimentResult, format_report
from repro.workloads import registry

RESULTS_DIR = Path(__file__).parent / "results"


def full_scale() -> bool:
    return os.environ.get("REPRO_FULL", "0") == "1"


def cpu_count() -> int:
    return os.cpu_count() or 1


def multicore(min_cores: int = 4) -> bool:
    """Gate for *wall-clock* perf bars only: forked workers timeshare the
    CPU on a small runner, so speedup assertions need real cores.
    I/O-model metrics (pages scanned, bytes shipped) are core-count
    independent and must never gate on this."""
    return cpu_count() >= min_cores


def make_benchmark(name: str, **knobs):
    """Construct a benchmark instance by registry name — the single path
    every bench uses, so a new workload registered in
    :mod:`repro.workloads.registry` is immediately benchable."""
    return registry.make(name, **knobs)


@pytest.fixture
def save_report():
    """Print a report and persist it under benchmarks/results/."""

    def _save(result: ExperimentResult) -> None:
        text = format_report(result)
        print()
        print(text)
        RESULTS_DIR.mkdir(exist_ok=True)
        (RESULTS_DIR / f"{result.name}.txt").write_text(text + "\n")

    return _save


def run_once(benchmark, fn):
    """Run a heavy experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, rounds=1, iterations=1, warmup_rounds=0)


@pytest.fixture
def observe(request):
    """Optional observability for a bench: under ``REPRO_TRACE=1`` the test
    body runs inside :func:`repro.obs.observed` (ambient tracer + metrics +
    drift monitor) and the report lands in ``results/TRACE_<bench>.json``.
    Without the env var the fixture yields ``None`` and installs nothing,
    so default bench timings see only the disabled-path instrumentation
    cost (one contextvar read per site)."""
    if os.environ.get("REPRO_TRACE", "0") != "1":
        yield None
        return
    from repro.obs import observed

    name = request.node.name
    with observed(name) as obs:
        yield obs
    RESULTS_DIR.mkdir(exist_ok=True)
    path = obs.write(RESULTS_DIR / f"TRACE_{name}.json")
    print(f"\ntrace report written to {path}")
