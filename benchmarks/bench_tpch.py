"""TPC-H: CORADD vs the correlation-oblivious designer on the normalized
schema with the orders bridge (beyond the paper's SSB/APB evaluation)."""

from benchmarks.conftest import full_scale, run_once


def bench_tpch_budget_sweep(benchmark, save_report):
    from repro.experiments.tpch_design import run_tpch

    scale = 1.0 if full_scale() else 0.5
    result = run_once(
        benchmark, lambda: run_tpch(scale=scale, fractions=(0.25, 0.5, 1.0))
    )
    save_report(result)
    for row in result.rows:
        assert row["coradd_real"] > 0
    # The correlation gap persists on the normalized schema: CORADD ahead
    # at every budget, and clearly so at the larger ones.
    speedups = result.column_values("speedup")
    assert all(s > 1.0 for s in speedups)
    assert max(speedups) > 1.5
