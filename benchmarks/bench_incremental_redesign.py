"""Incremental redesign vs from-scratch across a drifting workload.

Runs the :mod:`repro.experiments.evolving` sweep (``ssb-drift``: rotating /
reweighting phases over the augmented SSB pool) and asserts the incremental
pipeline's contract:

* across the drift phases (every phase after the initial design), the
  incremental arm — ``CoraddDesigner.update()`` with affected-fact
  re-enumeration, incremental re-pruning and warm-started ILP, plus
  ``DesignDiff`` migration of the live database — must be **>= 2x faster
  end-to-end** than redesigning and re-materializing from scratch;
* final-phase design quality (frequency-weighted expected seconds) must be
  **within 1%** of the from-scratch design.

Results are printed and written machine-readably to
``benchmarks/results/BENCH_incremental_redesign.json`` so the perf
trajectory is tracked across PRs.

``REPRO_SMOKE=1`` shrinks the sweep to 2 phases at tiny scale and drops the
speedup bar (the smoke run exists to exercise the pipeline, not to measure
it); quality bars always hold.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _scale() -> float:
    return 0.05 if _smoke() else 0.3


def _phases() -> int:
    return 2 if _smoke() else 6


def bench_incremental_redesign(benchmark, save_report):
    from repro.experiments.evolving import run_evolving

    result = run_once(
        benchmark,
        lambda: run_evolving(
            benchmark="ssb-drift", scale=_scale(), phases=_phases()
        ),
    )
    save_report(result)

    rows = result.rows
    drift_rows = rows[1:]
    inc_drift = sum(r["inc_seconds"] for r in drift_rows)
    scratch_drift = sum(r["scratch_seconds"] for r in drift_rows)
    inc_full = sum(r["inc_seconds"] for r in rows)
    scratch_full = sum(r["scratch_seconds"] for r in rows)
    drift_speedup = scratch_drift / inc_drift if inc_drift else float("inf")
    final_quality = rows[-1]["quality_ratio"]

    payload = {
        "bench": "incremental_redesign",
        "workload": "ssb-drift",
        "scale": _scale(),
        "phases": _phases(),
        "smoke": _smoke(),
        "per_phase": [
            {
                "phase": r["phase"],
                "queries": r["queries"],
                "added": r["added"],
                "removed": r["removed"],
                "incremental_seconds": round(r["inc_seconds"], 3),
                "scratch_seconds": round(r["scratch_seconds"], 3),
                "speedup": round(r["speedup"], 3),
                "quality_ratio": round(r["quality_ratio"], 5),
                "migrated_objects": r["migrated_objects"],
            }
            for r in rows
        ],
        "drift_phases": {
            "incremental_seconds": round(inc_drift, 3),
            "scratch_seconds": round(scratch_drift, 3),
            "speedup": round(drift_speedup, 3),
        },
        "full_sweep": {
            "incremental_seconds": round(inc_full, 3),
            "scratch_seconds": round(scratch_full, 3),
            "speedup": round(scratch_full / inc_full, 3) if inc_full else None,
        },
        "final_phase_quality_ratio": round(final_quality, 5),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_incremental_redesign.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Quality must hold at any scale: the incremental design may be *better*
    # (its pool accumulates candidates scratch never enumerates) but never
    # more than 1% worse.
    assert final_quality <= 1.01, final_quality
    assert all(r["quality_ratio"] <= 1.01 for r in rows), [
        r["quality_ratio"] for r in rows
    ]
    if not _smoke():
        assert len(drift_rows) >= 3  # a >= 3-phase drift sweep
        assert drift_speedup >= 2.0, payload["drift_phases"]
