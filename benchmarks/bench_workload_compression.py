"""Design from a million-query log at interactive speed.

Runs the :mod:`repro.experiments.workload_compression` sweep (``tpch-log``:
a Zipf-skewed 1M-event log over the augmented TPC-H template suite) and
asserts the compression pipeline's contract:

* the vectorized dedup+cluster front-end folds the log **>= 50x** with the
  event count conserved *exactly* into representative weights (every arm's
  total weight equals the log length, to the float64 ulp);
* the front-end itself (dedup + clustering) finishes in **seconds** — no
  per-query Python loop over the raw log;
* some bounded representative set designs **>= 10x faster** than the full
  deduped workload while landing within **5%** of its frequency-weighted
  design quality, measured over the *full* deduped workload on each arm's
  materialized database.

Results are printed and written machine-readably to
``benchmarks/results/BENCH_workload_compression.json`` so the perf
trajectory is tracked across PRs.

``REPRO_SMOKE=1`` shrinks the log to 100k events and sweeps a single
representative budget; the dedup-ratio, weight-conservation and quality
bars always hold (the speedup bar needs the full-size log to be
meaningful).
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _log_queries() -> int:
    return 100_000 if _smoke() else 1_000_000


def _rep_counts() -> tuple[int, ...]:
    return (48,) if _smoke() else (8, 16, 24, 32)


def bench_workload_compression(benchmark, save_report):
    from repro.experiments.workload_compression import run_workload_compression

    result = run_once(
        benchmark,
        lambda: run_workload_compression(
            benchmark="tpch-log",
            scale=0.05,
            log_queries=_log_queries(),
            rep_counts=_rep_counts(),
        ),
    )
    save_report(result)

    rows = result.rows
    full = rows[0]
    compressed = rows[1:]
    frontend_s = full["generate_s"] + full["dedup_s"] + max(
        r["compress_s"] for r in compressed
    )
    # The winning operating point: the fastest arm within the quality bar.
    eligible = [r for r in compressed if r["quality_ratio"] <= 1.05]
    best = max(eligible, key=lambda r: r["speedup"]) if eligible else None

    payload = {
        "bench": "workload_compression",
        "workload": "tpch-log",
        "scale": 0.05,
        "log_queries": full["n_log_entries"],
        "smoke": _smoke(),
        "dedup": {
            "unique_queries": full["queries"],
            "ratio": round(full["dedup_ratio"], 1),
            "generate_s": round(full["generate_s"], 3),
            "dedup_s": round(full["dedup_s"], 3),
        },
        "arms": [
            {
                "arm": r["arm"],
                "queries": r["queries"],
                "compress_s": round(r["compress_s"], 3),
                "design_s": round(r["design_s"], 3),
                "speedup": round(r["speedup"], 2),
                "objects": r["objects"],
                "mv_mb": round(r["mv_mb"], 3),
                "quality_ratio": round(r["quality_ratio"], 4),
            }
            for r in rows
        ],
        "best_arm": best["arm"] if best else None,
        "best_speedup": round(best["speedup"], 2) if best else None,
        "best_quality_ratio": round(best["quality_ratio"], 4) if best else None,
        "frontend_seconds": round(frontend_s, 3),
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_workload_compression.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Weight conservation is exact at any scale: integer event counts in
    # float64, summed — dedup and clustering move weight, never lose it.
    n_events = float(full["n_log_entries"])
    for r in rows:
        assert r["total_weight"] == n_events, (r["arm"], r["total_weight"])
    assert full["dedup_ratio"] >= 50.0, full["dedup_ratio"]
    # Vectorized front-end: the whole log folds in seconds.
    assert frontend_s < 10.0, frontend_s
    assert best is not None, [r["quality_ratio"] for r in compressed]
    assert best["quality_ratio"] <= 1.05, best
    if not _smoke():
        assert best["speedup"] >= 10.0, best
