"""Figure 14 (Appendix A-3): insert cost vs additional-object bytes."""

from benchmarks.conftest import full_scale, run_once


def bench_fig14_maintenance(benchmark, save_report):
    from repro.experiments.fig14_maintenance import run_fig14

    n_inserts = 500_000 if full_scale() else 100_000
    result = run_once(benchmark, lambda: run_fig14(n_inserts=n_inserts))
    save_report(result)
    slowdowns = result.column_values("slowdown_vs_first")
    # The knee: modest growth below the pool size, explosion above (the
    # paper measured 67x from 1 GB to 3 GB extra objects on a 4 GB box).
    assert slowdowns[-1] > 10 * slowdowns[0]
    below_pool = [
        row["slowdown_vs_first"] for row in result.rows if row["extra_over_pool"] <= 0.5
    ]
    assert max(below_pool) < 5
