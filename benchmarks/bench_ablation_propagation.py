"""Ablation: selectivity propagation's effect on design quality.

Propagation (Section 4.1.1) is what lets the k-means grouping see that
``yearmonth=199401`` and ``year=1994`` queries belong together.  This bench
runs the whole pipeline with and without it and compares the ILP objective
across budgets.
"""

from benchmarks.conftest import make_benchmark, run_once
from repro.experiments.report import ExperimentResult


def _run() -> ExperimentResult:
    from repro.design.designer import CoraddDesigner, DesignerConfig
    from repro.design.enumerate import CandidateEnumerator
    from repro.design.ilp_formulation import DesignProblem, choose_candidates
    from repro.design.mv import CandidateSet

    inst = make_benchmark("ssb", lineorder_rows=60_000)
    base_bytes = inst.total_base_bytes()
    result = ExperimentResult(
        name="ablation_propagation",
        title="ILP objective with vs without selectivity propagation",
        columns=["budget_frac", "with_propagation", "without", "ratio"],
        paper_expectation=(
            "propagation lets grouping cluster queries that predicate "
            "correlated attributes; designs should be no worse with it"
        ),
    )
    designers = {}
    for propagate in (True, False):
        designer = CoraddDesigner(
            inst.flat_tables,
            inst.workload,
            inst.primary_keys,
            inst.fk_attrs,
            config=DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5)),
        )
        if not propagate:
            # Rebuild enumerators without propagation.
            designer.enumerators = [
                CandidateEnumerator(
                    fact=e.fact,
                    queries=e.queries,
                    stats=e.stats,
                    disk=e.disk,
                    cost_model=e.cost_model,
                    primary_key=e.primary_key,
                    fk_attrs=e.fk_attrs,
                    alphas=e.alphas,
                    t0=e.t0,
                    seed=e.seed,
                    propagate=False,
                )
                for e in designer.enumerators
            ]
        designers[propagate] = designer
    for frac in (0.15, 0.3, 0.5, 0.8):
        budget = int(base_bytes * frac)
        with_p = designers[True].design(budget).ilp.objective
        without = designers[False].design(budget).ilp.objective
        result.add_row(
            budget_frac=frac,
            with_propagation=with_p,
            without=without,
            ratio=without / with_p if with_p else 1.0,
        )
    return result


def bench_ablation_propagation(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    # Grouping is randomized, so individual budgets can swing either way;
    # across the sweep propagation must be neutral-to-helpful.
    ratios = result.column_values("ratio")
    mean_ratio = sum(ratios) / len(ratios)
    assert mean_ratio > 0.97
