"""Benchmark suite: one bench per paper table/figure, plus ablations.

Package marker so ``pytest benchmarks/`` (without ``python -m``) resolves
``from benchmarks.conftest import ...`` via pytest's rootdir insertion.
"""
