"""Figure 5: optimal ILP vs Greedy(m,k), plus Section 5.3 statistics."""

from benchmarks.conftest import run_once


def bench_fig05_ilp_vs_greedy(benchmark, save_report):
    from repro.experiments.fig05_ilp_vs_greedy import run_fig05

    result = run_once(benchmark, lambda: run_fig05(lineorder_rows=60_000))
    save_report(result)
    ratios = result.column_values("greedy_over_ilp")
    # Greedy never beats the optimum, and loses somewhere (the paper's
    # 20-40% gap appears at mid/large budgets; tight budgets tie).
    assert all(r >= 1.0 - 1e-9 for r in ratios)
    assert max(ratios) > 1.05
    assert min(ratios) < 1.01
    # Section 5.3: the ILP solves fast at SSB scale (paper: < 1 s).
    assert all(row["ilp_solve_s"] < 30 for row in result.rows)
