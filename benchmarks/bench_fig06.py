"""Figure 6: ILP solver runtime vs number of MV candidates."""

from benchmarks.conftest import full_scale, run_once


def bench_fig06_ilp_scaling(benchmark, save_report):
    from repro.experiments.fig06_ilp_scaling import run_fig06

    sizes = (500, 1_000, 2_000, 5_000, 10_000, 20_000) if full_scale() else (
        500, 1_000, 2_000, 5_000
    )
    result = run_once(benchmark, lambda: run_fig06(sizes=sizes))
    save_report(result)
    assert all(row["status"] == "optimal" for row in result.rows)
    times = result.column_values("solve_s")
    # Growing problems take longer; even the largest stays minutes-scale
    # (the paper: "within several minutes for up to 20,000 candidates").
    assert times[-1] > times[0]
    assert times[-1] < 600
