"""Query-only vs maintenance-aware designs under measured update mixes.

Runs the :mod:`repro.experiments.refresh_design` sweep (``ssb-refresh``)
and asserts the update pipeline's contract:

* at ``update_weight=0`` the maintenance machinery is inert — the design is
  the query-only design (same chosen candidates, no maintenance term in the
  ILP model);
* at every update-heavy mix, the maintenance-aware design's **measured**
  query+maintenance total (real refresh batches through a real buffer pool)
  beats — or at worst ties — the query-only design evaluated under the same
  mix;
* at the heaviest mix the maintenance-aware design materializes **no more
  MV bytes** than the query-only design (wide/uncorrelated MVs get dropped).

Results are printed and written machine-readably to
``benchmarks/results/BENCH_refresh_design.json`` so the perf trajectory is
tracked across PRs.

``REPRO_SMOKE=1`` shrinks to tiny scale, one heavy mix and two budgets (the
CI step); the contract assertions always hold.
"""

from __future__ import annotations

import json
import os
from pathlib import Path

from benchmarks.conftest import RESULTS_DIR, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _knobs() -> dict:
    if _smoke():
        return dict(
            scale=0.05,
            budget_fracs=(0.4, 0.8),
            update_weights=(0.0, 1.0),
            rounds=2,
        )
    return dict(
        scale=0.3,
        budget_fracs=(0.6,),
        update_weights=(0.0, 0.1, 0.5, 1.0),
        rounds=4,
    )


def bench_refresh_design(benchmark, save_report):
    from repro.experiments.refresh_design import run_refresh_design

    knobs = _knobs()
    result = run_once(
        benchmark, lambda: run_refresh_design(benchmark="ssb-refresh", **knobs)
    )
    save_report(result)

    by_key: dict = {}
    for row in result.rows:
        by_key.setdefault((row["budget_frac"], row["update_weight"]), {})[
            row["arm"]
        ] = row

    payload = {
        "bench": "refresh_design",
        "workload": "ssb-refresh",
        "smoke": _smoke(),
        **{k: list(v) if isinstance(v, tuple) else v for k, v in knobs.items()},
        "rows": [
            {
                "budget_frac": r["budget_frac"],
                "update_weight": r["update_weight"],
                "arm": r["arm"],
                "objects": r["objects"],
                "mv_mb": round(r["mv_mb"], 3),
                "chosen": r["chosen"],
                "query_seconds": round(r["query_seconds"], 4),
                "maintenance_seconds": round(r["maintenance_seconds"], 4),
                "total_seconds": round(r["total_seconds"], 4),
                "model_maintenance": round(r["model_maintenance"], 4),
            }
            for r in result.rows
        ],
    }
    heavy = max(w for _, w in by_key if w > 0)
    wins = []
    for (budget, weight), arms in sorted(by_key.items()):
        if weight <= 0 or "maintenance-aware" not in arms:
            continue
        aware = arms["maintenance-aware"]
        only = arms["query-only"]
        wins.append(
            {
                "budget_frac": budget,
                "update_weight": weight,
                "aware_total": round(aware["total_seconds"], 4),
                "query_only_total": round(only["total_seconds"], 4),
                "advantage": round(
                    only["total_seconds"] / aware["total_seconds"], 3
                )
                if aware["total_seconds"]
                else None,
            }
        )
    payload["update_mix_wins"] = wins
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_refresh_design.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    # Contract: the maintenance-aware design never loses on measured total
    # cost under its own mix, and at the heaviest mix it materializes no
    # more MV bytes than the query-only design.
    for (budget, weight), arms in by_key.items():
        if weight <= 0 or "maintenance-aware" not in arms:
            continue
        aware = arms["maintenance-aware"]
        only = arms["query-only"]
        assert aware["total_seconds"] <= only["total_seconds"] * 1.001, (
            budget, weight, aware["total_seconds"], only["total_seconds"],
        )
        if weight == heavy:
            assert aware["mv_mb"] <= only["mv_mb"] + 1e-9, (budget, arms)
