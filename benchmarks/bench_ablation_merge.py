"""Ablation: interleaved vs concatenation-only clustered-index merging.

Section 4.2: "we observed designs that were up to 90% slower when using
two-way [concatenation-only] merging compared to interleaved merging."
This bench designs clustered keys for every multi-query SSB group both ways
and reports the per-group score ratio.
"""

from benchmarks.conftest import make_benchmark, run_once
from repro.experiments.report import ExperimentResult


def _run() -> ExperimentResult:
    from repro.costmodel.correlation_aware import CorrelationAwareCostModel
    from repro.design.clustering import ClusteredIndexDesigner
    from repro.design.grouping import enumerate_query_groups
    from repro.design.mv import ordered_mv_attrs
    from repro.design.selectivity import build_selectivity_vectors
    from repro.stats.collector import TableStatistics
    from repro.storage.disk import DiskModel

    inst = make_benchmark("ssb", lineorder_rows=60_000)
    stats = TableStatistics(inst.flat_tables["lineorder"])
    disk = DiskModel()
    model = CorrelationAwareCostModel(stats, disk)
    queries = list(inst.workload)
    vectors = build_selectivity_vectors(queries, stats)
    groups = [
        g
        for g in enumerate_query_groups(queries, vectors, stats, alphas=(0.0, 0.5))
        if len(g) >= 2
    ]

    result = ExperimentResult(
        name="ablation_merge",
        title="Best clustered-key score: interleaved vs concatenation-only merge",
        columns=["group_size", "interleaved", "concat_only", "concat_over_interleaved"],
        paper_expectation=(
            "concatenation-only merging produced designs up to 90% slower "
            "(Section 4.2)"
        ),
    )
    # Sample across group sizes — interleaving matters most when merged
    # keys carry several attributes per side, i.e. in the larger groups.
    by_size = sorted(groups, key=lambda g: (len(g), sorted(g)))
    step = max(1, len(by_size) // 12)
    sampled = by_size[::step][:9] + by_size[-3:]
    for group in sampled:
        members = [q for q in queries if q.name in group]
        attrs = ordered_mv_attrs((), members)
        inter = ClusteredIndexDesigner(
            stats=stats, disk=disk, cost_model=model, vectors=vectors
        )
        concat = ClusteredIndexDesigner(
            stats=stats, disk=disk, cost_model=model, vectors=vectors, concat_only=True
        )
        best_inter = inter.design_for_group(members, attrs, t=1)[0][1]
        best_concat = concat.design_for_group(members, attrs, t=1)[0][1]
        result.add_row(
            group_size=len(group),
            interleaved=best_inter,
            concat_only=best_concat,
            concat_over_interleaved=best_concat / best_inter if best_inter else 1.0,
        )
    return result


def bench_ablation_merge(benchmark, save_report):
    result = run_once(benchmark, _run)
    save_report(result)
    ratios = result.column_values("concat_over_interleaved")
    # Interleaving's candidate set is a superset of concatenation's, so it
    # can never lose; whether it *wins* depends on the group mix (the
    # paper's 90% figure is a worst case at their scale).  The report shows
    # where gaps appear.
    assert all(r >= 1.0 - 1e-9 for r in ratios)
