"""Figure 7: ILP Feedback vs plain ILP vs exhaustive OPT."""

from benchmarks.conftest import full_scale, run_once


def bench_fig07_feedback(benchmark, save_report):
    from repro.experiments.fig07_feedback import run_fig07

    n_queries = 11 if full_scale() else 9
    result = run_once(
        benchmark, lambda: run_fig07(lineorder_rows=30_000, n_queries=n_queries)
    )
    save_report(result)
    for row in result.rows:
        # OPT is a lower bound; feedback never loses to plain ILP.
        assert row["ilp_over_opt"] >= 1.0 - 1e-6
        assert row["feedback_over_opt"] <= row["ilp_over_opt"] + 1e-6
    # Feedback reaches (near-)OPT at most budgets, as in the paper.
    near_opt = sum(1 for row in result.rows if row["feedback_over_opt"] < 1.02)
    assert near_opt >= len(result.rows) // 2
