"""Figure 11: CORADD vs Naive vs commercial on augmented (52-query) SSB."""

from benchmarks.conftest import full_scale, run_once


def bench_fig11_augmented_ssb(benchmark, save_report, observe):
    from repro.experiments.fig11_ssb import run_fig11

    rows = 120_000 if full_scale() else 60_000
    result = run_once(benchmark, lambda: run_fig11(lineorder_rows=rows))
    save_report(result)
    for row in result.rows:
        assert row["coradd_real"] > 0
    # CORADD leads commercial everywhere and by a growing factor; Naive
    # sits between, improving more gradually than CORADD.
    speedups = result.column_values("speedup_vs_commercial")
    assert all(s >= 0.9 for s in speedups)
    assert max(speedups) > 1.5
    vs_naive = result.column_values("speedup_vs_naive")
    assert max(vs_naive) >= 1.0
