"""Figure 2: MV size vs target-attribute overlap."""

from benchmarks.conftest import run_once


def bench_fig02_mv_sizes(benchmark, save_report):
    from repro.experiments.fig02_mv_sizes import run_fig02

    result = run_once(benchmark, lambda: run_fig02(lineorder_rows=60_000))
    save_report(result)
    sizes = {row["mv"]: row["size_mb"] for row in result.rows}
    shared_overlap = sizes["Q1.1 + Q1.2 shared"]
    shared_disjoint = sizes["Q1.2 + Q3.4 shared"]
    # Overlapping targets: the shared MV stays close to the dedicated ones.
    assert shared_overlap < 1.3 * max(sizes["Q1.1 dedicated"], sizes["Q1.2 dedicated"])
    # Disjoint targets: the shared MV is clearly bigger than either part.
    assert shared_disjoint > 1.15 * max(
        sizes["Q1.2 dedicated"], sizes["Q3.4 dedicated"]
    )
