"""Serial-vs-parallel wall-clock on the tpch-augmented budget sweep.

One bench, four arms over an identical prebuilt design ladder (48 augmented
TPC-H queries, 16 budget points):

* ``baseline`` — the PR 2 serial engine: one :class:`EvalSession` with
  ``scan_caching=False``, i.e. exactly the caches PR 2 shipped;
* ``workers=1`` — the PR 3 engine, serial fallback (shows the scan-tier
  caches alone);
* ``workers=2`` / ``workers=4`` — :class:`~repro.engine.ParallelSweep`
  sharding the evaluation across forked workers with snapshot shipping and
  delta merge-back.

Every arm must produce bit-identical plan choices, simulated costs and
result masks; the 4-worker arm must beat the PR 2 baseline by >= 1.5x
wall-clock.  Results are printed and written machine-readably to
``benchmarks/results/BENCH_parallel_sweep.json`` so the perf trajectory is
tracked across PRs.

``REPRO_SMOKE=1`` shrinks the sweep, runs only the 1/2-worker arms and
drops the speedup bar (CI boxes have unpredictable core counts; the smoke
run exists to exercise the fork path, not to measure it).
"""

from __future__ import annotations

import gc
import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import RESULTS_DIR, full_scale, run_once


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _scale() -> float:
    if full_scale():
        return 1.0
    return 0.1 if _smoke() else 0.3


def _fractions() -> tuple[float, ...]:
    if _smoke():
        return (0.25, 0.5, 1.0, 2.0)
    return (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0,
        1.2, 1.4, 1.6, 1.8, 2.0, 2.3, 2.6, 3.0,
    )


def _worker_arms() -> tuple[int, ...]:
    return (1, 2) if _smoke() else (1, 2, 4)


def _assert_identical(reference, other) -> None:
    for (cd_a, md_a), (cd_b, md_b) in zip(reference, other):
        for a, b in ((cd_a, cd_b), (md_a, md_b)):
            assert a.real_seconds == b.real_seconds
            for qname, choice in a.plans.items():
                mine = b.plans[qname]
                assert choice.plan == mine.plan
                assert choice.object_name == mine.object_name
                assert choice.result.cost == mine.result.cost
                assert np.array_equal(choice.result.mask, mine.result.mask)


def bench_parallel_sweep(benchmark, save_report, observe):
    from repro.design.baselines import CommercialDesigner
    from repro.design.designer import CoraddDesigner, DesignerConfig
    from repro.engine import EvalSession, ParallelSweep, use_session
    from repro.experiments.harness import (
        budget_ladder,
        evaluate_design,
        evaluate_design_model_guided,
    )
    from repro.experiments.report import ExperimentResult
    from repro.workloads.registry import make

    inst = make("tpch-augmented", scale=_scale(), augment_factor=4)
    config = DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5), use_feedback=False)
    coradd = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=config,
    )
    commercial = CommercialDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys
    )
    fractions = _fractions()
    budgets = budget_ladder(inst.total_base_bytes(), fractions)
    # The design phase (enumeration + ILP) is identical in every arm and is
    # not what this bench measures; build the ladder once, outside timing.
    designs = [(coradd.design(b), commercial.design(b)) for b in budgets]

    def evaluate_budget(pair):
        design, commercial_design = pair
        return (
            evaluate_design(design).without_design(),
            evaluate_design_model_guided(
                commercial_design, commercial.oblivious_models
            ).without_design(),
        )

    def timed(fn):
        gc.collect()
        t0 = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - t0

    def baseline_arm():
        session = EvalSession(scan_caching=False)
        with use_session(session):
            return [evaluate_budget(pair) for pair in designs]

    def all_arms():
        reference, baseline_s = timed(baseline_arm)
        arms = []
        for workers in _worker_arms():
            session = EvalSession()
            sweep = ParallelSweep(workers=workers)
            evaluated, wall_s = timed(
                lambda: sweep.map(evaluate_budget, designs, session=session)
            )
            _assert_identical(reference, evaluated)
            arms.append(
                {
                    "workers": workers,
                    "parallel": sweep.parallel,
                    "wall_seconds": round(wall_s, 3),
                    "speedup_vs_pr2_serial": round(baseline_s / wall_s, 3),
                }
            )
            del session, evaluated
        return baseline_s, arms

    baseline_s, arms = run_once(benchmark, all_arms)

    payload = {
        "bench": "parallel_sweep",
        "workload": "tpch-augmented",
        "queries": len(inst.workload),
        "scale": _scale(),
        "augment_factor": 4,
        "budget_fractions": list(fractions),
        "cpu_count": os.cpu_count(),
        "smoke": _smoke(),
        "baseline": {
            "engine": "pr2-serial (EvalSession(scan_caching=False))",
            "wall_seconds": round(baseline_s, 3),
        },
        "arms": arms,
        "identical_plans_costs_masks": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_parallel_sweep.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    result = ExperimentResult(
        name="parallel_sweep",
        title=(
            f"Evaluation of {len(budgets)} budgets x {len(inst.workload)} "
            "augmented TPC-H queries: PR 2 serial engine vs ParallelSweep"
        ),
        columns=["arm", "wall_seconds", "speedup"],
        paper_expectation=(
            "beyond the paper: sharded sweep >= 1.5x over the PR 2 serial "
            "engine at 4 workers, bit-identical plans, costs and masks"
        ),
    )
    result.add_row(arm="pr2-serial", wall_seconds=baseline_s, speedup=1.0)
    for arm in arms:
        result.add_row(
            arm=f"workers={arm['workers']}",
            wall_seconds=arm["wall_seconds"],
            speedup=arm["speedup_vs_pr2_serial"],
        )
    result.notes.append(
        f"scale {_scale()}, {len(budgets)} budgets, cpu_count={os.cpu_count()}; "
        f"JSON: {out_path.name}"
    )
    save_report(result)

    if not _smoke():
        final = arms[-1]
        assert final["workers"] == 4
        assert final["speedup_vs_pr2_serial"] >= 1.5
