"""Serial-vs-parallel wall-clock on the tpch-augmented budget sweep.

One bench over an identical prebuilt design ladder (48 augmented TPC-H
queries, 16 budget points), three measurement groups:

* **engine arms** — ``baseline`` (the PR 2 serial engine: one
  :class:`EvalSession` with ``scan_caching=False``), ``workers=1`` (the
  serial fallback, scan-tier caches alone), and ``workers=2`` /
  ``workers=4`` (:class:`~repro.engine.ParallelSweep` with the
  work-stealing scheduler, zero-copy shared-memory snapshots and the CM
  warmup probe sharded across the pool).  Each parallel arm reports
  snapshot ship bytes per worker and per-worker busy/idle seconds from
  ``sweep.last_stats``;
* **ship bytes** — the pickled size of the warm session's snapshot with
  and without a :class:`~repro.engine.ShmArena` backing it: the payload a
  worker actually unpickles must shrink >= 10x when columns and cache
  arrays cross as shm tokens instead of bytes;
* **straggler arm** — a skewed ladder (many cheap budgets, a contiguous
  run of expensive ones) where static contiguous chunking parks every
  heavy item on one worker; work stealing spreads them across whoever is
  idle.  Both schedulers must stay bit-identical; wall-clock is compared
  (asserted only on boxes with >= 4 cores — idle-worker wins need idle
  cores).

Every arm must produce bit-identical plan choices, simulated costs and
result masks — with shared memory on, off, stolen or chunked; the 4-worker
arm must beat the PR 2 baseline by >= 1.5x wall-clock.  Results are
printed and written machine-readably to
``benchmarks/results/BENCH_parallel_sweep.json`` so the perf trajectory is
tracked across PRs.

``REPRO_SMOKE=1`` shrinks the sweep, runs only the 1/2-worker arms and
drops the perf bars (CI boxes have unpredictable core counts; the smoke
run exists to exercise the fork + shm paths, not to measure them).
"""

from __future__ import annotations

import gc
import json
import os
import pickle
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import (
    RESULTS_DIR,
    cpu_count,
    full_scale,
    multicore,
    run_once,
)


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _scale() -> float:
    if full_scale():
        return 1.0
    return 0.1 if _smoke() else 0.3


def _fractions() -> tuple[float, ...]:
    if _smoke():
        return (0.25, 0.5, 1.0, 2.0)
    return (
        0.1, 0.2, 0.3, 0.4, 0.5, 0.65, 0.8, 1.0,
        1.2, 1.4, 1.6, 1.8, 2.0, 2.3, 2.6, 3.0,
    )


def _straggler_fractions() -> tuple[float, ...]:
    # Many cheap budgets, then a contiguous run of expensive ones: static
    # contiguous chunking hands the whole heavy tail to the last worker.
    if _smoke():
        return (0.1, 0.1, 3.0, 3.0)
    return (0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 2.6, 2.8, 3.0)


def _worker_arms() -> tuple[int, ...]:
    return (1, 2) if _smoke() else (1, 2, 4)


def _assert_identical(reference, other) -> None:
    for (cd_a, md_a), (cd_b, md_b) in zip(reference, other):
        for a, b in ((cd_a, cd_b), (md_a, md_b)):
            assert a.real_seconds == b.real_seconds
            for qname, choice in a.plans.items():
                mine = b.plans[qname]
                assert choice.plan == mine.plan
                assert choice.object_name == mine.object_name
                assert choice.result.cost == mine.result.cost
                assert np.array_equal(choice.result.mask, mine.result.mask)


def bench_parallel_sweep(benchmark, save_report, observe):
    from repro.design.baselines import CommercialDesigner
    from repro.design.designer import CoraddDesigner, DesignerConfig
    from repro.engine import (
        EvalSession,
        ParallelSweep,
        ShmArena,
        export_snapshot,
        shm_available,
        use_session,
    )
    from repro.experiments.harness import (
        CM_PROBE,
        budget_ladder,
        evaluate_design,
        evaluate_design_model_guided,
    )
    from repro.experiments.report import ExperimentResult
    from repro.workloads.registry import make

    inst = make("tpch-augmented", scale=_scale(), augment_factor=4)
    config = DesignerConfig(t0=1, alphas=(0.0, 0.25, 0.5), use_feedback=False)
    coradd = CoraddDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys, inst.fk_attrs,
        config=config,
    )
    commercial = CommercialDesigner(
        inst.flat_tables, inst.workload, inst.primary_keys
    )
    fractions = _fractions()
    budgets = budget_ladder(inst.total_base_bytes(), fractions)
    # The design phase (enumeration + ILP) is identical in every arm and is
    # not what this bench measures; build the ladder once, outside timing.
    designs = [(coradd.design(b), commercial.design(b)) for b in budgets]
    straggler_budgets = budget_ladder(
        inst.total_base_bytes(), _straggler_fractions()
    )
    straggler_designs = [
        (coradd.design(b), commercial.design(b)) for b in straggler_budgets
    ]

    def evaluate_budget(pair):
        design, commercial_design = pair
        return (
            evaluate_design(design).without_design(),
            evaluate_design_model_guided(
                commercial_design, commercial.oblivious_models
            ).without_design(),
        )

    def timed(fn):
        gc.collect()
        t0 = time.perf_counter()
        out = fn()
        return out, time.perf_counter() - t0

    def baseline_arm():
        session = EvalSession(scan_caching=False)
        with use_session(session):
            return [evaluate_budget(pair) for pair in designs]

    def worker_arm_stats(sweep, wall_s, baseline_s):
        stats = sweep.last_stats
        busy = stats.get("worker_busy_seconds", [])
        round_wall = stats.get("wall_seconds", wall_s)
        return {
            "workers": sweep.workers,
            "parallel": sweep.parallel,
            "scheduler": stats.get("scheduler", "serial"),
            "wall_seconds": round(wall_s, 3),
            "speedup_vs_pr2_serial": round(baseline_s / wall_s, 3),
            "probe_tasks": stats.get("probe_tasks", 0),
            "shm_bytes": stats.get("shm_bytes", 0),
            "shm_segments": stats.get("shm_segments", 0),
            # Snapshot array bytes a worker must *copy* (0 when every big
            # array rides shared memory) vs bytes attached zero-copy.
            "snapshot_inline_bytes": stats.get("snapshot_array_bytes", 0),
            "snapshot_shared_bytes": stats.get("snapshot_shared_bytes", 0),
            "worker_busy_seconds": [round(s, 3) for s in busy],
            "worker_idle_seconds": [
                round(max(0.0, round_wall - s), 3) for s in busy
            ],
            "worker_tasks": stats.get("worker_tasks", []),
        }

    def ship_bytes_measurement(warm_session):
        """The payload a worker unpickles, with and without the arena —
        measured on the sweep-warm session, the realistic fan-out state."""
        plain = len(pickle.dumps(export_snapshot(warm_session)))
        if not shm_available():
            return {"plain_bytes": plain, "shm_bytes": plain, "ratio": 1.0}
        arena = ShmArena()
        try:
            shared = len(
                pickle.dumps(export_snapshot(warm_session, arena=arena))
            )
        finally:
            arena.dispose()
        return {
            "plain_bytes": plain,
            "shm_bytes": shared,
            "ratio": round(plain / max(1, shared), 1),
        }

    def straggler_arm(reference):
        workers = max(_worker_arms())
        walls = {}
        for scheduler in ("chunks", "steal"):
            sweep = ParallelSweep(workers=workers, scheduler=scheduler)
            evaluated, wall_s = timed(
                lambda: sweep.map(
                    evaluate_budget, straggler_designs, session=EvalSession()
                )
            )
            _assert_identical(reference, evaluated)
            walls[scheduler] = round(wall_s, 3)
        return {
            "workers": workers,
            "budget_fractions": list(_straggler_fractions()),
            "chunks_wall_seconds": walls["chunks"],
            "steal_wall_seconds": walls["steal"],
            "steal_speedup_vs_chunks": round(
                walls["chunks"] / walls["steal"], 3
            ),
        }

    def all_arms():
        reference, baseline_s = timed(baseline_arm)
        arms = []
        warm_session = None
        for workers in _worker_arms():
            session = EvalSession()
            sweep = ParallelSweep(workers=workers)
            evaluated, wall_s = timed(
                lambda: sweep.map(
                    evaluate_budget, designs, session=session, probe=CM_PROBE
                )
            )
            _assert_identical(reference, evaluated)
            arms.append(worker_arm_stats(sweep, wall_s, baseline_s))
            if warm_session is None:
                warm_session = session
            else:
                del session
            del evaluated
        # Zero-copy is an optimization, never a semantic: the same sweep
        # with shared memory forced off must be bit-identical.
        sweep_off = ParallelSweep(workers=2, shared_memory=False)
        no_shm = sweep_off.map(
            evaluate_budget, designs, session=EvalSession(), probe=CM_PROBE
        )
        _assert_identical(reference, no_shm)
        ship = ship_bytes_measurement(warm_session)
        with use_session(EvalSession()):
            straggler_reference = [
                evaluate_budget(pair) for pair in straggler_designs
            ]
        straggler = straggler_arm(straggler_reference)
        return baseline_s, arms, ship, straggler

    baseline_s, arms, ship, straggler = run_once(benchmark, all_arms)

    payload = {
        "bench": "parallel_sweep",
        "workload": "tpch-augmented",
        "queries": len(inst.workload),
        "scale": _scale(),
        "augment_factor": 4,
        "budget_fractions": list(fractions),
        "cpu_count": cpu_count(),
        "shm_available": shm_available(),
        "smoke": _smoke(),
        "baseline": {
            "engine": "pr2-serial (EvalSession(scan_caching=False))",
            "wall_seconds": round(baseline_s, 3),
        },
        "arms": arms,
        "snapshot_ship_bytes": ship,
        "straggler_arm": straggler,
        "identical_plans_costs_masks": True,
        "identical_with_shared_memory_off": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_parallel_sweep.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    result = ExperimentResult(
        name="parallel_sweep",
        title=(
            f"Evaluation of {len(budgets)} budgets x {len(inst.workload)} "
            "augmented TPC-H queries: PR 2 serial engine vs work-stealing "
            "ParallelSweep with zero-copy shm snapshots"
        ),
        columns=[
            "arm", "wall_seconds", "speedup", "inline_bytes", "idle_mean_s"
        ],
        paper_expectation=(
            "beyond the paper: sharded sweep >= 1.5x over the PR 2 serial "
            "engine at 4 workers, snapshot ship bytes per worker >= 10x "
            "smaller via shm, bit-identical plans, costs and masks"
        ),
    )
    result.add_row(
        arm="pr2-serial", wall_seconds=baseline_s, speedup=1.0,
        inline_bytes=0, idle_mean_s=0.0,
    )
    for arm in arms:
        idle = arm["worker_idle_seconds"]
        result.add_row(
            arm=f"workers={arm['workers']}",
            wall_seconds=arm["wall_seconds"],
            speedup=arm["speedup_vs_pr2_serial"],
            inline_bytes=arm["snapshot_inline_bytes"],
            idle_mean_s=round(sum(idle) / len(idle), 3) if idle else 0.0,
        )
    result.notes.append(
        f"scale {_scale()}, {len(budgets)} budgets, cpu_count={cpu_count()}; "
        f"ship bytes/worker {ship['plain_bytes']} -> {ship['shm_bytes']} "
        f"({ship['ratio']}x); straggler ladder steal vs chunks "
        f"{straggler['steal_wall_seconds']}s vs "
        f"{straggler['chunks_wall_seconds']}s; JSON: {out_path.name}"
    )
    save_report(result)

    if not _smoke():
        final = arms[-1]
        assert final["workers"] == 4
        if ship["shm_bytes"] != ship["plain_bytes"]:  # shm mount present
            assert ship["ratio"] >= 10.0
        # Wall-clock wins need parallel hardware: on a 1-core box forked
        # workers timeshare the CPU and every per-worker rebuild is pure
        # serialized overhead.  The JSON still records the honest numbers
        # for the trajectory; the perf bars hold where cores exist.
        if multicore():
            assert final["speedup_vs_pr2_serial"] >= 1.5
            workers_one = next(a for a in arms if a["workers"] == 1)
            assert final["wall_seconds"] < workers_one["wall_seconds"]
            assert straggler["steal_speedup_vs_chunks"] >= 1.0
