"""Figure 10: cost-model error — commercial flat, reality spreads ~25x."""

from benchmarks.conftest import run_once


def bench_fig10_cost_model_error(benchmark, save_report):
    from repro.experiments.fig10_cost_model_error import run_fig10

    result = run_once(benchmark, lambda: run_fig10(lineorder_rows=240_000))
    save_report(result)
    reals = result.column_values("real_s")
    assert max(reals) / min(reals) > 10.0  # paper: ~25x
    # Commercial model: one flat estimate for every clustering.
    commercial = {round(v, 9) for v in result.column_values("commercial_model_s")}
    assert len(commercial) == 1
    # CORADD's model must track the ordering reality produces.
    by_key = {row["clustering"]: row for row in result.rows}
    assert (
        by_key["orderdate"]["coradd_model_s"] < by_key["custkey"]["coradd_model_s"]
    )
    assert by_key["orderdate"]["real_s"] < by_key["custkey"]["real_s"]
