"""Sharded physical database: pruning I/O, design wins, parallel identity.

One bench over the ``ssb-sharded`` registry variant (correlation-chosen
shard key, 8 range shards), three measurement groups:

* **pruning arm** — the shard-key-correlated predicate suite (every SSB
  query whose predicates the shard map + zone maps localize; the
  uncorrelated remainder is recorded, never silently dropped).  Each suite
  query must answer **bit-identically** to the unsharded reference heap
  file, every surviving shard's ``(plan, cost)`` must equal an independent
  per-shard evaluation with the costs summing exactly to the aggregate,
  and the suite-wide modeled pages scanned must shrink **>= 3x**.  Pages
  scanned is an I/O-model metric — core-count independent, asserted on
  every box including smoke runs;
* **ILP arm** — shard-local MV candidates priced next to global ones under
  a skewed hot-shard frequency mix: the objective must be no worse at
  every budget on a ladder (the feasible set only grows) and strictly
  better on at least one tight budget, where a shard-local MV covers the
  hot shard for a fraction of the global MV's bytes;
* **shard-parallel arm** — :func:`run_workload_shard_parallel` over a
  2-worker steal pool returns exactly the serial plan choices (plan
  strings, cost dataclasses and masks compare equal, not approx).
  Wall-clock is recorded for the trajectory, never asserted: the tasks
  are model evaluations, so the win is scheduling, not arithmetic.

Results are printed and written machine-readably to
``benchmarks/results/BENCH_sharded.json``.  ``REPRO_SMOKE=1`` shrinks the
scale; every assertion above still runs.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import numpy as np

from benchmarks.conftest import (
    RESULTS_DIR,
    cpu_count,
    full_scale,
    make_benchmark,
    run_once,
)

FACT = "lineorder"
SHARDS = 8


def _smoke() -> bool:
    return os.environ.get("REPRO_SMOKE", "0") == "1"


def _scale() -> float:
    if full_scale():
        return 0.2
    return 0.02 if _smoke() else 0.05


def _selected_sources(hf, result) -> np.ndarray:
    return np.sort(np.asarray(hf.source_rowids)[result.mask])


def bench_sharded(benchmark, save_report, observe):
    from repro.costmodel.base import ObjectGeometry
    from repro.costmodel.correlation_aware import CorrelationAwareCostModel
    from repro.design.ilp_formulation import DesignProblem, choose_candidates
    from repro.design.mv import CandidateSet, MVCandidate, mv_size_bytes
    from repro.design.shard_candidates import ShardCandidateEnumerator
    from repro.engine import EvalSession, ParallelSweep, use_session
    from repro.experiments.report import ExperimentResult
    from repro.stats.collector import TableStatistics
    from repro.storage.disk import DiskModel
    from repro.storage.executor import PhysicalDatabase, PhysicalObject
    from repro.storage.layout import HeapFile
    from repro.storage.sharded import (
        run_workload_shard_parallel,
        shard_best_plan,
        sharded_fact_object,
    )

    inst = make_benchmark("ssb-sharded", scale=_scale(), seed=7,
                          shards=SHARDS)
    spec = inst.sharding[FACT]
    flat = inst.flat_tables[FACT]
    disk = DiskModel()
    db = PhysicalDatabase(
        [sharded_fact_object(flat, FACT, inst.primary_keys[FACT], spec,
                             disk)],
        plan_caching=False,
    )
    ref = PhysicalDatabase(
        [PhysicalObject(HeapFile(flat, tuple(inst.primary_keys[FACT]), disk,
                                 name=FACT))],
        plan_caching=False,
    )
    shf = db.object(FACT).heapfile
    ref_hf = ref.object(FACT).heapfile

    def pruning_arm():
        suite, uncorrelated, rows = [], [], []
        ref_pages = sharded_pages = 0
        for q in inst.workload:
            res = db.run(q).result
            res_ref = ref.run(q).result
            assert np.array_equal(
                _selected_sources(shf, res),
                _selected_sources(ref_hf, res_ref),
            ), f"{q.name}: sharded answer diverges from unsharded"
            # Every surviving shard's (plan, cost) equals an independent
            # per-shard evaluation, and the costs sum exactly to the total.
            total = type(res.cost)(0.0, 0, 0, 0)
            for d in res.shard_details:
                solo = shard_best_plan(shf, d.shard, q)
                assert d.plan == solo.plan and d.cost == solo.cost
                total = total + d.cost
            assert total == res.cost
            if res.shards_scanned == res.shards_total:
                uncorrelated.append(q.name)
                continue
            suite.append(q)
            ref_pages += res_ref.cost.pages_read
            sharded_pages += res.cost.pages_read
            rows.append({
                "query": q.name,
                "shards_scanned": res.shards_scanned,
                "pages_unsharded": res_ref.cost.pages_read,
                "pages_sharded": res.cost.pages_read,
                "pages_avoided": res.pages_avoided,
            })
        assert suite, "no workload query correlated with the shard key"
        reduction = ref_pages / max(1, sharded_pages)
        return {
            "shard_key": spec.key,
            "scheme": spec.scheme,
            "shards": spec.shards,
            "suite_queries": [q.name for q in suite],
            "uncorrelated_queries": uncorrelated,
            "pages_unsharded": ref_pages,
            "pages_sharded": sharded_pages,
            "pages_reduction": round(reduction, 2),
            "per_query": rows,
        }, suite

    def ilp_arm(suite):
        # Skewed hot-shard mix: queries the shard map localizes to a single
        # shard dominate the frequency mass; the rest stay background.
        mix = []
        for q in suite:
            surv = shf.shards_for_query(q)
            freq = 10.0 if len(surv) == 1 else 1.0
            mix.append(type(q)(
                q.name, q.fact_table, q.predicates, q.aggregates,
                q.group_by, q.order_by, frequency=freq,
            ))
        stats = TableStatistics(flat, synopsis_rows=2048, seed=7)
        model = CorrelationAwareCostModel(stats, disk)
        enum = ShardCandidateEnumerator(FACT, shf, mix, disk)
        base = enum.base_seconds()

        def add_global(cands):
            for q in mix:
                key = tuple(p.attr for p in
                            sorted(q.predicates, key=lambda p: p.kind))
                attrs = key + tuple(a for a in q.attributes()
                                    if a not in key)
                c = MVCandidate(
                    cands.next_id("gmv"), FACT, frozenset([q.name]),
                    attrs, key, mv_size_bytes(stats, disk, attrs, key),
                )
                g = ObjectGeometry.from_attrs(stats, disk, attrs, key)
                for q2 in mix:
                    if c.covers(q2):
                        c.runtimes[q2.name] = model.query_seconds(g, q2)
                cands.add(c)

        global_only = CandidateSet()
        add_global(global_only)
        with_shards = CandidateSet()
        add_global(with_shards)
        enum.add_shard_candidates(with_shards)
        sizes = sorted(c.size_bytes for c in global_only)
        budgets = [sizes[0] // 2, sizes[0], sum(sizes) // 2, sum(sizes)]
        ladder, strict_win = [], False
        for budget in budgets:
            dg = choose_candidates(
                DesignProblem(global_only, mix, base, budget))
            ds = choose_candidates(
                DesignProblem(with_shards, mix, base, budget))
            assert ds.objective <= dg.objective + 1e-9, (
                f"budget {budget}: shard candidates made the design worse"
            )
            win = ds.objective < dg.objective - 1e-9
            strict_win = strict_win or win
            ladder.append({
                "budget_bytes": budget,
                "objective_global": round(dg.objective, 6),
                "objective_with_shards": round(ds.objective, 6),
                "strict_win": win,
            })
        assert strict_win, "no budget where shard-local candidates won"
        return {
            "candidates_global": len(global_only),
            "candidates_with_shards": len(with_shards),
            "hot_queries": [q.name for q in mix if q.frequency > 1.0],
            "ladder": ladder,
        }

    def parallel_arm():
        with use_session(EvalSession()) as session:
            t0 = time.perf_counter()
            serial = {q.name: db.run(q) for q in inst.workload}
            serial_s = time.perf_counter() - t0
            sweep = ParallelSweep(workers=2)
            t0 = time.perf_counter()
            parallel = run_workload_shard_parallel(
                db, inst.workload, sweep, session=session
            )
            parallel_s = time.perf_counter() - t0
        for name, s in serial.items():
            p = parallel[name]
            assert p.object_name == s.object_name and p.plan == s.plan
            assert p.result.cost == s.result.cost
            assert np.array_equal(p.result.mask, s.result.mask)
        return {
            "workers": sweep.workers,
            "parallel": sweep.parallel,
            "serial_wall_seconds": round(serial_s, 3),
            "parallel_wall_seconds": round(parallel_s, 3),
            "identical_plans_costs_masks": True,
        }

    def all_arms():
        pruning, suite = pruning_arm()
        return pruning, ilp_arm(suite), parallel_arm()

    pruning, ilp, par = run_once(benchmark, all_arms)

    payload = {
        "bench": "sharded",
        "workload": "ssb-sharded",
        "queries": len(inst.workload),
        "scale": _scale(),
        "cpu_count": cpu_count(),
        "smoke": _smoke(),
        "pruning": pruning,
        "ilp": ilp,
        "shard_parallel": par,
        "bit_identical_answers": True,
    }
    RESULTS_DIR.mkdir(exist_ok=True)
    out_path = Path(RESULTS_DIR) / "BENCH_sharded.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    result = ExperimentResult(
        name="sharded",
        title=(
            f"SSB on {SHARDS} range shards (key {spec.key!r}): "
            "predicate-driven pruning vs the unsharded heap file"
        ),
        columns=[
            "query", "shards_scanned", "pages_unsharded", "pages_sharded",
            "reduction",
        ],
        paper_expectation=(
            "beyond the paper: correlated-suite pages scanned >= 3x smaller "
            "under pruning, bit-identical answers, shard-local ILP "
            "candidates never worse and strictly better on a hot-shard mix"
        ),
    )
    for row in pruning["per_query"]:
        result.add_row(
            query=row["query"],
            shards_scanned=f"{row['shards_scanned']}/{SHARDS}",
            pages_unsharded=row["pages_unsharded"],
            pages_sharded=row["pages_sharded"],
            reduction=round(
                row["pages_unsharded"] / max(1, row["pages_sharded"]), 2
            ),
        )
    wins = sum(1 for step in ilp["ladder"] if step["strict_win"])
    result.notes.append(
        f"scale {_scale()}, cpu_count={cpu_count()}; suite pages "
        f"{pruning['pages_unsharded']} -> {pruning['pages_sharded']} "
        f"({pruning['pages_reduction']}x); uncorrelated (full-scan) queries: "
        f"{', '.join(pruning['uncorrelated_queries']) or 'none'}; ILP "
        f"strict wins at {wins}/{len(ilp['ladder'])} budgets; shard-parallel "
        f"bit-identical at {par['workers']} workers; JSON: {out_path.name}"
    )
    save_report(result)

    # The tentpole bar: an I/O-model metric, asserted unconditionally.
    assert pruning["pages_reduction"] >= 3.0, (
        f"pruning reduced pages only {pruning['pages_reduction']}x"
    )
