"""repro — a from-scratch reproduction of CORADD (VLDB 2010).

CORADD: Correlation Aware Database Designer for Materialized Views and
Indexes (Kimura, Huo, Rasin, Madden, Zdonik; PVLDB 3(1), 2010).

Top-level convenience re-exports; see the subpackages for the full API:

* :mod:`repro.relational` — schemas, columnar tables, queries
* :mod:`repro.engine`     — shared evaluation engine (session caches)
* :mod:`repro.storage`    — the simulated disk engine
* :mod:`repro.stats`      — statistics and correlation discovery
* :mod:`repro.cm`         — Correlation Maps
* :mod:`repro.costmodel`  — correlation-aware and oblivious cost models
* :mod:`repro.ilp`        — from-scratch MILP solver
* :mod:`repro.design`     — the designer pipeline and baselines
* :mod:`repro.workloads`  — SSB and APB-1 generators
* :mod:`repro.experiments`— the paper's tables and figures
"""

__version__ = "1.0.0"

from repro.design.designer import CoraddDesigner, Design, DesignerConfig
from repro.engine import EvalSession, use_session
from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.table import Table
from repro.storage.disk import DiskModel

__all__ = [
    "__version__",
    "CoraddDesigner",
    "Design",
    "DesignerConfig",
    "EvalSession",
    "use_session",
    "Aggregate",
    "EqPredicate",
    "InPredicate",
    "Query",
    "RangePredicate",
    "Workload",
    "Column",
    "ForeignKey",
    "StarSchema",
    "TableSchema",
    "Table",
    "DiskModel",
]
