"""Zero-copy shared-memory arenas for cross-process column and cache arrays.

A :class:`ShmArena` owns a set of named POSIX shared-memory slabs and packs
numpy arrays into them with a bump allocator.  Registering an array copies
its bytes into a slab exactly once (memoized by object identity, the same
pinning discipline as :meth:`repro.engine.session.EvalSession.array_key`)
and yields a tiny picklable :class:`ShmRef` token; any process that can see
the segment — in practice the forked workers of a
:class:`~repro.engine.parallel.ParallelSweep` — turns the token back into a
**read-only zero-copy view** of the very same physical pages with
:func:`attach_ref`.  Content digests are preserved by construction (the
bytes are the bytes), so every content-keyed session cache treats a view
exactly like the array it mirrors.

Two call sites use the arena:

* :func:`repro.engine.snapshot.export_snapshot` swaps the large ndarray
  payloads of a session snapshot (predicate/conjunction masks, sort
  orderings, bucket expansions, detached CM entry/posting arrays) for
  refs, so the payload that crosses a process boundary shrinks from
  megabytes of array bytes to a handful of tokens;
* :meth:`repro.storage.layout.HeapFile.share_columns` rebinds a heap
  file's column arrays to arena-backed views, so forked workers read the
  parent's pages directly (``MAP_SHARED`` — never copy-on-write faulted,
  never duplicated) when they rebuild or scan session-cached files.

Ownership and cleanup are strictly parent-sided, fork-safe by pid guard:

* the creating process — and only it — may :meth:`ShmArena.dispose`,
  which unlinks every segment name (the ``/dev/shm`` entry disappears
  immediately; the memory itself lives until the last mapping closes) and
  closes the mappings of slabs that never vended a view into live parent
  state.  A :mod:`weakref` finalizer unlinks on garbage collection as a
  safety net, and the stdlib resource tracker covers hard crashes;
* forked children inherit the arena object but every mutating entry point
  no-ops or raises for them; attach-side mappings are plain refcounted
  ``mmap`` objects kept alive by the views themselves, so worker exit
  cleans up without unlink races or tracker double-accounting.

Platform matrix: zero-copy engages on platforms with both ``fork`` and a
file-backed POSIX shm mount (Linux: ``/dev/shm``).  Elsewhere
:func:`shm_available` is False and every caller falls back to plain
picklable snapshots — same results, just copied instead of shared.
"""

from __future__ import annotations

import hashlib
import mmap
import os
import secrets
import weakref
from dataclasses import dataclass
from multiprocessing import shared_memory
from typing import Sequence

import numpy as np

from repro.engine import faults
from repro.obs import metrics as obs_metrics

#: Arrays smaller than this are cheaper to pickle than to reference.
SHARE_MIN_BYTES = 1024

#: Default slab size; arrays larger than a slab get a dedicated segment.
DEFAULT_SLAB_BYTES = 4 << 20

#: Slab offsets are aligned so attached views keep natural array alignment.
_ALIGN = 64

_SHM_DIR = "/dev/shm"

#: Segment names embed the owning pid so :func:`sweep_orphan_segments` can
#: tell a crashed parent's leftovers from a live sibling's working set.
_SEG_PREFIX = "repro-shm"


@dataclass(frozen=True)
class ShmRef:
    """A picklable token for one array inside a shared-memory slab.

    ``digest`` is a 128-bit blake2b of the registered bytes; attachers verify
    it so a truncated or recycled segment surfaces as a typed
    :class:`ShmAttachError` instead of silently corrupt cache entries.
    """

    segment: str
    offset: int
    dtype: str
    shape: tuple
    nbytes: int
    digest: str = ""


class ShmAttachError(RuntimeError):
    """A ref could not be attached: segment missing, truncated, or failing
    its content-digest check.  Carries the segment name and expected digest
    so supervisors can log the failure and fall back to pickled payloads."""

    def __init__(self, ref: ShmRef, reason: str):
        super().__init__(
            f"cannot attach shm ref (segment={ref.segment!r}, "
            f"nbytes={ref.nbytes}, digest={ref.digest or '<none>'}): {reason}"
        )
        self.segment = ref.segment
        self.digest = ref.digest
        self.reason = reason


def shm_available() -> bool:
    """Whether this platform supports the zero-copy arena path: POSIX
    shared memory reachable as plain files (Linux ``/dev/shm``), which is
    what lets workers attach read-only without resource-tracker
    double-accounting."""
    return os.path.isdir(_SHM_DIR) and os.access(_SHM_DIR, os.W_OK)


def _bytes_digest(arr: np.ndarray) -> str:
    """128-bit blake2b over an array's raw bytes — the integrity check
    attachers replay (dtype/shape ride the ref itself, so only bytes are
    hashed)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(arr.tobytes() if not arr.flags.c_contiguous else arr)
    return h.hexdigest()


def _unlink_segments(names: Sequence[str], pid: int) -> None:
    """Finalizer body: unlink segments, parent process only (a forked child
    inheriting the finalizer must never tear down segments the parent and
    its siblings still use)."""
    if os.getpid() != pid:
        return
    for name in names:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        try:
            seg.close()
        finally:
            try:
                seg.unlink()
            except FileNotFoundError:
                pass


class _Slab:
    """One shared-memory segment plus its bump-allocation cursor."""

    __slots__ = ("shm", "cursor", "vended")

    def __init__(self, shm: shared_memory.SharedMemory) -> None:
        self.shm = shm
        self.cursor = 0
        self.vended = False  # a parent-side view points into this slab

    @property
    def capacity(self) -> int:
        return self.shm.size


class ShmArena:
    """Parent-owned shared-memory slabs packing registered arrays.

    One arena per fan-out scope (a :meth:`ParallelSweep.map
    <repro.engine.parallel.ParallelSweep.map>` call): the parent registers,
    forked workers attach, and the parent disposes after the pool has
    drained.  Registration is memoized by array identity and the array is
    pinned, so repeated exports of the same session cache copy each array
    at most once per arena.
    """

    def __init__(self, slab_bytes: int = DEFAULT_SLAB_BYTES) -> None:
        self._pid = os.getpid()
        self._slab_bytes = int(slab_bytes)
        self._slabs: list[_Slab] = []
        self._names: list[str] = []  # shared with the finalizer, grown in place
        self._refs: dict[int, ShmRef] = {}
        self._pinned: list[np.ndarray] = []
        self._disposed = False
        self.bytes_registered = 0
        self._finalizer = weakref.finalize(
            self, _unlink_segments, self._names, self._pid
        )

    # ------------------------------------------------------------ allocation

    @property
    def segments(self) -> int:
        return len(self._slabs)

    @property
    def segment_names(self) -> list[str]:
        return list(self._names)

    def _new_segment(self, size: int) -> shared_memory.SharedMemory:
        """Create a segment named ``repro-shm-<pid>-<seq>-<token>`` so the
        orphan sweep can attribute it to this process, retrying on the
        (vanishingly unlikely) name collision."""
        for _ in range(8):
            name = (
                f"{_SEG_PREFIX}-{self._pid}-{len(self._names)}-"
                f"{secrets.token_hex(4)}"
            )
            try:
                return shared_memory.SharedMemory(name=name, create=True, size=size)
            except FileExistsError:
                continue
        return shared_memory.SharedMemory(create=True, size=size)

    def _alloc(self, nbytes: int) -> tuple[_Slab, int]:
        slab = self._slabs[-1] if self._slabs else None
        if slab is None or slab.cursor + nbytes > slab.capacity:
            size = max(self._slab_bytes, nbytes)
            slab = _Slab(self._new_segment(size))
            self._slabs.append(slab)
            self._names.append(slab.shm.name)
        offset = slab.cursor
        slab.cursor = -(-(offset + nbytes) // _ALIGN) * _ALIGN
        return slab, offset

    # ---------------------------------------------------------- registration

    def register(self, arr: np.ndarray) -> ShmRef:
        """Copy ``arr`` into a slab (once per array object) and return its
        ref.  Parent-side only: children attach, they never grow slabs."""
        if os.getpid() != self._pid:
            raise RuntimeError(
                "ShmArena is owned by the parent process; forked children "
                "attach refs instead of registering arrays"
            )
        if self._disposed:
            raise RuntimeError("cannot register into a disposed ShmArena")
        ref = self._refs.get(id(arr))
        if ref is not None:
            return ref
        contiguous = np.ascontiguousarray(arr)
        if contiguous.nbytes == 0:
            ref = ShmRef("", 0, contiguous.dtype.str, tuple(contiguous.shape), 0)
        else:
            slab, offset = self._alloc(contiguous.nbytes)
            dst = np.ndarray(
                contiguous.shape, contiguous.dtype,
                buffer=slab.shm.buf, offset=offset,
            )
            dst[...] = contiguous
            ref = ShmRef(
                slab.shm.name, offset, contiguous.dtype.str,
                tuple(contiguous.shape), contiguous.nbytes,
                _bytes_digest(contiguous),
            )
        self._refs[id(arr)] = ref
        self._pinned.append(arr)  # keep id() stable for the memo's lifetime
        self.bytes_registered += contiguous.nbytes
        return ref

    def register_view(self, arr: np.ndarray) -> np.ndarray:
        """Register ``arr`` and return the parent-side read-only view of
        its slab bytes — what :meth:`HeapFile.share_columns` rebinds column
        arrays to, so forked children share the physical pages."""
        ref = self.register(arr)
        if ref.nbytes == 0:
            return _empty_view(ref)
        for slab in self._slabs:
            if slab.shm.name == ref.segment:
                slab.vended = True
                view = np.ndarray(
                    ref.shape, np.dtype(ref.dtype),
                    buffer=slab.shm.buf, offset=ref.offset,
                )
                view.setflags(write=False)
                return view
        raise KeyError(f"segment {ref.segment!r} is not owned by this arena")

    # -------------------------------------------------------------- disposal

    def dispose(self) -> None:
        """Unlink every segment name (idempotent, parent-only).  Mappings
        of slabs that vended parent-side views stay open — the views keep
        the pages alive and valid; everything else is closed now.  A forked
        child calling this is a no-op: cleanup is the parent's job."""
        if os.getpid() != self._pid or self._disposed:
            return
        self._disposed = True
        self._finalizer.detach()
        for slab in self._slabs:
            try:
                slab.shm.unlink()
            except FileNotFoundError:
                pass
            if not slab.vended:
                try:
                    slab.shm.close()
                except (BufferError, ValueError):  # a view escaped: keep mapped
                    pass


# -------------------------------------------------------------- attach side

#: name -> mmap of segments this process attached (refs resolve through it).
#: Views hold the mmap via their buffer base, so lifetime is refcounted —
#: a worker exiting with live views tears down in reference order, no
#: unlink, no resource-tracker churn.
_ATTACHED: dict[str, mmap.mmap] = {}


def _empty_view(ref: ShmRef) -> np.ndarray:
    arr = np.empty(ref.shape, dtype=np.dtype(ref.dtype))
    arr.setflags(write=False)
    return arr


def _map_segment(name: str) -> mmap.mmap:
    mapped = _ATTACHED.get(name)
    if mapped is None:
        fd = os.open(os.path.join(_SHM_DIR, name), os.O_RDONLY)
        try:
            mapped = mmap.mmap(fd, 0, prot=mmap.PROT_READ)
        finally:
            os.close(fd)
        _ATTACHED[name] = mapped
        obs_metrics.count("engine.shm.attach_segments")
    return mapped


def attach_ref(ref: ShmRef, verify: bool = True) -> np.ndarray:
    """A read-only zero-copy view of a registered array, in any process
    that can see the segment (the parent itself, or its forked workers).

    Raises :class:`ShmAttachError` when the segment is gone (a parent
    disposed early, or the mount was cleaned under us), when the mapping is
    too short for the ref, or when ``verify`` is on and the bytes fail the
    ref's content digest — callers treat any of these as "shared memory is
    poisoned" and fall back to pickled payloads.
    """
    spec = faults.fire("shm.attach", key=ref.segment)
    if spec is not None and spec.kind == "corrupt":
        obs_metrics.count("engine.shm.attach_errors")
        raise ShmAttachError(ref, "injected corruption")
    obs_metrics.count("engine.shm.attaches")
    obs_metrics.count("engine.shm.attach_bytes", ref.nbytes)
    if ref.nbytes == 0:
        return _empty_view(ref)
    try:
        mapped = _map_segment(ref.segment)
    except OSError as exc:
        obs_metrics.count("engine.shm.attach_errors")
        raise ShmAttachError(ref, f"segment unavailable: {exc}") from exc
    if ref.offset + ref.nbytes > len(mapped):
        obs_metrics.count("engine.shm.attach_errors")
        raise ShmAttachError(
            ref,
            f"segment truncated: need bytes [{ref.offset}, "
            f"{ref.offset + ref.nbytes}) of {len(mapped)}",
        )
    view = np.frombuffer(
        mapped, dtype=np.dtype(ref.dtype), count=int(np.prod(ref.shape)),
        offset=ref.offset,
    ).reshape(ref.shape)
    if verify and ref.digest and _bytes_digest(view) != ref.digest:
        obs_metrics.count("engine.shm.attach_errors")
        raise ShmAttachError(ref, "content digest mismatch")
    return view


def forget_attachments() -> None:
    """Drop this process's attach cache (fork-safe worker init: inherited
    parent-side entries are stale bookkeeping for a child — live views keep
    their own mappings alive regardless)."""
    _ATTACHED.clear()


def _pid_alive(pid: int) -> bool:
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    return True


def sweep_orphan_segments() -> list[str]:
    """Unlink ``repro-shm-*`` segments whose owning process is dead.

    The normal lifecycle (dispose / finalizer / resource tracker) already
    covers clean exits and most crashes; this sweep is the backstop for a
    SIGKILLed parent whose tracker died with it.  Only segments carrying our
    name prefix with a dead embedded pid are touched — live sweeps in
    sibling processes keep their segments.  Returns the unlinked names.
    """
    removed: list[str] = []
    if not os.path.isdir(_SHM_DIR):
        return removed
    for entry in os.listdir(_SHM_DIR):
        if not entry.startswith(_SEG_PREFIX + "-"):
            continue
        parts = entry.split("-")
        try:
            pid = int(parts[2])
        except (IndexError, ValueError):
            continue
        if _pid_alive(pid):
            continue
        try:
            os.unlink(os.path.join(_SHM_DIR, entry))
        except FileNotFoundError:
            continue
        removed.append(entry)
    if removed:
        obs_metrics.count("engine.shm.orphans_swept", len(removed))
    return removed


def shareable(value) -> bool:
    """Whether a cache value is worth moving into the arena."""
    return isinstance(value, np.ndarray) and value.nbytes >= SHARE_MIN_BYTES
