"""Evaluation sessions: content-keyed caches shared across a sweep.

CORADD is judged over *sweeps* — a ladder of space budgets, each budget
materialized and measured — yet every (query, object, budget) evaluation
used to be independent work: the same predicate mask recomputed inside every
plan, the same flattened fact table re-sorted at every budget point.  An
:class:`EvalSession` is the shared state that removes that duplication:

* a **predicate-mask cache** keyed by (column content, predicate), so each
  ``Predicate.mask`` over a given array is computed once per session;
* a **conjunction cache** for combined masks (query masks, clustered-prefix
  masks, secondary-index key masks);
* a **materialization cache** keyed by (source column content, projected
  attrs, cluster key, disk, name), so budget sweeps reuse already-sorted
  heap files across :meth:`~repro.design.designer.Design.materialize` calls;
* a **CM-design cache** keyed by (cached heap file, query fingerprints,
  designer knobs), reusing Correlation Maps when the same object serves the
  same queries at another budget.

All keys are *content*-derived (array bytes are digested, predicates and
disk models are value-hashable dataclasses), which makes the caches safe to
share across designers and budgets within a session, and makes two sessions
over different data provably disjoint.  Cached masks are frozen
(``writeable=False``) so accidental mutation raises instead of corrupting
later plans.  Caching is observationally invisible: plan choices, simulated
costs and result masks are bit-identical with or without a session.

Sessions are installed ambiently (a :class:`contextvars.ContextVar`) via
:func:`use_session`; code that evaluates plans picks the active session up
through :func:`get_session` and falls back to uncached computation when none
is active.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.cm.correlation_map import CorrelationMap
    from repro.cm.designer import CMDesigner
    from repro.relational.query import Predicate, Query
    from repro.relational.table import Table
    from repro.storage.disk import DiskModel
    from repro.storage.layout import HeapFile


class EvalSession:
    """Shared evaluation state for one sweep (or any scope the caller picks).

    A session pins every array and heap file it has fingerprinted, so
    ``id()``-based memoization of content digests stays sound for the
    session's lifetime.  Drop the session to release everything.
    """

    def __init__(self) -> None:
        # id(array) -> content digest, with the arrays pinned so ids are
        # stable; digesting happens once per distinct array per session.
        self._array_digests: dict[int, bytes] = {}
        self._pinned: list[np.ndarray] = []
        # (array digest, predicate) -> frozen boolean mask.
        self._masks: dict[tuple, np.ndarray] = {}
        # (nrows, ((array digest, predicate), ...)) -> frozen combined mask.
        self._conjunctions: dict[tuple, np.ndarray] = {}
        # materialization cache: content key -> HeapFile, plus id(HeapFile)
        # -> content key so dependent caches (CMs) can key off cached files.
        self._heapfiles: dict[tuple, "HeapFile"] = {}
        self._heapfile_keys: dict[int, tuple] = {}
        # (heapfile key, query fingerprints, designer knobs) -> [CM, ...]
        self._cms: dict[tuple, list["CorrelationMap"]] = {}
        # (heapfile key, key attrs, widths, cluster width) -> CorrelationMap.
        self._cm_builds: dict[tuple, "CorrelationMap"] = {}
        # (heapfile key, query fingerprint, knobs) -> (CM | None, seconds).
        self._cm_choices: dict[tuple, tuple] = {}
        self.stats = {
            "mask_hits": 0,
            "mask_misses": 0,
            "conjunction_hits": 0,
            "conjunction_misses": 0,
            "heapfile_hits": 0,
            "heapfile_misses": 0,
            "cm_hits": 0,
            "cm_misses": 0,
            "cm_build_hits": 0,
            "cm_build_misses": 0,
            "cm_choice_hits": 0,
            "cm_choice_misses": 0,
        }

    # ------------------------------------------------------------------ keys

    def array_key(self, arr: np.ndarray) -> bytes:
        """Content digest of an array, memoized by identity (the array is
        pinned so the id cannot be recycled while the session lives)."""
        digest = self._array_digests.get(id(arr))
        if digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(np.ascontiguousarray(arr).tobytes())
            digest = h.digest()
            self._array_digests[id(arr)] = digest
            self._pinned.append(arr)
        return digest

    # ----------------------------------------------------------------- masks

    def predicate_mask(self, values: np.ndarray, pred: "Predicate") -> np.ndarray:
        """``pred.mask(values)``, computed once per (column content, pred)."""
        key = (self.array_key(values), pred)
        mask = self._masks.get(key)
        if mask is None:
            self.stats["mask_misses"] += 1
            mask = pred.mask(values)
            mask.setflags(write=False)
            self._masks[key] = mask
        else:
            self.stats["mask_hits"] += 1
        return mask

    def conjunction_mask(
        self, table: "Table", preds: tuple["Predicate", ...]
    ) -> np.ndarray:
        """AND of the predicate masks over ``table``, in ``preds`` order
        (the order queries apply them, so bits combine identically to the
        uncached path)."""
        pred_keys = tuple(
            (self.array_key(table.column(p.attr)), p) for p in preds
        )
        key = (table.nrows, pred_keys)
        mask = self._conjunctions.get(key)
        if mask is None:
            self.stats["conjunction_misses"] += 1
            mask = np.ones(table.nrows, dtype=bool)
            for pred in preds:
                mask &= self.predicate_mask(table.column(pred.attr), pred)
            mask.setflags(write=False)
            self._conjunctions[key] = mask
        else:
            self.stats["conjunction_hits"] += 1
        return mask

    # ------------------------------------------------------- materialization

    def heapfile(
        self,
        source: "Table",
        attrs: tuple[str, ...] | None,
        cluster_key: tuple[str, ...],
        disk: "DiskModel",
        name: str,
    ) -> "HeapFile":
        """A clustered heap file of ``source`` (projected to ``attrs`` when
        given), built at most once per content per session.

        The key covers exactly what determines the result: the content of
        the columns that end up in the file, the projection, the cluster
        key, the disk geometry and the object name.  Re-sorting — the
        expensive part of materialization — is skipped on a hit.
        """
        from repro.storage.layout import HeapFile

        cols = tuple(attrs) if attrs is not None else tuple(source.column_names)
        content = tuple((n, self.array_key(source.column(n))) for n in cols)
        key = (content, attrs is not None, tuple(cluster_key), disk, name)
        hf = self._heapfiles.get(key)
        if hf is None:
            self.stats["heapfile_misses"] += 1
            table = (
                source.project(list(attrs), new_name=name)
                if attrs is not None
                else source
            )
            hf = HeapFile(table, tuple(cluster_key), disk, name=name)
            self._heapfiles[key] = hf
            self._heapfile_keys[id(hf)] = key
        else:
            self.stats["heapfile_hits"] += 1
        return hf

    def design_cms(
        self,
        designer: "CMDesigner",
        heapfile: "HeapFile",
        queries: list["Query"],
    ) -> list["CorrelationMap"]:
        """CM design for a *cached* heap file, memoized by (file content,
        query fingerprints, designer knobs).  Falls back to a plain design
        run when the heap file did not come from this session."""
        hf_key = self._heapfile_keys.get(id(heapfile))
        if hf_key is None:
            return designer.design(heapfile, queries)
        key = (
            hf_key,
            tuple(q.fingerprint() for q in queries),
            self._designer_knobs(designer),
        )
        cms = self._cms.get(key)
        if cms is None:
            self.stats["cm_misses"] += 1
            cms = designer.design(heapfile, queries)
            self._cms[key] = cms
        else:
            self.stats["cm_hits"] += 1
        return list(cms)

    @staticmethod
    def _designer_knobs(designer: "CMDesigner") -> tuple:
        return (
            designer.budget_bytes,
            designer.max_composite,
            designer.cluster_width,
            designer.max_widths,
        )

    def correlation_map(
        self,
        heapfile: "HeapFile",
        key_attrs: tuple[str, ...],
        key_widths: tuple[int, ...],
        cluster_width: int,
    ) -> "CorrelationMap":
        """A built CM over a *cached* heap file, memoized by (file content,
        key, bucket widths).  CM construction is independent of the query
        probing it, so the same CM candidate tried for many queries — e.g.
        the shifted-constant variants of an augmented workload — is built
        once.  CMs are immutable after construction, so sharing is safe."""
        from repro.cm.correlation_map import CorrelationMap

        hf_key = self._heapfile_keys.get(id(heapfile))
        if hf_key is None:
            return CorrelationMap(
                heapfile, key_attrs, key_widths=key_widths,
                cluster_width=cluster_width,
            )
        key = (hf_key, tuple(key_attrs), tuple(key_widths), cluster_width)
        cm = self._cm_builds.get(key)
        if cm is None:
            self.stats["cm_build_misses"] += 1
            cm = CorrelationMap(
                heapfile, key_attrs, key_widths=key_widths,
                cluster_width=cluster_width,
            )
            self._cm_builds[key] = cm
        else:
            self.stats["cm_build_hits"] += 1
        return cm

    def best_cm_for_query(
        self,
        designer: "CMDesigner",
        heapfile: "HeapFile",
        query: "Query",
    ) -> tuple:
        """Memoized :meth:`repro.cm.designer.CMDesigner.best_cm_for_query`
        over a cached heap file.  The winning CM for one (object, query)
        pair does not depend on which other queries share the object, so
        this key survives re-assignment across budgets where a whole-object
        key would not."""
        hf_key = self._heapfile_keys.get(id(heapfile))
        if hf_key is None:
            return designer.best_cm_for_query(heapfile, query)
        key = (hf_key, query.fingerprint(), self._designer_knobs(designer))
        choice = self._cm_choices.get(key)
        if choice is None:
            self.stats["cm_choice_misses"] += 1
            choice = designer.best_cm_for_query(heapfile, query)
            self._cm_choices[key] = choice
        else:
            self.stats["cm_choice_hits"] += 1
        return choice


# ------------------------------------------------------------ ambient session

_ACTIVE: ContextVar[EvalSession | None] = ContextVar(
    "repro_eval_session", default=None
)


def get_session() -> EvalSession | None:
    """The ambient session, or None when evaluation is uncached."""
    return _ACTIVE.get()


@contextmanager
def use_session(session: EvalSession | None = None) -> Iterator[EvalSession]:
    """Install ``session`` (a fresh one when None) as the ambient session
    for the duration of the ``with`` block."""
    active = session if session is not None else EvalSession()
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)
