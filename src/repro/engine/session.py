"""Evaluation sessions: content-keyed caches shared across a sweep.

CORADD is judged over *sweeps* — a ladder of space budgets, each budget
materialized and measured — yet every (query, object, budget) evaluation
used to be independent work: the same predicate mask recomputed inside every
plan, the same flattened fact table re-sorted at every budget point.  An
:class:`EvalSession` is the shared state that removes that duplication:

* a **predicate-mask cache** keyed by (column content, predicate), so each
  ``Predicate.mask`` over a given array is computed once per session;
* a **conjunction cache** for combined masks (query masks, clustered-prefix
  masks, secondary-index key masks);
* a **materialization cache** keyed by (source column content, projected
  attrs, cluster key, disk, name), so budget sweeps reuse already-sorted
  heap files across :meth:`~repro.design.designer.Design.materialize` calls;
* a **CM-design cache** keyed by (cached heap file, query fingerprints,
  designer knobs), reusing Correlation Maps when the same object serves the
  same queries at another budget.

PR 3 adds a second tier of caches (gated by ``scan_caching``, on by
default) that make the cached state *serializable* and close the executor
recomputation gap:

* a **sort-ordering cache** keyed by (cluster key, key-column content): the
  stable lexsort permutation of a materialization, so rebuilding the same
  heap file — in another process, or after importing a snapshot — skips the
  sort;
* a **CM-fragment cache** keyed by (heap file content, prefix depth, rank
  codes content): the coalesced page fragments a CM-guided scan reads.
  Different CM candidates frequently resolve to identical rank-code sets,
  so this collapses duplicated range/merge work even within one sweep;
* a **bucket-expansion cache** for CM cluster-bucket -> rank-code expansion
  (same duplication argument);
* a **scan-result cache** keyed by (heap file content, CM content, query
  fingerprint): the executed plan name and simulated cost of a ``cm_scan``,
  shared between the CM Designer's probe phase and the executor, and across
  every database of a sweep.

All second-tier caches are exportable: :mod:`repro.engine.snapshot` turns
them (plus masks and CM designs) into a picklable snapshot that can be
shipped to worker processes and merged back — the backbone of
:class:`repro.engine.parallel.ParallelSweep`.

All keys are *content*-derived (array bytes are digested, predicates and
disk models are value-hashable dataclasses), which makes the caches safe to
share across designers and budgets within a session, and makes two sessions
over different data provably disjoint.  Cached masks are frozen
(``writeable=False``) so accidental mutation raises instead of corrupting
later plans.  Caching is observationally invisible: plan choices, simulated
costs and result masks are bit-identical with or without a session.

Sessions are installed ambiently (a :class:`contextvars.ContextVar`) via
:func:`use_session`; code that evaluates plans picks the active session up
through :func:`get_session` and falls back to uncached computation when none
is active.
"""

from __future__ import annotations

import hashlib
from contextlib import contextmanager, nullcontext
from contextvars import ContextVar
from typing import TYPE_CHECKING, Iterator

import numpy as np

if TYPE_CHECKING:  # imported lazily at runtime to keep layering acyclic
    from repro.cm.correlation_map import CorrelationMap
    from repro.cm.designer import CMDesigner
    from repro.relational.query import Predicate, Query
    from repro.relational.table import Table
    from repro.storage.disk import DiskModel
    from repro.storage.layout import HeapFile


def _content_digest(arr: np.ndarray) -> bytes:
    """128-bit content digest of a (transient) array — same identity scheme
    as :meth:`EvalSession.array_key`, but without pinning: used for keying
    by arrays that are produced fresh on every lookup (CM rank codes,
    cluster buckets) and would leak if pinned."""
    arr = np.ascontiguousarray(arr)
    h = hashlib.blake2b(digest_size=16)
    h.update(str(arr.dtype).encode())
    h.update(str(arr.shape).encode())
    h.update(arr.tobytes())
    return h.digest()


class EvalSession:
    """Shared evaluation state for one sweep (or any scope the caller picks).

    A session pins every array and heap file it has fingerprinted, so
    ``id()``-based memoization of content digests stays sound for the
    session's lifetime.  Drop the session to release everything.
    """

    def __init__(self, scan_caching: bool = True) -> None:
        # ``scan_caching`` gates the PR 3 cache tier (sort orderings, CM
        # fragments, bucket expansions, executor scan results).  With it
        # off the session behaves exactly like the PR 2 engine — the serial
        # baseline the parallel-sweep benchmarks compare against.
        self.scan_caching = scan_caching
        # id(array) -> content digest, with the arrays pinned so ids are
        # stable; digesting happens once per distinct array per session.
        self._array_digests: dict[int, bytes] = {}
        self._pinned: list[np.ndarray] = []
        # (array digest, predicate) -> frozen boolean mask.
        self._masks: dict[tuple, np.ndarray] = {}
        # (nrows, ((array digest, predicate), ...)) -> frozen combined mask.
        self._conjunctions: dict[tuple, np.ndarray] = {}
        # materialization cache: content key -> HeapFile, plus id(HeapFile)
        # -> content key so dependent caches (CMs) can key off cached files.
        # ``_heapfile_versions`` remembers the mutation counter each key was
        # computed at: a mutated file is re-keyed by its *new* content on the
        # next lookup (a key bump — old entries become unreachable, nothing
        # is torn down).
        self._heapfiles: dict[tuple, "HeapFile"] = {}
        self._heapfile_keys: dict[int, tuple] = {}
        self._heapfile_versions: dict[int, int] = {}
        self._pinned_objects: list = []
        # (heapfile key, query fingerprints, designer knobs) -> [CM, ...]
        self._cms: dict[tuple, list["CorrelationMap"]] = {}
        # (heapfile key, key attrs, widths, cluster width) -> CorrelationMap.
        self._cm_builds: dict[tuple, "CorrelationMap"] = {}
        # id(CM) -> its _cm_builds key, so dependent caches (scan results)
        # can key off cached CMs the way heapfile keys work.
        self._cm_keys: dict[int, tuple] = {}
        # (heapfile key, query fingerprint, knobs) -> (CM | None, seconds).
        self._cm_choices: dict[tuple, tuple] = {}
        # (cluster key, key-column digests) -> stable sort permutation.
        self._orderings: dict[tuple, np.ndarray] = {}
        # (heapfile key, depth, rank-codes bytes) -> page fragments tuple.
        self._cm_fragments: dict[tuple, tuple] = {}
        # (cluster width, nranks, bucket bytes) -> expanded rank codes.
        self._expansions: dict[tuple, np.ndarray] = {}
        # (heapfile key, CM key, query fingerprint) -> (plan name, cost).
        self._scan_results: dict[tuple, tuple] = {}
        self.stats = {
            "mask_hits": 0,
            "mask_misses": 0,
            "mask_bytes": 0,
            "conjunction_hits": 0,
            "conjunction_misses": 0,
            "heapfile_hits": 0,
            "heapfile_misses": 0,
            "heapfile_bytes": 0,
            "cm_hits": 0,
            "cm_misses": 0,
            "cm_build_hits": 0,
            "cm_build_misses": 0,
            "cm_build_bytes": 0,
            "cm_choice_hits": 0,
            "cm_choice_misses": 0,
            "ordering_hits": 0,
            "ordering_misses": 0,
            "ordering_bytes": 0,
            "fragment_hits": 0,
            "fragment_misses": 0,
            "expansion_hits": 0,
            "expansion_misses": 0,
            "expansion_bytes": 0,
            "scan_hits": 0,
            "scan_misses": 0,
        }
        # Per-key baseline of the last publish_metrics() call, so repeated
        # publishing emits deltas (idempotent across sweep boundaries).
        self._published_stats: dict[str, int] = {}

    # ------------------------------------------------------------------ keys

    def array_key(self, arr: np.ndarray) -> bytes:
        """Content digest of an array, memoized by identity (the array is
        pinned so the id cannot be recycled while the session lives)."""
        digest = self._array_digests.get(id(arr))
        if digest is None:
            h = hashlib.blake2b(digest_size=16)
            h.update(str(arr.dtype).encode())
            h.update(str(arr.shape).encode())
            h.update(np.ascontiguousarray(arr).tobytes())
            digest = h.digest()
            self._array_digests[id(arr)] = digest
            self._pinned.append(arr)
        return digest

    # ----------------------------------------------------------------- masks

    def predicate_mask(self, values: np.ndarray, pred: "Predicate") -> np.ndarray:
        """``pred.mask(values)``, computed once per (column content, pred)."""
        key = (self.array_key(values), pred)
        mask = self._masks.get(key)
        if mask is None:
            self.stats["mask_misses"] += 1
            mask = pred.mask(values)
            mask.setflags(write=False)
            self._masks[key] = mask
            self.stats["mask_bytes"] += mask.nbytes
        else:
            self.stats["mask_hits"] += 1
        return mask

    def conjunction_mask(
        self, table: "Table", preds: tuple["Predicate", ...]
    ) -> np.ndarray:
        """AND of the predicate masks over ``table``, in ``preds`` order
        (the order queries apply them, so bits combine identically to the
        uncached path)."""
        pred_keys = tuple(
            (self.array_key(table.column(p.attr)), p) for p in preds
        )
        key = (table.nrows, pred_keys)
        mask = self._conjunctions.get(key)
        if mask is None:
            self.stats["conjunction_misses"] += 1
            mask = np.ones(table.nrows, dtype=bool)
            for pred in preds:
                mask &= self.predicate_mask(table.column(pred.attr), pred)
            mask.setflags(write=False)
            self._conjunctions[key] = mask
            self.stats["mask_bytes"] += mask.nbytes
        else:
            self.stats["conjunction_hits"] += 1
        return mask

    # ------------------------------------------------------- materialization

    def heapfile(
        self,
        source: "Table",
        attrs: tuple[str, ...] | None,
        cluster_key: tuple[str, ...],
        disk: "DiskModel",
        name: str,
    ) -> "HeapFile":
        """A clustered heap file of ``source`` (projected to ``attrs`` when
        given), built at most once per content per session.

        The key covers exactly what determines the result: the content of
        the columns that end up in the file, the projection, the cluster
        key, the disk geometry and the object name.  Re-sorting — the
        expensive part of materialization — is skipped on a hit.
        """
        from repro.storage.layout import HeapFile

        cols = tuple(attrs) if attrs is not None else tuple(source.column_names)
        content = tuple((n, self.array_key(source.column(n))) for n in cols)
        key = (content, attrs is not None, tuple(cluster_key), disk, name)
        hf = self._heapfiles.get(key)
        if hf is None:
            self.stats["heapfile_misses"] += 1
            table = (
                source.project(list(attrs), new_name=name)
                if attrs is not None
                else source
            )
            permutation = (
                self.sort_permutation(source, tuple(cluster_key))
                if self.scan_caching and cluster_key
                else None
            )
            hf = HeapFile(
                table, tuple(cluster_key), disk, name=name,
                permutation=permutation,
            )
            hf.shared = True  # may back several databases of the sweep
            self.stats["heapfile_bytes"] += hf.size_bytes
            self._heapfiles[key] = hf
            self._heapfile_keys[id(hf)] = key
            self._heapfile_versions[id(hf)] = hf.version
        else:
            self.stats["heapfile_hits"] += 1
        return hf

    def heapfile_key(self, heapfile: "HeapFile") -> tuple | None:
        """The content key of a session-tracked heap file, or None when the
        file is unknown to this session.

        A file mutated since its key was computed is *re-keyed* from its
        current content: every dependent cache tier (CM builds/choices, page
        fragments, scan results) keys off this value, so a mutation
        invalidates them all by construction — entries under the old key
        simply stop being addressed.
        """
        key = self._heapfile_keys.get(id(heapfile))
        if key is None:
            return None
        version = getattr(heapfile, "version", 0)
        if self._heapfile_versions.get(id(heapfile), 0) != version:
            # Evict the stale materialization-cache entry (the cached object
            # no longer answers for the content it was built from) — but
            # keep the file pinned: its id() stays a registration key.
            if self._heapfiles.get(key) is heapfile:
                del self._heapfiles[key]
                self._pinned_objects.append(heapfile)
            key = self._content_key_for(heapfile)
            self._heapfile_keys[id(heapfile)] = key
            self._heapfile_versions[id(heapfile)] = version
        return key

    def adopt_heapfile(self, heapfile: "HeapFile") -> tuple:
        """Track an externally built (or privatized) heap file so the scan
        caches can key off it.  The file is pinned for the session's
        lifetime — ``id()``-keyed registration is only sound while the
        object cannot be recycled."""
        key = self._heapfile_keys.get(id(heapfile))
        if key is not None:
            return self.heapfile_key(heapfile)
        key = self._content_key_for(heapfile)
        self._heapfile_keys[id(heapfile)] = key
        self._heapfile_versions[id(heapfile)] = getattr(heapfile, "version", 0)
        self._pinned_objects.append(heapfile)
        return key

    def _content_key_for(self, heapfile: "HeapFile") -> tuple:
        """A content key for a heap file in an arbitrary mutation state:
        column content, clustered/tail boundary, tombstone mask, geometry
        inputs.  Two files agreeing on this key execute every plan
        identically."""
        content = tuple(
            (n, self.array_key(heapfile.table.column(n)))
            for n in heapfile.table.column_names
        )
        live = getattr(heapfile, "live", None)
        return (
            "hf-content",
            content,
            tuple(heapfile.cluster_key),
            int(getattr(heapfile, "sorted_rows", heapfile.nrows)),
            None if live is None else self.array_key(live),
            heapfile.disk,
            heapfile.name,
        )

    def sort_permutation(
        self, source: "Table", cluster_key: tuple[str, ...]
    ) -> np.ndarray:
        """The stable lexsort permutation of ``source`` by ``cluster_key``,
        cached by key-column *content* — so two materializations that sort
        the same data by the same key (different projections, different
        budgets, different processes via a snapshot) sort once.  Stored as
        the narrowest index dtype that fits, which halves snapshot payload
        for every realistic table."""
        key = (
            tuple(cluster_key),
            tuple(self.array_key(source.column(a)) for a in cluster_key),
        )
        perm = self._orderings.get(key)
        if perm is None:
            self.stats["ordering_misses"] += 1
            perm = source.sort_permutation(cluster_key)
            if source.nrows < 2**31:
                perm = perm.astype(np.int32)
            self._orderings[key] = perm
            self.stats["ordering_bytes"] += perm.nbytes
        else:
            self.stats["ordering_hits"] += 1
        return perm

    def design_cms(
        self,
        designer: "CMDesigner",
        heapfile: "HeapFile",
        queries: list["Query"],
    ) -> list["CorrelationMap"]:
        """CM design for a *cached* heap file, memoized by (file content,
        query fingerprints, designer knobs).  Falls back to a plain design
        run when the heap file did not come from this session."""
        hf_key = self.heapfile_key(heapfile)
        if hf_key is None:
            return designer.design(heapfile, queries)
        key = (
            hf_key,
            tuple(q.fingerprint() for q in queries),
            self._designer_knobs(designer),
        )
        cms = self._cms.get(key)
        if cms is None:
            self.stats["cm_misses"] += 1
            cms = designer.design(heapfile, queries)
            self._cms[key] = cms
        else:
            self.stats["cm_hits"] += 1
        return list(cms)

    @staticmethod
    def _designer_knobs(designer: "CMDesigner") -> tuple:
        return (
            designer.budget_bytes,
            designer.max_composite,
            designer.cluster_width,
            designer.max_widths,
        )

    def correlation_map(
        self,
        heapfile: "HeapFile",
        key_attrs: tuple[str, ...],
        key_widths: tuple[int, ...],
        cluster_width: int,
    ) -> "CorrelationMap":
        """A built CM over a *cached* heap file, memoized by (file content,
        key, bucket widths).  CM construction is independent of the query
        probing it, so the same CM candidate tried for many queries — e.g.
        the shifted-constant variants of an augmented workload — is built
        once.  CMs are immutable after construction, so sharing is safe."""
        from repro.cm.correlation_map import CorrelationMap

        hf_key = self.heapfile_key(heapfile)
        if hf_key is None:
            return CorrelationMap(
                heapfile, key_attrs, key_widths=key_widths,
                cluster_width=cluster_width,
            )
        key = (hf_key, tuple(key_attrs), tuple(key_widths), cluster_width)
        cm = self._cm_builds.get(key)
        if cm is None:
            self.stats["cm_build_misses"] += 1
            cm = CorrelationMap(
                heapfile, key_attrs, key_widths=key_widths,
                cluster_width=cluster_width,
            )
            self._cm_builds[key] = cm
            self._cm_keys[id(cm)] = key
            self.stats["cm_build_bytes"] += cm.size_bytes
        else:
            self.stats["cm_build_hits"] += 1
        return cm

    def best_cm_for_query(
        self,
        designer: "CMDesigner",
        heapfile: "HeapFile",
        query: "Query",
    ) -> tuple:
        """Memoized :meth:`repro.cm.designer.CMDesigner.best_cm_for_query`
        over a cached heap file.  The winning CM for one (object, query)
        pair does not depend on which other queries share the object, so
        this key survives re-assignment across budgets where a whole-object
        key would not."""
        hf_key = self.heapfile_key(heapfile)
        if hf_key is None:
            return designer.best_cm_for_query(heapfile, query)
        key = (hf_key, query.fingerprint(), self._designer_knobs(designer))
        choice = self._cm_choices.get(key)
        if choice is None:
            self.stats["cm_choice_misses"] += 1
            choice = designer.best_cm_for_query(heapfile, query)
            self._cm_choices[key] = choice
        else:
            self.stats["cm_choice_hits"] += 1
        return choice

    # ------------------------------------------------------ scan-result tier

    def cm_page_fragments(
        self, heapfile: "HeapFile", depth: int, codes: np.ndarray
    ) -> list[tuple[int, int]]:
        """The page fragments a CM-guided scan of ``heapfile`` reads for the
        given prefix rank codes, cached by (file content, depth, codes
        content).  Distinct CM candidates — and the same candidate probed by
        different queries — frequently resolve to identical code sets, so
        the expensive range lookup + fragment merge runs once per distinct
        input.  Codes are keyed by content digest — the same 128-bit
        blake2b identity every other session cache rests on.
        """
        hf_key = self.heapfile_key(heapfile)
        if hf_key is None or not self.scan_caching:
            return heapfile.page_fragments_for_prefix_codes(depth, codes)
        key = (hf_key, depth, _content_digest(codes))
        fragments = self._cm_fragments.get(key)
        if fragments is None:
            self.stats["fragment_misses"] += 1
            fragments = tuple(
                heapfile.page_fragments_for_prefix_codes(depth, codes)
            )
            self._cm_fragments[key] = fragments
        else:
            self.stats["fragment_hits"] += 1
        return list(fragments)

    def expand_buckets(
        self,
        cluster_width: int,
        nranks: int,
        buckets: np.ndarray,
        expand,
    ) -> np.ndarray:
        """Memoized CM cluster-bucket -> rank-code expansion (``expand`` is
        the uncached computation), keyed by (width, rank count, bucket
        content)."""
        if not self.scan_caching:
            return expand(buckets)
        key = (cluster_width, nranks, _content_digest(buckets))
        codes = self._expansions.get(key)
        if codes is None:
            self.stats["expansion_misses"] += 1
            codes = expand(buckets)
            codes.setflags(write=False)
            self._expansions[key] = codes
            self.stats["expansion_bytes"] += codes.nbytes
        else:
            self.stats["expansion_hits"] += 1
        return codes

    def scan_cost(
        self, heapfile: "HeapFile", structure, query: "Query"
    ) -> tuple | None:
        """Cached (plan name, simulated cost) of an executed scan, or None
        when unknown or when the heap file is not session-tracked.

        ``structure`` identifies the access path beyond the heap file: a
        session-built :class:`CorrelationMap` for CM scans (its content key
        is looked up), a ``("clustered",)`` / ``("secondary", key_attrs)``
        tag for index scans.  The result mask is *not* stored — it is the
        query mask, which the mask caches already share, so memoized and
        fresh results are bit-identical.
        """
        if not self.scan_caching:
            return None
        key = self._scan_key(heapfile, structure, query)
        if key is None:
            return None
        cached = self._scan_results.get(key)
        if cached is None:
            self.stats["scan_misses"] += 1
        else:
            self.stats["scan_hits"] += 1
        return cached

    def store_scan_cost(
        self,
        heapfile: "HeapFile",
        structure,
        query: "Query",
        plan: str,
        cost,
    ) -> None:
        if not self.scan_caching:
            return
        key = self._scan_key(heapfile, structure, query)
        if key is not None:
            self._scan_results[key] = (plan, cost)

    def _scan_key(self, heapfile, structure, query) -> tuple | None:
        hf_key = self.heapfile_key(heapfile)
        if hf_key is None:
            return None
        if isinstance(structure, tuple):
            struct_key = structure
        else:  # a CorrelationMap: only session-built CMs have content keys
            struct_key = self._cm_keys.get(id(structure))
            if struct_key is None:
                return None
        return (hf_key, struct_key, query.fingerprint())

    # --------------------------------------------------------- shared memory

    def share_heapfiles(self, arena) -> int:
        """Rebind every session-cached heap file's columns to read-only
        views of ``arena`` shared-memory segments (see
        :meth:`repro.storage.layout.HeapFile.share_columns`); returns the
        bytes moved.  Content — and therefore every content key — is
        unchanged, so the caches keep working untouched; what changes is
        that forked workers of a :class:`~repro.engine.parallel.
        ParallelSweep` read the parent's physical pages instead of
        copy-on-write duplicates."""
        moved = 0
        for hf in self._heapfiles.values():
            moved += hf.share_columns(arena)
        # Adopted (pinned) files — e.g. the per-shard heap files of a
        # ShardedHeapFile — cross to workers zero-copy too.
        for obj in self._pinned_objects:
            share = getattr(obj, "share_columns", None)
            if share is not None:
                moved += share(arena)
        return moved

    # --------------------------------------------------------------- metrics

    def publish_metrics(self, registry=None) -> None:
        """Publish the per-tier cache counters (hits/misses/bytes) into a
        :class:`~repro.obs.metrics.MetricsRegistry` — the given one, or the
        ambient one — as ``engine.cache.<stat>`` counters.

        Publishing is *delta-based*: each call emits only the growth since
        the previous call, so sweeps can publish at every boundary without
        double counting.  A no-op when no registry is available.
        """
        if registry is None:
            from repro.obs.metrics import get_metrics

            registry = get_metrics()
            if registry is None:
                return
        for key, value in self.stats.items():
            delta = value - self._published_stats.get(key, 0)
            if delta:
                registry.inc(f"engine.cache.{key}", delta)
            self._published_stats[key] = value

    # ------------------------------------------------------------- snapshots

    def cache_keys(self) -> dict[str, frozenset]:
        """The current key set of every exportable cache — the baseline a
        worker captures so it can later export only its *delta* (see
        :func:`repro.engine.snapshot.export_snapshot`)."""
        return {
            "masks": frozenset(self._masks),
            "conjunctions": frozenset(self._conjunctions),
            "orderings": frozenset(self._orderings),
            "cms": frozenset(self._cms),
            "cm_builds": frozenset(self._cm_builds),
            "cm_choices": frozenset(self._cm_choices),
            "cm_fragments": frozenset(self._cm_fragments),
            "expansions": frozenset(self._expansions),
            "scan_results": frozenset(self._scan_results),
        }


# ------------------------------------------------------------ ambient session

_ACTIVE: ContextVar[EvalSession | None] = ContextVar(
    "repro_eval_session", default=None
)


def get_session() -> EvalSession | None:
    """The ambient session, or None when evaluation is uncached."""
    return _ACTIVE.get()


@contextmanager
def use_session(session: EvalSession | None = None) -> Iterator[EvalSession]:
    """Install ``session`` (a fresh one when None) as the ambient session
    for the duration of the ``with`` block."""
    active = session if session is not None else EvalSession()
    token = _ACTIVE.set(active)
    try:
        yield active
    finally:
        _ACTIVE.reset(token)


def ambient_scope(session: EvalSession | None):
    """Context manager installing ``session`` ambiently when one is given,
    and a no-op otherwise — the idiom every "evaluate with an optional
    session" entry point shares."""
    return use_session(session) if session is not None else nullcontext(None)
