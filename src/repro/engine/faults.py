"""Deterministic fault injection for chaos tests, smokes, and benches.

The fault layer is a contextvar-ambient :class:`FaultPlan` — an ordered set of
:class:`FaultSpec` rules, each naming an instrumented *site* and a failure
*kind*.  Production code calls :func:`fire` at each site; with no ambient plan
the call is a dictionary lookup returning ``None``, so the hooks are free in
normal operation.  Because plans are plain data with per-process match
counters, the same plan drives the unit tests, ``repro.experiments.chaos_smoke``
and ``benchmarks/bench_fault_tolerance.py``, and a seeded plan replays the
exact same fault schedule on every run.

Instrumented sites (``key`` passed by the caller):

=================  ==========================  ================================
site               key                         fired by
=================  ==========================  ================================
``sweep.task``     item index                  steal-pool worker, per task
``sweep.probe``    probe-task index            steal-pool worker, per probe
``shm.attach``     segment name                :func:`repro.engine.shm.attach_ref`
``ilp.solve``      ``None``                    :func:`repro.ilp.solver.solve`
``migration.step`` step boundary index         :func:`repro.design.migration.execute_transition`
=================  ==========================  ================================

Fault kinds:

* ``"crash"`` — ``os._exit(23)``: the process dies without cleanup, exactly
  like a SIGKILL from the outside.
* ``"hang"`` — sleep for ``delay_s`` seconds, then continue normally.
* ``"raise"`` — raise :class:`InjectedFault`.
* ``"corrupt"`` / ``"timeout"`` — *advisory*: :func:`fire` returns the matched
  spec and the site interprets it (shm attach raises ``ShmAttachError``, the
  ILP facade skips straight to its degraded path).

Plans can also come from the environment: ``REPRO_FAULTS="site:kind[@key]"``
(``;``-separated) is parsed by :func:`plan_from_env`, so a chaos run can be
switched on for any experiment without code changes.
"""

from __future__ import annotations

import os
import random
import time
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass

from repro.obs.metrics import count

KINDS = ("raise", "crash", "hang", "corrupt", "timeout")


class InjectedFault(RuntimeError):
    """Raised by a ``kind="raise"`` fault; carries the site and spec."""

    def __init__(self, site: str, key, spec: "FaultSpec"):
        super().__init__(f"injected fault at {site}[{key!r}]")
        self.site = site
        self.key = key
        self.spec = spec


@dataclass(frozen=True)
class FaultSpec:
    """One fault rule: fire ``kind`` at ``site`` whenever the match holds.

    ``key=None`` matches every key at the site.  ``at`` restricts the rule to
    the Nth matching call (0-based, counted per process); ``times`` caps how
    often the rule fires per process (``None`` = every match, which is what
    makes crash-at-item-N deterministic: the retried item keeps crashing its
    new host worker until the supervisor gives up and runs it in the parent).
    """

    site: str
    kind: str = "raise"
    key: object = None
    at: int | None = None
    times: int | None = None
    delay_s: float = 60.0

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")

    def describe(self) -> str:
        where = self.site if self.key is None else f"{self.site}@{self.key}"
        mods = []
        if self.at is not None:
            mods.append(f"at={self.at}")
        if self.times is not None:
            mods.append(f"times={self.times}")
        suffix = f" ({', '.join(mods)})" if mods else ""
        return f"{where}:{self.kind}{suffix}"


class FaultPlan:
    """An ordered collection of :class:`FaultSpec` rules with match counters.

    Counters are per-process state: a forked worker inherits the parent's
    counts at fork time, and the supervisor re-ships the plan to respawned
    workers, so every fresh process starts from the same (zero) state — which
    is what keeps injected schedules deterministic under respawns.
    """

    def __init__(self, *specs: FaultSpec, seed: int | None = None):
        self.specs = tuple(specs)
        self.seed = seed
        self._hits: dict[int, int] = {}
        self._fired: dict[int, int] = {}

    def __bool__(self) -> bool:
        return bool(self.specs)

    def describe(self) -> str:
        return "; ".join(spec.describe() for spec in self.specs) or "<empty>"

    def fire(self, site: str, key=None) -> FaultSpec | None:
        for idx, spec in enumerate(self.specs):
            if spec.site != site:
                continue
            if spec.key is not None and spec.key != key:
                continue
            hits = self._hits.get(idx, 0)
            self._hits[idx] = hits + 1
            if spec.at is not None and hits != spec.at:
                continue
            fired = self._fired.get(idx, 0)
            if spec.times is not None and fired >= spec.times:
                continue
            self._fired[idx] = fired + 1
            count(f"faults.injected.{spec.kind}")
            if spec.kind == "crash":
                os._exit(23)
            if spec.kind == "hang":
                time.sleep(spec.delay_s)
                return spec
            if spec.kind == "raise":
                raise InjectedFault(site, key, spec)
            return spec  # "corrupt" / "timeout": interpreted by the site
        return None

    @classmethod
    def random(
        cls,
        seed: int,
        n_items: int,
        site: str = "sweep.task",
        kinds: tuple[str, ...] = ("crash", "raise", "hang"),
        rate: float = 0.25,
        delay_s: float = 30.0,
    ) -> "FaultPlan":
        """A seeded random schedule over ``n_items`` keys at one site.

        Each key independently draws a fault with probability ``rate``; the
        same seed always yields the same schedule, so property tests can
        shrink failures to a single integer.
        """
        rng = random.Random(seed)
        specs = []
        for key in range(n_items):
            if rng.random() < rate:
                kind = rng.choice(list(kinds))
                specs.append(FaultSpec(site, kind, key=key, delay_s=delay_s))
        return cls(*specs, seed=seed)


def plan_from_env(text: str | None = None) -> FaultPlan | None:
    """Parse ``REPRO_FAULTS`` (or ``text``) into a plan, ``None`` if unset.

    Grammar: ``site:kind`` or ``site:kind@key``, ``;``-separated; numeric keys
    are parsed as ints (sweep/migration sites key on indices), anything else
    stays a string (shm keys on segment names).  Example::

        REPRO_FAULTS="sweep.task:crash@2;ilp.solve:timeout"
    """
    if text is None:
        text = os.environ.get("REPRO_FAULTS", "")
    text = text.strip()
    if not text:
        return None
    specs = []
    for clause in text.split(";"):
        clause = clause.strip()
        if not clause:
            continue
        site, _, rest = clause.partition(":")
        if not rest:
            raise ValueError(f"bad REPRO_FAULTS clause {clause!r}: expected site:kind[@key]")
        kind, _, key_text = rest.partition("@")
        key: object = None
        if key_text:
            key = int(key_text) if key_text.lstrip("-").isdigit() else key_text
        specs.append(FaultSpec(site.strip(), kind.strip(), key=key))
    return FaultPlan(*specs)


_FAULTS: ContextVar[FaultPlan | None] = ContextVar("repro_fault_plan", default=None)


def get_faults() -> FaultPlan | None:
    """The ambient fault plan, or ``None`` when chaos is off."""
    return _FAULTS.get()


@contextmanager
def use_faults(plan: FaultPlan | None):
    """Install ``plan`` as the ambient fault plan for the dynamic scope."""
    token = _FAULTS.set(plan)
    try:
        yield plan
    finally:
        _FAULTS.reset(token)


def fire(site: str, key=None) -> FaultSpec | None:
    """Fire any ambient fault matching ``site``/``key``; no-op without a plan."""
    plan = _FAULTS.get()
    if plan is None:
        return None
    return plan.fire(site, key)
