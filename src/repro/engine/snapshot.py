"""Serializable snapshots of :class:`~repro.engine.session.EvalSession` caches.

Every cache the session keeps is keyed by *content* (array digests,
value-hashable predicates and disk models), so its entries are meaningful in
any process that evaluates the same data: a mask computed for a column digest
here is the mask for that digest everywhere.  A :class:`SessionSnapshot` is
the portable form of that state — a plain picklable mapping of cache name ->
{content key: value} — supporting three operations:

* :func:`export_snapshot` — capture a session's exportable caches (optionally
  only the entries added since a :meth:`~EvalSession.cache_keys` baseline,
  which is how parallel workers return just their *delta*);
* :meth:`SessionSnapshot.install` — load entries into a (typically fresh)
  session, e.g. on the worker side of a :class:`~repro.engine.parallel.
  ParallelSweep`;
* :func:`merge_snapshots` — combine snapshots from several workers.  Keys are
  content-derived, so two snapshots can only ever agree about a shared key;
  the merge is therefore a plain union and **commutative**: merging in any
  order yields the same key set and semantically identical values (enforced
  by tests).

What is exported: predicate/conjunction masks, sort orderings, CM builds /
designs / per-query choices (Correlation Maps travel *detached* — without
their heap-file back-reference — which keeps snapshots small), CM page
fragments, bucket expansions, and executed scan costs.  Heap files themselves
are deliberately **not** exported: they are cheap to rebuild once their sort
permutation is known, and shipping sorted copies of the data would dwarf
everything else.

Snapshots also carry an optional **metrics payload** (an exported
:class:`~repro.obs.metrics.MetricsRegistry`): forked workers attach their
counters/histograms to the same delta snapshot that ships their cache
entries home, and :func:`merge_snapshots` folds the payloads with the
commutative per-kind rules of :func:`repro.obs.metrics.merge_payloads` —
worker observability rides the existing merge-back, no second channel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:
    from repro.cm.correlation_map import CorrelationMap
    from repro.engine.session import EvalSession

SNAPSHOT_VERSION = 1

#: Exportable caches: snapshot entry name -> session attribute.
_CACHE_ATTRS = {
    "masks": "_masks",
    "conjunctions": "_conjunctions",
    "orderings": "_orderings",
    "cms": "_cms",
    "cm_builds": "_cm_builds",
    "cm_choices": "_cm_choices",
    "cm_fragments": "_cm_fragments",
    "expansions": "_expansions",
    "scan_results": "_scan_results",
}

#: Caches whose values embed CorrelationMap objects (detached on export).
_CM_CACHES = ("cms", "cm_builds", "cm_choices")


@dataclass
class SessionSnapshot:
    """A picklable export of one session's content-keyed caches, plus an
    optional metrics payload (see :meth:`repro.obs.metrics.
    MetricsRegistry.export`) riding along from worker processes."""

    entries: dict[str, dict] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION
    metrics: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(cache) for cache in self.entries.values())

    def key_sets(self) -> dict[str, frozenset]:
        return {name: frozenset(cache) for name, cache in self.entries.items()}

    def install(self, session: "EvalSession") -> None:
        """Load this snapshot's entries into ``session`` (existing entries
        win — a session's own entry for a content key is, by construction,
        semantically identical to any imported one)."""
        for name, attr in _CACHE_ATTRS.items():
            target = getattr(session, attr)
            for key, value in self.entries.get(name, {}).items():
                if key not in target:
                    target[key] = value
        # Frozen-mask invariant: imported masks must raise on mutation just
        # like locally computed ones (pickling resets the writeable flag).
        for name in ("masks", "conjunctions", "expansions"):
            for value in self.entries.get(name, {}).values():
                value.setflags(write=False)
        # Re-register CM identities so the scan-result cache can key off
        # imported CMs exactly like locally built ones.  Register the
        # object the session actually *retains* (its own on a key clash,
        # the imported one otherwise): an id is only a sound cache key
        # while the session pins the object it identifies.
        for key in self.entries.get("cm_builds", {}):
            stored = session._cm_builds.get(key)
            if stored is not None:
                session._cm_keys.setdefault(id(stored), key)


def _detached_cm(cm: "CorrelationMap", memo: dict) -> "CorrelationMap":
    """Detach ``cm`` once per object, so shared references stay shared
    across every cache of the snapshot (pickle then preserves the sharing)."""
    out = memo.get(id(cm))
    if out is None:
        out = cm.detached()
        memo[id(cm)] = out
    return out


def _export_cm_value(name: str, value, memo: dict):
    if name == "cm_builds":
        return _detached_cm(value, memo)
    if name == "cms":
        return [_detached_cm(cm, memo) for cm in value]
    if name == "cm_choices":
        cm, seconds = value
        return (None if cm is None else _detached_cm(cm, memo), seconds)
    return value


def export_snapshot(
    session: "EvalSession",
    exclude: dict[str, frozenset] | None = None,
    metrics: dict | None = None,
) -> SessionSnapshot:
    """Capture ``session``'s exportable caches.  With ``exclude`` (a
    baseline from :meth:`EvalSession.cache_keys`), only entries whose keys
    are *not* in the baseline are exported — the delta a worker sends back.
    ``metrics`` (an exported registry payload) rides the snapshot verbatim.
    """
    exclude = exclude or {}
    memo: dict = {}
    entries: dict[str, dict] = {}
    for name, attr in _CACHE_ATTRS.items():
        skip = exclude.get(name, frozenset())
        cache = getattr(session, attr)
        exported = {}
        for key, value in cache.items():
            if key in skip:
                continue
            if name in _CM_CACHES:
                value = _export_cm_value(name, value, memo)
            exported[key] = value
        entries[name] = exported
    return SessionSnapshot(entries=entries, metrics=dict(metrics or {}))


def merge_snapshots(*snapshots: SessionSnapshot) -> SessionSnapshot:
    """Union of several snapshots.  Content-derived keys make this
    commutative: a key present in two snapshots maps to semantically
    identical values in both, so first-wins vs last-wins cannot change the
    merged snapshot's observable behaviour (tests install both orders and
    assert identical evaluation results)."""
    from repro.obs.metrics import merge_payloads

    merged: dict[str, dict] = {name: {} for name in _CACHE_ATTRS}
    for snap in snapshots:
        if snap.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snap.version} != {SNAPSHOT_VERSION}"
            )
        for name, cache in snap.entries.items():
            target = merged.setdefault(name, {})
            for key, value in cache.items():
                target.setdefault(key, value)
    metrics = merge_payloads(*(snap.metrics for snap in snapshots))
    return SessionSnapshot(entries=merged, metrics=metrics)


def snapshot_nbytes(snapshot: SessionSnapshot) -> int:
    """Rough payload size (array bytes only) — used for bench reporting."""
    total = 0
    for cache in snapshot.entries.values():
        for value in cache.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
    return total
