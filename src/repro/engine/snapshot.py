"""Serializable snapshots of :class:`~repro.engine.session.EvalSession` caches.

Every cache the session keeps is keyed by *content* (array digests,
value-hashable predicates and disk models), so its entries are meaningful in
any process that evaluates the same data: a mask computed for a column digest
here is the mask for that digest everywhere.  A :class:`SessionSnapshot` is
the portable form of that state — a plain picklable mapping of cache name ->
{content key: value} — supporting three operations:

* :func:`export_snapshot` — capture a session's exportable caches (optionally
  only the entries added since a :meth:`~EvalSession.cache_keys` baseline,
  which is how parallel workers return just their *delta*);
* :meth:`SessionSnapshot.install` — load entries into a (typically fresh)
  session, e.g. on the worker side of a :class:`~repro.engine.parallel.
  ParallelSweep`;
* :func:`merge_snapshots` — combine snapshots from several workers.  Keys are
  content-derived, so two snapshots can only ever agree about a shared key;
  the merge is therefore a plain union and **commutative**: merging in any
  order yields the same key set and semantically identical values (enforced
  by tests).

What is exported: predicate/conjunction masks, sort orderings, CM builds /
designs / per-query choices (Correlation Maps travel *detached* — without
their heap-file back-reference — which keeps snapshots small), CM page
fragments, bucket expansions, and executed scan costs.  Heap files themselves
are deliberately **not** exported: they are cheap to rebuild once their sort
permutation is known, and shipping sorted copies of the data would dwarf
everything else.

Snapshots also carry an optional **metrics payload** (an exported
:class:`~repro.obs.metrics.MetricsRegistry`): forked workers attach their
counters/histograms to the same delta snapshot that ships their cache
entries home, and :func:`merge_snapshots` folds the payloads with the
commutative per-kind rules of :func:`repro.obs.metrics.merge_payloads` —
worker observability rides the existing merge-back, no second channel.

Exports can be **zero-copy**: given a :class:`~repro.engine.shm.ShmArena`,
:func:`export_snapshot` moves every large array payload (masks,
conjunction masks, sort orderings, bucket expansions, and the entry/posting
arrays inside Correlation Maps) into named shared-memory segments and
stores tiny :class:`~repro.engine.shm.ShmRef` tokens in their place —
the picklable snapshot shrinks from megabytes of array bytes to keys and
tokens.  :meth:`SessionSnapshot.install` resolves tokens back into
read-only views of the same physical pages (:func:`repro.engine.shm.
attach_ref`), so a worker installing an arena-backed snapshot shares the
parent's memory instead of copying it.  Content keys are unaffected — the
view's bytes are the array's bytes — which is why every content-keyed
cache treats shared and copied entries identically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import numpy as np

from repro.engine.shm import ShmArena, ShmRef, attach_ref, shareable

if TYPE_CHECKING:
    from repro.cm.correlation_map import CorrelationMap
    from repro.engine.session import EvalSession

# Version 2: cache values (and CM internals) may be ShmRef tokens.
# Version 3: ShmRef tokens carry content digests; installing a snapshot may
# raise ShmAttachError (missing/truncated/corrupt segment) instead of a raw
# OSError — supervisors catch it and fall back to by-value payloads.
SNAPSHOT_VERSION = 3

#: Exportable caches: snapshot entry name -> session attribute.
_CACHE_ATTRS = {
    "masks": "_masks",
    "conjunctions": "_conjunctions",
    "orderings": "_orderings",
    "cms": "_cms",
    "cm_builds": "_cm_builds",
    "cm_choices": "_cm_choices",
    "cm_fragments": "_cm_fragments",
    "expansions": "_expansions",
    "scan_results": "_scan_results",
}

#: Caches whose values embed CorrelationMap objects (detached on export).
_CM_CACHES = ("cms", "cm_builds", "cm_choices")

#: Caches whose values are plain ndarrays eligible for shared-memory export.
_ARRAY_CACHES = ("masks", "conjunctions", "orderings", "expansions")

#: Caches whose installed arrays must be frozen (mutation raises).
_FROZEN_CACHES = ("masks", "conjunctions", "expansions")


@dataclass
class SessionSnapshot:
    """A picklable export of one session's content-keyed caches, plus an
    optional metrics payload (see :meth:`repro.obs.metrics.
    MetricsRegistry.export`) riding along from worker processes."""

    entries: dict[str, dict] = field(default_factory=dict)
    version: int = SNAPSHOT_VERSION
    metrics: dict = field(default_factory=dict)

    def __len__(self) -> int:
        return sum(len(cache) for cache in self.entries.values())

    def key_sets(self) -> dict[str, frozenset]:
        return {name: frozenset(cache) for name, cache in self.entries.items()}

    def install(self, session: "EvalSession") -> None:
        """Load this snapshot's entries into ``session`` (existing entries
        win — a session's own entry for a content key is, by construction,
        semantically identical to any imported one).

        Shared-memory tokens resolve here: an :class:`ShmRef` value becomes
        a read-only zero-copy view of the registered array, and shared
        Correlation Maps re-attach their entry/posting views.  Resolution
        is idempotent, so installing the same snapshot into several
        sessions is fine."""
        for name, attr in _CACHE_ATTRS.items():
            target = getattr(session, attr)
            frozen = name in _FROZEN_CACHES
            is_cm = name in _CM_CACHES
            for key, value in self.entries.get(name, {}).items():
                if key in target:
                    continue
                if isinstance(value, ShmRef):
                    value = attach_ref(value)
                elif is_cm:
                    _resolve_cm_value(name, value)
                # Frozen-mask invariant: imported masks must raise on
                # mutation just like locally computed ones (pickling resets
                # the writeable flag; attached views are born read-only).
                if frozen:
                    value.setflags(write=False)
                target[key] = value
        # Re-register CM identities so the scan-result cache can key off
        # imported CMs exactly like locally built ones.  Register the
        # object the session actually *retains* (its own on a key clash,
        # the imported one otherwise): an id is only a sound cache key
        # while the session pins the object it identifies.
        for key in self.entries.get("cm_builds", {}):
            stored = session._cm_builds.get(key)
            if stored is not None:
                session._cm_keys.setdefault(id(stored), key)


def _detached_cm(
    cm: "CorrelationMap", memo: dict, arena: ShmArena | None
) -> "CorrelationMap":
    """Detach (or arena-share) ``cm`` once per object, so shared references
    stay shared across every cache of the snapshot (pickle then preserves
    the sharing)."""
    out = memo.get(id(cm))
    if out is None:
        out = cm.share(arena) if arena is not None else cm.detached()
        memo[id(cm)] = out
    return out


def _export_cm_value(name: str, value, memo: dict, arena: ShmArena | None):
    if name == "cm_builds":
        return _detached_cm(value, memo, arena)
    if name == "cms":
        return [_detached_cm(cm, memo, arena) for cm in value]
    if name == "cm_choices":
        cm, seconds = value
        return (None if cm is None else _detached_cm(cm, memo, arena), seconds)
    return value


def _resolve_cm_value(name: str, value) -> None:
    """Re-attach the shared entry/posting views of arena-exported CMs
    (no-op for plainly detached ones)."""
    if name == "cm_builds":
        value.resolve_shared()
    elif name == "cms":
        for cm in value:
            cm.resolve_shared()
    elif name == "cm_choices":
        cm = value[0]
        if cm is not None:
            cm.resolve_shared()


def export_snapshot(
    session: "EvalSession",
    exclude: dict[str, frozenset] | None = None,
    metrics: dict | None = None,
    arena: ShmArena | None = None,
) -> SessionSnapshot:
    """Capture ``session``'s exportable caches.  With ``exclude`` (a
    baseline from :meth:`EvalSession.cache_keys`), only entries whose keys
    are *not* in the baseline are exported — the delta a worker sends back.
    ``metrics`` (an exported registry payload) rides the snapshot verbatim.

    With ``arena``, large arrays are registered into shared memory and
    exported as :class:`ShmRef` tokens (resolved back into zero-copy views
    by :meth:`SessionSnapshot.install`); small arrays still travel by
    value, since a token plus a page-granular attach would cost more than
    the bytes themselves."""
    exclude = exclude or {}
    memo: dict = {}
    entries: dict[str, dict] = {}
    for name, attr in _CACHE_ATTRS.items():
        skip = exclude.get(name, frozenset())
        cache = getattr(session, attr)
        share = arena is not None and name in _ARRAY_CACHES
        exported = {}
        for key, value in cache.items():
            if key in skip:
                continue
            if name in _CM_CACHES:
                value = _export_cm_value(name, value, memo, arena)
            elif share and shareable(value):
                value = arena.register(value)
            exported[key] = value
        entries[name] = exported
    return SessionSnapshot(entries=entries, metrics=dict(metrics or {}))


def merge_snapshots(*snapshots: SessionSnapshot) -> SessionSnapshot:
    """Union of several snapshots.  Content-derived keys make this
    commutative: a key present in two snapshots maps to semantically
    identical values in both, so first-wins vs last-wins cannot change the
    merged snapshot's observable behaviour (tests install both orders and
    assert identical evaluation results)."""
    from repro.obs.metrics import merge_payloads

    merged: dict[str, dict] = {name: {} for name in _CACHE_ATTRS}
    for snap in snapshots:
        if snap.version != SNAPSHOT_VERSION:
            raise ValueError(
                f"snapshot version {snap.version} != {SNAPSHOT_VERSION}"
            )
        for name, cache in snap.entries.items():
            target = merged.setdefault(name, {})
            for key, value in cache.items():
                target.setdefault(key, value)
    metrics = merge_payloads(*(snap.metrics for snap in snapshots))
    return SessionSnapshot(entries=merged, metrics=metrics)


def snapshot_nbytes(snapshot: SessionSnapshot) -> int:
    """Rough *by-value* payload size (array bytes that would be copied on
    pickle) — used for bench reporting.  Shared-memory tokens count zero
    here; their bytes show up in :func:`snapshot_shared_nbytes`."""
    total = 0
    for cache in snapshot.entries.values():
        for value in cache.values():
            if isinstance(value, np.ndarray):
                total += value.nbytes
    return total


def snapshot_shared_nbytes(snapshot: SessionSnapshot) -> int:
    """Array bytes this snapshot references through shared memory instead
    of carrying by value (plain cache tokens plus shared CM internals)."""
    total = 0
    seen: set[int] = set()  # CMs are shared across caches; count each once
    for name, cache in snapshot.entries.items():
        for value in cache.values():
            if isinstance(value, ShmRef):
                total += value.nbytes
            elif name in _CM_CACHES:
                if name == "cm_builds":
                    cms = [value]
                elif name == "cms":
                    cms = value
                else:
                    cms = [value[0]] if value[0] is not None else []
                for cm in cms:
                    if id(cm) not in seen:
                        seen.add(id(cm))
                        total += cm.shared_nbytes()
    return total
