"""The shared evaluation engine (see :mod:`repro.engine.session`).

Public surface::

    from repro.engine import EvalSession, use_session, get_session

    with use_session() as session:      # one session per budget sweep
        for budget in ladder:
            evaluate_design(designer.design(budget))
        print(session.stats)
"""

from repro.engine.context import EvalContext
from repro.engine.session import EvalSession, get_session, use_session

__all__ = ["EvalContext", "EvalSession", "get_session", "use_session"]
