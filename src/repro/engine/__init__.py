"""The shared evaluation engine (see :mod:`repro.engine.session`).

Public surface::

    from repro.engine import EvalSession, use_session, get_session

    with use_session() as session:      # one session per budget sweep
        for budget in ladder:
            evaluate_design(designer.design(budget))
        print(session.stats)

Parallel sweeps (see :mod:`repro.engine.parallel`)::

    from repro.engine import EvalSession, ParallelSweep

    session = EvalSession()
    sweep = ParallelSweep(workers=4)    # serial fallback when workers=1
    evaluated = sweep.map(evaluate, designs, session=session)

Snapshots (see :mod:`repro.engine.snapshot`) make session caches portable
across processes: ``export_snapshot(session)`` -> ship -> ``.install()`` ->
``merge_snapshots(*deltas)``.  On platforms with a shared-memory mount
(:func:`repro.engine.shm.shm_available`) the sweep moves column arrays and
large snapshot payloads through a :class:`~repro.engine.shm.ShmArena`, so
workers attach zero-copy views instead of unpickling copies.
"""

from repro.engine.context import EvalContext
from repro.engine.parallel import ParallelSweep, WarmupProbe, fork_available
from repro.engine.session import (
    EvalSession,
    ambient_scope,
    get_session,
    use_session,
)
from repro.engine.shm import ShmArena, ShmRef, shm_available
from repro.engine.snapshot import (
    SessionSnapshot,
    export_snapshot,
    merge_snapshots,
    snapshot_nbytes,
    snapshot_shared_nbytes,
)

__all__ = [
    "EvalContext",
    "EvalSession",
    "ParallelSweep",
    "SessionSnapshot",
    "ShmArena",
    "ShmRef",
    "WarmupProbe",
    "ambient_scope",
    "export_snapshot",
    "fork_available",
    "get_session",
    "merge_snapshots",
    "shm_available",
    "snapshot_nbytes",
    "snapshot_shared_nbytes",
    "use_session",
]
