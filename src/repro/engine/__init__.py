"""The shared evaluation engine (see :mod:`repro.engine.session`).

Public surface::

    from repro.engine import EvalSession, use_session, get_session

    with use_session() as session:      # one session per budget sweep
        for budget in ladder:
            evaluate_design(designer.design(budget))
        print(session.stats)

Parallel sweeps (see :mod:`repro.engine.parallel`)::

    from repro.engine import EvalSession, ParallelSweep

    session = EvalSession()
    sweep = ParallelSweep(workers=4)    # serial fallback when workers=1
    evaluated = sweep.map(evaluate, designs, session=session)

Snapshots (see :mod:`repro.engine.snapshot`) make session caches portable
across processes: ``export_snapshot(session)`` -> ship -> ``.install()`` ->
``merge_snapshots(*deltas)``.  On platforms with a shared-memory mount
(:func:`repro.engine.shm.shm_available`) the sweep moves column arrays and
large snapshot payloads through a :class:`~repro.engine.shm.ShmArena`, so
workers attach zero-copy views instead of unpickling copies.

Fault tolerance (see :mod:`repro.engine.faults`): sweeps supervise their
workers (crash/hang detection, requeue, respawn, in-parent fallback), and a
contextvar-ambient :class:`~repro.engine.faults.FaultPlan` injects
deterministic crashes/hangs/corruption for chaos tests::

    from repro.engine import FaultPlan, FaultSpec, use_faults

    with use_faults(FaultPlan(FaultSpec("sweep.task", "crash", key=2))):
        sweep.map(evaluate, designs, session=EvalSession())
"""

from repro.engine.context import EvalContext
from repro.engine.faults import (
    FaultPlan,
    FaultSpec,
    InjectedFault,
    get_faults,
    plan_from_env,
    use_faults,
)
from repro.engine.parallel import ParallelSweep, WarmupProbe, fork_available
from repro.engine.session import (
    EvalSession,
    ambient_scope,
    get_session,
    use_session,
)
from repro.engine.shm import (
    ShmArena,
    ShmAttachError,
    ShmRef,
    shm_available,
    sweep_orphan_segments,
)
from repro.engine.snapshot import (
    SessionSnapshot,
    export_snapshot,
    merge_snapshots,
    snapshot_nbytes,
    snapshot_shared_nbytes,
)

__all__ = [
    "EvalContext",
    "EvalSession",
    "FaultPlan",
    "FaultSpec",
    "InjectedFault",
    "ParallelSweep",
    "SessionSnapshot",
    "ShmArena",
    "ShmAttachError",
    "ShmRef",
    "WarmupProbe",
    "ambient_scope",
    "export_snapshot",
    "fork_available",
    "get_faults",
    "get_session",
    "merge_snapshots",
    "plan_from_env",
    "shm_available",
    "snapshot_nbytes",
    "snapshot_shared_nbytes",
    "sweep_orphan_segments",
    "use_faults",
    "use_session",
]
