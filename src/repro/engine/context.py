"""Per-(heap file, query) evaluation context.

One query evaluated on one physical object runs several plans — full scan,
clustered scan, CM scans, secondary B+Tree scans — and each plan needs some
subset of the same derived state: per-predicate masks, combined masks over a
subset of the predicated attributes, the rowids matching such a subset, and
the coalesced page fragments those rowids touch.  An :class:`EvalContext`
computes each of these once and lets every plan consume them.

When an :class:`~repro.engine.session.EvalSession` is active the masks come
from (and go into) its content-keyed caches, so the sharing extends across
objects, designs and budgets; without a session the context still
deduplicates work across the plans of one ``plans_for`` call, with results
bit-identical to fully independent computation.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from repro.engine.session import EvalSession, get_session

if TYPE_CHECKING:
    from repro.relational.query import Predicate, Query
    from repro.storage.layout import HeapFile


class EvalContext:
    """Shared evaluation state for one (heap file, query) pair."""

    def __init__(
        self,
        heapfile: "HeapFile",
        query: "Query",
        session: EvalSession | None = None,
    ) -> None:
        self.heapfile = heapfile
        self.query = query
        self.session = session if session is not None else get_session()
        self._conjunctions: dict[tuple[str, ...], np.ndarray] = {}
        self._rowids: dict[tuple[str, ...], np.ndarray] = {}
        self._fragments: dict[tuple[str, ...], list[tuple[int, int]]] = {}
        self._sorted_fragments: dict[tuple[str, ...], list[tuple[int, int]]] = {}

    def conjunction_mask(self, preds: tuple["Predicate", ...]) -> np.ndarray:
        """AND of the predicate masks over the heap file's table, applied in
        ``preds`` order (the same order the uncached code used)."""
        key = tuple(p.attr for p in preds)
        mask = self._conjunctions.get(key)
        if mask is None:
            table = self.heapfile.table
            if self.session is not None:
                mask = self.session.conjunction_mask(table, preds)
            else:
                mask = np.ones(table.nrows, dtype=bool)
                for pred in preds:
                    mask &= pred.mask(table.column(pred.attr))
            self._conjunctions[key] = mask
        return mask

    @property
    def query_mask(self) -> np.ndarray:
        """The exact result mask: every predicate applied."""
        return self.conjunction_mask(tuple(self.query.predicates))

    def rowids(self, preds: tuple["Predicate", ...]) -> np.ndarray:
        """Rowids (clustered positions) matching the conjunction of ``preds``."""
        key = tuple(p.attr for p in preds)
        rowids = self._rowids.get(key)
        if rowids is None:
            rowids = self.heapfile.rowids_for_mask(self.conjunction_mask(preds))
            self._rowids[key] = rowids
        return rowids

    def fragments(self, preds: tuple["Predicate", ...]) -> list[tuple[int, int]]:
        """Coalesced page fragments covering the rows matching ``preds``."""
        from repro.storage.fragments import coalesce_pages

        key = tuple(p.attr for p in preds)
        fragments = self._fragments.get(key)
        if fragments is None:
            pages = self.heapfile.pages_for_rowids(self.rowids(preds))
            fragments = coalesce_pages(pages, self.heapfile.disk.fragment_gap_pages)
            self._fragments[key] = fragments
        return fragments

    def sorted_region_fragments(
        self, preds: tuple["Predicate", ...]
    ) -> list[tuple[int, int]]:
        """Fragments restricted to the clustered (sorted) region — the pages
        an index descent can actually reach.  Matching rows in the unsorted
        insert tail are the tail read's business (charged separately,
        without descents), never the index's.  On a pristine file this *is*
        :meth:`fragments`."""
        from repro.storage.fragments import coalesce_pages

        hf = self.heapfile
        if hf.sorted_rows == hf.nrows:
            return self.fragments(preds)
        key = tuple(p.attr for p in preds)
        fragments = self._sorted_fragments.get(key)
        if fragments is None:
            rowids = self.rowids(preds)
            rowids = rowids[rowids < hf.sorted_rows]
            pages = hf.pages_for_rowids(rowids)
            fragments = coalesce_pages(pages, hf.disk.fragment_gap_pages)
            self._sorted_fragments[key] = fragments
        return fragments
