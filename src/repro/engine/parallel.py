"""Multiprocess sharding of design sweeps over a shared, serializable cache.

CORADD is evaluated over budget *ladders*; each budget's evaluation is
independent given the data (PR 2 made caching observationally invisible, so
evaluation order — and therefore process placement — cannot change any
result).  A :class:`ParallelSweep` exploits that:

1. the parent optionally **warms** the shared :class:`~repro.engine.session.
   EvalSession` by running the first work item serially (the cheapest budget
   seeds the caches every later budget reuses: base-fact sort orderings,
   CM designs, masks, scan costs);
2. the session is exported as a :class:`~repro.engine.snapshot.
   SessionSnapshot` and shipped to a pool of **forked workers**, each of
   which installs it into a fresh session;
3. remaining items are partitioned **deterministically** into contiguous
   chunks (adjacent budgets share the most design objects, so chunking
   maximizes intra-worker cache reuse);
4. each worker returns its results plus its cache **delta**, which the
   parent merges back — so a sweep leaves behind the same warm session a
   serial run would have.

Fallback semantics: with ``workers <= 1``, fewer than two work items, or on
platforms without ``fork`` (Windows), the sweep degrades to a plain serial
loop under the ambient session — same results, no subprocesses.  Workers
inherit the parent via fork, so work functions may be closures; only task
indices, results and snapshots cross process boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
from typing import Any, Callable, Sequence

from repro.engine.session import EvalSession, ambient_scope, use_session
from repro.engine.snapshot import (
    SessionSnapshot,
    export_snapshot,
    merge_snapshots,
)
from repro.obs.metrics import MetricsRegistry, get_metrics, use_metrics

# Worker-side state, set by the pool initializer.  Under the fork start
# method the initializer arguments are inherited, not pickled, which is what
# lets ``fn`` and ``items`` be arbitrary closures over designer state.
_WORKER: dict = {}


def fork_available() -> bool:
    """Whether the platform can fork worker processes."""
    return "fork" in mp.get_all_start_methods()


def partition_chunks(indices: Sequence[int], chunks: int) -> list[list[int]]:
    """Deterministic contiguous partition of ``indices`` into at most
    ``chunks`` non-empty runs, sizes as even as possible, earlier runs
    taking the remainder — ``[0..4] x 2 -> [[0, 1, 2], [3, 4]]``."""
    items = list(indices)
    chunks = max(1, min(chunks, len(items)))
    size, extra = divmod(len(items), chunks)
    out: list[list[int]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


def _init_worker(payload) -> None:
    from repro.engine.session import _ACTIVE
    from repro.obs.drift import _MONITOR
    from repro.obs.metrics import _METRICS
    from repro.obs.trace import _TRACER

    # The fork inherited the parent's ambient session; drop it so workers
    # only ever evaluate under their own snapshot-seeded session (or none).
    # Likewise the parent's observability state: worker metrics ship home
    # as per-chunk registries on the snapshot delta (forked copies of the
    # parent's registry/tracer/monitor would record into the void, and the
    # monitor's EWMA is order-dependent — it only ever observes parent-side
    # evaluations, which a serial run covers completely).
    _ACTIVE.set(None)
    _METRICS.set(None)
    _TRACER.set(None)
    _MONITOR.set(None)
    fn, items, snapshot, collect_deltas = payload
    session = None
    baseline = None
    if snapshot is not None:
        session = EvalSession()
        snapshot.install(session)
        baseline = session.cache_keys() if collect_deltas else None
    _WORKER.update(
        fn=fn, items=items, session=session, baseline=baseline,
        collect_deltas=collect_deltas,
    )


def _run_chunk(indices: list[int]) -> tuple[list[tuple[int, Any]], Any]:
    fn, items = _WORKER["fn"], _WORKER["items"]
    session = _WORKER["session"]
    # Each chunk records into a fresh registry, exported with the chunk's
    # snapshot delta — so counters cross the process boundary exactly once
    # and the parent-side merge stays commutative.
    registry = MetricsRegistry()
    with ambient_scope(session), use_metrics(registry):
        results = [(i, fn(items[i])) for i in indices]
    delta = None
    if session is not None and _WORKER["collect_deltas"]:
        session.publish_metrics(registry)
        delta = export_snapshot(
            session, exclude=_WORKER["baseline"], metrics=registry.export()
        )
        # Keep subsequent chunk deltas disjoint if this worker gets another.
        _WORKER["baseline"] = session.cache_keys()
    return results, delta


class ParallelSweep:
    """Shards a sweep's work items across forked worker processes.

    ``workers`` is the pool size (``1`` means serial).  ``warmup`` runs the
    first item in the parent before fanning out, seeding the snapshot every
    worker starts from — almost always worth it, because sweep items share
    most of their cache footprint.  ``collect_deltas=False`` skips shipping
    worker cache deltas back to the parent — the right call when the
    session is a throwaway driving a single sweep, since the deltas' only
    purpose is leaving a reusable warm session behind.  Results are
    returned in item order and are bit-identical to a serial run; the only
    observable differences are wall-clock and ``session.stats``.
    """

    def __init__(
        self,
        workers: int = 1,
        warmup: bool = True,
        collect_deltas: bool = True,
    ) -> None:
        self.workers = max(1, int(workers))
        self.warmup = warmup
        self.collect_deltas = collect_deltas

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        session: EvalSession | None = None,
    ) -> list[Any]:
        """``[fn(item) for item in items]``, sharded across the pool.

        With ``session``, work runs under it ambiently: the parent's cache
        state is snapshot into every worker and worker deltas are merged
        back, so after ``map`` returns the session is as warm as a serial
        sweep would have left it.
        """
        items = list(items)
        if not self.parallel or len(items) < 2:
            with ambient_scope(session):
                results = [fn(item) for item in items]
            if session is not None:
                session.publish_metrics()
            return results

        results: list[Any] = [None] * len(items)
        start = 0
        head_indices: list[int] = []
        if self.warmup and session is not None and items:
            start = 1
        pending = list(range(start, len(items)))
        chunks = partition_chunks(pending, self.workers)
        if self.warmup and session is not None and items:
            # The parent evaluates the first item and each chunk's *head*
            # serially before fanning out: the first item seeds the caches
            # every item shares (base-fact orderings, base CM designs), and
            # a chunk head seeds the design objects its own tail overlaps
            # with — without it, every worker would redo its neighbour
            # chunk's cold work.  Heads are cheap once the first item has
            # warmed the session, and workers then run pure marginal work.
            head_indices = [0] + [chunk[0] for chunk in chunks]
            with use_session(session):
                for i in head_indices:
                    results[i] = fn(items[i])
            chunks = [chunk[1:] for chunk in chunks]
            chunks = [chunk for chunk in chunks if chunk]
        if not chunks:
            session.publish_metrics()
            return results

        snapshot = export_snapshot(session) if session is not None else None
        ctx = mp.get_context("fork")
        deltas: list[SessionSnapshot] = []
        with ctx.Pool(
            processes=len(chunks),
            initializer=_init_worker,
            initargs=((fn, items, snapshot, self.collect_deltas),),
        ) as pool:
            for chunk_results, delta in pool.imap_unordered(_run_chunk, chunks):
                for i, result in chunk_results:
                    results[i] = result
                if delta is not None:
                    deltas.append(delta)
        if session is not None and deltas:
            merged = merge_snapshots(*deltas)
            merged.install(session)
            if merged.metrics:
                registry = get_metrics()
                if registry is not None:
                    registry.merge(merged.metrics)
        if session is not None:
            session.publish_metrics()
        return results
