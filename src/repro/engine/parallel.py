"""Multiprocess sharding of design sweeps over a shared, serializable cache.

CORADD is evaluated over budget *ladders*; each budget's evaluation is
independent given the data (PR 2 made caching observationally invisible, so
evaluation order — and therefore process placement — cannot change any
result).  A :class:`ParallelSweep` exploits that:

1. the parent optionally **warms** the shared :class:`~repro.engine.session.
   EvalSession` by running the first work item serially (the cheapest budget
   seeds the caches every later budget reuses: base-fact sort orderings,
   CM designs, masks, scan costs) — and, when the caller supplies a
   :class:`WarmupProbe`, the warmup item's per-query CM probe phase is
   itself sharded across the pool first, so even the warmup is parallel;
2. the session is exported as a :class:`~repro.engine.snapshot.
   SessionSnapshot` — with its large array payloads (and the heap-file
   columns behind them) moved into a :class:`~repro.engine.shm.ShmArena`
   of named shared-memory segments, so what crosses the process boundary
   is tokens, not megabytes — and **forked workers** install it into fresh
   sessions, attaching read-only zero-copy views;
3. remaining items feed a **work-stealing dispatcher**: every worker holds
   at most one item, and the moment it reports a result it is handed the
   next pending item.  No worker owns a pre-cut chunk, so a straggler item
   (the big-budget ILP+materialize points) delays only itself while idle
   workers drain the rest of the ladder;
4. each item's result returns with that item's cache **delta**, which the
   parent merges back commutatively — so a sweep leaves behind the same
   warm session a serial run would have;
5. the dispatcher is a **supervisor**: it waits on result pipes *and*
   process sentinels, so dead workers (crash, OOM, kill) and hung workers
   (``item_timeout_s``) are detected, their in-flight items requeued to
   survivors, replacements respawned with backoff, and — if the whole pool
   collapses — remaining items run serially in the parent.  Results stay
   bit-identical to serial under any fault schedule (deltas and metrics
   merge exactly once; see :mod:`repro.engine.faults` for injecting
   deterministic chaos).

``scheduler="chunks"`` keeps the PR 3 static scheduler (deterministic
contiguous partitioning via :func:`partition_chunks`, one fork-pool chunk
per worker) as a fallback and as the bench baseline work stealing is
measured against.

Fallback semantics: with ``workers <= 1``, fewer than two work items, or on
platforms without ``fork`` (Windows), the sweep degrades to a plain serial
loop under the ambient session — same results, no subprocesses.  Without a
usable shared-memory mount (see :func:`repro.engine.shm.shm_available`) the
steal scheduler still runs, shipping plain pickled snapshots.  Workers
inherit the parent via fork, so work functions may be closures; only task
indices, results and (delta) snapshots cross process boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from collections import deque
from dataclasses import dataclass
from multiprocessing.connection import wait as mp_wait
from time import perf_counter, sleep
from typing import Any, Callable, Iterable, Sequence

from repro.engine import faults, shm
from repro.engine.session import EvalSession, ambient_scope, use_session
from repro.engine.snapshot import (
    SessionSnapshot,
    export_snapshot,
    merge_snapshots,
    snapshot_nbytes,
    snapshot_shared_nbytes,
)
from repro.obs.metrics import MetricsRegistry, count, get_metrics, use_metrics
from repro.obs.trace import span

# Worker-side state, set by the chunks-scheduler pool initializer.  Under
# the fork start method the initializer arguments are inherited, not
# pickled, which is what lets ``fn`` and ``items`` be arbitrary closures
# over designer state.
_WORKER: dict = {}


def fork_available() -> bool:
    """Whether the platform can fork worker processes."""
    return "fork" in mp.get_all_start_methods()


def partition_chunks(indices: Sequence[int], chunks: int) -> list[list[int]]:
    """Deterministic contiguous partition of ``indices`` into at most
    ``chunks`` non-empty runs, sizes as even as possible, earlier runs
    taking the remainder — ``[0..4] x 2 -> [[0, 1, 2], [3, 4]]``.

    ``chunks`` must be a positive count; asking for zero or negative chunks
    is a caller bug, not a degenerate partition, and raises."""
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    items = list(indices)
    if not items:
        return []
    chunks = min(chunks, len(items))
    size, extra = divmod(len(items), chunks)
    out: list[list[int]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


@dataclass(frozen=True)
class WarmupProbe:
    """Shards the warmup item's probe phase across the pool.

    ``tasks(item)`` runs in the parent under the session and yields the
    independent probe units of the sweep's first item (for design ladders:
    one (design, object, query) CM choice each — building the heap files on
    the way, which warms the sort-ordering cache the workers reuse).
    ``run(task)`` executes one unit in a worker under its session; only the
    cache side effects matter, results are discarded.  Probes must be
    observationally invisible — running them can only pre-fill caches the
    item's own evaluation would fill anyway (the same invariant that makes
    the whole sweep order-independent)."""

    tasks: Callable[[Any], Iterable[Any]]
    run: Callable[[Any], Any]


def _clear_inherited_ambient() -> None:
    from repro.engine.session import _ACTIVE
    from repro.obs.drift import _MONITOR
    from repro.obs.metrics import _METRICS
    from repro.obs.trace import _TRACER

    # The fork inherited the parent's ambient session; drop it so workers
    # only ever evaluate under their own snapshot-seeded session (or none).
    # Likewise the parent's observability state: worker metrics ship home
    # as registry payloads on result messages (forked copies of the
    # parent's registry/tracer/monitor would record into the void, and the
    # monitor's EWMA is order-dependent — it only ever observes parent-side
    # evaluations, which a serial run covers completely).
    _ACTIVE.set(None)
    _METRICS.set(None)
    _TRACER.set(None)
    _MONITOR.set(None)


# --------------------------------------------------------- chunks scheduler


def _init_worker(payload) -> None:
    _clear_inherited_ambient()
    fn, items, snapshot, collect_deltas = payload
    session = None
    baseline = None
    if snapshot is not None:
        session = EvalSession()
        snapshot.install(session)
        baseline = session.cache_keys() if collect_deltas else None
    _WORKER.update(
        fn=fn, items=items, session=session, baseline=baseline,
        collect_deltas=collect_deltas,
    )


def _run_chunk(indices: list[int]) -> tuple[list[tuple[int, Any]], Any]:
    fn, items = _WORKER["fn"], _WORKER["items"]
    session = _WORKER["session"]
    # Each chunk records into a fresh registry, exported with the chunk's
    # snapshot delta — so counters cross the process boundary exactly once
    # and the parent-side merge stays commutative.
    registry = MetricsRegistry()
    with ambient_scope(session), use_metrics(registry):
        results = [(i, fn(items[i])) for i in indices]
    delta = None
    if session is not None and _WORKER["collect_deltas"]:
        session.publish_metrics(registry)
        delta = export_snapshot(
            session, exclude=_WORKER["baseline"], metrics=registry.export()
        )
        # Keep subsequent chunk deltas disjoint if this worker gets another.
        _WORKER["baseline"] = session.cache_keys()
    return results, delta


# ---------------------------------------------------------- steal scheduler


def _steal_worker(worker_id: int, payload, syncs, inbox, outbox) -> None:
    """One work-stealing worker: installs the snapshot (plus any ``syncs``
    deltas it missed by being respawned mid-sweep), then loops pulling
    ``("task", i)`` / ``("probe", j)`` messages until the ``None`` sentinel.
    Every finished unit is answered with its result and cache delta; a
    ``("sync", delta)`` message folds parent-side updates (the probe round's
    merged caches plus the warmup item) into the worker session mid-flight.
    The terminal message carries the worker's lifetime metrics (shared-
    memory attach counters, busy seconds, residual session counters) so the
    parent can account idle time per worker.

    Failure protocol, one message per failure so the supervisor can react:

    * an exception inside one unit (including an injected ``raise`` fault)
      answers ``("item-error", ...)`` — the worker stays up, the baseline is
      re-keyed so no partial cache entries of the failed unit ever ride a
      later delta, and the supervisor requeues the unit elsewhere;
    * a failed snapshot/sync install (:class:`~repro.engine.shm.ShmAttachError`
      — the shared-memory segments are missing or corrupt for this process)
      answers ``("install-error", ...)`` and exits: the supervisor respawns
      replacements on pickled payloads instead;
    * anything else answers ``("fatal", ...)`` and exits.
    """
    _clear_inherited_ambient()
    shm.forget_attachments()
    fn, items, probe_run, probe_tasks, snapshot, collect_deltas, plan = payload
    lifetime = MetricsRegistry()
    session = None
    baseline = None
    busy = 0.0
    done = 0
    try:
        with faults.use_faults(plan):
            if snapshot is not None:
                session = EvalSession()
                try:
                    with use_metrics(lifetime):
                        snapshot.install(session)
                        for extra in syncs:
                            extra.install(session)
                except shm.ShmAttachError as exc:
                    outbox.send(("install-error", worker_id, str(exc)))
                    return
                baseline = session.cache_keys() if collect_deltas else None
            while True:
                try:
                    msg = inbox.recv()
                except EOFError:
                    return  # parent went away; nothing to report to
                if msg is None:
                    break
                kind, value = msg
                if kind == "sync":
                    if session is not None:
                        try:
                            with use_metrics(lifetime):
                                value.install(session)
                        except shm.ShmAttachError as exc:
                            outbox.send(("install-error", worker_id, str(exc)))
                            return
                        if collect_deltas:
                            baseline = session.cache_keys()
                    outbox.send(("synced", worker_id))
                    continue
                started = perf_counter()
                registry = MetricsRegistry()
                try:
                    with ambient_scope(session), use_metrics(registry):
                        faults.fire(
                            "sweep.probe" if kind == "probe" else "sweep.task",
                            key=value,
                        )
                        if kind == "probe":
                            probe_run(probe_tasks[value])
                            result = None
                        else:
                            result = fn(items[value])
                except Exception:
                    # Partial cache entries from the failed unit must never
                    # ride a later unit's delta: re-key the baseline so the
                    # retry (on another worker) merges its state exactly
                    # once.  The per-unit registry is dropped with the unit.
                    if session is not None and collect_deltas:
                        baseline = session.cache_keys()
                    outbox.send(
                        ("item-error", worker_id, kind, value,
                         traceback.format_exc())
                    )
                    continue
                elapsed = perf_counter() - started
                busy += elapsed
                done += 1
                registry.observe("sweep.steal.task_seconds", elapsed)
                delta = None
                if session is not None and collect_deltas:
                    session.publish_metrics(registry)
                    delta = export_snapshot(
                        session, exclude=baseline, metrics=registry.export()
                    )
                    baseline = session.cache_keys()
                outbox.send(("result", worker_id, kind, value, result, delta))
            if session is not None:
                session.publish_metrics(lifetime)
            lifetime.inc("sweep.steal.tasks", done)
            outbox.send(("done", worker_id, lifetime.export(), busy, done))
    except BaseException:
        try:
            outbox.send(("fatal", worker_id, traceback.format_exc()))
        except OSError:
            pass


class _WorkerHandle:
    """Parent-side record of one live worker: its process, the two pipe
    ends the parent holds, and what it is currently working on."""

    __slots__ = ("wid", "proc", "inbox", "outbox", "in_flight",
                 "dispatched_at", "synced")

    def __init__(self, wid, proc, inbox, outbox) -> None:
        self.wid = wid
        self.proc = proc
        self.inbox = inbox      # parent writes ("task", i) / ("sync", d) / None
        self.outbox = outbox    # parent reads result/error/done messages
        self.in_flight: tuple[str, int] | None = None
        self.dispatched_at = 0.0
        self.synced = False

    def close(self) -> None:
        for conn in (self.inbox, self.outbox):
            try:
                conn.close()
            except OSError:
                pass


class _RoundState:
    """Book-keeping for one dispatch round (probe or main)."""

    __slots__ = ("kind", "pending", "attempts", "parent_units", "deltas",
                 "on_result")

    def __init__(self, kind, indices, on_result) -> None:
        self.kind = kind
        self.pending = deque(indices)
        self.attempts: dict[int, int] = {}
        self.parent_units: list[int] = []
        self.deltas: list[SessionSnapshot] = []
        self.on_result = on_result


class _StealPool:
    """Parent side of the steal scheduler: a supervisor over per-worker
    pipe pairs.  Dispatch is demand-driven — a worker is handed its next
    unit the moment its previous result arrives — which is what keeps every
    worker busy while any work remains, regardless of how skewed the
    per-item costs are.

    Supervision (on by default): instead of blocking on a result queue the
    parent waits on every worker's result pipe *and* process sentinel with
    :func:`multiprocessing.connection.wait`, so

    * a worker that dies (SIGKILL, OOM, injected crash) is detected the
      moment its sentinel fires: its result pipe is drained first — a fully
      delivered result is merged normally and **not** retried, keeping
      delta/metric merges exactly-once — then its in-flight unit is requeued
      to the surviving workers;
    * a worker stuck past ``item_timeout_s`` on one unit is killed and
      treated the same way;
    * lost workers are respawned with exponential backoff up to
      ``max_respawns`` (respawns receive the original payload plus every
      sync delta shipped so far, so their caches match the survivors');
    * a unit that keeps failing (``max_item_retries`` exceeded) — or any
      unit stranded when the whole pool has collapsed — is executed in the
      parent, serially, under the parent session: the sweep *degrades*
      rather than deadlocks, and results stay bit-identical to serial.

    All recovery events surface as ``sweep.faults.*`` counters.
    """

    def __init__(
        self,
        ctx,
        workers: int,
        payload,
        *,
        parent_run=None,
        fallback_payload=None,
        item_timeout_s: float | None = None,
        max_respawns: int | None = None,
        max_item_retries: int = 2,
        respawn_backoff_s: float = 0.05,
        supervised: bool = True,
    ) -> None:
        self.ctx = ctx
        self.size = workers
        self.payload = payload
        self.parent_run = parent_run
        self._fallback_payload = fallback_payload
        self._plain_payload = None
        self.item_timeout_s = item_timeout_s
        self.max_respawns = workers if max_respawns is None else max_respawns
        self.max_item_retries = max_item_retries
        self.respawn_backoff_s = respawn_backoff_s
        self.supervised = supervised
        self.workers: dict[int, _WorkerHandle] = {}
        self._next_wid = 0
        self._syncs: list[SessionSnapshot] = []
        self._shm_poisoned = False
        self._round: _RoundState | None = None
        self.worker_busy: dict[int, float] = {}
        self.worker_tasks: dict[int, int] = {}
        self.done_payloads: list[dict] = []
        self.deaths = 0
        self.hung_kills = 0
        self.item_errors = 0
        self.requeues = 0
        self.respawns = 0
        self.parent_runs = 0
        self.collapsed = False
        self.last_error: str | None = None
        for _ in range(workers):
            self._spawn()

    # ------------------------------------------------------------- lifecycle

    def _current_payload(self):
        if not self._shm_poisoned or self._fallback_payload is None:
            return self.payload
        if self._plain_payload is None:
            self._plain_payload = self._fallback_payload()
        return self._plain_payload

    def _spawn(self) -> _WorkerHandle:
        wid = self._next_wid
        self._next_wid += 1
        child_in, parent_in = self.ctx.Pipe(duplex=False)
        parent_out, child_out = self.ctx.Pipe(duplex=False)
        proc = self.ctx.Process(
            target=_steal_worker,
            args=(wid, self._current_payload(), list(self._syncs),
                  child_in, child_out),
            daemon=True,
        )
        proc.start()
        child_in.close()
        child_out.close()
        handle = _WorkerHandle(wid, proc, parent_in, parent_out)
        self.workers[wid] = handle
        self.worker_busy.setdefault(wid, 0.0)
        self.worker_tasks.setdefault(wid, 0)
        return handle

    def _can_respawn(self) -> bool:
        return self.respawns < self.max_respawns

    def _ensure_workers(self, demand: int) -> None:
        """Respawn (with backoff) toward enough workers for the remaining
        demand — never above the configured pool size, never beyond the
        respawn budget."""
        busy = sum(1 for w in self.workers.values() if w.in_flight is not None)
        target = min(self.size, busy + demand)
        while len(self.workers) < target and self._can_respawn():
            delay = min(self.respawn_backoff_s * (2 ** self.respawns), 1.0)
            if delay > 0:
                sleep(delay)
            self.respawns += 1
            count("sweep.faults.respawns")
            self._spawn()

    def _note_poisoned(self, message: str) -> None:
        if not self._shm_poisoned:
            self._shm_poisoned = True
            count("sweep.faults.attach_fallbacks")
        self.last_error = message

    # ------------------------------------------------------------ accounting

    def _requeue(self, index: int) -> None:
        state = self._round
        if state is None:
            return
        attempts = state.attempts.get(index, 0) + 1
        state.attempts[index] = attempts
        if attempts > self.max_item_retries:
            state.parent_units.append(index)
        else:
            self.requeues += 1
            count("sweep.faults.requeues")
            state.pending.append(index)

    def _handle_msg(self, w: _WorkerHandle, msg) -> str:
        """Process one worker message; returns ``"dead"`` when the worker
        announced its own demise and must be reaped."""
        tag = msg[0]
        state = self._round
        if tag == "result":
            _, _, kind, index, result, delta = msg
            w.in_flight = None
            self.worker_tasks[w.wid] = self.worker_tasks.get(w.wid, 0) + 1
            if state is not None:
                if delta is not None:
                    state.deltas.append(delta)
                state.on_result(kind, index, result)
            return "ok"
        if tag == "item-error":
            _, _, _, index, tb = msg
            w.in_flight = None
            self.item_errors += 1
            self.last_error = tb
            count("sweep.faults.item_errors")
            self._requeue(index)
            return "ok"
        if tag == "synced":
            w.synced = True
            return "ok"
        if tag == "install-error":
            self._note_poisoned(msg[2])
            return "dead"
        if tag == "fatal":
            self.last_error = msg[2]
            count("sweep.faults.worker_fatal")
            return "dead"
        return "ok"  # "done" handled by shutdown; anything else is stale

    def _reap(self, w: _WorkerHandle) -> None:
        """A worker is gone (or being put down): drain its fully delivered
        messages — a complete result is merged normally and not retried —
        then join, close its pipes, and requeue whatever it still held."""
        if self.workers.pop(w.wid, None) is None:
            return
        while True:
            try:
                if not w.outbox.poll():
                    break
                msg = w.outbox.recv()
            except (EOFError, OSError):
                break
            self._handle_msg(w, msg)
        w.proc.join(timeout=5.0)
        if w.proc.is_alive():
            w.proc.kill()
            w.proc.join(timeout=5.0)
        w.close()
        self.deaths += 1
        count("sweep.faults.worker_deaths")
        if w.in_flight is not None:
            _, index = w.in_flight
            w.in_flight = None
            self._requeue(index)

    # -------------------------------------------------------------- dispatch

    def _dispatch(self) -> None:
        state = self._round
        if state is None or not state.pending:
            return
        for w in list(self.workers.values()):
            if not state.pending:
                break
            if w.in_flight is not None or w.wid not in self.workers:
                continue
            index = state.pending.popleft()
            try:
                w.inbox.send((state.kind, index))
            except OSError:
                state.pending.appendleft(index)
                self._reap(w)
                continue
            w.in_flight = (state.kind, index)
            w.dispatched_at = perf_counter()

    def _wait_objects(self) -> tuple[dict, dict]:
        conns = {w.outbox: w for w in self.workers.values()}
        sentinels = (
            {w.proc.sentinel: w for w in self.workers.values()}
            if self.supervised
            else {}
        )
        return conns, sentinels

    def _wait_timeout(self) -> float | None:
        if not self.supervised or self.item_timeout_s is None:
            return None
        busy = [w for w in self.workers.values() if w.in_flight is not None]
        if not busy:
            return None
        now = perf_counter()
        remaining = min(
            self.item_timeout_s - (now - w.dispatched_at) for w in busy
        )
        return max(remaining + 0.002, 0.0)

    def _check_timeouts(self) -> None:
        if not self.supervised or self.item_timeout_s is None:
            return
        now = perf_counter()
        for w in list(self.workers.values()):
            if w.wid not in self.workers or w.in_flight is None:
                continue
            if now - w.dispatched_at > self.item_timeout_s:
                self.hung_kills += 1
                count("sweep.faults.hung_kills")
                w.proc.kill()
                self._reap(w)

    def run_round(
        self, kind: str, indices: Iterable[int], on_result
    ) -> list[SessionSnapshot]:
        state = _RoundState(kind, indices, on_result)
        self._round = state
        try:
            while True:
                if self.supervised:
                    self._ensure_workers(len(state.pending))
                self._dispatch()
                busy = any(
                    w.in_flight is not None for w in self.workers.values()
                )
                if not busy:
                    if not state.pending:
                        break
                    if self.supervised and self._can_respawn():
                        continue  # _ensure_workers will refill next pass
                    # Pool collapsed with work left: degrade to the parent.
                    self.collapsed = True
                    count("sweep.faults.pool_collapses")
                    state.parent_units.extend(state.pending)
                    state.pending.clear()
                    break
                conns, sentinels = self._wait_objects()
                ready = mp_wait(
                    list(conns) + list(sentinels), timeout=self._wait_timeout()
                )
                for obj in ready:
                    w = conns.get(obj)
                    if w is not None:
                        if w.wid not in self.workers:
                            continue  # reaped earlier in this batch
                        try:
                            msg = w.outbox.recv()
                        except (EOFError, OSError):
                            self._reap(w)
                            continue
                        if self._handle_msg(w, msg) == "dead":
                            self._reap(w)
                        continue
                    w = sentinels.get(obj)
                    if w is not None and w.wid in self.workers:
                        self._reap(w)
                self._check_timeouts()
        finally:
            self._round = None
        for index in state.parent_units:
            # Graceful degradation: poisoned or stranded units run serially
            # in the parent, under the parent session — cache effects land
            # directly, so no delta is shipped (or could be double-merged).
            self.parent_runs += 1
            count("sweep.faults.parent_runs")
            if self.parent_run is None:
                raise RuntimeError(
                    "parallel sweep lost its workers and has no parent "
                    f"fallback:\n{self.last_error or '<no worker error>'}"
                )
            result = self.parent_run(kind, index)
            on_result(kind, index, result)
        return state.deltas

    def sync(self, delta: SessionSnapshot) -> None:
        """Ship a parent-side delta to every live worker and wait for acks.
        The delta is also remembered for any worker respawned later."""
        self._syncs.append(delta)
        waiting: dict[int, _WorkerHandle] = {}
        for w in list(self.workers.values()):
            w.synced = False
            try:
                w.inbox.send(("sync", delta))
            except OSError:
                self._reap(w)
                continue
            waiting[w.wid] = w
        while waiting:
            conns = {w.outbox: w for w in waiting.values()}
            sentinels = (
                {w.proc.sentinel: w for w in waiting.values()}
                if self.supervised
                else {}
            )
            ready = mp_wait(list(conns) + list(sentinels))
            for obj in ready:
                w = conns.get(obj) or sentinels.get(obj)
                if w is None or w.wid not in waiting:
                    continue
                if obj is w.outbox:
                    try:
                        msg = w.outbox.recv()
                    except (EOFError, OSError):
                        self._reap(w)
                        waiting.pop(w.wid, None)
                        continue
                    if self._handle_msg(w, msg) == "dead":
                        self._reap(w)
                        waiting.pop(w.wid, None)
                    elif w.synced:
                        waiting.pop(w.wid, None)
                else:
                    self._reap(w)
                    waiting.pop(w.wid, None)

    def shutdown(self) -> None:
        """Stop every worker, collecting terminal accounting payloads; a
        worker dying instead of reporting is reaped without one.  All pipe
        ends are closed — a drained pool must not pin fds or feeder state."""
        for w in list(self.workers.values()):
            try:
                w.inbox.send(None)
            except OSError:
                self._reap(w)
        while self.workers:
            conns, sentinels = self._wait_objects()
            ready = mp_wait(list(conns) + list(sentinels))
            for obj in ready:
                w = conns.get(obj)
                if w is not None:
                    if w.wid not in self.workers:
                        continue
                    try:
                        msg = w.outbox.recv()
                    except (EOFError, OSError):
                        self._reap(w)
                        continue
                    if msg[0] == "done":
                        _, _, payload, worker_seconds, _ = msg
                        self.worker_busy[w.wid] = worker_seconds
                        self.done_payloads.append(payload)
                        self.workers.pop(w.wid, None)
                        w.proc.join()
                        w.close()
                    elif self._handle_msg(w, msg) == "dead":
                        self._reap(w)
                    continue
                w = sentinels.get(obj)
                if w is not None and w.wid in self.workers:
                    self._reap(w)

    def terminate(self) -> None:
        """Hard stop: kill every worker and close every pipe end."""
        for w in self.workers.values():
            if w.proc.is_alive():
                w.proc.terminate()
        for w in self.workers.values():
            w.proc.join()
            w.close()
        self.workers.clear()


class ParallelSweep:
    """Shards a sweep's work items across forked worker processes.

    ``workers`` is the pool size (``1`` means serial).  ``warmup`` runs the
    first item in the parent before fanning out, seeding the snapshot every
    worker starts from — almost always worth it, because sweep items share
    most of their cache footprint.  ``collect_deltas=False`` skips shipping
    worker cache deltas back to the parent — the right call when the
    session is a throwaway driving a single sweep, since the deltas' only
    purpose is leaving a reusable warm session behind.

    ``scheduler`` picks the dispatch policy: ``"steal"`` (default) hands
    items out one at a time to whichever worker goes idle; ``"chunks"``
    keeps the PR 3 static contiguous partition.  ``shared_memory`` forces
    the zero-copy snapshot path on or off; the default (``None``)
    auto-detects via :func:`repro.engine.shm.shm_available`.

    The steal scheduler is supervised (see :class:`_StealPool`): worker
    crashes, hangs and per-item exceptions are detected and recovered —
    requeue to survivors, bounded respawn, in-parent serial fallback — so a
    sweep completes with bit-identical results under any fault schedule.
    ``item_timeout_s`` bounds one unit's wall clock (``None`` = no hang
    detection); ``max_respawns`` caps replacement workers (default: pool
    size); ``max_item_retries`` is how often a failing unit is retried on
    workers before the parent runs it; ``supervise=False`` reverts to
    blocking waits with no failure detection (the A/B baseline for
    measuring supervision overhead).

    Results are returned in item order and are bit-identical to a serial
    run; the only observable differences are wall-clock, ``session.stats``
    and the ``sweep.*`` / ``engine.shm.*`` metrics.  After a parallel run,
    ``last_stats`` holds the round's accounting (per-worker busy seconds
    and task counts, snapshot payload bytes, shared bytes, and a
    ``supervision`` block of fault/recovery counts) for benches.
    """

    def __init__(
        self,
        workers: int = 1,
        warmup: bool = True,
        collect_deltas: bool = True,
        scheduler: str = "steal",
        shared_memory: bool | None = None,
        item_timeout_s: float | None = None,
        max_respawns: int | None = None,
        max_item_retries: int = 2,
        respawn_backoff_s: float = 0.05,
        supervise: bool = True,
    ) -> None:
        if scheduler not in ("steal", "chunks"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.workers = max(1, int(workers))
        self.warmup = warmup
        self.collect_deltas = collect_deltas
        self.scheduler = scheduler
        self.shared_memory = shared_memory
        self.item_timeout_s = item_timeout_s
        self.max_respawns = max_respawns
        self.max_item_retries = max_item_retries
        self.respawn_backoff_s = respawn_backoff_s
        self.supervise = supervise
        self.last_stats: dict = {}

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        session: EvalSession | None = None,
        probe: WarmupProbe | None = None,
    ) -> list[Any]:
        """``[fn(item) for item in items]``, sharded across the pool.

        With ``session``, work runs under it ambiently: the parent's cache
        state is snapshot into every worker and worker deltas are merged
        back, so after ``map`` returns the session is as warm as a serial
        sweep would have left it.  ``probe`` (steal scheduler only) shards
        the warmup item's probe phase across the pool before the item runs.
        """
        items = list(items)
        self.last_stats = {}
        if not self.parallel or len(items) < 2:
            with ambient_scope(session):
                results = [fn(item) for item in items]
            if session is not None:
                session.publish_metrics()
            return results
        if self.scheduler == "steal":
            return self._map_steal(fn, items, session, probe)
        return self._map_chunks(fn, items, session)

    # ----------------------------------------------------------- steal path

    def _map_steal(
        self,
        fn: Callable[[Any], Any],
        items: list,
        session: EvalSession | None,
        probe: WarmupProbe | None,
    ) -> list[Any]:
        results: list[Any] = [None] * len(items)
        warm = self.warmup and session is not None
        use_shm = (
            self.shared_memory
            if self.shared_memory is not None
            else shm.shm_available()
        )
        arena = shm.ShmArena() if (use_shm and session is not None) else None
        started = perf_counter()
        probe_tasks: list = []
        if warm and probe is not None:
            with use_session(session):
                probe_tasks = list(probe.tasks(items[0]))
        if warm and not probe_tasks:
            # No probe round: warm the first item before the single export,
            # so its caches ride the snapshot instead of a later sync.
            with use_session(session):
                results[0] = fn(items[0])
        main_indices = list(range(1 if warm else 0, len(items)))
        workers = min(self.workers, max(len(main_indices), len(probe_tasks)))
        if session is not None and arena is not None:
            session.share_heapfiles(arena)
        snapshot = (
            export_snapshot(session, arena=arena) if session is not None else None
        )
        baseline = (
            session.cache_keys()
            if (session is not None and probe_tasks)
            else None
        )
        plan = faults.get_faults()
        payload = (
            fn, items,
            probe.run if probe is not None else None,
            probe_tasks, snapshot, self.collect_deltas, plan,
        )

        def parent_run(kind: str, index: int):
            # Degraded path: run a stranded unit in the parent, under the
            # parent session — cache effects land directly, no delta ships.
            # Worker fault sites do not re-fire here; degradation must
            # terminate even when a unit's fault spec matches every retry.
            with ambient_scope(session):
                if kind == "probe":
                    probe.run(probe_tasks[index])
                    return None
                return fn(items[index])

        def fallback_payload():
            # Shared memory failed for some worker: respawns get a plain
            # pickled snapshot (exported fresh — worker deltas only merge
            # into the parent after the rounds, so this equals the original
            # snapshot's cache state, just by value).
            plain = export_snapshot(session) if session is not None else None
            return (
                fn, items,
                probe.run if probe is not None else None,
                probe_tasks, plain, self.collect_deltas, plan,
            )

        ctx = mp.get_context("fork")
        pool = _StealPool(
            ctx, workers, payload,
            parent_run=parent_run,
            fallback_payload=fallback_payload,
            item_timeout_s=self.item_timeout_s,
            max_respawns=self.max_respawns,
            max_item_retries=self.max_item_retries,
            respawn_backoff_s=self.respawn_backoff_s,
            supervised=self.supervise,
        )
        deltas: list[SessionSnapshot] = []
        try:
            if probe_tasks:
                with span("sweep.steal", phase="probe", tasks=len(probe_tasks)):
                    probe_deltas = pool.run_round(
                        "probe", range(len(probe_tasks)), lambda k, i, r: None
                    )
                self._merge_back(session, probe_deltas)
                # The warmup item now runs cache-hot in the parent: its CM
                # choices were just probed in parallel.
                with use_session(session):
                    results[0] = fn(items[0])
                # If shared memory already failed for some worker, ship the
                # sync by value — re-poisoning respawned workers with refs
                # they cannot attach would collapse the pool for nothing.
                sync_arena = None if pool._shm_poisoned else arena
                sync = export_snapshot(session, exclude=baseline, arena=sync_arena)
                pool.sync(sync)
            with span("sweep.steal", phase="main", tasks=len(main_indices)):
                deltas = pool.run_round(
                    "task", main_indices,
                    lambda kind, i, result: results.__setitem__(i, result),
                )
            pool.shutdown()
        except BaseException:
            pool.terminate()
            raise
        finally:
            if arena is not None:
                arena.dispose()
        self._merge_back(session, deltas)
        registry = get_metrics()
        if registry is not None:
            for done_payload in pool.done_payloads:
                registry.merge(done_payload)
        if arena is not None:
            count("engine.shm.bytes", arena.bytes_registered)
            count("engine.shm.segments", arena.segments)
        count("sweep.steal.dispatched", len(main_indices) + len(probe_tasks))
        if session is not None:
            session.publish_metrics()
        wids = sorted(pool.worker_tasks)
        self.last_stats = {
            "scheduler": "steal",
            "workers": workers,
            "tasks": len(main_indices) + len(probe_tasks),
            "probe_tasks": len(probe_tasks),
            "wall_seconds": perf_counter() - started,
            "worker_busy_seconds": [pool.worker_busy[w] for w in wids],
            "worker_tasks": [pool.worker_tasks[w] for w in wids],
            "supervision": {
                "supervised": pool.supervised,
                "deaths": pool.deaths,
                "hung_kills": pool.hung_kills,
                "item_errors": pool.item_errors,
                "requeues": pool.requeues,
                "respawns": pool.respawns,
                "parent_runs": pool.parent_runs,
                "shm_fallback": pool._shm_poisoned,
                "pool_collapsed": pool.collapsed,
            },
            "shm_bytes": arena.bytes_registered if arena is not None else 0,
            "shm_segments": arena.segments if arena is not None else 0,
            "snapshot_array_bytes": (
                snapshot_nbytes(snapshot) if snapshot is not None else 0
            ),
            "snapshot_shared_bytes": (
                snapshot_shared_nbytes(snapshot) if snapshot is not None else 0
            ),
        }
        return results

    @staticmethod
    def _merge_back(
        session: EvalSession | None, deltas: list[SessionSnapshot]
    ) -> None:
        if session is None or not deltas:
            return
        merged = merge_snapshots(*deltas)
        merged.install(session)
        if merged.metrics:
            registry = get_metrics()
            if registry is not None:
                registry.merge(merged.metrics)

    # ---------------------------------------------------------- chunks path

    def _map_chunks(
        self,
        fn: Callable[[Any], Any],
        items: list,
        session: EvalSession | None,
    ) -> list[Any]:
        results: list[Any] = [None] * len(items)
        started = perf_counter()
        start = 0
        if self.warmup and session is not None and items:
            start = 1
        pending = list(range(start, len(items)))
        chunks = partition_chunks(pending, self.workers)
        if self.warmup and session is not None and items:
            # The parent evaluates the first item and each chunk's *head*
            # serially before fanning out: the first item seeds the caches
            # every item shares (base-fact orderings, base CM designs), and
            # a chunk head seeds the design objects its own tail overlaps
            # with — without it, every worker would redo its neighbour
            # chunk's cold work.  Heads are cheap once the first item has
            # warmed the session, and workers then run pure marginal work.
            head_indices = [0] + [chunk[0] for chunk in chunks]
            with use_session(session):
                for i in head_indices:
                    results[i] = fn(items[i])
            chunks = [chunk[1:] for chunk in chunks]
            chunks = [chunk for chunk in chunks if chunk]
        if not chunks:
            if session is not None:
                session.publish_metrics()
            return results

        snapshot = export_snapshot(session) if session is not None else None
        ctx = mp.get_context("fork")
        deltas: list[SessionSnapshot] = []
        with ctx.Pool(
            processes=len(chunks),
            initializer=_init_worker,
            initargs=((fn, items, snapshot, self.collect_deltas),),
        ) as pool:
            for chunk_results, delta in pool.imap_unordered(_run_chunk, chunks):
                for i, result in chunk_results:
                    results[i] = result
                if delta is not None:
                    deltas.append(delta)
        self._merge_back(session, deltas)
        if session is not None:
            session.publish_metrics()
        self.last_stats = {
            "scheduler": "chunks",
            "workers": len(chunks),
            "tasks": sum(len(chunk) for chunk in chunks),
            "wall_seconds": perf_counter() - started,
            "snapshot_array_bytes": (
                snapshot_nbytes(snapshot) if snapshot is not None else 0
            ),
            "snapshot_shared_bytes": 0,
        }
        return results
