"""Multiprocess sharding of design sweeps over a shared, serializable cache.

CORADD is evaluated over budget *ladders*; each budget's evaluation is
independent given the data (PR 2 made caching observationally invisible, so
evaluation order — and therefore process placement — cannot change any
result).  A :class:`ParallelSweep` exploits that:

1. the parent optionally **warms** the shared :class:`~repro.engine.session.
   EvalSession` by running the first work item serially (the cheapest budget
   seeds the caches every later budget reuses: base-fact sort orderings,
   CM designs, masks, scan costs) — and, when the caller supplies a
   :class:`WarmupProbe`, the warmup item's per-query CM probe phase is
   itself sharded across the pool first, so even the warmup is parallel;
2. the session is exported as a :class:`~repro.engine.snapshot.
   SessionSnapshot` — with its large array payloads (and the heap-file
   columns behind them) moved into a :class:`~repro.engine.shm.ShmArena`
   of named shared-memory segments, so what crosses the process boundary
   is tokens, not megabytes — and **forked workers** install it into fresh
   sessions, attaching read-only zero-copy views;
3. remaining items feed a **work-stealing dispatcher**: every worker holds
   at most one item, and the moment it reports a result it is handed the
   next pending item.  No worker owns a pre-cut chunk, so a straggler item
   (the big-budget ILP+materialize points) delays only itself while idle
   workers drain the rest of the ladder;
4. each item's result returns with that item's cache **delta**, which the
   parent merges back commutatively — so a sweep leaves behind the same
   warm session a serial run would have.

``scheduler="chunks"`` keeps the PR 3 static scheduler (deterministic
contiguous partitioning via :func:`partition_chunks`, one fork-pool chunk
per worker) as a fallback and as the bench baseline work stealing is
measured against.

Fallback semantics: with ``workers <= 1``, fewer than two work items, or on
platforms without ``fork`` (Windows), the sweep degrades to a plain serial
loop under the ambient session — same results, no subprocesses.  Without a
usable shared-memory mount (see :func:`repro.engine.shm.shm_available`) the
steal scheduler still runs, shipping plain pickled snapshots.  Workers
inherit the parent via fork, so work functions may be closures; only task
indices, results and (delta) snapshots cross process boundaries.
"""

from __future__ import annotations

import multiprocessing as mp
import traceback
from collections import deque
from dataclasses import dataclass
from time import perf_counter
from typing import Any, Callable, Iterable, Sequence

from repro.engine import shm
from repro.engine.session import EvalSession, ambient_scope, use_session
from repro.engine.snapshot import (
    SessionSnapshot,
    export_snapshot,
    merge_snapshots,
    snapshot_nbytes,
    snapshot_shared_nbytes,
)
from repro.obs.metrics import MetricsRegistry, count, get_metrics, use_metrics
from repro.obs.trace import span

# Worker-side state, set by the chunks-scheduler pool initializer.  Under
# the fork start method the initializer arguments are inherited, not
# pickled, which is what lets ``fn`` and ``items`` be arbitrary closures
# over designer state.
_WORKER: dict = {}


def fork_available() -> bool:
    """Whether the platform can fork worker processes."""
    return "fork" in mp.get_all_start_methods()


def partition_chunks(indices: Sequence[int], chunks: int) -> list[list[int]]:
    """Deterministic contiguous partition of ``indices`` into at most
    ``chunks`` non-empty runs, sizes as even as possible, earlier runs
    taking the remainder — ``[0..4] x 2 -> [[0, 1, 2], [3, 4]]``.

    ``chunks`` must be a positive count; asking for zero or negative chunks
    is a caller bug, not a degenerate partition, and raises."""
    if chunks < 1:
        raise ValueError(f"chunks must be >= 1, got {chunks}")
    items = list(indices)
    if not items:
        return []
    chunks = min(chunks, len(items))
    size, extra = divmod(len(items), chunks)
    out: list[list[int]] = []
    start = 0
    for i in range(chunks):
        end = start + size + (1 if i < extra else 0)
        out.append(items[start:end])
        start = end
    return [c for c in out if c]


@dataclass(frozen=True)
class WarmupProbe:
    """Shards the warmup item's probe phase across the pool.

    ``tasks(item)`` runs in the parent under the session and yields the
    independent probe units of the sweep's first item (for design ladders:
    one (design, object, query) CM choice each — building the heap files on
    the way, which warms the sort-ordering cache the workers reuse).
    ``run(task)`` executes one unit in a worker under its session; only the
    cache side effects matter, results are discarded.  Probes must be
    observationally invisible — running them can only pre-fill caches the
    item's own evaluation would fill anyway (the same invariant that makes
    the whole sweep order-independent)."""

    tasks: Callable[[Any], Iterable[Any]]
    run: Callable[[Any], Any]


def _clear_inherited_ambient() -> None:
    from repro.engine.session import _ACTIVE
    from repro.obs.drift import _MONITOR
    from repro.obs.metrics import _METRICS
    from repro.obs.trace import _TRACER

    # The fork inherited the parent's ambient session; drop it so workers
    # only ever evaluate under their own snapshot-seeded session (or none).
    # Likewise the parent's observability state: worker metrics ship home
    # as registry payloads on result messages (forked copies of the
    # parent's registry/tracer/monitor would record into the void, and the
    # monitor's EWMA is order-dependent — it only ever observes parent-side
    # evaluations, which a serial run covers completely).
    _ACTIVE.set(None)
    _METRICS.set(None)
    _TRACER.set(None)
    _MONITOR.set(None)


# --------------------------------------------------------- chunks scheduler


def _init_worker(payload) -> None:
    _clear_inherited_ambient()
    fn, items, snapshot, collect_deltas = payload
    session = None
    baseline = None
    if snapshot is not None:
        session = EvalSession()
        snapshot.install(session)
        baseline = session.cache_keys() if collect_deltas else None
    _WORKER.update(
        fn=fn, items=items, session=session, baseline=baseline,
        collect_deltas=collect_deltas,
    )


def _run_chunk(indices: list[int]) -> tuple[list[tuple[int, Any]], Any]:
    fn, items = _WORKER["fn"], _WORKER["items"]
    session = _WORKER["session"]
    # Each chunk records into a fresh registry, exported with the chunk's
    # snapshot delta — so counters cross the process boundary exactly once
    # and the parent-side merge stays commutative.
    registry = MetricsRegistry()
    with ambient_scope(session), use_metrics(registry):
        results = [(i, fn(items[i])) for i in indices]
    delta = None
    if session is not None and _WORKER["collect_deltas"]:
        session.publish_metrics(registry)
        delta = export_snapshot(
            session, exclude=_WORKER["baseline"], metrics=registry.export()
        )
        # Keep subsequent chunk deltas disjoint if this worker gets another.
        _WORKER["baseline"] = session.cache_keys()
    return results, delta


# ---------------------------------------------------------- steal scheduler


def _steal_worker(worker_id: int, payload, inbox, results) -> None:
    """One work-stealing worker: installs the snapshot, then loops pulling
    ``("task", i)`` / ``("probe", j)`` messages until the ``None`` sentinel.
    Every finished unit is answered with its result and cache delta; a
    ``("sync", delta)`` message folds parent-side updates (the probe round's
    merged caches plus the warmup item) into the worker session mid-flight.
    The terminal message carries the worker's lifetime metrics (shared-
    memory attach counters, busy seconds, residual session counters) so the
    parent can account idle time per worker."""
    _clear_inherited_ambient()
    shm.forget_attachments()
    fn, items, probe_run, probe_tasks, snapshot, collect_deltas = payload
    lifetime = MetricsRegistry()
    session = None
    baseline = None
    busy = 0.0
    done = 0
    try:
        if snapshot is not None:
            session = EvalSession()
            with use_metrics(lifetime):
                snapshot.install(session)
            baseline = session.cache_keys() if collect_deltas else None
        while True:
            msg = inbox.get()
            if msg is None:
                break
            kind, value = msg
            if kind == "sync":
                if session is not None:
                    with use_metrics(lifetime):
                        value.install(session)
                    if collect_deltas:
                        baseline = session.cache_keys()
                results.put(("synced", worker_id))
                continue
            started = perf_counter()
            registry = MetricsRegistry()
            with ambient_scope(session), use_metrics(registry):
                if kind == "probe":
                    probe_run(probe_tasks[value])
                    result = None
                else:
                    result = fn(items[value])
            elapsed = perf_counter() - started
            busy += elapsed
            done += 1
            registry.observe("sweep.steal.task_seconds", elapsed)
            delta = None
            if session is not None and collect_deltas:
                session.publish_metrics(registry)
                delta = export_snapshot(
                    session, exclude=baseline, metrics=registry.export()
                )
                baseline = session.cache_keys()
            results.put(("result", worker_id, kind, value, result, delta))
        if session is not None:
            session.publish_metrics(lifetime)
        lifetime.inc("sweep.steal.tasks", done)
        results.put(("done", worker_id, lifetime.export(), busy, done))
    except BaseException:
        results.put(("error", worker_id, traceback.format_exc()))


class _StealPool:
    """Parent side of the steal scheduler: per-worker inboxes plus one
    shared result queue.  Dispatch is demand-driven — a worker is handed
    its next unit the moment its previous result arrives — which is what
    keeps every worker busy while any work remains, regardless of how
    skewed the per-item costs are."""

    def __init__(self, ctx, workers: int, payload) -> None:
        self.results = ctx.SimpleQueue()
        self.inboxes = [ctx.SimpleQueue() for _ in range(workers)]
        self.procs = [
            ctx.Process(
                target=_steal_worker,
                args=(i, payload, self.inboxes[i], self.results),
                daemon=True,
            )
            for i in range(workers)
        ]
        for proc in self.procs:
            proc.start()
        self.worker_busy = [0.0] * workers
        self.worker_tasks = [0] * workers
        self.done_payloads: list[dict] = []

    def _fail(self, message) -> None:
        raise RuntimeError(f"parallel sweep worker failed:\n{message}")

    def run_round(
        self, kind: str, indices: Iterable[int], on_result
    ) -> list[SessionSnapshot]:
        pending = deque(indices)
        idle = deque(range(len(self.inboxes)))
        outstanding = 0
        deltas: list[SessionSnapshot] = []
        while pending and idle:
            self.inboxes[idle.popleft()].put((kind, pending.popleft()))
            outstanding += 1
        while outstanding:
            msg = self.results.get()
            if msg[0] == "error":
                self._fail(msg[2])
            _, wid, got_kind, index, result, delta = msg
            outstanding -= 1
            if delta is not None:
                deltas.append(delta)
            on_result(got_kind, index, result)
            if pending:
                self.inboxes[wid].put((kind, pending.popleft()))
                outstanding += 1
            else:
                idle.append(wid)
        return deltas

    def sync(self, delta: SessionSnapshot) -> None:
        for inbox in self.inboxes:
            inbox.put(("sync", delta))
        acked = 0
        while acked < len(self.inboxes):
            msg = self.results.get()
            if msg[0] == "error":
                self._fail(msg[2])
            acked += 1

    def shutdown(self) -> None:
        for inbox in self.inboxes:
            inbox.put(None)
        finished = 0
        while finished < len(self.procs):
            msg = self.results.get()
            if msg[0] == "error":
                self._fail(msg[2])
            _, wid, payload, busy, done = msg
            self.worker_busy[wid] = busy
            self.worker_tasks[wid] = done
            self.done_payloads.append(payload)
            finished += 1
        for proc in self.procs:
            proc.join()

    def terminate(self) -> None:
        for proc in self.procs:
            if proc.is_alive():
                proc.terminate()
        for proc in self.procs:
            proc.join()


class ParallelSweep:
    """Shards a sweep's work items across forked worker processes.

    ``workers`` is the pool size (``1`` means serial).  ``warmup`` runs the
    first item in the parent before fanning out, seeding the snapshot every
    worker starts from — almost always worth it, because sweep items share
    most of their cache footprint.  ``collect_deltas=False`` skips shipping
    worker cache deltas back to the parent — the right call when the
    session is a throwaway driving a single sweep, since the deltas' only
    purpose is leaving a reusable warm session behind.

    ``scheduler`` picks the dispatch policy: ``"steal"`` (default) hands
    items out one at a time to whichever worker goes idle; ``"chunks"``
    keeps the PR 3 static contiguous partition.  ``shared_memory`` forces
    the zero-copy snapshot path on or off; the default (``None``)
    auto-detects via :func:`repro.engine.shm.shm_available`.

    Results are returned in item order and are bit-identical to a serial
    run; the only observable differences are wall-clock, ``session.stats``
    and the ``sweep.*`` / ``engine.shm.*`` metrics.  After a parallel run,
    ``last_stats`` holds the round's accounting (per-worker busy seconds
    and task counts, snapshot payload bytes, shared bytes) for benches.
    """

    def __init__(
        self,
        workers: int = 1,
        warmup: bool = True,
        collect_deltas: bool = True,
        scheduler: str = "steal",
        shared_memory: bool | None = None,
    ) -> None:
        if scheduler not in ("steal", "chunks"):
            raise ValueError(f"unknown scheduler {scheduler!r}")
        self.workers = max(1, int(workers))
        self.warmup = warmup
        self.collect_deltas = collect_deltas
        self.scheduler = scheduler
        self.shared_memory = shared_memory
        self.last_stats: dict = {}

    @property
    def parallel(self) -> bool:
        return self.workers > 1 and fork_available()

    def map(
        self,
        fn: Callable[[Any], Any],
        items: Sequence[Any],
        session: EvalSession | None = None,
        probe: WarmupProbe | None = None,
    ) -> list[Any]:
        """``[fn(item) for item in items]``, sharded across the pool.

        With ``session``, work runs under it ambiently: the parent's cache
        state is snapshot into every worker and worker deltas are merged
        back, so after ``map`` returns the session is as warm as a serial
        sweep would have left it.  ``probe`` (steal scheduler only) shards
        the warmup item's probe phase across the pool before the item runs.
        """
        items = list(items)
        self.last_stats = {}
        if not self.parallel or len(items) < 2:
            with ambient_scope(session):
                results = [fn(item) for item in items]
            if session is not None:
                session.publish_metrics()
            return results
        if self.scheduler == "steal":
            return self._map_steal(fn, items, session, probe)
        return self._map_chunks(fn, items, session)

    # ----------------------------------------------------------- steal path

    def _map_steal(
        self,
        fn: Callable[[Any], Any],
        items: list,
        session: EvalSession | None,
        probe: WarmupProbe | None,
    ) -> list[Any]:
        results: list[Any] = [None] * len(items)
        warm = self.warmup and session is not None
        use_shm = (
            self.shared_memory
            if self.shared_memory is not None
            else shm.shm_available()
        )
        arena = shm.ShmArena() if (use_shm and session is not None) else None
        started = perf_counter()
        probe_tasks: list = []
        if warm and probe is not None:
            with use_session(session):
                probe_tasks = list(probe.tasks(items[0]))
        if warm and not probe_tasks:
            # No probe round: warm the first item before the single export,
            # so its caches ride the snapshot instead of a later sync.
            with use_session(session):
                results[0] = fn(items[0])
        main_indices = list(range(1 if warm else 0, len(items)))
        workers = min(self.workers, max(len(main_indices), len(probe_tasks)))
        if session is not None and arena is not None:
            session.share_heapfiles(arena)
        snapshot = (
            export_snapshot(session, arena=arena) if session is not None else None
        )
        baseline = (
            session.cache_keys()
            if (session is not None and probe_tasks)
            else None
        )
        payload = (
            fn, items,
            probe.run if probe is not None else None,
            probe_tasks, snapshot, self.collect_deltas,
        )
        ctx = mp.get_context("fork")
        pool = _StealPool(ctx, workers, payload)
        deltas: list[SessionSnapshot] = []
        try:
            if probe_tasks:
                with span("sweep.steal", phase="probe", tasks=len(probe_tasks)):
                    probe_deltas = pool.run_round(
                        "probe", range(len(probe_tasks)), lambda k, i, r: None
                    )
                self._merge_back(session, probe_deltas)
                # The warmup item now runs cache-hot in the parent: its CM
                # choices were just probed in parallel.
                with use_session(session):
                    results[0] = fn(items[0])
                sync = export_snapshot(session, exclude=baseline, arena=arena)
                pool.sync(sync)
            with span("sweep.steal", phase="main", tasks=len(main_indices)):
                deltas = pool.run_round(
                    "task", main_indices,
                    lambda kind, i, result: results.__setitem__(i, result),
                )
            pool.shutdown()
        except BaseException:
            pool.terminate()
            raise
        finally:
            if arena is not None:
                arena.dispose()
        self._merge_back(session, deltas)
        registry = get_metrics()
        if registry is not None:
            for done_payload in pool.done_payloads:
                registry.merge(done_payload)
        if arena is not None:
            count("engine.shm.bytes", arena.bytes_registered)
            count("engine.shm.segments", arena.segments)
        count("sweep.steal.dispatched", len(main_indices) + len(probe_tasks))
        if session is not None:
            session.publish_metrics()
        self.last_stats = {
            "scheduler": "steal",
            "workers": workers,
            "tasks": len(main_indices) + len(probe_tasks),
            "probe_tasks": len(probe_tasks),
            "wall_seconds": perf_counter() - started,
            "worker_busy_seconds": list(pool.worker_busy),
            "worker_tasks": list(pool.worker_tasks),
            "shm_bytes": arena.bytes_registered if arena is not None else 0,
            "shm_segments": arena.segments if arena is not None else 0,
            "snapshot_array_bytes": (
                snapshot_nbytes(snapshot) if snapshot is not None else 0
            ),
            "snapshot_shared_bytes": (
                snapshot_shared_nbytes(snapshot) if snapshot is not None else 0
            ),
        }
        return results

    @staticmethod
    def _merge_back(
        session: EvalSession | None, deltas: list[SessionSnapshot]
    ) -> None:
        if session is None or not deltas:
            return
        merged = merge_snapshots(*deltas)
        merged.install(session)
        if merged.metrics:
            registry = get_metrics()
            if registry is not None:
                registry.merge(merged.metrics)

    # ---------------------------------------------------------- chunks path

    def _map_chunks(
        self,
        fn: Callable[[Any], Any],
        items: list,
        session: EvalSession | None,
    ) -> list[Any]:
        results: list[Any] = [None] * len(items)
        started = perf_counter()
        start = 0
        if self.warmup and session is not None and items:
            start = 1
        pending = list(range(start, len(items)))
        chunks = partition_chunks(pending, self.workers)
        if self.warmup and session is not None and items:
            # The parent evaluates the first item and each chunk's *head*
            # serially before fanning out: the first item seeds the caches
            # every item shares (base-fact orderings, base CM designs), and
            # a chunk head seeds the design objects its own tail overlaps
            # with — without it, every worker would redo its neighbour
            # chunk's cold work.  Heads are cheap once the first item has
            # warmed the session, and workers then run pure marginal work.
            head_indices = [0] + [chunk[0] for chunk in chunks]
            with use_session(session):
                for i in head_indices:
                    results[i] = fn(items[i])
            chunks = [chunk[1:] for chunk in chunks]
            chunks = [chunk for chunk in chunks if chunk]
        if not chunks:
            if session is not None:
                session.publish_metrics()
            return results

        snapshot = export_snapshot(session) if session is not None else None
        ctx = mp.get_context("fork")
        deltas: list[SessionSnapshot] = []
        with ctx.Pool(
            processes=len(chunks),
            initializer=_init_worker,
            initargs=((fn, items, snapshot, self.collect_deltas),),
        ) as pool:
            for chunk_results, delta in pool.imap_unordered(_run_chunk, chunks):
                for i, result in chunk_results:
                    results[i] = result
                if delta is not None:
                    deltas.append(delta)
        self._merge_back(session, deltas)
        if session is not None:
            session.publish_metrics()
        self.last_stats = {
            "scheduler": "chunks",
            "workers": len(chunks),
            "tasks": sum(len(chunk) for chunk in chunks),
            "wall_seconds": perf_counter() - started,
            "snapshot_array_bytes": (
                snapshot_nbytes(snapshot) if snapshot is not None else 0
            ),
            "snapshot_shared_bytes": 0,
        }
        return results
