"""Column types and their storage byte sizes.

CORADD's candidate generator weighs MV size via ``bytesize(attr)`` (Section
4.1.3) and every size computation in the storage layer needs per-column byte
widths, so the type system is deliberately small: fixed-width integers,
floats, and fixed-width character fields.  String values are dictionary
encoded into int64 codes by :class:`repro.relational.table.Table`; the
declared type only controls how many bytes a stored value occupies on disk.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ColumnType:
    """A storage type: a name and the number of bytes one value occupies."""

    name: str
    byte_size: int

    def __post_init__(self) -> None:
        if self.byte_size <= 0:
            raise ValueError(f"byte_size must be positive, got {self.byte_size}")

    def __repr__(self) -> str:
        return f"ColumnType({self.name!r}, {self.byte_size})"


INT8 = ColumnType("int8", 1)
INT16 = ColumnType("int16", 2)
INT32 = ColumnType("int32", 4)
INT64 = ColumnType("int64", 8)
FLOAT64 = ColumnType("float64", 8)


def CHAR(width: int) -> ColumnType:
    """Fixed-width character type; stored dictionary-encoded, sized ``width``."""
    return ColumnType(f"char({width})", width)
