"""Columnar tables over numpy arrays.

Tables hold one numpy array per column.  All values are stored as numeric
codes (``int64`` or ``float64``); string-valued attributes are dictionary
encoded, with the code -> string mapping kept in ``decoders`` so examples and
reports can render human-readable values.  Numeric encoding keeps every
operation the designer needs — predicate masks, lexicographic sorts, distinct
counts, joins on keys — as vectorized numpy, which is what makes running the
paper's experiments over hundreds of thousands of rows tractable in Python.
"""

from __future__ import annotations

import numpy as np

from repro.relational.schema import TableSchema


class Table:
    """A columnar table: a schema plus equal-length numpy arrays per column."""

    def __init__(
        self,
        schema: TableSchema,
        columns: dict[str, np.ndarray],
        decoders: dict[str, list[str]] | None = None,
    ) -> None:
        missing = set(schema.column_names) - set(columns)
        if missing:
            raise ValueError(f"missing arrays for columns {sorted(missing)}")
        lengths = {name: len(arr) for name, arr in columns.items()}
        if len(set(lengths.values())) > 1:
            raise ValueError(f"ragged column lengths: {lengths}")
        self.schema = schema
        self._columns = {
            name: np.asarray(columns[name]) for name in schema.column_names
        }
        self.decoders = dict(decoders or {})

    # ------------------------------------------------------------------ core

    @property
    def nrows(self) -> int:
        first = next(iter(self._columns.values()), None)
        return 0 if first is None else len(first)

    @property
    def column_names(self) -> list[str]:
        return self.schema.column_names

    def column(self, name: str) -> np.ndarray:
        try:
            return self._columns[name]
        except KeyError:
            raise KeyError(
                f"no column {name!r} in table {self.schema.name!r}"
            ) from None

    def has_column(self, name: str) -> bool:
        return name in self._columns

    def row_bytes(self, names: list[str] | tuple[str, ...] | None = None) -> int:
        return self.schema.byte_size(names)

    def total_bytes(self, names: list[str] | tuple[str, ...] | None = None) -> int:
        return self.nrows * self.row_bytes(names)

    # ------------------------------------------------------------ operations

    def project(self, names: list[str], new_name: str | None = None) -> "Table":
        """Keep only ``names`` (deduplicated, schema order preserved)."""
        schema = self.schema.project(list(dict.fromkeys(names)), new_name)
        cols = {n: self._columns[n] for n in schema.column_names}
        decoders = {n: d for n, d in self.decoders.items() if n in cols}
        return Table(schema, cols, decoders)

    def select(self, mask_or_index: np.ndarray, new_name: str | None = None) -> "Table":
        """Rows where a boolean mask is true, or rows at integer positions."""
        cols = {n: arr[mask_or_index] for n, arr in self._columns.items()}
        schema = self.schema
        if new_name is not None:
            schema = TableSchema(new_name, schema.columns, schema.primary_key)
        return Table(schema, cols, self.decoders)

    def sort_permutation(self, keys: tuple[str, ...] | list[str]) -> np.ndarray:
        """Stable permutation ordering rows lexicographically by ``keys``."""
        if not keys:
            return np.arange(self.nrows)
        # np.lexsort sorts by the *last* key first.
        arrays = [self._columns[k] for k in reversed(list(keys))]
        return np.lexsort(arrays)

    def order_by(self, keys: tuple[str, ...] | list[str]) -> "Table":
        return self.select(self.sort_permutation(keys))

    def distinct_count(self, names: tuple[str, ...] | list[str]) -> int:
        """Number of distinct (joint) values of ``names``."""
        if not names:
            return 1
        if self.nrows == 0:
            return 0
        return len(np.unique(self._key_codes(tuple(names))))

    def distinct_rows(self, names: tuple[str, ...] | list[str]) -> "Table":
        """One representative row per distinct joint value of ``names``."""
        codes = self._key_codes(tuple(names))
        _, idx = np.unique(codes, return_index=True)
        return self.project(list(names)).select(np.sort(idx))

    def sample(self, n: int, seed: int = 0) -> "Table":
        """Uniform random sample without replacement of min(n, nrows) rows."""
        rng = np.random.default_rng(seed)
        take = min(n, self.nrows)
        idx = rng.choice(self.nrows, size=take, replace=False)
        return self.select(np.sort(idx))

    def _key_codes(self, names: tuple[str, ...]) -> np.ndarray:
        """Collapse a joint key into a single int64 code array (row-wise)."""
        if len(names) == 1:
            arr = self._columns[names[0]]
            return arr if arr.dtype.kind in "iu" else arr.view(np.int64)
        # Mixed-radix packing: offset each column to be non-negative, then
        # combine. Falls back to structured-array uniqueness if it would
        # overflow 63 bits.
        arrays = [np.asarray(self._columns[n]) for n in names]
        if all(a.dtype.kind in "iu" for a in arrays):
            code = np.zeros(self.nrows, dtype=np.int64)
            overflow = False
            for a in arrays:
                lo = int(a.min()) if len(a) else 0
                hi = int(a.max()) if len(a) else 0
                span = hi - lo + 1
                if span <= 0 or code.max(initial=0) > (2**62) // max(span, 1):
                    overflow = True
                    break
                code = code * span + (a.astype(np.int64) - lo)
            if not overflow:
                return code
        rec = np.rec.fromarrays(arrays)
        _, inverse = np.unique(rec, return_inverse=True)
        return inverse.astype(np.int64)

    def decode(self, name: str, code: int) -> str | int:
        """Render a stored code as its original value when a decoder exists."""
        decoder = self.decoders.get(name)
        if decoder is None:
            return int(code)
        return decoder[int(code)]

    def __repr__(self) -> str:
        return f"Table({self.schema.name!r}, rows={self.nrows})"


def hash_join(
    left: Table,
    right: Table,
    left_key: str,
    right_key: str,
    new_name: str | None = None,
) -> Table:
    """Equi-join ``left`` with ``right`` (right key assumed unique — a
    dimension primary key).  Produces left's columns plus right's non-key
    columns, in left-row order.  Used to flatten fact tables through their
    foreign keys.
    """
    rkeys = right.column(right_key)
    order = np.argsort(rkeys, kind="stable")
    sorted_keys = rkeys[order]
    if len(sorted_keys) != len(np.unique(sorted_keys)):
        raise ValueError(f"join key {right_key!r} is not unique in {right.schema.name!r}")
    lkeys = left.column(left_key)
    pos = np.searchsorted(sorted_keys, lkeys)
    pos = np.clip(pos, 0, len(sorted_keys) - 1)
    if not np.array_equal(sorted_keys[pos], lkeys):
        raise ValueError(
            f"dangling foreign key: some {left.schema.name}.{left_key} values "
            f"missing from {right.schema.name}.{right_key}"
        )
    take = order[pos]

    columns = {n: left.column(n) for n in left.column_names}
    schema_cols = list(left.schema.columns)
    decoders = dict(left.decoders)
    for col in right.schema.columns:
        if col.name == right_key:
            continue
        if col.name in columns:
            raise ValueError(f"join would duplicate column {col.name!r}")
        columns[col.name] = right.column(col.name)[take]
        schema_cols.append(col)
        if col.name in right.decoders:
            decoders[col.name] = right.decoders[col.name]
    schema = TableSchema(
        new_name or f"{left.schema.name}_join_{right.schema.name}",
        schema_cols,
        left.schema.primary_key,
    )
    return Table(schema, columns, decoders)
