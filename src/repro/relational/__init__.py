"""Logical relational substrate: schemas, columnar tables, queries.

This package is the logical layer under the CORADD reproduction.  It models a
star schema (fact tables with foreign keys into dimension tables), columnar
tables backed by numpy arrays, and the OLAP query dialect the paper works
with: conjunctive predicates (equality, range, IN) over a single fact table
plus target attributes used by SELECT / GROUP BY / aggregates.
"""

from repro.relational.types import ColumnType, INT8, INT16, INT32, INT64, FLOAT64, CHAR
from repro.relational.schema import Column, TableSchema, ForeignKey, StarSchema
from repro.relational.table import Table
from repro.relational.query import (
    Predicate,
    EqPredicate,
    RangePredicate,
    InPredicate,
    Query,
    Workload,
)

__all__ = [
    "ColumnType",
    "INT8",
    "INT16",
    "INT32",
    "INT64",
    "FLOAT64",
    "CHAR",
    "Column",
    "TableSchema",
    "ForeignKey",
    "StarSchema",
    "Table",
    "Predicate",
    "EqPredicate",
    "RangePredicate",
    "InPredicate",
    "Query",
    "Workload",
]
