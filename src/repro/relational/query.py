"""Queries and workloads.

The paper's query dialect is the warehouse subset: a single fact table
(star-joined with its dimensions), a conjunction of predicates over flattened
attributes, and a set of *target attributes* the query must additionally read
(SELECT list, GROUP BY, aggregate inputs).  Predicates come in the three
kinds CORADD's clustered-index designer distinguishes (Section 4.2):
equality, range and IN — equality keeps a clustered scan contiguous, a range
spans one run, and IN fragments the access pattern.

Multi-fact queries are modelled as independent single-fact queries, exactly
as the paper does for APB-1 ("when a query accesses two fact tables, we split
them into two independent queries").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.table import Table

# Predicate-kind ranks used to order clustered index keys (Section 4.2):
# equality < range < IN.
KIND_EQ = 0
KIND_RANGE = 1
KIND_IN = 2

_KIND_NAMES = {KIND_EQ: "=", KIND_RANGE: "range", KIND_IN: "IN"}


class Predicate:
    """A predicate over one attribute.  Subclasses implement ``mask``."""

    attr: str
    kind: int

    def mask(self, values: np.ndarray) -> np.ndarray:
        raise NotImplementedError

    def selectivity(self, table: Table) -> float:
        """Exact fraction of ``table`` rows satisfying this predicate."""
        if table.nrows == 0:
            return 0.0
        return float(self.mask(table.column(self.attr)).mean())

    def value_range(self) -> tuple[float, float]:
        """(lo, hi) bounds of the values this predicate admits."""
        raise NotImplementedError


@dataclass(frozen=True)
class EqPredicate(Predicate):
    """``attr = value``."""

    attr: str
    value: float
    kind: int = field(default=KIND_EQ, init=False)

    def mask(self, values: np.ndarray) -> np.ndarray:
        return values == self.value

    def value_range(self) -> tuple[float, float]:
        return (self.value, self.value)

    def __str__(self) -> str:
        return f"{self.attr}={self.value:g}"


@dataclass(frozen=True)
class RangePredicate(Predicate):
    """``lo <= attr <= hi`` (both bounds inclusive; use ±inf for open ends)."""

    attr: str
    lo: float
    hi: float
    kind: int = field(default=KIND_RANGE, init=False)

    def __post_init__(self) -> None:
        if self.lo > self.hi:
            raise ValueError(f"empty range for {self.attr}: [{self.lo}, {self.hi}]")

    def mask(self, values: np.ndarray) -> np.ndarray:
        return (values >= self.lo) & (values <= self.hi)

    def value_range(self) -> tuple[float, float]:
        return (self.lo, self.hi)

    def __str__(self) -> str:
        return f"{self.lo:g}<={self.attr}<={self.hi:g}"


@dataclass(frozen=True)
class InPredicate(Predicate):
    """``attr IN values``."""

    attr: str
    values: tuple[float, ...]
    kind: int = field(default=KIND_IN, init=False)

    def __post_init__(self) -> None:
        if not self.values:
            raise ValueError(f"empty IN list for {self.attr}")
        object.__setattr__(self, "values", tuple(sorted(set(self.values))))

    def mask(self, values: np.ndarray) -> np.ndarray:
        return np.isin(values, np.asarray(self.values))

    def value_range(self) -> tuple[float, float]:
        return (min(self.values), max(self.values))

    def __str__(self) -> str:
        vals = ",".join(f"{v:g}" for v in self.values)
        return f"{self.attr} IN ({vals})"


@dataclass(frozen=True)
class Aggregate:
    """An aggregate output, e.g. SUM(price * discount) -> func, input attrs."""

    func: str
    attrs: tuple[str, ...]

    def __str__(self) -> str:
        return f"{self.func}({'*'.join(self.attrs)})"


class Query:
    """A single-fact-table warehouse query."""

    def __init__(
        self,
        name: str,
        fact_table: str,
        predicates: list[Predicate],
        aggregates: list[Aggregate] | None = None,
        group_by: tuple[str, ...] = (),
        order_by: tuple[str, ...] = (),
        frequency: float = 1.0,
    ) -> None:
        attrs = [p.attr for p in predicates]
        if len(set(attrs)) != len(attrs):
            raise ValueError(f"query {name!r} has multiple predicates on one attribute")
        if frequency <= 0:
            raise ValueError(f"query {name!r}: frequency must be positive")
        self.name = name
        self.fact_table = fact_table
        self.predicates = list(predicates)
        self.aggregates = list(aggregates or [])
        self.group_by = tuple(group_by)
        self.order_by = tuple(order_by)
        self.frequency = float(frequency)
        self._fingerprint: tuple | None = None

    # ------------------------------------------------------------ attributes

    def predicate_attrs(self) -> tuple[str, ...]:
        return tuple(p.attr for p in self.predicates)

    def predicate_on(self, attr: str) -> Predicate | None:
        for p in self.predicates:
            if p.attr == attr:
                return p
        return None

    def target_attrs(self) -> tuple[str, ...]:
        """Attributes the query reads beyond its predicates (SELECT list,
        GROUP BY, ORDER BY, aggregate inputs), deduplicated, stable order."""
        out: dict[str, None] = {}
        for agg in self.aggregates:
            for a in agg.attrs:
                out.setdefault(a)
        for a in self.group_by:
            out.setdefault(a)
        for a in self.order_by:
            out.setdefault(a)
        return tuple(out)

    def attributes(self) -> tuple[str, ...]:
        """Every attribute an MV must contain to answer this query."""
        out: dict[str, None] = {}
        for a in self.predicate_attrs():
            out.setdefault(a)
        for a in self.target_attrs():
            out.setdefault(a)
        return tuple(out)

    def fingerprint(self) -> tuple:
        """Hashable content identity of the query for plan memoization: the
        fact table, the predicates (value-hashable frozen dataclasses, in
        application order) and the attribute footprint.  Name and frequency
        are deliberately excluded — two queries with the same fingerprint
        execute identically on any physical database."""
        if self._fingerprint is None:
            self._fingerprint = (
                self.fact_table,
                tuple(self.predicates),
                self.attributes(),
            )
        return self._fingerprint

    # ------------------------------------------------------------- execution

    def mask(self, table: Table) -> np.ndarray:
        """Boolean mask of rows of ``table`` satisfying all predicates."""
        mask = np.ones(table.nrows, dtype=bool)
        for pred in self.predicates:
            mask &= pred.mask(table.column(pred.attr))
        return mask

    def selectivity(self, table: Table) -> float:
        if table.nrows == 0:
            return 0.0
        return float(self.mask(table).mean())

    def answer(self, table: Table) -> dict[str, float]:
        """Evaluate the aggregates over matching rows (used to verify that MV
        plans return the same answer as base-table plans)."""
        mask = self.mask(table)
        out: dict[str, float] = {"count": float(mask.sum())}
        for agg in self.aggregates:
            prod = np.ones(int(mask.sum()), dtype=np.float64)
            for a in agg.attrs:
                prod = prod * table.column(a)[mask].astype(np.float64)
            if agg.func == "sum":
                out[str(agg)] = float(prod.sum())
            elif agg.func == "avg":
                out[str(agg)] = float(prod.mean()) if len(prod) else 0.0
            elif agg.func == "count":
                out[str(agg)] = float(len(prod))
            elif agg.func == "min":
                out[str(agg)] = float(prod.min()) if len(prod) else 0.0
            elif agg.func == "max":
                out[str(agg)] = float(prod.max()) if len(prod) else 0.0
            else:
                raise ValueError(f"unknown aggregate {agg.func!r}")
        return out

    def with_frequency(self, frequency: float) -> "Query":
        """A copy of this query with a different frequency (queries are
        shared between workloads and designer state, so reweighting must
        never mutate in place)."""
        return Query(
            self.name,
            self.fact_table,
            list(self.predicates),
            aggregates=list(self.aggregates),
            group_by=self.group_by,
            order_by=self.order_by,
            frequency=frequency,
        )

    def __repr__(self) -> str:
        preds = " & ".join(str(p) for p in self.predicates)
        return f"Query({self.name!r}, {self.fact_table!r}, {preds})"


class Workload:
    """A named list of queries (with per-query frequencies)."""

    def __init__(self, name: str, queries: list[Query]) -> None:
        names = [q.name for q in queries]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate query names in workload {name!r}")
        self.name = name
        self.queries = list(queries)
        self._by_name = {q.name: q for q in queries}

    def __len__(self) -> int:
        return len(self.queries)

    def __iter__(self):
        return iter(self.queries)

    def query(self, name: str) -> Query:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no query {name!r} in workload {self.name!r}") from None

    def fact_tables(self) -> list[str]:
        """Fact tables referenced, in first-appearance order."""
        out: dict[str, None] = {}
        for q in self.queries:
            out.setdefault(q.fact_table)
        return list(out)

    def queries_for_fact(self, fact: str) -> list[Query]:
        return [q for q in self.queries if q.fact_table == fact]

    def attribute_universe(self, fact: str | None = None) -> tuple[str, ...]:
        """All attributes used by (a fact table's) queries, stable order."""
        out: dict[str, None] = {}
        for q in self.queries:
            if fact is not None and q.fact_table != fact:
                continue
            for a in q.attributes():
                out.setdefault(a)
        return tuple(out)

    def __repr__(self) -> str:
        return f"Workload({self.name!r}, {len(self.queries)} queries)"


@dataclass(frozen=True)
class WorkloadDelta:
    """The difference between two workloads, as a designer consumes it.

    ``added`` holds the new :class:`Query` objects, ``removed`` the names of
    queries that disappeared, ``reweighted`` maps surviving query names to
    their new frequencies, and ``changed`` names surviving queries whose
    *content* (predicates / attribute footprint) changed — those are treated
    as a remove + add by incremental designers.  ``workload`` is the
    authoritative post-delta workload (query order included), so applying a
    delta never has to reconstruct ordering.
    """

    workload: "Workload"
    added: tuple[Query, ...] = ()
    removed: tuple[str, ...] = ()
    reweighted: tuple[tuple[str, float], ...] = ()
    changed: tuple[str, ...] = ()

    @classmethod
    def between(cls, old: "Workload", new: "Workload") -> "WorkloadDelta":
        """Compute the delta turning ``old`` into ``new``."""
        old_names = {q.name for q in old}
        added = tuple(q for q in new if q.name not in old_names)
        new_by_name = {q.name: q for q in new}
        removed = tuple(q.name for q in old if q.name not in new_by_name)
        reweighted: list[tuple[str, float]] = []
        changed: list[str] = []
        for q in old:
            peer = new_by_name.get(q.name)
            if peer is None:
                continue
            if peer.fingerprint() != q.fingerprint():
                changed.append(q.name)
            elif peer.frequency != q.frequency:
                reweighted.append((q.name, peer.frequency))
        return cls(
            workload=new,
            added=added,
            removed=removed,
            reweighted=tuple(reweighted),
            changed=tuple(changed),
        )

    @property
    def is_empty(self) -> bool:
        return not (self.added or self.removed or self.reweighted or self.changed)

    def __repr__(self) -> str:
        return (
            f"WorkloadDelta(+{len(self.added)} -{len(self.removed)} "
            f"~{len(self.reweighted)} !{len(self.changed)} "
            f"-> {self.workload.name!r})"
        )
