"""Schemas: columns, tables, foreign keys and star schemas.

CORADD targets data-warehouse (star-schema) workloads: one or more *fact*
tables carry foreign keys into *dimension* tables, and queries predicate on
dimension attributes (``year``, ``c_city``) that are correlated with each
other through the dimension hierarchies.  :class:`StarSchema` records that
structure and can compute the *flattened* schema of a fact table — the fact
columns plus every reachable dimension column — which is the attribute
universe CORADD's pre-joined MVs draw from (Section 4 of the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.relational.types import ColumnType


@dataclass(frozen=True)
class Column:
    """A named, typed column."""

    name: str
    ctype: ColumnType

    @property
    def byte_size(self) -> int:
        return self.ctype.byte_size


class TableSchema:
    """An ordered set of uniquely named columns plus an optional primary key."""

    def __init__(
        self,
        name: str,
        columns: list[Column],
        primary_key: tuple[str, ...] = (),
    ) -> None:
        if not columns:
            raise ValueError(f"table {name!r} needs at least one column")
        names = [c.name for c in columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        for pk_col in primary_key:
            if pk_col not in names:
                raise ValueError(f"primary key column {pk_col!r} not in table {name!r}")
        self.name = name
        self.columns = list(columns)
        self.primary_key = tuple(primary_key)
        self._by_name = {c.name: c for c in columns}

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> Column:
        try:
            return self._by_name[name]
        except KeyError:
            raise KeyError(f"no column {name!r} in table {self.name!r}") from None

    def has_column(self, name: str) -> bool:
        return name in self._by_name

    def byte_size(self, names: tuple[str, ...] | list[str] | None = None) -> int:
        """Bytes one row occupies, restricted to ``names`` if given."""
        cols = self.columns if names is None else [self.column(n) for n in names]
        return sum(c.byte_size for c in cols)

    def project(self, names: list[str], new_name: str | None = None) -> "TableSchema":
        """A new schema with only ``names``, preserving this schema's order."""
        keep = set(names)
        missing = keep - set(self.column_names)
        if missing:
            raise KeyError(f"columns {sorted(missing)} not in table {self.name!r}")
        cols = [c for c in self.columns if c.name in keep]
        return TableSchema(new_name or self.name, cols)

    def __repr__(self) -> str:
        return f"TableSchema({self.name!r}, {len(self.columns)} cols)"


@dataclass(frozen=True)
class ForeignKey:
    """``fact_table.fk_column`` references ``dimension.dim_key``.

    ``fact_table`` may itself be a dimension: a *bridge* (snowflake) key,
    as in TPC-H's ``lineitem -> orders -> customer`` chain where ``orders``
    carries the fact's only path to the customer-side attributes.
    """

    fact_table: str
    fk_column: str
    dim_table: str
    dim_key: str


@dataclass
class StarSchema:
    """A star schema: fact tables, dimension tables and the FKs linking them."""

    name: str
    facts: dict[str, TableSchema] = field(default_factory=dict)
    dimensions: dict[str, TableSchema] = field(default_factory=dict)
    foreign_keys: list[ForeignKey] = field(default_factory=list)

    def add_fact(self, schema: TableSchema) -> None:
        self.facts[schema.name] = schema

    def add_dimension(self, schema: TableSchema) -> None:
        self.dimensions[schema.name] = schema

    def add_foreign_key(self, fk: ForeignKey) -> None:
        if fk.fact_table in self.facts:
            source = self.facts[fk.fact_table]
        elif fk.fact_table in self.dimensions:
            source = self.dimensions[fk.fact_table]
        else:
            raise KeyError(f"unknown fact table {fk.fact_table!r}")
        if fk.dim_table not in self.dimensions:
            raise KeyError(f"unknown dimension table {fk.dim_table!r}")
        source.column(fk.fk_column)
        self.dimensions[fk.dim_table].column(fk.dim_key)
        self.foreign_keys.append(fk)

    def fact_foreign_keys(self, fact: str) -> list[ForeignKey]:
        """Foreign keys leaving ``fact`` (which may be a bridge dimension)."""
        return [fk for fk in self.foreign_keys if fk.fact_table == fact]

    def flattened_schema(self, fact: str) -> TableSchema:
        """The pre-joined (universal) schema of ``fact``: its own columns plus
        all columns of every dimension it references.

        Column names must be globally unique across the join; workload
        generators enforce that with prefixes (``c_city`` vs ``s_city``),
        mirroring SSB.  Dimension join keys are omitted (the referencing FK
        column already carries the value).

        Dimensions reachable only through a *bridge* dimension (a
        dimension-to-dimension :class:`ForeignKey`, e.g. TPC-H's
        ``orders -> customer``) are included too: the walk is depth-first in
        FK insertion order, so a bridge's own columns are immediately
        followed by the columns it reaches.
        """
        if fact not in self.facts:
            raise KeyError(f"unknown fact table {fact!r}")
        cols = list(self.facts[fact].columns)
        seen = {c.name for c in cols}
        visited = {fact}

        def walk(table: str) -> None:
            for fk in self.fact_foreign_keys(table):
                if fk.dim_table in visited:
                    # A second join path (role-playing dimension or FK
                    # cycle) makes the flattened universe ambiguous; fail
                    # loudly like the duplicate-column check below.
                    raise ValueError(
                        f"flattening {fact!r}: dimension {fk.dim_table!r} is "
                        f"reachable through multiple foreign keys "
                        f"({table}.{fk.fk_column} revisits it)"
                    )
                visited.add(fk.dim_table)
                dim = self.dimensions[fk.dim_table]
                for col in dim.columns:
                    if col.name == fk.dim_key:
                        continue
                    if col.name in seen:
                        raise ValueError(
                            f"flattening {fact!r}: duplicate column {col.name!r} "
                            f"from dimension {fk.dim_table!r}"
                        )
                    cols.append(col)
                    seen.add(col.name)
                walk(fk.dim_table)

        walk(fact)
        return TableSchema(f"{fact}_flat", cols, self.facts[fact].primary_key)

    def __repr__(self) -> str:
        return (
            f"StarSchema({self.name!r}, facts={sorted(self.facts)}, "
            f"dims={sorted(self.dimensions)})"
        )
