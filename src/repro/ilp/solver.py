"""Solver facade: one call, several interchangeable backends.

Backends:

* ``"bnb"``       — our branch & bound with HiGHS LP relaxations;
* ``"bnb-simplex"`` — our branch & bound over our own simplex (fully
  from-scratch path; small/medium instances);
* ``"scipy"``     — scipy's HiGHS MILP directly;
* ``"auto"``      — scipy for large instances, bnb otherwise (identical
  optima; the tests assert agreement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, milp

from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.model import MILPModel

_INF = float("inf")


@dataclass
class Solution:
    """A solved model: status, objective (with constant), variable values."""

    status: str
    objective: float
    values: dict[str, float]
    solve_seconds: float = 0.0
    backend: str = ""

    def value(self, name: str) -> float:
        return self.values.get(name, 0.0)

    def chosen(self, prefix: str = "", threshold: float = 0.5) -> list[str]:
        """Names of (binary) variables set above ``threshold``."""
        return [
            name
            for name, val in self.values.items()
            if name.startswith(prefix) and val > threshold
        ]


def _solve_scipy(model: MILPModel) -> Solution:
    arrays = model.to_arrays()
    senses = np.array(arrays.senses)
    lo = np.where(senses == "<=", -np.inf, arrays.rhs)
    hi = np.where(senses == ">=", np.inf, arrays.rhs)
    constraints = (
        LinearConstraint(sparse.csr_matrix(arrays.A), lo, hi)
        if arrays.A.shape[0]
        else ()
    )
    from scipy.optimize import Bounds

    res = milp(
        c=arrays.c,
        constraints=constraints,
        integrality=arrays.integrality,
        bounds=Bounds(arrays.lb, arrays.ub),
    )
    if res.status == 2:
        return Solution("infeasible", _INF, {})
    if res.x is None:
        return Solution("failed", _INF, {})
    values = {name: float(v) for name, v in zip(arrays.names, res.x)}
    return Solution("optimal", float(res.fun) + arrays.obj_constant, values)


def solve(
    model: MILPModel,
    backend: str = "auto",
    time_limit_s: float | None = None,
    warm_start: dict[str, float] | None = None,
) -> Solution:
    """Solve ``model`` (minimization) with the chosen backend.

    ``warm_start`` is a feasible point (variable name -> value) used to seed
    the branch-and-bound incumbent; backends without warm-start support
    (scipy's HiGHS MILP) ignore it.  The optimum is unchanged either way.
    """
    start = time.monotonic()
    if backend == "auto":
        large = model.num_variables > 400 or model.num_constraints > 400
        backend = "scipy" if large else "bnb"
    if backend == "scipy":
        solution = _solve_scipy(model)
    elif backend in ("bnb", "bnb-simplex"):
        relaxation = "simplex" if backend == "bnb-simplex" else "highs"
        res = solve_branch_and_bound(
            model,
            relaxation=relaxation,
            time_limit_s=time_limit_s,
            incumbent=warm_start,
        )
        arrays_names = list(model.variables)
        values = (
            {name: float(v) for name, v in zip(arrays_names, res.x)}
            if len(res.x)
            else {}
        )
        solution = Solution(res.status, res.objective, values)
    else:
        raise ValueError(f"unknown backend {backend!r}")
    solution.solve_seconds = time.monotonic() - start
    solution.backend = backend
    return solution
