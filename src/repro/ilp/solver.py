"""Solver facade: one call, several interchangeable backends.

Backends:

* ``"bnb"``       — our branch & bound with HiGHS LP relaxations;
* ``"bnb-simplex"`` — our branch & bound over our own simplex (fully
  from-scratch path; small/medium instances);
* ``"scipy"``     — scipy's HiGHS MILP directly;
* ``"auto"``      — scipy for large instances, bnb otherwise (identical
  optima; the tests assert agreement).
"""

from __future__ import annotations

import time
from dataclasses import dataclass

import numpy as np
from scipy import sparse
from scipy.optimize import LinearConstraint, milp

from repro.engine import faults
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.model import MILPModel
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate, span

_INF = float("inf")


@dataclass
class Solution:
    """A solved model: status, objective (with constant), variable values."""

    status: str
    objective: float
    values: dict[str, float]
    solve_seconds: float = 0.0
    backend: str = ""

    def value(self, name: str) -> float:
        return self.values.get(name, 0.0)

    def chosen(self, prefix: str = "", threshold: float = 0.5) -> list[str]:
        """Names of (binary) variables set above ``threshold``."""
        return [
            name
            for name, val in self.values.items()
            if name.startswith(prefix) and val > threshold
        ]


def _solve_scipy(
    model: MILPModel,
    bounds_override: dict[str, tuple[float, float]] | None = None,
    relax_integrality: bool = False,
    time_limit_s: float | None = None,
) -> Solution:
    arrays = model.to_arrays()
    senses = np.array(arrays.senses)
    lo = np.where(senses == "<=", -np.inf, arrays.rhs)
    hi = np.where(senses == ">=", np.inf, arrays.rhs)
    constraints = (
        LinearConstraint(sparse.csr_matrix(arrays.A), lo, hi)
        if arrays.A.shape[0]
        else ()
    )
    from scipy.optimize import Bounds

    lb = arrays.lb.copy()
    ub = arrays.ub.copy()
    if bounds_override:
        index = {name: i for i, name in enumerate(arrays.names)}
        for name, (vlo, vhi) in bounds_override.items():
            i = index[name]
            lb[i] = max(lb[i], vlo)
            ub[i] = min(ub[i], vhi)
            if lb[i] > ub[i]:
                return Solution("infeasible", _INF, {})
    integrality = (
        np.zeros_like(arrays.integrality) if relax_integrality
        else arrays.integrality
    )
    res = milp(
        c=arrays.c,
        constraints=constraints,
        integrality=integrality,
        bounds=Bounds(lb, ub),
        options={"time_limit": time_limit_s} if time_limit_s is not None else None,
    )
    if res.status == 2:
        return Solution("infeasible", _INF, {})
    if res.x is None:
        return Solution(
            "time_limit" if res.status == 1 else "failed", _INF, {}
        )
    values = {name: float(v) for name, v in zip(arrays.names, res.x)}
    status = "time_limit" if res.status == 1 else "optimal"
    return Solution(status, float(res.fun) + arrays.obj_constant, values)


def fix_and_polish(
    model: MILPModel,
    incumbent: dict[str, float],
    free_vars: set[str] | None = None,
) -> Solution:
    """Polish a feasible point by re-optimizing only around it.

    Every integer variable *not* in ``free_vars`` is pinned to its incumbent
    value (rounded); the free integers — typically the variables a workload
    delta introduced — and all continuous variables re-optimize.  The result
    is feasible-by-construction with objective <= the incumbent's: an
    incumbent-quality bound at a tiny fraction of a full solve, which is
    how warm starts reach scipy's HiGHS MILP despite it having no incumbent
    API.
    """
    free = free_vars or set()
    override: dict[str, tuple[float, float]] = {}
    for name, var in model.variables.items():
        if var.integer and name not in free:
            value = float(round(incumbent.get(name, 0.0)))
            override[name] = (value, value)
    return _solve_scipy(model, bounds_override=override)


def _degraded_solution(
    model: MILPModel, warm_start: dict[str, float] | None
) -> Solution:
    """Deadline fallback: a feasible answer *now* instead of an optimal
    answer eventually.  Prefers the warm incumbent (already feasible, already
    good for incremental re-solves); otherwise repairs the LP relaxation by
    rounding its integers and re-optimizing everything else around them
    (fix-and-polish).  Only when both fail does it report
    ``"deadline-failed"`` — it never hangs."""
    obs_metrics.count("ilp.deadline_degraded")
    if warm_start is not None and model.is_feasible(warm_start):
        values = {name: float(v) for name, v in warm_start.items()}
        annotate(deadline_outcome="incumbent")
        return Solution(
            "deadline", model.evaluate(values), values,
            backend="degraded-incumbent",
        )
    relaxed = _solve_scipy(model, relax_integrality=True)
    if relaxed.status == "optimal":
        rounded = {
            name: (round(v) if model.variables[name].integer else v)
            for name, v in relaxed.values.items()
        }
        polished = fix_and_polish(model, rounded)
        if polished.status == "optimal" and model.is_feasible(polished.values):
            annotate(deadline_outcome="lp-round-polish")
            polished.status = "deadline"
            polished.backend = "degraded-greedy"
            return polished
    annotate(deadline_outcome="failed")
    return Solution("deadline-failed", _INF, {}, backend="degraded")


def _solve_scipy_warm(
    model: MILPModel,
    warm_start: dict[str, float],
    free_vars: set[str] | None,
    time_limit_s: float | None = None,
) -> Solution:
    """HiGHS solve with a fix-and-polish warm start.

    The polished solution gives an upper bound U; the LP relaxation gives a
    lower bound L.  When the gap closes (U <= L + tol) the polished point is
    *provably optimal* and the full MILP is skipped entirely — the common
    case for incremental re-solves, where the previous optimum plus a small
    polish already is the answer.  Otherwise the full (cold) solve runs; the
    returned optimum is therefore identical to a cold solve either way.
    """
    if not model.is_feasible(warm_start):
        annotate(warm_outcome="infeasible-start")
        return _solve_scipy(model, time_limit_s=time_limit_s)
    polished = fix_and_polish(model, warm_start, free_vars)
    if polished.status != "optimal":
        annotate(warm_outcome="polish-failed")
        return _solve_scipy(model, time_limit_s=time_limit_s)
    relaxed = _solve_scipy(model, relax_integrality=True)
    if relaxed.status == "optimal":
        annotate(incumbent=polished.objective, lp_bound=relaxed.objective)
        gap_tol = 1e-9 * (1.0 + abs(relaxed.objective))
        if polished.objective <= relaxed.objective + gap_tol:
            annotate(warm_outcome="polish-certified")
            obs_metrics.count("ilp.polish_certified")
            polished.backend = "scipy-polish"
            return polished
    annotate(warm_outcome="cold-fallback")
    full = _solve_scipy(model, time_limit_s=time_limit_s)
    return full


def solve(
    model: MILPModel,
    backend: str = "auto",
    time_limit_s: float | None = None,
    warm_start: dict[str, float] | None = None,
    free_vars: set[str] | None = None,
    deadline_s: float | None = None,
) -> Solution:
    """Solve ``model`` (minimization) with the chosen backend.

    ``warm_start`` is a feasible point (variable name -> value).  The
    branch-and-bound backends seed their incumbent from it; the scipy/HiGHS
    backend — which has no incumbent API — runs a *fix-and-polish* pass
    around it instead (integer variables outside ``free_vars`` pinned, the
    rest polished) and accepts the polished point outright when the LP
    relaxation certifies it optimal, falling back to a cold solve otherwise.
    The returned optimum is unchanged either way.

    ``deadline_s`` makes the call *soft real-time*: the backend gets at most
    that long, and instead of surfacing a bare time-limit status the facade
    degrades — best incumbent found in time, else the warm start, else an
    LP-rounding repair (see :func:`_degraded_solution`) — returning status
    ``"deadline"`` so a continuous-tuning caller can keep serving with a
    good-enough design rather than block on optimality.  ``time_limit_s``
    alone keeps the raw backend semantics (bnb returns ``"time_limit"``).
    """
    start = time.monotonic()
    if backend == "auto":
        large = model.num_variables > 400 or model.num_constraints > 400
        backend = "scipy" if large else "bnb"
    limit = time_limit_s
    if deadline_s is not None:
        limit = deadline_s if limit is None else min(limit, deadline_s)
    with span(
        "ilp.solve",
        backend=backend,
        variables=model.num_variables,
        constraints=model.num_constraints,
        warm=warm_start is not None,
    ):
        spec = faults.fire("ilp.solve")
        forced_timeout = spec is not None and spec.kind == "timeout"
        if forced_timeout and deadline_s is not None:
            # Injected solver timeout: the backend "ran out of time"
            # without burning any — straight to the degraded path.
            solution = _degraded_solution(model, warm_start)
        elif backend == "scipy":
            solution = (
                _solve_scipy_warm(model, warm_start, free_vars, limit)
                if warm_start is not None
                else _solve_scipy(model, time_limit_s=limit)
            )
        elif backend in ("bnb", "bnb-simplex"):
            relaxation = "simplex" if backend == "bnb-simplex" else "highs"
            res = solve_branch_and_bound(
                model,
                relaxation=relaxation,
                time_limit_s=limit,
                incumbent=warm_start,
            )
            annotate(nodes=res.nodes_explored)
            obs_metrics.count("ilp.bnb_nodes", res.nodes_explored)
            arrays_names = list(model.variables)
            values = (
                {name: float(v) for name, v in zip(arrays_names, res.x)}
                if len(res.x)
                else {}
            )
            solution = Solution(res.status, res.objective, values)
        else:
            raise ValueError(f"unknown backend {backend!r}")
        if (
            deadline_s is not None
            and solution.status not in ("optimal", "infeasible")
        ):
            if solution.status == "time_limit" and solution.values:
                # The backend beat the deadline to *some* incumbent: take it.
                obs_metrics.count("ilp.deadline_degraded")
                annotate(deadline_outcome="backend-incumbent")
                solution.status = "deadline"
                solution.backend = solution.backend or f"{backend}-incumbent"
            elif solution.status not in ("deadline", "deadline-failed"):
                solution = _degraded_solution(model, warm_start)
        solution.solve_seconds = time.monotonic() - start
        if not solution.backend:
            solution.backend = backend
        annotate(status=solution.status, objective=solution.objective)
        obs_metrics.count("ilp.solves")
        obs_metrics.count(f"ilp.solves.{solution.backend}")
        if warm_start is not None:
            obs_metrics.count("ilp.warm_starts")
        obs_metrics.observe("ilp.solve_seconds", solution.solve_seconds)
        obs_metrics.observe("ilp.model_variables", model.num_variables)
    return solution
