"""Best-first branch & bound over binary/integer variables.

The classic scheme: solve the LP relaxation at each node, prune by bound
against the incumbent, branch on the most fractional integer variable.
Nodes live on a min-heap keyed by their relaxation bound, so the search
expands the most promising region first and the gap closes monotonically.

The relaxation engine is pluggable: our own simplex (pure from-scratch
path) or scipy's HiGHS ``linprog`` (same answers, much faster on the larger
design ILPs).  CORADD's ILPs are friendly to B&B: only the ``y_m`` MV-choice
variables are integer, and the penalty variables ``x_{q,r}`` settle to 0/1 on
their own once the ``y`` are fixed (Section 5.1's "no relaxation needed"
observation).
"""

from __future__ import annotations

import heapq
import itertools
import time
from dataclasses import dataclass

import numpy as np
from scipy.optimize import linprog

from repro.ilp.model import MILPModel, ModelArrays
from repro.ilp.simplex import solve_simplex

_INF = float("inf")


@dataclass
class BnBResult:
    status: str  # "optimal" | "infeasible" | "node_limit" | "time_limit"
    objective: float
    x: np.ndarray
    nodes_explored: int = 0


def _solve_relaxation_highs(
    arrays: ModelArrays, bounds_override: dict[int, tuple[float, float]]
) -> tuple[str, float, np.ndarray]:
    lb = arrays.lb.copy()
    ub = arrays.ub.copy()
    for idx, (lo, hi) in bounds_override.items():
        lb[idx] = max(lb[idx], lo)
        ub[idx] = min(ub[idx], hi)
    if np.any(lb > ub + 1e-12):
        return "infeasible", _INF, np.empty(0)
    senses = np.array(arrays.senses)
    A = arrays.A
    le = senses == "<="
    ge = senses == ">="
    eq = senses == "=="
    A_ub_parts = []
    b_ub_parts = []
    if le.any():
        A_ub_parts.append(A[le])
        b_ub_parts.append(arrays.rhs[le])
    if ge.any():
        A_ub_parts.append(-A[ge])
        b_ub_parts.append(-arrays.rhs[ge])
    from scipy import sparse

    A_ub = sparse.vstack(A_ub_parts) if A_ub_parts else None
    b_ub = np.concatenate(b_ub_parts) if b_ub_parts else None
    A_eq = A[eq] if eq.any() else None
    b_eq = arrays.rhs[eq] if eq.any() else None
    res = linprog(
        arrays.c,
        A_ub=A_ub,
        b_ub=b_ub,
        A_eq=A_eq,
        b_eq=b_eq,
        bounds=list(zip(lb, ub)),
        method="highs",
    )
    if res.status == 2:
        return "infeasible", _INF, np.empty(0)
    if res.status != 0:
        return "failed", _INF, np.empty(0)
    return "optimal", float(res.fun) + arrays.obj_constant, res.x


def _solve_relaxation_simplex(
    arrays: ModelArrays, bounds_override: dict[int, tuple[float, float]]
) -> tuple[str, float, np.ndarray]:
    res = solve_simplex(arrays, extra_bounds=bounds_override)
    return res.status, res.objective, res.x


def solve_branch_and_bound(
    model: MILPModel,
    relaxation: str = "highs",
    max_nodes: int = 200_000,
    time_limit_s: float | None = None,
    tol: float = 1e-6,
    incumbent: dict[str, float] | None = None,
) -> BnBResult:
    """Solve ``model`` to optimality (minimization).

    ``incumbent`` warm-starts the search with a known feasible point
    (variable name -> value): its objective becomes the initial bound, so
    every node at least as bad is pruned immediately.  An infeasible
    incumbent is silently ignored.  Warm starts never change the optimum —
    only how much of the tree must be explored to prove it; when the warm
    point *is* optimal, ties break toward it.
    """
    arrays = model.to_arrays()
    int_idx = np.nonzero(arrays.integrality == 1)[0]
    relax = (
        _solve_relaxation_simplex if relaxation == "simplex" else _solve_relaxation_highs
    )
    deadline = time.monotonic() + time_limit_s if time_limit_s else None

    best_obj = _INF
    best_x = np.empty(0)
    if incumbent is not None and model.is_feasible(incumbent, tol=tol):
        best_obj = model.evaluate(incumbent)
        best_x = np.array(
            [incumbent.get(name, 0.0) for name in arrays.names], dtype=np.float64
        )
    counter = itertools.count()  # heap tiebreaker
    nodes_explored = 0

    status, bound, x = relax(arrays, {})
    if status == "infeasible":
        return BnBResult("infeasible", _INF, np.empty(0), 1)
    if status != "optimal":
        return BnBResult(status, _INF, np.empty(0), 1)

    heap: list[tuple[float, int, dict[int, tuple[float, float]], np.ndarray]] = []
    heapq.heappush(heap, (bound, next(counter), {}, x))

    while heap:
        nodes_explored += 1
        if nodes_explored > max_nodes:
            return BnBResult("node_limit", best_obj, best_x, nodes_explored)
        if deadline is not None and time.monotonic() > deadline:
            return BnBResult("time_limit", best_obj, best_x, nodes_explored)
        bound, _, overrides, x = heapq.heappop(heap)
        if bound >= best_obj - tol:
            # Best-first: every remaining node is at least this bad.
            break
        # Most fractional integer variable.
        frac = np.abs(x[int_idx] - np.round(x[int_idx])) if len(int_idx) else np.empty(0)
        if len(frac) == 0 or frac.max() <= tol:
            # Integral solution.
            if bound < best_obj:
                best_obj = bound
                best_x = x
            continue
        branch_var = int(int_idx[int(np.argmax(frac))])
        value = x[branch_var]
        for lo, hi in (
            (arrays.lb[branch_var], float(np.floor(value))),
            (float(np.ceil(value)), arrays.ub[branch_var]),
        ):
            child = dict(overrides)
            prev = child.get(branch_var, (arrays.lb[branch_var], arrays.ub[branch_var]))
            child[branch_var] = (max(prev[0], lo), min(prev[1], hi))
            if child[branch_var][0] > child[branch_var][1] + tol:
                continue
            status, child_bound, child_x = relax(arrays, child)
            if status != "optimal":
                continue
            if child_bound < best_obj - tol:
                heapq.heappush(heap, (child_bound, next(counter), child, child_x))

    if best_obj == _INF:
        return BnBResult("infeasible", _INF, np.empty(0), nodes_explored)
    return BnBResult("optimal", best_obj, best_x, nodes_explored)
