"""MILP substrate: model builder and solvers.

CORADD solves its candidate-selection problem with "a commercial LP solver"
(Section 5.1).  This package provides the equivalent from scratch: a model
builder (:mod:`repro.ilp.model`), a dense two-phase primal simplex for LP
relaxations (:mod:`repro.ilp.simplex`), a best-first branch & bound for the
integer variables (:mod:`repro.ilp.branch_and_bound`), and a facade
(:mod:`repro.ilp.solver`) that can also delegate to scipy's HiGHS ``milp``
for large instances (the two backends are cross-checked in the tests).
"""

from repro.ilp.model import MILPModel, Constraint, Variable
from repro.ilp.simplex import SimplexResult, solve_simplex
from repro.ilp.branch_and_bound import solve_branch_and_bound
from repro.ilp.solver import Solution, solve

__all__ = [
    "MILPModel",
    "Constraint",
    "Variable",
    "SimplexResult",
    "solve_simplex",
    "solve_branch_and_bound",
    "Solution",
    "solve",
]
