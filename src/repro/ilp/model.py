"""MILP model builder.

A thin, explicit representation: named variables with bounds / integrality /
objective coefficients, and linear constraints stored sparsely as
coefficient dicts.  Everything downstream (our simplex, our branch & bound,
scipy's HiGHS) consumes the arrays produced by :meth:`MILPModel.to_arrays`.
Minimization is assumed throughout, matching the paper's objective.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import sparse

SENSES = ("<=", ">=", "==")


@dataclass
class Variable:
    """A decision variable."""

    name: str
    lb: float = 0.0
    ub: float = float("inf")
    integer: bool = False
    obj: float = 0.0
    index: int = -1

    def __post_init__(self) -> None:
        if self.lb > self.ub:
            raise ValueError(f"variable {self.name!r}: lb > ub")


@dataclass
class Constraint:
    """``sum(coeffs[v] * v) sense rhs``."""

    coeffs: dict[str, float]
    sense: str
    rhs: float
    name: str = ""

    def __post_init__(self) -> None:
        if self.sense not in SENSES:
            raise ValueError(f"bad sense {self.sense!r}; want one of {SENSES}")
        if not self.coeffs:
            raise ValueError(f"constraint {self.name!r} has no coefficients")


@dataclass
class ModelArrays:
    """Dense/sparse arrays for solver backends (minimization)."""

    c: np.ndarray
    A: sparse.csr_matrix  # all constraints, row-aligned with senses/rhs
    senses: list[str]
    rhs: np.ndarray
    lb: np.ndarray
    ub: np.ndarray
    integrality: np.ndarray
    names: list[str]
    obj_constant: float


class MILPModel:
    """A mixed-integer linear program under construction."""

    def __init__(self, name: str = "milp") -> None:
        self.name = name
        self.variables: dict[str, Variable] = {}
        self.constraints: list[Constraint] = []
        self.obj_constant = 0.0

    # ------------------------------------------------------------- building

    def add_var(
        self,
        name: str,
        lb: float = 0.0,
        ub: float = float("inf"),
        integer: bool = False,
        obj: float = 0.0,
    ) -> str:
        if name in self.variables:
            raise ValueError(f"duplicate variable {name!r}")
        var = Variable(name, lb, ub, integer, obj, index=len(self.variables))
        self.variables[name] = var
        return name

    def add_binary(self, name: str, obj: float = 0.0) -> str:
        return self.add_var(name, lb=0.0, ub=1.0, integer=True, obj=obj)

    def add_constraint(
        self,
        coeffs: dict[str, float],
        sense: str,
        rhs: float,
        name: str = "",
    ) -> None:
        unknown = [v for v in coeffs if v not in self.variables]
        if unknown:
            raise KeyError(f"constraint references unknown variables {unknown}")
        self.constraints.append(Constraint(dict(coeffs), sense, float(rhs), name))

    def add_objective_constant(self, value: float) -> None:
        self.obj_constant += float(value)

    # ------------------------------------------------------------ statistics

    @property
    def num_variables(self) -> int:
        return len(self.variables)

    @property
    def num_constraints(self) -> int:
        return len(self.constraints)

    @property
    def num_integer_variables(self) -> int:
        return sum(1 for v in self.variables.values() if v.integer)

    # ------------------------------------------------------------ conversion

    def to_arrays(self) -> ModelArrays:
        names = list(self.variables)
        n = len(names)
        c = np.array([self.variables[v].obj for v in names], dtype=np.float64)
        lb = np.array([self.variables[v].lb for v in names], dtype=np.float64)
        ub = np.array([self.variables[v].ub for v in names], dtype=np.float64)
        integrality = np.array(
            [1 if self.variables[v].integer else 0 for v in names], dtype=np.int8
        )
        rows: list[int] = []
        cols: list[int] = []
        data: list[float] = []
        senses: list[str] = []
        rhs: list[float] = []
        index = {v: i for i, v in enumerate(names)}
        for i, con in enumerate(self.constraints):
            for var, coef in con.coeffs.items():
                rows.append(i)
                cols.append(index[var])
                data.append(float(coef))
            senses.append(con.sense)
            rhs.append(con.rhs)
        A = sparse.csr_matrix(
            (data, (rows, cols)), shape=(len(self.constraints), n), dtype=np.float64
        )
        return ModelArrays(
            c=c,
            A=A,
            senses=senses,
            rhs=np.array(rhs, dtype=np.float64),
            lb=lb,
            ub=ub,
            integrality=integrality,
            names=names,
            obj_constant=self.obj_constant,
        )

    def evaluate(self, values: dict[str, float]) -> float:
        """Objective value (including constant) at a point."""
        total = self.obj_constant
        for name, var in self.variables.items():
            total += var.obj * values.get(name, 0.0)
        return total

    def is_feasible(self, values: dict[str, float], tol: float = 1e-6) -> bool:
        """Check bounds, integrality and constraints at a point."""
        for name, var in self.variables.items():
            x = values.get(name, 0.0)
            if x < var.lb - tol or x > var.ub + tol:
                return False
            if var.integer and abs(x - round(x)) > tol:
                return False
        for con in self.constraints:
            lhs = sum(coef * values.get(v, 0.0) for v, coef in con.coeffs.items())
            if con.sense == "<=" and lhs > con.rhs + tol:
                return False
            if con.sense == ">=" and lhs < con.rhs - tol:
                return False
            if con.sense == "==" and abs(lhs - con.rhs) > tol:
                return False
        return True

    def __repr__(self) -> str:
        return (
            f"MILPModel({self.name!r}, vars={self.num_variables} "
            f"({self.num_integer_variables} int), cons={self.num_constraints})"
        )
