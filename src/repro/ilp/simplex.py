"""Dense two-phase primal simplex, from scratch.

Solves ``min c'x  s.t.  A x {<=,>=,==} b,  lb <= x <= ub`` by conversion to
standard form (shift lower bounds to zero, upper bounds become rows, slack /
surplus / artificial columns as needed) followed by the textbook two-phase
tableau method with Bland's rule for anti-cycling.

This is the LP engine for the from-scratch branch & bound on small and
medium instances; the test suite cross-validates it against scipy's HiGHS on
randomized LPs.  Dense tableaus put a practical ceiling around a few
thousand rows/columns — the solver facade (:mod:`repro.ilp.solver`) routes
bigger instances to HiGHS.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ilp.model import ModelArrays

_INF = float("inf")


@dataclass
class SimplexResult:
    """Outcome of an LP solve."""

    status: str  # "optimal" | "infeasible" | "unbounded" | "iteration_limit"
    objective: float
    x: np.ndarray  # in the original variable space (empty unless optimal)


def _to_standard_form(
    arrays: ModelArrays,
    extra_bounds: dict[int, tuple[float, float]] | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, list[str]] | None:
    """Rewrite as min c'y over A y {<=,>=,==} b with y >= 0.

    Returns (c, A, b, shift, senses) where original x = y + shift, or None
    when the bounds alone are infeasible.  Finite upper bounds become
    explicit ``<=`` rows.  Variables with infinite upper bound stay single
    (our models never need free-variable splitting: every designer variable
    is bounded below).
    """
    lb = arrays.lb.copy()
    ub = arrays.ub.copy()
    if extra_bounds:
        for idx, (lo, hi) in extra_bounds.items():
            lb[idx] = max(lb[idx], lo)
            ub[idx] = min(ub[idx], hi)
    if np.any(lb == -_INF):
        raise ValueError("simplex backend requires finite lower bounds")
    if np.any(lb > ub + 1e-12):
        return None

    n = len(lb)
    A_dense = arrays.A.toarray() if n else np.zeros((0, 0))
    b = arrays.rhs - (A_dense @ lb if n else 0.0)
    rows = [A_dense]
    rhs = [b]
    senses = list(arrays.senses)
    # Upper-bound rows: x' <= ub - lb.
    ub_shifted = ub - lb
    for j in range(n):
        if ub_shifted[j] != _INF:
            row = np.zeros(n)
            row[j] = 1.0
            rows.append(row.reshape(1, -1))
            rhs.append(np.array([ub_shifted[j]]))
            senses.append("<=")
    A_all = np.vstack(rows) if rows else np.zeros((0, n))
    b_all = np.concatenate(rhs) if rhs else np.zeros(0)
    return arrays.c.copy(), A_all, b_all, lb, senses


def solve_simplex(
    arrays: ModelArrays,
    extra_bounds: dict[int, tuple[float, float]] | None = None,
    max_iterations: int = 50000,
    tol: float = 1e-9,
) -> SimplexResult:
    """Solve the LP relaxation of ``arrays`` (integrality ignored)."""
    packed = _to_standard_form(arrays, extra_bounds)
    if packed is None:
        return SimplexResult("infeasible", _INF, np.empty(0))
    c, A, b, shift, senses = packed
    n_orig = len(shift)

    m = A.shape[0]
    # Normalize rows to b >= 0.
    A = A.copy()
    b = b.copy()
    flip = b < 0
    A[flip] *= -1.0
    b[flip] *= -1.0
    senses = [
        {"<=": ">=", ">=": "<=", "==": "=="}[s] if f else s
        for s, f in zip(senses, flip)
    ]

    # Column layout: [x (n_orig) | slacks/surplus | artificials].
    slack_cols: list[np.ndarray] = []
    artificial_rows: list[int] = []
    for i, sense in enumerate(senses):
        col = np.zeros(m)
        if sense == "<=":
            col[i] = 1.0
            slack_cols.append(col)
        elif sense == ">=":
            col[i] = -1.0
            slack_cols.append(col)
            artificial_rows.append(i)
        else:
            artificial_rows.append(i)
    n_slack = len(slack_cols)
    n_art = len(artificial_rows)
    T = np.zeros((m, n_orig + n_slack + n_art))
    T[:, :n_orig] = A
    for j, col in enumerate(slack_cols):
        T[:, n_orig + j] = col
    basis = np.full(m, -1, dtype=np.int64)
    # Slack columns of <= rows start in the basis.
    slack_j = 0
    for i, sense in enumerate(senses):
        if sense == "<=":
            basis[i] = n_orig + slack_j
        if sense in ("<=", ">="):
            slack_j += 1
    for j, i in enumerate(artificial_rows):
        T[i, n_orig + n_slack + j] = 1.0
        basis[i] = n_orig + n_slack + j

    total_cols = T.shape[1]
    tableau = np.hstack([T, b.reshape(-1, 1)])

    def pivot(row: int, col: int) -> None:
        tableau[row] /= tableau[row, col]
        for r in range(m):
            if r != row and abs(tableau[r, col]) > tol:
                tableau[r] -= tableau[r, col] * tableau[row]
        basis[row] = col

    def run_phase(cost: np.ndarray, allowed: int, iterations: int) -> str:
        """Optimize ``cost`` over columns [0, allowed); Bland's rule."""
        for _ in range(iterations):
            # Reduced costs: c_j - c_B' B^-1 A_j, read off the tableau.
            cb = cost[basis]
            reduced = cost[:allowed] - cb @ tableau[:, :allowed]
            entering = -1
            for j in range(allowed):
                if reduced[j] < -tol:
                    entering = j
                    break
            if entering == -1:
                return "optimal"
            ratios = np.full(m, _INF)
            col = tableau[:, entering]
            positive = col > tol
            ratios[positive] = tableau[positive, -1] / col[positive]
            if not np.isfinite(ratios).any():
                return "unbounded"
            best = np.min(ratios)
            # Bland: among ties pick the row whose basic var has least index.
            candidates = np.nonzero(np.isclose(ratios, best, atol=tol))[0]
            leaving = int(min(candidates, key=lambda r: basis[r]))
            pivot(leaving, entering)
        return "iteration_limit"

    if n_art:
        phase1_cost = np.zeros(total_cols)
        phase1_cost[n_orig + n_slack:] = 1.0
        status = run_phase(phase1_cost, total_cols, max_iterations)
        if status != "optimal":
            return SimplexResult(status, _INF, np.empty(0))
        infeas = float(phase1_cost[basis] @ tableau[:, -1])
        if infeas > 1e-7:
            return SimplexResult("infeasible", _INF, np.empty(0))
        # Drive any remaining artificial out of the basis when possible.
        for i in range(m):
            if basis[i] >= n_orig + n_slack:
                row = tableau[i, : n_orig + n_slack]
                nz = np.nonzero(np.abs(row) > tol)[0]
                if len(nz):
                    pivot(i, int(nz[0]))

    phase2_cost = np.zeros(total_cols)
    phase2_cost[:n_orig] = c
    status = run_phase(phase2_cost, n_orig + n_slack, max_iterations)
    if status != "optimal":
        return SimplexResult(status, _INF, np.empty(0))

    y = np.zeros(total_cols)
    for i in range(m):
        y[basis[i]] = tableau[i, -1]
    x = y[:n_orig] + shift
    objective = float(c @ y[:n_orig]) + float(arrays.c @ shift) + arrays.obj_constant
    return SimplexResult("optimal", objective, x)
