"""Online cost-model drift detection — the paper's Figure 10 signal, streamed.

Figure 10's point is that a correlation-oblivious cost model can be wrong by
~25x while *reporting the same estimate for every clustering*: the model's
error, not its estimate, is the signal that a design has gone stale.  The
offline experiment (:mod:`repro.experiments.fig10_cost_model_error`)
computes that error per clustering after the fact; a continuous tuning
service needs it **online**, per query, as measurements stream in.

:class:`CostModelMonitor` is that generalization.  Each observation pairs a
query's *modeled* seconds (the designer's expectation, carried in every
:class:`~repro.design.designer.Design`) with its *measured* seconds (the
executor's simulated-disk accounting).  Per query the monitor maintains an
EWMA-smoothed error ratio ``measured / modeled``; once a query's smoothed
error crosses ``threshold`` (with at least ``min_samples`` observations) it
is flagged as *drifted* — the trigger signal the ROADMAP direction-1 daemon
consumes to decide when redesign is worth pricing.

Two properties make it testable against the offline experiment:

* the EWMA is seeded from the first observation (not zero), so replaying
  each (modeled, measured) pair exactly once reproduces the offline
  per-query error ratios bit-for-bit (:meth:`replay`);
* smoothing is per-query and order-respecting within a query only, so an
  interleaved multi-query stream converges to the same flags as scoring
  each query's samples in isolation.

The monitor is installed ambiently (:func:`use_monitor`), and
:func:`repro.experiments.harness.evaluate_design` feeds it automatically —
every evaluated design contributes its modeled-vs-measured pairs without
any experiment-side plumbing.
"""

from __future__ import annotations

from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Iterable, Iterator

#: Modeled costs at or below this floor are clamped before dividing, so a
#: zero-cost model prediction yields a large-but-finite error ratio.
COST_FLOOR = 1e-12


@dataclass(frozen=True)
class DriftSignal:
    """The monitor's verdict after one observation of one query."""

    query: str
    modeled: float
    measured: float
    ratio: float  # this sample's measured/modeled
    error: float  # EWMA-smoothed ratio (the drift signal)
    drifted: bool
    samples: int


class CostModelMonitor:
    """Streaming per-query modeled-vs-measured drift detector.

    ``alpha`` is the EWMA weight of the newest sample (1.0 = no smoothing);
    ``threshold`` is the smoothed error ratio at which a query counts as
    drifted; ``min_samples`` guards against flagging on a single noisy
    measurement when smoothing is wanted.
    """

    def __init__(
        self,
        alpha: float = 0.3,
        threshold: float = 2.0,
        min_samples: int = 1,
    ) -> None:
        if not 0.0 < alpha <= 1.0:
            raise ValueError("alpha must be in (0, 1]")
        if threshold <= 0:
            raise ValueError("threshold must be positive")
        self.alpha = alpha
        self.threshold = threshold
        self.min_samples = max(1, int(min_samples))
        self._error: dict[str, float] = {}
        self._samples: dict[str, int] = {}
        self.observations = 0

    # ------------------------------------------------------------ streaming

    def observe(self, query: str, modeled: float, measured: float) -> DriftSignal:
        """Fold one (modeled, measured) pair into the query's smoothed
        error and return the resulting signal."""
        ratio = measured / max(float(modeled), COST_FLOOR)
        previous = self._error.get(query)
        error = (
            ratio
            if previous is None
            else self.alpha * ratio + (1.0 - self.alpha) * previous
        )
        self._error[query] = error
        samples = self._samples.get(query, 0) + 1
        self._samples[query] = samples
        self.observations += 1
        return DriftSignal(
            query=query,
            modeled=modeled,
            measured=measured,
            ratio=ratio,
            error=error,
            drifted=self._drifted(error, samples),
            samples=samples,
        )

    def observe_design(self, evaluated) -> list[DriftSignal]:
        """Feed every query of an evaluated design (duck-typed
        :class:`~repro.experiments.harness.EvaluatedDesign`: parallel dicts
        of modeled and measured seconds)."""
        return [
            self.observe(name, evaluated.model_seconds[name], measured)
            for name, measured in evaluated.real_seconds.items()
        ]

    # -------------------------------------------------------------- reading

    def _drifted(self, error: float, samples: int) -> bool:
        return samples >= self.min_samples and error >= self.threshold

    def error(self, query: str) -> float | None:
        """The query's current smoothed error ratio, or None if unseen."""
        return self._error.get(query)

    def errors(self) -> dict[str, float]:
        return dict(self._error)

    def drifted_queries(self) -> list[str]:
        """Queries currently past the drift threshold, sorted by name."""
        return sorted(
            query
            for query, error in self._error.items()
            if self._drifted(error, self._samples[query])
        )

    def to_dict(self) -> dict:
        return {
            "alpha": self.alpha,
            "threshold": self.threshold,
            "min_samples": self.min_samples,
            "observations": self.observations,
            "queries": {
                query: {
                    "error": error,
                    "samples": self._samples[query],
                    "drifted": self._drifted(error, self._samples[query]),
                }
                for query, error in sorted(self._error.items())
            },
        }

    # --------------------------------------------------------------- replay

    @classmethod
    def replay(
        cls,
        samples: Iterable[tuple[str, float, float]],
        **kwargs,
    ) -> "CostModelMonitor":
        """Run a monitor over recorded ``(query, modeled, measured)``
        samples — the offline form.  Replaying each of Figure 10's rows
        once reproduces the experiment's per-query error ratios exactly
        (the EWMA seeds from the first sample)."""
        monitor = cls(**kwargs)
        for query, modeled, measured in samples:
            monitor.observe(query, modeled, measured)
        return monitor


# ----------------------------------------------------------- ambient monitor

_MONITOR: ContextVar[CostModelMonitor | None] = ContextVar(
    "repro_drift_monitor", default=None
)


def get_monitor() -> CostModelMonitor | None:
    """The ambient drift monitor, or None when drift tracking is off."""
    return _MONITOR.get()


@contextmanager
def use_monitor(
    monitor: CostModelMonitor | None = None,
) -> Iterator[CostModelMonitor]:
    """Install ``monitor`` (a fresh one when None) ambiently for the
    duration of the ``with`` block."""
    active = monitor if monitor is not None else CostModelMonitor()
    token = _MONITOR.set(active)
    try:
        yield active
    finally:
        _MONITOR.reset(token)
