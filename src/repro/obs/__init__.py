"""Observability: span tracing, metrics, and cost-model drift detection.

Public surface::

    from repro.obs import observed, span, annotate, count

    with observed("fig11-sweep") as obs:     # tracer + metrics + monitor
        result = run_fig11(...)
    print(obs.render())                       # span tree with timings
    obs.write("TRACE_fig11.json")             # machine-readable artifact

Instrumented code uses the ambient helpers directly — :func:`span`,
:func:`annotate`, :func:`repro.obs.metrics.count` — which no-op in a single
contextvar read when nothing is installed.  The three layers can also be
used independently (:func:`use_tracer` / :func:`use_metrics` /
:func:`use_monitor`); :func:`observed` is the bundle the experiments and
benchmarks reach for.

Everything here is *observational*: with or without an active observation,
plans, simulated costs and result masks are bit-identical (enforced by
``tests/test_obs.py``), and with nothing installed the instrumentation adds
no measurable overhead.
"""

from __future__ import annotations

import json
from contextlib import ExitStack, contextmanager
from pathlib import Path
from typing import Iterator

from repro.obs.drift import (
    CostModelMonitor,
    DriftSignal,
    get_monitor,
    use_monitor,
)
from repro.obs.metrics import (
    Histogram,
    MetricsRegistry,
    count,
    get_metrics,
    merge_payloads,
    observe,
    set_gauge,
    use_metrics,
)
from repro.obs.trace import (
    NULL_SPAN,
    Span,
    Tracer,
    annotate,
    get_tracer,
    span,
    use_tracer,
)

REPORT_VERSION = 1


class Observation:
    """One observed run: a tracer, a metrics registry and a drift monitor,
    reportable as a single JSON artifact."""

    def __init__(
        self, name: str = "run", monitor: CostModelMonitor | None = None
    ) -> None:
        self.name = name
        self.tracer = Tracer()
        self.metrics = MetricsRegistry()
        self.monitor = monitor if monitor is not None else CostModelMonitor()

    def report(self) -> dict:
        return {
            "name": self.name,
            "version": REPORT_VERSION,
            "trace": self.tracer.to_dict(),
            "metrics": self.metrics.export(),
            "drift": self.monitor.to_dict(),
        }

    def write(self, path: str | Path) -> Path:
        """Serialize the report as JSON next to whatever artifact the run
        produced; returns the path written."""
        path = Path(path)
        path.write_text(json.dumps(self.report(), indent=2) + "\n")
        return path

    def render(self) -> str:
        return self.tracer.render()


@contextmanager
def observed(
    name: str = "run", monitor: CostModelMonitor | None = None
) -> Iterator[Observation]:
    """Run the block under a fresh :class:`Observation`: its tracer,
    metrics registry and drift monitor are all installed ambiently."""
    obs = Observation(name, monitor=monitor)
    with ExitStack() as stack:
        stack.enter_context(use_tracer(obs.tracer))
        stack.enter_context(use_metrics(obs.metrics))
        stack.enter_context(use_monitor(obs.monitor))
        yield obs


__all__ = [
    "CostModelMonitor",
    "DriftSignal",
    "Histogram",
    "MetricsRegistry",
    "NULL_SPAN",
    "Observation",
    "Span",
    "Tracer",
    "annotate",
    "count",
    "get_metrics",
    "get_monitor",
    "get_tracer",
    "merge_payloads",
    "observe",
    "observed",
    "set_gauge",
    "span",
    "use_metrics",
    "use_monitor",
    "use_tracer",
]
