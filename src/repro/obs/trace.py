"""Hierarchical span tracing: contextvar-nested, near-zero cost when off.

A :class:`Tracer` records a tree of :class:`Span`\\ s — one per ``with
span("name"):`` block — each carrying ``perf_counter`` start/end times and a
free-form attribute dict.  Tracers are installed ambiently (the same
:class:`contextvars.ContextVar` idiom as :func:`repro.engine.use_session`),
so instrumented code never threads a tracer argument through call chains:

* :func:`span` — the module-level entry point every instrumented layer
  calls.  With no tracer active it returns a shared no-op singleton
  (:data:`NULL_SPAN`): the disabled path is one ``ContextVar.get`` plus an
  identity check, which is what makes instrumentation of the designer, the
  executor and the refresh path observationally invisible and essentially
  free when nobody is watching;
* :func:`annotate` — attach attributes to the innermost active span from
  code that did not open it (e.g. the warm-start internals of
  :mod:`repro.ilp.solver` annotating the enclosing ``ilp.solve`` span);
* :meth:`Tracer.render` / :meth:`Tracer.to_dict` — a text tree for eyeballs
  and a JSON-ready dict for artifacts (the ``TRACE_*.json`` reports the
  benchmarks emit).

On exit every span also publishes its duration into the ambient metrics
registry (histogram ``span.<name>``, see :mod:`repro.obs.metrics`) — span
timings and metric timings are one mechanism, not two stopwatches.

Tracing is *observational*: spans never feed back into plan choices, costs
or masks, so results with tracing on are bit-identical to results with it
off (enforced by ``tests/test_obs.py``).
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from contextvars import ContextVar
from time import perf_counter
from typing import Iterator

TRACE_VERSION = 1


def jsonable(value):
    """Best-effort conversion of an attribute value to a JSON-serializable
    one (numpy scalars unwrap, tuples/sets become lists, everything else
    falls back to ``str``)."""
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    if isinstance(value, (list, tuple, set, frozenset)):
        return [jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): jsonable(v) for k, v in value.items()}
    item = getattr(value, "item", None)  # numpy scalars
    if callable(item):
        try:
            return jsonable(item())
        except (TypeError, ValueError):
            pass
    return str(value)


class Span:
    """One timed block of work: name, attributes, children, seconds."""

    __slots__ = ("name", "attrs", "children", "start", "end", "_tracer")

    def __init__(self, name: str, attrs: dict | None, tracer: "Tracer") -> None:
        self.name = name
        self.attrs: dict = dict(attrs) if attrs else {}
        self.children: list["Span"] = []
        self.start = 0.0
        self.end = 0.0
        self._tracer = tracer

    @property
    def seconds(self) -> float:
        return max(0.0, self.end - self.start)

    def annotate(self, **attrs) -> None:
        self.attrs.update(attrs)

    def __enter__(self) -> "Span":
        tracer = self._tracer
        parent = tracer._stack[-1] if tracer._stack else None
        (parent.children if parent is not None else tracer.spans).append(self)
        tracer._stack.append(self)
        self.start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.end = perf_counter()
        self._tracer._stack.pop()
        # One timing mechanism: every span's duration is also a metric.
        from repro.obs.metrics import get_metrics

        registry = get_metrics()
        if registry is not None:
            registry.observe(f"span.{self.name}", self.seconds)
        return False

    def to_dict(self) -> dict:
        out: dict = {"name": self.name, "seconds": self.seconds}
        if self.attrs:
            out["attrs"] = {k: jsonable(v) for k, v in self.attrs.items()}
        if self.children:
            out["children"] = [child.to_dict() for child in self.children]
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds:.6f}s, {len(self.children)} children)"


class _NullSpan:
    """The shared disabled-path span: entering yields None, annotating and
    exiting do nothing.  A singleton, so ``span(...)`` allocates nothing
    when tracing is off."""

    __slots__ = ()

    def __enter__(self) -> None:
        return None

    def __exit__(self, exc_type, exc, tb) -> bool:
        return False

    def annotate(self, **attrs) -> None:
        pass


NULL_SPAN = _NullSpan()


class Tracer:
    """An in-memory collector of span trees (no I/O, no threads)."""

    def __init__(self) -> None:
        self.spans: list[Span] = []
        self._stack: list[Span] = []

    def span(self, name: str, **attrs) -> Span:
        """A new span, to be used as a context manager.  Unlike the
        module-level :func:`span`, this always records — callers holding a
        tracer explicitly (e.g. :mod:`repro.experiments.evolving`, which
        *reports* span durations) use it so their timings exist regardless
        of the ambient state."""
        return Span(name, attrs, self)

    @property
    def current(self) -> Span | None:
        return self._stack[-1] if self._stack else None

    def total_seconds(self) -> float:
        return sum(span.seconds for span in self.spans)

    def to_dict(self) -> dict:
        return {
            "version": TRACE_VERSION,
            "spans": [span.to_dict() for span in self.spans],
        }

    def to_json(self, indent: int | None = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent)

    def render(self) -> str:
        """The span forest as an indented text tree with millisecond
        timings and inline attributes."""
        lines: list[str] = []

        def walk(span: Span, depth: int) -> None:
            label = "  " * depth + span.name
            attrs = " ".join(
                f"{k}={jsonable(v)}" for k, v in sorted(span.attrs.items())
            )
            line = f"{label:<44} {span.seconds * 1e3:12.3f} ms"
            if attrs:
                line += f"  [{attrs}]"
            lines.append(line)
            for child in span.children:
                walk(child, depth + 1)

        for root in self.spans:
            walk(root, 0)
        return "\n".join(lines)


# ------------------------------------------------------------- ambient tracer

_TRACER: ContextVar[Tracer | None] = ContextVar("repro_tracer", default=None)


def get_tracer() -> Tracer | None:
    """The ambient tracer, or None when tracing is disabled."""
    return _TRACER.get()


@contextmanager
def use_tracer(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Install ``tracer`` (a fresh one when None) as the ambient tracer for
    the duration of the ``with`` block."""
    active = tracer if tracer is not None else Tracer()
    token = _TRACER.set(active)
    try:
        yield active
    finally:
        _TRACER.reset(token)


def span(name: str, **attrs):
    """A context manager timing the enclosed block under the ambient
    tracer.  Disabled path (no tracer): returns the shared
    :data:`NULL_SPAN` — one contextvar read, zero allocation."""
    tracer = _TRACER.get()
    if tracer is None:
        return NULL_SPAN
    return tracer.span(name, **attrs)


def annotate(**attrs) -> None:
    """Attach attributes to the innermost active span (no-op when tracing
    is disabled or no span is open)."""
    tracer = _TRACER.get()
    if tracer is not None and tracer._stack:
        tracer._stack[-1].attrs.update(attrs)
