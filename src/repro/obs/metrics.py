"""Metrics: counters, gauges and histograms with a *commutative* merge.

A :class:`MetricsRegistry` is a plain in-memory store of named metrics,
installed ambiently (:func:`use_metrics`) the same way evaluation sessions
and tracers are.  Instrumented layers call the module-level helpers
(:func:`count`, :func:`observe`, :func:`set_gauge`), which no-op in one
contextvar read when no registry is active — so the disabled path costs
nothing measurable and the instrumentation cannot perturb results.

The merge contract is what lets per-worker metrics ride the existing
:mod:`repro.engine.snapshot` merge-back from forked
:class:`~repro.engine.parallel.ParallelSweep` workers: a registry exports to
a plain picklable payload (:meth:`MetricsRegistry.export`), and payloads
merge commutatively —

* **counters** add (order-free for the integral hit/byte/row counts every
  instrumented layer emits);
* **gauges** combine by ``max`` (a gauge here reports a high-water mark;
  last-writer-wins would depend on merge order);
* **histograms** merge component-wise: counts and totals add, min/min and
  max/max, per-bucket counts add (buckets are powers of two of the observed
  value, so two workers bucket identically by construction).

Merging worker payloads in any order therefore yields the same registry —
the same argument, and the same tests, as the session-cache snapshot merge.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import Iterator

_INF = float("inf")

#: Bucket index for non-positive observations (durations and byte counts
#: are >= 0; an exact zero gets its own bucket below every power of two).
_ZERO_BUCKET = -1075


def _bucket(value: float) -> int:
    """``floor(log2(value))`` via frexp — the histogram bucket index."""
    if value <= 0.0:
        return _ZERO_BUCKET
    return math.frexp(value)[1] - 1


@dataclass
class Histogram:
    """A mergeable summary of observations: count/total/min/max plus
    power-of-two bucket counts (enough shape for latency reporting without
    storing samples)."""

    count: int = 0
    total: float = 0.0
    min: float = _INF
    max: float = -_INF
    buckets: dict[int, int] = field(default_factory=dict)

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        b = _bucket(value)
        self.buckets[b] = self.buckets.get(b, 0) + 1

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "Histogram") -> None:
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)
        for b, n in other.buckets.items():
            self.buckets[b] = self.buckets.get(b, 0) + n

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "mean": self.mean,
            "min": None if self.count == 0 else self.min,
            "max": None if self.count == 0 else self.max,
            "buckets": {str(b): n for b, n in sorted(self.buckets.items())},
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Histogram":
        hist = cls(
            count=int(data["count"]),
            total=float(data["total"]),
            min=_INF if data.get("min") is None else float(data["min"]),
            max=-_INF if data.get("max") is None else float(data["max"]),
        )
        hist.buckets = {int(b): int(n) for b, n in data.get("buckets", {}).items()}
        return hist


class MetricsRegistry:
    """Named counters, gauges and histograms; exportable and mergeable."""

    def __init__(self) -> None:
        self.counters: dict[str, float] = {}
        self.gauges: dict[str, float] = {}
        self.histograms: dict[str, Histogram] = {}

    # ----------------------------------------------------------- recording

    def inc(self, name: str, n: float = 1) -> None:
        self.counters[name] = self.counters.get(name, 0) + n

    def set_gauge(self, name: str, value: float) -> None:
        self.gauges[name] = float(value)

    def observe(self, name: str, value: float) -> None:
        hist = self.histograms.get(name)
        if hist is None:
            hist = self.histograms[name] = Histogram()
        hist.observe(value)

    # ------------------------------------------------------------- reading

    def counter(self, name: str) -> float:
        return self.counters.get(name, 0)

    def histogram(self, name: str) -> Histogram | None:
        return self.histograms.get(name)

    def __len__(self) -> int:
        return len(self.counters) + len(self.gauges) + len(self.histograms)

    # ----------------------------------------------------- export and merge

    def export(self) -> dict:
        """A plain picklable/JSON-able payload of every metric — the form
        that crosses process boundaries and lands in trace reports."""
        return {
            "counters": dict(self.counters),
            "gauges": dict(self.gauges),
            "histograms": {
                name: hist.to_dict() for name, hist in self.histograms.items()
            },
        }

    to_dict = export

    def merge(self, payload: "dict | MetricsRegistry") -> None:
        """Fold another registry (or an exported payload) into this one,
        using the commutative per-kind rules documented above."""
        if isinstance(payload, MetricsRegistry):
            payload = payload.export()
        for name, value in payload.get("counters", {}).items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, value in payload.get("gauges", {}).items():
            prev = self.gauges.get(name)
            self.gauges[name] = value if prev is None else max(prev, value)
        for name, data in payload.get("histograms", {}).items():
            incoming = Histogram.from_dict(data)
            hist = self.histograms.get(name)
            if hist is None:
                self.histograms[name] = incoming
            else:
                hist.merge(incoming)


def merge_payloads(*payloads: dict) -> dict:
    """Pure commutative merge of exported payloads (what
    :func:`repro.engine.snapshot.merge_snapshots` applies to the worker
    metrics riding each snapshot)."""
    merged = MetricsRegistry()
    for payload in payloads:
        if payload:
            merged.merge(payload)
    return merged.export() if len(merged) else {}


# ----------------------------------------------------------- ambient registry

_METRICS: ContextVar[MetricsRegistry | None] = ContextVar(
    "repro_metrics", default=None
)


def get_metrics() -> MetricsRegistry | None:
    """The ambient registry, or None when metrics are disabled."""
    return _METRICS.get()


@contextmanager
def use_metrics(registry: MetricsRegistry | None = None) -> Iterator[MetricsRegistry]:
    """Install ``registry`` (a fresh one when None) ambiently for the
    duration of the ``with`` block."""
    active = registry if registry is not None else MetricsRegistry()
    token = _METRICS.set(active)
    try:
        yield active
    finally:
        _METRICS.reset(token)


def count(name: str, n: float = 1) -> None:
    """Increment counter ``name`` on the ambient registry (no-op when none
    is active — one contextvar read)."""
    registry = _METRICS.get()
    if registry is not None:
        registry.inc(name, n)


def observe(name: str, value: float) -> None:
    """Record ``value`` into histogram ``name`` on the ambient registry."""
    registry = _METRICS.get()
    if registry is not None:
        registry.observe(name, value)


def set_gauge(name: str, value: float) -> None:
    """Set gauge ``name`` on the ambient registry (merge combines by max)."""
    registry = _METRICS.get()
    if registry is not None:
        registry.set_gauge(name, value)
