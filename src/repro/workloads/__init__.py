"""Benchmark workloads: SSB and APB-1, generated with real correlations.

The paper evaluates on the Star Schema Benchmark (SSB, a TPC-H derivative)
at scale 4 with its 13 queries plus a 4x augmented 52-query variant, and on
APB-1 Release II (2% density, 10 channels) with 31 template queries.  These
generators reproduce the *correlation structure* of both benchmarks — date
hierarchies, geography hierarchies, product hierarchies — at configurable
row counts, because every effect the paper reports flows from those
correlations rather than from absolute data volume.
"""

from repro.workloads.base import BenchmarkInstance
from repro.workloads.ssb import generate_ssb, ssb_queries, augment_workload
from repro.workloads.apb import generate_apb

__all__ = [
    "BenchmarkInstance",
    "generate_ssb",
    "ssb_queries",
    "augment_workload",
    "generate_apb",
]
