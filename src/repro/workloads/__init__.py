"""Benchmark workloads: SSB, APB-1, TPC-H and synth, with real correlations.

The paper evaluates on the Star Schema Benchmark (SSB, a TPC-H derivative)
at scale 4 with its 13 queries plus a 4x augmented 52-query variant, and on
APB-1 Release II (2% density, 10 channels) with 31 template queries.  Beyond
the paper, this package adds TPC-H itself — the normalized schema whose
``orders`` bridge stresses correlation-aware design hardest — and the
People running example as a miniature benchmark.  All generators reproduce
the *correlation structure* of their benchmark — date hierarchies,
geography hierarchies, product hierarchies — at configurable row counts,
because every effect the paper reports flows from those correlations rather
than from absolute data volume.

Benchmarks are constructed by name through :mod:`repro.workloads.registry`
with uniform ``(scale, seed, skew)`` knobs.
"""

from repro.workloads.base import BenchmarkInstance
from repro.workloads.compress import (
    CompressedWorkload,
    DedupResult,
    QueryLog,
    StreamingCompressor,
    compress_workload,
    dedup_log,
    generate_log,
)
from repro.workloads.drift import WorkloadPhase, WorkloadStream
from repro.workloads.registry import available, get, make, register
from repro.workloads.ssb import augment_workload, generate_ssb, ssb_queries
from repro.workloads.apb import generate_apb
from repro.workloads.synth import generate_synth, synth_queries
from repro.workloads.tpch import (
    augment_workload as augment_tpch_workload,
    generate_tpch,
    tpch_cardinalities,
    tpch_queries,
)

__all__ = [
    "BenchmarkInstance",
    "CompressedWorkload",
    "DedupResult",
    "QueryLog",
    "StreamingCompressor",
    "compress_workload",
    "dedup_log",
    "generate_log",
    "WorkloadPhase",
    "WorkloadStream",
    "available",
    "get",
    "make",
    "register",
    "generate_ssb",
    "ssb_queries",
    "augment_workload",
    "generate_apb",
    "generate_synth",
    "synth_queries",
    "generate_tpch",
    "tpch_queries",
    "tpch_cardinalities",
    "augment_tpch_workload",
]
