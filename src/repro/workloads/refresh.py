"""Refresh streams: deterministic insert/delete batches for a benchmark.

TPC-H's throughput test interleaves queries with *refresh functions*: RF1
inserts a slab of new orders/lineitems, RF2 deletes an old slab of the same
size — a rolling window over the fact table.  SSB has no official refresh
spec, so its stream is the natural analogue: a lineorder insert stream (plus
an optional rolling delete).

A :class:`RefreshStream` produces :class:`RefreshBatch` es over the *flat*
(pre-joined) fact universe, which is what our physical objects materialize:

* **insert batches (RF1)** sample source rows from the most recent band of
  the fact (rows whose ``recency_attr`` sits above a quantile), so every
  derived attribute — date hierarchies, statuses — stays internally
  consistent *and* recent, then overwrite the monotone key attributes with
  fresh increasing ids.  Arrival order therefore correlates with both the
  primary key and the date hierarchy, exactly the correlation
  maintenance-aware design exploits: PK- or date-clustered objects take the
  batch as an append run, anything else takes scattered writes;
* **delete batches (RF2)** drop the oldest slab: a range predicate on the
  monotone key's original quantiles.  Provenance-based propagation
  (:meth:`~repro.storage.layout.HeapFile.delete_source`) carries the
  decision into projections that do not store the key.

The whole stream is a pure function of ``(flat table, knobs, seed)``;
batches are generated once and cached, so two iterations (or two arms of an
experiment) see bit-identical mutations.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.query import Predicate, RangePredicate
from repro.relational.table import Table


@dataclass(frozen=True)
class RefreshBatch:
    """One refresh function execution."""

    index: int
    fact: str
    kind: str  # "insert" | "delete"
    columns: dict[str, np.ndarray] | None = None
    delete_predicates: tuple[Predicate, ...] = ()

    @property
    def nrows(self) -> int:
        if self.columns is None:
            return 0
        first = next(iter(self.columns.values()), None)
        return 0 if first is None else len(first)

    def __repr__(self) -> str:
        detail = (
            f"{self.nrows} rows" if self.kind == "insert"
            else " & ".join(str(p) for p in self.delete_predicates)
        )
        return f"RefreshBatch({self.index}, {self.fact}, {self.kind}: {detail})"


class RefreshStream:
    """A deterministic sequence of RF1/RF2-style batches over one fact.

    ``rounds`` refresh rounds are generated; each round holds one insert
    batch of ``insert_fraction`` x the base row count (sampled from the
    recent band above ``recency_quantile`` of ``recency_attr``), followed —
    when ``delete_fraction > 0`` — by one delete batch dropping the next
    ``delete_fraction`` slab of the oldest ``key_attrs[0]`` values.
    """

    def __init__(
        self,
        flat: Table,
        fact: str,
        key_attrs: tuple[str, ...],
        recency_attr: str,
        rounds: int = 4,
        insert_fraction: float = 0.02,
        delete_fraction: float = 0.01,
        recency_quantile: float = 0.9,
        seed: int = 0,
    ) -> None:
        if rounds < 1:
            raise ValueError(f"rounds must be >= 1, got {rounds}")
        if not 0.0 < insert_fraction <= 1.0:
            raise ValueError(
                f"insert_fraction must be in (0, 1], got {insert_fraction}"
            )
        if not 0.0 <= delete_fraction <= 0.5:
            raise ValueError(
                f"delete_fraction must be in [0, 0.5], got {delete_fraction}"
            )
        if not key_attrs:
            raise ValueError("key_attrs must name at least one attribute")
        flat.column(recency_attr)  # raises on unknown attributes
        for attr in key_attrs:
            flat.column(attr)
        self.flat = flat
        self.fact = fact
        self.key_attrs = tuple(key_attrs)
        self.recency_attr = recency_attr
        self.rounds = rounds
        self.insert_fraction = insert_fraction
        self.delete_fraction = delete_fraction
        self.recency_quantile = recency_quantile
        self.seed = seed
        self._batches: list[RefreshBatch] | None = None

    @property
    def rows_per_insert(self) -> int:
        return max(1, int(self.insert_fraction * self.flat.nrows))

    def __len__(self) -> int:
        return len(self.batches())

    def __iter__(self):
        return iter(self.batches())

    def total_insert_rows(self) -> int:
        return self.rounds * self.rows_per_insert

    def batches(self) -> list[RefreshBatch]:
        if self._batches is None:
            self._batches = self._generate()
        return self._batches

    # ------------------------------------------------------------ generation

    def _generate(self) -> list[RefreshBatch]:
        rng = np.random.default_rng(self.seed)
        lead = self.key_attrs[0]
        lead_vals = self.flat.column(lead)
        recency = self.flat.column(self.recency_attr)
        # Recent band: rows whose recency attribute is in the top quantile —
        # sampling inside it keeps derived hierarchies consistent and makes
        # the batch genuinely "new" data.
        cutoff = np.quantile(recency, self.recency_quantile)
        eligible = np.nonzero(recency >= cutoff)[0]
        if len(eligible) == 0:
            eligible = np.arange(self.flat.nrows)
        next_key = int(lead_vals.max(initial=0)) + 1
        # RF2 thresholds: cumulative quantiles of the *original* lead key.
        sorted_lead = np.sort(lead_vals)

        out: list[RefreshBatch] = []
        index = 0
        for round_idx in range(self.rounds):
            nrows = self.rows_per_insert
            take = eligible[rng.integers(0, len(eligible), size=nrows)]
            # Arrival order within the batch tracks recency, like real loads.
            take = take[np.argsort(recency[take], kind="stable")]
            columns = {
                name: self.flat.column(name)[take].copy()
                for name in self.flat.column_names
            }
            new_keys = np.arange(next_key, next_key + nrows, dtype=np.int64)
            next_key += nrows
            columns[lead] = new_keys.astype(columns[lead].dtype, copy=False)
            for extra in self.key_attrs[1:]:
                columns[extra] = np.ones(nrows, dtype=columns[extra].dtype)
            out.append(
                RefreshBatch(index, self.fact, "insert", columns=columns)
            )
            index += 1
            if self.delete_fraction > 0:
                frac = min(1.0, self.delete_fraction * (round_idx + 1))
                pos = min(len(sorted_lead) - 1, int(frac * len(sorted_lead)))
                threshold = float(sorted_lead[pos])
                out.append(
                    RefreshBatch(
                        index,
                        self.fact,
                        "delete",
                        delete_predicates=(
                            RangePredicate(lead, float("-inf"), threshold),
                        ),
                    )
                )
                index += 1
        return out

    def __repr__(self) -> str:
        return (
            f"RefreshStream({self.fact!r}, rounds={self.rounds}, "
            f"insert={self.insert_fraction}, delete={self.delete_fraction}, "
            f"seed={self.seed})"
        )
