"""Workload augmentation: deterministic predicate/target variants.

The paper evaluates both benchmarks on "4x larger" workloads whose extra
queries are "based on the original ... but with varied target attributes,
predicates, GROUP-BY, ORDER-BY and aggregate values".  The machinery is
benchmark-independent: shift each predicate's constants by the variant slot,
wrapping inside the attribute's closed value domain so no variant walks out
of range and becomes trivially empty.  Each benchmark supplies an
:class:`AugmentSpec` naming its domains, its pool of extra GROUP-BY
attributes, and its year/month encoding.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)


@dataclass(frozen=True)
class AugmentSpec:
    """How one benchmark's predicates may vary.

    ``domains`` maps attribute -> (lo, count) closed value domains; shifted
    constants wrap modulo the domain.  Attributes absent from ``domains``
    (e.g. raw date keys) shift by the slot without wrapping.
    ``yearmonth_attrs`` are YYYYMM-encoded attributes that need carry-aware
    shifting inside the ``start_year``..``start_year + nyears`` window.
    """

    domains: dict[str, tuple[int, int]]
    group_by_pool: tuple[str, ...]
    start_year: int
    nyears: int
    yearmonth_attrs: frozenset[str] = field(default_factory=frozenset)


def _wrap(spec: AugmentSpec, attr: str, value: float, slot: int) -> float:
    domain = spec.domains.get(attr)
    if domain is None:
        return float(int(value) + slot)
    lo, count = domain
    return float(lo + (int(value) - lo + slot) % count)


def _month_index(spec: AugmentSpec, yearmonth: int) -> int:
    """YYYYMM -> linear month offset from the benchmark's first month."""
    return (yearmonth // 100 - spec.start_year) * 12 + yearmonth % 100 - 1


def _yearmonth(spec: AugmentSpec, index: int) -> int:
    return (spec.start_year + index // 12) * 100 + index % 12 + 1


def shift_predicate(pred, slot: int, spec: AugmentSpec):
    """A deterministic variation of one predicate (different constants,
    same attribute and kind), kept inside the attribute's domain."""
    if isinstance(pred, EqPredicate):
        if pred.attr in spec.yearmonth_attrs:
            year = int(pred.value) // 100
            month = int(pred.value) % 100
            month = (month - 1 + slot) % 12 + 1
            year = spec.start_year + (year - spec.start_year + slot) % spec.nyears
            return EqPredicate(pred.attr, year * 100 + month)
        return EqPredicate(pred.attr, _wrap(spec, pred.attr, pred.value, slot))
    if isinstance(pred, RangePredicate):
        if pred.attr in spec.yearmonth_attrs:
            # Shift carry-aware in linear month space so windows never
            # straddle nonexistent months (199313...) or leave the calendar.
            lo_idx = _month_index(spec, int(pred.lo))
            width = _month_index(spec, int(pred.hi)) - lo_idx
            span = spec.nyears * 12 - width
            lo_idx = (lo_idx + slot) % max(1, span)
            return RangePredicate(
                pred.attr,
                _yearmonth(spec, lo_idx),
                _yearmonth(spec, lo_idx + width),
            )
        width = pred.hi - pred.lo
        lo = _wrap(spec, pred.attr, pred.lo, slot)
        domain = spec.domains.get(pred.attr)
        if domain is not None:
            # Keep the whole window inside the domain.
            lo = min(lo, domain[0] + domain[1] - 1 - width)
            lo = max(lo, domain[0])
        return RangePredicate(pred.attr, lo, lo + width)
    if isinstance(pred, InPredicate):
        return InPredicate(
            pred.attr, tuple(_wrap(spec, pred.attr, v, slot) for v in pred.values)
        )
    raise TypeError(type(pred).__name__)


def augment_workload(
    base: Workload,
    spec: AugmentSpec,
    factor: int = 4,
    seed: int = 7,
    name: str | None = None,
) -> Workload:
    """The paper's augmented workload: ``factor`` x more queries with varied
    predicates, GROUP-BYs and aggregates, derived deterministically from
    ``seed``.  Slot 0 is the original workload verbatim."""
    rng = np.random.default_rng(seed)
    queries = list(base.queries)
    pool = spec.group_by_pool
    for slot in range(1, factor):
        for q in base.queries:
            preds = [shift_predicate(p, slot, spec) for p in q.predicates]
            group_by = q.group_by
            if group_by and slot % 2 == 0:
                extra = pool[int(rng.integers(0, len(pool)))]
                if extra not in group_by:
                    group_by = group_by + (extra,)
            aggregates = list(q.aggregates)
            if slot == 3 and aggregates:
                aggregates = [Aggregate("avg", aggregates[0].attrs)]
            queries.append(
                Query(
                    f"{q.name}v{slot}",
                    q.fact_table,
                    preds,
                    aggregates,
                    group_by=group_by,
                    order_by=q.order_by,
                    frequency=q.frequency,
                )
            )
    return Workload(name or f"{base.name}_x{factor}", queries)
