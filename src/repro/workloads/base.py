"""The bundle a benchmark hands to designers and experiments."""

from __future__ import annotations

from typing import TYPE_CHECKING

from dataclasses import dataclass, field

from repro.relational.query import Workload
from repro.relational.schema import StarSchema
from repro.relational.table import Table

if TYPE_CHECKING:
    from repro.storage.sharded import ShardSpec
    from repro.workloads.compress import QueryLog
    from repro.workloads.drift import WorkloadStream
    from repro.workloads.refresh import RefreshStream


@dataclass
class BenchmarkInstance:
    """A generated benchmark: schema, data, workload, and designer inputs.

    ``flat_tables`` hold one pre-joined (fact + reachable dimensions)
    relation per fact table — the attribute universe CORADD's MVs draw from.
    ``primary_keys`` and ``fk_attrs`` are per-fact designer inputs: the
    base clustering, and the foreign keys eligible for fact re-clustering.
    ``stream`` is set by the drift registry variants: a
    :class:`~repro.workloads.drift.WorkloadStream` whose phase 0 equals
    ``workload``, for evolving-workload experiments.  ``refresh`` is set by
    the refresh registry variants: a deterministic
    :class:`~repro.workloads.refresh.RefreshStream` of RF1/RF2-style
    insert/delete batches over the flat fact universe, for update-pipeline
    experiments.  ``log`` is set by the log registry variants: a columnar
    :class:`~repro.workloads.compress.QueryLog` of Zipf-skewed
    (template, slot) entries over ``workload``'s templates, for the
    workload-compression front-end.  ``sharding`` is set by the sharded
    registry variants: one :class:`~repro.storage.sharded.ShardSpec` per
    fact, telling experiments to build the fact's base object as a
    :class:`~repro.storage.sharded.ShardedHeapFile`.
    """

    name: str
    star: StarSchema
    tables: dict[str, Table]
    flat_tables: dict[str, Table]
    workload: Workload
    primary_keys: dict[str, tuple[str, ...]] = field(default_factory=dict)
    fk_attrs: dict[str, tuple[str, ...]] = field(default_factory=dict)
    stream: "WorkloadStream | None" = None
    refresh: "RefreshStream | None" = None
    log: "QueryLog | None" = None
    sharding: "dict[str, ShardSpec] | None" = None

    def total_base_bytes(self) -> int:
        """Bytes of the flattened base fact tables (the "database size"
        budgets are swept against)."""
        return sum(t.total_bytes() for t in self.flat_tables.values())

    def __repr__(self) -> str:
        rows = {f: t.nrows for f, t in self.flat_tables.items()}
        return f"BenchmarkInstance({self.name!r}, facts={rows}, |Q|={len(self.workload)})"
