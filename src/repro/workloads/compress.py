"""Workload compression: design from a million-query log (ROADMAP 5).

Production query logs have millions of entries with heavy repetition and
skew; every design stage here assumes tens of queries.  The bridge, grounded
in the query-clustering selection literature (arXiv 0707.1548, 1701.08029),
is a three-stage front-end::

    raw log (1M entries)                 -- columnar (template, slot) codes
      -> dedup_log()                     -- vectorized fingerprint fold,
         deduped Workload (~hundreds)       weights conserved exactly
      -> compress_workload()             -- k-means over selectivity /
         representatives (a few dozen)      footprint vectors, weighted
                                            medoids
      -> CoraddDesigner (untouched)      -- weights ARE frequencies, so the
                                            weighted cost model just works

A log entry is a *(template id, variation slot)* pair: the structural
template fixes the fact table, predicate shape and attribute footprint, and
the slot varies the predicate constants through the benchmark's
:class:`~repro.workloads.augment.AugmentSpec` (the same machinery the
paper's 4x augmented workloads use).  That makes the raw log two integer
arrays — fingerprint + dedup is one ``np.unique`` over the packed codes, no
per-entry Python loop — while still materializing genuine, distinct
:class:`~repro.relational.query.Query` objects for every distinct code.

:class:`StreamingCompressor` is the online variant for the tuning daemon:
top-k codes under exponential decay, emitting a
:class:`~repro.relational.query.WorkloadDelta` via ``WorkloadDelta.between``
whenever the observed mix shifts past a threshold — directly consumable by
``CoraddDesigner.update()``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.design.grouping import extended_vectors
from repro.design.kmeans import kmeans
from repro.design.selectivity import build_selectivity_vectors
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate, span
from repro.relational.query import Query, Workload, WorkloadDelta
from repro.stats.collector import TableStatistics
from repro.workloads.augment import AugmentSpec, shift_predicate


def materialize_code(
    templates: Workload,
    spec: AugmentSpec,
    code: int,
    n_slots: int,
    frequency: float = 1.0,
) -> Query:
    """The concrete query behind one packed ``template_id * n_slots + slot``
    code.  Slot 0 is the template verbatim (same name, so streaming
    re-emissions of a stable mix read as reweights, not churn); other slots
    shift every predicate constant deterministically inside the benchmark's
    value domains and get the stable name ``<template>@<slot>``."""
    template = templates.queries[code // n_slots]
    slot = code % n_slots
    if slot == 0:
        return template.with_frequency(frequency)
    return Query(
        f"{template.name}@{slot}",
        template.fact_table,
        [shift_predicate(p, slot, spec) for p in template.predicates],
        aggregates=list(template.aggregates),
        group_by=template.group_by,
        order_by=template.order_by,
        frequency=frequency,
    )


@dataclass(frozen=True)
class QueryLog:
    """A columnar query log: per-entry template ids and variation slots.

    This is the shape a parsed production log lands in — one structural
    template id plus one predicate-shape (constant-variation) slot per
    entry — and the only shape the vectorized front-end ever touches.
    """

    name: str
    templates: Workload
    spec: AugmentSpec
    template_ids: np.ndarray
    slots: np.ndarray
    n_slots: int

    def __post_init__(self) -> None:
        if len(self.template_ids) != len(self.slots):
            raise ValueError("template_ids and slots lengths differ")
        if self.n_slots < 1:
            raise ValueError("n_slots must be >= 1")

    def __len__(self) -> int:
        return len(self.template_ids)

    def codes(self) -> np.ndarray:
        """Packed fingerprint codes, one per entry (vectorized)."""
        return (
            self.template_ids.astype(np.int64) * self.n_slots
            + self.slots.astype(np.int64)
        )

    def entry(self, i: int) -> Query:
        """Materialize one log entry (debugging/tests; the front-end never
        materializes per-entry)."""
        return materialize_code(
            self.templates, self.spec, int(self.codes()[i]), self.n_slots
        )

    def __repr__(self) -> str:
        return (
            f"QueryLog({self.name!r}, entries={len(self)}, "
            f"templates={len(self.templates)}, n_slots={self.n_slots})"
        )


def generate_log(
    templates: Workload,
    spec: AugmentSpec,
    n_queries: int = 1_000_000,
    n_slots: int = 16,
    skew: float = 1.1,
    slot_skew: float = 1.5,
    seed: int = 0,
    name: str | None = None,
) -> QueryLog:
    """A synthetic Zipf-skewed log over ``templates``.

    Template popularity is Zipf with exponent ``skew`` over a seeded random
    rank permutation (so which template is hot varies with the seed, not
    just how hot); slots decay with ``slot_skew`` (slot 0 — the template's
    canonical constants — is always the most popular variation).  ``skew=0``
    is uniform.  Fully vectorized: two ``rng.choice`` draws, no per-entry
    loop.
    """
    if n_queries < 1:
        raise ValueError("n_queries must be >= 1")
    rng = np.random.default_rng(seed)
    with span(
        "compress.generate",
        templates=len(templates), entries=n_queries, n_slots=n_slots,
    ):
        ranks = rng.permutation(len(templates)).astype(np.float64)
        p = (ranks + 1.0) ** -skew
        p /= p.sum()
        template_ids = rng.choice(len(templates), size=n_queries, p=p)
        sp = (np.arange(n_slots, dtype=np.float64) + 1.0) ** -slot_skew
        sp /= sp.sum()
        slots = rng.choice(n_slots, size=n_queries, p=sp)
        return QueryLog(
            name=name or f"{templates.name}-log",
            templates=templates,
            spec=spec,
            template_ids=template_ids.astype(np.int32),
            slots=slots.astype(np.int32),
            n_slots=n_slots,
        )


@dataclass(frozen=True)
class DedupResult:
    """The deduped log: one weighted query per distinct fingerprint."""

    workload: Workload
    n_entries: int
    n_unique_codes: int

    @property
    def n_unique(self) -> int:
        return len(self.workload)

    @property
    def ratio(self) -> float:
        """Dedup compression ratio (log entries per representative)."""
        return self.n_entries / max(1, self.n_unique)

    @property
    def total_weight(self) -> float:
        return sum(q.frequency for q in self.workload)


def _fold_by_fingerprint(queries: list[Query], name: str) -> Workload:
    """Fold queries with identical fingerprints into one representative
    (first occurrence keeps its name), summing weights.  Distinct codes can
    collide — domain wrapping may shift two slots onto the same constants —
    and the designer must never see the same fingerprint twice."""
    folded: dict[tuple, Query] = {}
    for q in queries:
        fp = q.fingerprint()
        prev = folded.get(fp)
        if prev is None:
            folded[fp] = q
        else:
            folded[fp] = prev.with_frequency(prev.frequency + q.frequency)
    return Workload(name, list(folded.values()))


def dedup_log(log: QueryLog, name: str | None = None) -> DedupResult:
    """Vectorized fingerprint + dedup: fold the raw log into one weighted
    query per distinct fingerprint.  Weights are conserved *exactly* —
    counts are integers, summed in int64 and carried bit-exactly by float64
    frequencies (every count is far below 2**53)."""
    with span("compress.dedup", entries=len(log)):
        codes, counts = np.unique(log.codes(), return_counts=True)
        materialized = [
            materialize_code(
                log.templates, log.spec, int(code), log.n_slots,
                frequency=float(count),
            )
            for code, count in zip(codes, counts)
        ]
        workload = _fold_by_fingerprint(
            materialized, name or f"{log.name}-dedup"
        )
        result = DedupResult(
            workload=workload,
            n_entries=len(log),
            n_unique_codes=len(codes),
        )
        annotate(unique_codes=len(codes), unique=result.n_unique)
        obs_metrics.count("workload.compress.log_entries", len(log))
        obs_metrics.count("workload.compress.unique_queries", result.n_unique)
        return result


@dataclass(frozen=True)
class CompressedWorkload:
    """A bounded-size weighted representative workload.

    ``assignment`` maps every input query name to the representative that
    absorbed its weight; representative frequencies are the exact sums of
    their members' — which is all the designer's weighted cost model needs.
    """

    workload: Workload
    assignment: dict[str, str]
    n_input: int

    @property
    def n_representatives(self) -> int:
        return len(self.workload)

    @property
    def total_weight(self) -> float:
        return sum(q.frequency for q in self.workload)


def compress_workload(
    workload: Workload,
    stats: dict[str, TableStatistics],
    max_representatives: int = 32,
    alpha: float = 0.25,
    seed: int = 0,
    head_share: float = 0.5,
    name: str | None = None,
) -> CompressedWorkload:
    """Compress a (deduped) workload down to at most ``max_representatives``
    weighted representative queries.

    Each fact's budget splits into a pinned *head* — its heaviest queries
    kept verbatim, up to ``head_share`` of the budget — and a clustered
    *tail*.  Under the Zipf skew real logs show, the head carries most of
    the weighted runtime, so representing it exactly (rather than through a
    medoid that may have a different shape) is where compressed-design
    quality comes from; the light tail can afford lossy clustering.

    The tail reuses the designer's own grouping machinery: queries embed as
    extended selectivity vectors (propagated selectivities + alpha-scaled
    byte footprints, :func:`repro.design.grouping.extended_vectors`) and
    k-means (:func:`repro.design.kmeans.kmeans`) partitions them.  Each
    cluster is represented by its *medoid* — the member nearest the weighted
    centroid — reweighted to the cluster's exact total weight, so the
    compressed workload slots into the weighted cost model untouched.
    Deterministic given (workload, stats, seed); with a budget at or above
    the workload size, compression is the identity (same queries, same
    order, same weights).
    """
    if max_representatives < 1:
        raise ValueError("max_representatives must be >= 1")
    if not 0.0 <= head_share <= 1.0:
        raise ValueError("head_share must be in [0, 1]")
    facts = workload.fact_tables()
    n = len(workload)
    k_total = min(max_representatives, n)
    with span(
        "compress.cluster", queries=n, max_representatives=max_representatives
    ):
        reps: list[Query] = []
        assignment: dict[str, str] = {}
        for fact in facts:
            queries = workload.queries_for_fact(fact)
            k = min(len(queries), max(1, round(k_total * len(queries) / n)))
            if k >= len(queries):
                # Budget covers the fact: identity, no clustering noise.
                reps.extend(queries)
                assignment.update({q.name: q.name for q in queries})
                continue
            weights = np.array([q.frequency for q in queries])
            # Pin the heaviest queries verbatim (stable under ties: the
            # earlier query wins), cluster only the tail.
            n_head = min(int(k * head_share), k - 1) if k > 1 else 0
            order = np.argsort(-weights, kind="stable")
            head = np.sort(order[:n_head])
            for i in head:
                q = queries[int(i)]
                reps.append(q)
                assignment[q.name] = q.name
            tail = np.sort(order[n_head:])
            tail_queries = [queries[int(i)] for i in tail]
            fact_stats = stats[fact]
            vectors = build_selectivity_vectors(tail_queries, fact_stats)
            points = extended_vectors(
                tail_queries, vectors, fact_stats, alpha
            )
            labels = kmeans(points, k - n_head, seed=seed).labels
            tail_weights = weights[tail]
            # Clusters in order of their earliest member, so representative
            # order is stable against k-means label numbering.
            for label in sorted(
                np.unique(labels), key=lambda l: int(np.argmax(labels == l))
            ):
                members = np.nonzero(labels == label)[0]
                w = tail_weights[members]
                centroid = (points[members] * w[:, None]).sum(0) / w.sum()
                d2 = ((points[members] - centroid) ** 2).sum(1)
                medoid = tail_queries[members[int(np.argmin(d2))]]
                rep = medoid.with_frequency(float(w.sum()))
                reps.append(rep)
                for i in members:
                    assignment[tail_queries[i].name] = rep.name
        compressed = CompressedWorkload(
            workload=Workload(name or f"{workload.name}-c{k_total}", reps),
            assignment=assignment,
            n_input=n,
        )
        annotate(representatives=len(reps))
        obs_metrics.count("workload.compress.representatives", len(reps))
        return compressed


@dataclass
class StreamingCompressor:
    """Online top-k workload tracking under exponential decay.

    Observes the same ``(template id, slot)`` pairs a :class:`QueryLog`
    holds, keeping one exponentially-decayed weight per code (the code
    space is bounded: ``len(templates) * n_slots``).  ``current_workload``
    is the top-``capacity`` codes materialized with their decayed weights;
    :meth:`poll` compares the current mix against the last emission and —
    when the normalized L1 distance crosses ``shift_threshold`` — emits a
    :class:`~repro.relational.query.WorkloadDelta` ready for
    ``CoraddDesigner.update()``.  Stable per-code query names mean a
    re-emission of a steady mix reads as pure reweights.

    ``half_life`` is in *queries observed*, not wall time — the decay is
    applied per event, vectorized per batch.
    """

    templates: Workload
    spec: AugmentSpec
    n_slots: int = 16
    capacity: int = 24
    half_life: float = 50_000.0
    shift_threshold: float = 0.2
    name: str = "stream"
    events: int = 0
    emissions: int = 0
    _weights: np.ndarray = field(init=False, repr=False)
    _last: Workload | None = field(default=None, repr=False)

    def __post_init__(self) -> None:
        if self.capacity < 1:
            raise ValueError("capacity must be >= 1")
        if self.half_life <= 0:
            raise ValueError("half_life must be positive")
        self._weights = np.zeros(
            len(self.templates) * self.n_slots, dtype=np.float64
        )

    @classmethod
    def for_log(cls, log: QueryLog, **kwargs) -> "StreamingCompressor":
        """A compressor over the same code space as ``log`` (its entries are
        not consumed — feed them through :meth:`observe`)."""
        return cls(
            templates=log.templates, spec=log.spec, n_slots=log.n_slots,
            name=f"{log.name}-stream", **kwargs,
        )

    def observe(self, template_ids: np.ndarray, slots: np.ndarray) -> None:
        """Fold a batch of log entries into the decayed weights — exactly
        equivalent to per-event ``w *= d; w[code] += 1``, vectorized: after
        ``n`` events every prior weight decays by ``d**n`` and the batch's
        j-th event contributes ``d**(n-1-j)``."""
        template_ids = np.asarray(template_ids)
        slots = np.asarray(slots)
        n = len(template_ids)
        if n == 0:
            return
        codes = (
            template_ids.astype(np.int64) * self.n_slots
            + slots.astype(np.int64)
        )
        d = 0.5 ** (1.0 / self.half_life)
        self._weights *= d ** n
        contrib = d ** (n - 1 - np.arange(n, dtype=np.float64))
        np.add.at(self._weights, codes, contrib)
        self.events += n
        obs_metrics.count("workload.compress.stream_events", n)

    def observe_log(self, log: QueryLog, start: int = 0, end: int | None = None) -> None:
        self.observe(
            log.template_ids[start:end], log.slots[start:end]
        )

    def current_workload(self) -> Workload:
        """The decayed top-``capacity`` mix as a weighted workload (folded
        by fingerprint, in code order for determinism)."""
        nz = np.nonzero(self._weights > 0.0)[0]
        if len(nz) > self.capacity:
            # Highest decayed weight wins; ties break to the lower code.
            order = nz[np.lexsort((nz, -self._weights[nz]))]
            nz = np.sort(order[: self.capacity])
        queries = [
            materialize_code(
                self.templates, self.spec, int(code), self.n_slots,
                frequency=float(self._weights[code]),
            )
            for code in nz
        ]
        return _fold_by_fingerprint(
            queries, f"{self.name}@{self.events}"
        )

    @staticmethod
    def _mix_distance(old: Workload, new: Workload) -> float:
        """L1 distance between the two workloads' *normalized* weight
        distributions (range [0, 2]; 2 = disjoint support)."""
        old_total = sum(q.frequency for q in old) or 1.0
        new_total = sum(q.frequency for q in new) or 1.0
        old_mix = {q.name: q.frequency / old_total for q in old}
        new_mix = {q.name: q.frequency / new_total for q in new}
        names = set(old_mix) | set(new_mix)
        return sum(
            abs(new_mix.get(nm, 0.0) - old_mix.get(nm, 0.0)) for nm in names
        )

    def poll(self) -> WorkloadDelta | None:
        """Emit a delta when the mix shifted past the threshold (always on
        the first non-empty poll); None while the mix is steady."""
        current = self.current_workload()
        if len(current) == 0:
            return None
        if self._last is not None:
            if self._mix_distance(self._last, current) < self.shift_threshold:
                return None
        previous = (
            self._last if self._last is not None
            else Workload(f"{self.name}@empty", [])
        )
        delta = WorkloadDelta.between(previous, current)
        self._last = current
        self.emissions += 1
        obs_metrics.count("workload.compress.stream_deltas")
        annotate_kw = {
            "tracked": int((self._weights > 0.0).sum()),
            "emitted": len(current),
        }
        annotate(**annotate_kw)
        return delta
