"""Synthetic-data helpers shared by the benchmark generators.

All the paper's correlations come from *hierarchies* (a city is in exactly
one nation, a month in exactly one year) and *near-functional relationships*
(commit dates trail order dates by days).  These helpers generate both
patterns deterministically from a seed.
"""

from __future__ import annotations

import numpy as np


def child_codes(parents: np.ndarray, fanout: int, rng: np.random.Generator) -> np.ndarray:
    """Child hierarchy level: each parent value fans out into ``fanout``
    children; child code embeds the parent (``parent * fanout + k``), so
    strength(child -> parent) == 1 by construction."""
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    return parents * fanout + rng.integers(0, fanout, size=len(parents))


def noisy_offset(
    base: np.ndarray,
    max_offset: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A value trailing ``base`` by 1..max_offset — a strong but imperfect
    correlation (the commitdate/orderdate pattern)."""
    if max_offset <= 0:
        raise ValueError("max_offset must be positive")
    return base + rng.integers(1, max_offset + 1, size=len(base))


def date_dimension(start_year: int, nyears: int) -> dict[str, np.ndarray]:
    """A day-grain date dimension over ``nyears`` calendar years.

    Returns columns: ``datekey`` (YYYYMMDD), ``year``, ``yearmonth``
    (YYYYMM), ``monthnum`` (1-12), ``weeknum`` (1-53, within year),
    ``daynumweek`` (0-6), ``daynummonth`` (1-31).  Month lengths are the
    civil ones (February always 28 — leap days add nothing to the
    correlation structure and complicate round-tripping).
    """
    month_days = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
    datekey: list[int] = []
    year_col: list[int] = []
    yearmonth: list[int] = []
    monthnum: list[int] = []
    weeknum: list[int] = []
    daynumweek: list[int] = []
    daynummonth: list[int] = []
    for y in range(start_year, start_year + nyears):
        day_of_year = 0
        for m, ndays in enumerate(month_days, start=1):
            for d in range(1, ndays + 1):
                datekey.append(y * 10000 + m * 100 + d)
                year_col.append(y)
                yearmonth.append(y * 100 + m)
                monthnum.append(m)
                weeknum.append(day_of_year // 7 + 1)
                daynumweek.append(day_of_year % 7)
                daynummonth.append(d)
                day_of_year += 1
    return {
        "datekey": np.array(datekey, dtype=np.int64),
        "year": np.array(year_col, dtype=np.int64),
        "yearmonth": np.array(yearmonth, dtype=np.int64),
        "monthnum": np.array(monthnum, dtype=np.int64),
        "weeknum": np.array(weeknum, dtype=np.int64),
        "daynumweek": np.array(daynumweek, dtype=np.int64),
        "daynummonth": np.array(daynummonth, dtype=np.int64),
    }


def datekey_add_days(datekeys: np.ndarray, deltas: np.ndarray, calendar: np.ndarray) -> np.ndarray:
    """Shift YYYYMMDD keys forward by per-row day counts using a sorted
    calendar of valid datekeys (clamping at the calendar end)."""
    idx = np.searchsorted(calendar, datekeys)
    if not np.array_equal(calendar[np.clip(idx, 0, len(calendar) - 1)], datekeys):
        raise ValueError("datekeys contain days outside the calendar")
    shifted = np.clip(idx + deltas, 0, len(calendar) - 1)
    return calendar[shifted]
