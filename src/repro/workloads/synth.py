"""Synthetic-data helpers shared by the benchmark generators.

All the paper's correlations come from *hierarchies* (a city is in exactly
one nation, a month in exactly one year) and *near-functional relationships*
(commit dates trail order dates by days).  These helpers generate both
patterns deterministically from a seed.
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from repro.relational.schema import Column, StarSchema, TableSchema
from repro.relational.table import Table
from repro.relational.types import INT16, INT32
from repro.workloads.base import BenchmarkInstance


def zipf_probabilities(n: int, theta: float) -> np.ndarray:
    """Normalized Zipf weights over ``n`` ranks: p(rank k) ∝ k**-theta."""
    if n <= 0:
        raise ValueError("n must be positive")
    if theta < 0:
        raise ValueError("theta must be non-negative")
    weights = np.arange(1, n + 1, dtype=np.float64) ** -theta
    return weights / weights.sum()


def skewed_integers(
    rng: np.random.Generator,
    lo: int,
    hi: int,
    size: int,
    skew: float = 0.0,
) -> np.ndarray:
    """Draw ``size`` integers from ``[lo, hi)``; uniform at ``skew == 0``,
    Zipf-skewed with exponent ``skew`` otherwise.  Popularity rank is
    scattered over the key space (a deterministic permutation drawn from
    ``rng``), so hot keys are not simply the smallest ones."""
    if hi <= lo:
        raise ValueError(f"empty integer range [{lo}, {hi})")
    if skew <= 0:
        return rng.integers(lo, hi, size)
    n = hi - lo
    ranks = rng.choice(n, size=size, p=zipf_probabilities(n, skew))
    return lo + rng.permutation(n)[ranks]


def child_codes(parents: np.ndarray, fanout: int, rng: np.random.Generator) -> np.ndarray:
    """Child hierarchy level: each parent value fans out into ``fanout``
    children; child code embeds the parent (``parent * fanout + k``), so
    strength(child -> parent) == 1 by construction."""
    if fanout <= 0:
        raise ValueError("fanout must be positive")
    return parents * fanout + rng.integers(0, fanout, size=len(parents))


def noisy_offset(
    base: np.ndarray,
    max_offset: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """A value trailing ``base`` by 1..max_offset — a strong but imperfect
    correlation (the commitdate/orderdate pattern)."""
    if max_offset <= 0:
        raise ValueError("max_offset must be positive")
    return base + rng.integers(1, max_offset + 1, size=len(base))


def date_dimension(start_year: int, nyears: int) -> dict[str, np.ndarray]:
    """A day-grain date dimension over ``nyears`` calendar years.

    Returns columns: ``datekey`` (YYYYMMDD), ``year``, ``yearmonth``
    (YYYYMM), ``monthnum`` (1-12), ``weeknum`` (1-53, within year),
    ``daynumweek`` (0-6), ``daynummonth`` (1-31).  Month lengths are the
    civil ones (February always 28 — leap days add nothing to the
    correlation structure and complicate round-tripping).
    """
    month_days = [31, 28, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31]
    datekey: list[int] = []
    year_col: list[int] = []
    yearmonth: list[int] = []
    monthnum: list[int] = []
    weeknum: list[int] = []
    daynumweek: list[int] = []
    daynummonth: list[int] = []
    for y in range(start_year, start_year + nyears):
        day_of_year = 0
        for m, ndays in enumerate(month_days, start=1):
            for d in range(1, ndays + 1):
                datekey.append(y * 10000 + m * 100 + d)
                year_col.append(y)
                yearmonth.append(y * 100 + m)
                monthnum.append(m)
                weeknum.append(day_of_year // 7 + 1)
                daynumweek.append(day_of_year % 7)
                daynummonth.append(d)
                day_of_year += 1
    return {
        "datekey": np.array(datekey, dtype=np.int64),
        "year": np.array(year_col, dtype=np.int64),
        "yearmonth": np.array(yearmonth, dtype=np.int64),
        "monthnum": np.array(monthnum, dtype=np.int64),
        "weeknum": np.array(weeknum, dtype=np.int64),
        "daynumweek": np.array(daynumweek, dtype=np.int64),
        "daynummonth": np.array(daynummonth, dtype=np.int64),
    }


def datekey_add_days(datekeys: np.ndarray, deltas: np.ndarray, calendar: np.ndarray) -> np.ndarray:
    """Shift YYYYMMDD keys forward by per-row day counts using a sorted
    calendar of valid datekeys (clamping at the calendar end)."""
    idx = np.searchsorted(calendar, datekeys)
    if not np.array_equal(calendar[np.clip(idx, 0, len(calendar) - 1)], datekeys):
        raise ValueError("datekeys contain days outside the calendar")
    shifted = np.clip(idx + deltas, 0, len(calendar) - 1)
    return calendar[shifted]


# -------------------------------------------------------- synth benchmark

NSTATES = 50
SYNTH_BASE_ROWS = 50_000


def _people_schema() -> TableSchema:
    return TableSchema(
        "people",
        [
            Column("city", INT32),
            Column("state", INT16),
            Column("region", INT16),
            Column("age", INT16),
            Column("agegroup", INT16),
            Column("salary", INT32),
        ],
    )


def synth_queries() -> Workload:
    """Warehouse-style probes over every hierarchy level plus the
    uncorrelated measure, so designs exercise both CM-friendly and
    CM-hostile predicates."""
    avg_salary = [Aggregate("avg", ("salary",))]
    sum_salary = [Aggregate("sum", ("salary",))]
    queries = [
        Query("city_point", "people", [InPredicate("city", (123, 456))], avg_salary),
        Query(
            "state_rollup",
            "people",
            [EqPredicate("region", 2)],
            sum_salary,
            group_by=("state",),
        ),
        Query(
            "city_in_state",
            "people",
            [EqPredicate("state", 17), RangePredicate("agegroup", 2, 4)],
            sum_salary,
            group_by=("city",),
        ),
        Query(
            "salary_band",
            "people",
            [RangePredicate("salary", 50_000, 60_000)],
            [Aggregate("count", ("salary",))],
            group_by=("region",),
        ),
        Query(
            "age_slice",
            "people",
            [EqPredicate("agegroup", 3), EqPredicate("region", 1)],
            avg_salary,
            group_by=("state",),
        ),
    ]
    return Workload("synth5", queries)


def generate_synth(
    rows: int | None = None,
    scale: float = 1.0,
    seed: int = 0,
    skew: float = 0.0,
) -> BenchmarkInstance:
    """The paper's running People example as a full benchmark instance.

    One already-flat fact table with two perfect hierarchies (city -> state
    -> region, age -> agegroup) and an uncorrelated salary measure.  ``skew``
    Zipf-skews the state popularity (hot states get most rows), the knob the
    registry exposes uniformly across benchmarks.
    """
    rng = np.random.default_rng(seed)
    n = rows if rows is not None else max(100, int(SYNTH_BASE_ROWS * scale))
    state = skewed_integers(rng, 0, NSTATES, n, skew)
    age = rng.integers(18, 90, n)
    people = Table(
        _people_schema(),
        {
            "city": state * 20 + rng.integers(0, 20, n),
            "state": state,
            "region": state // 10,
            "age": age,
            "agegroup": age // 15,
            "salary": rng.integers(20_000, 200_000, n),
        },
    )
    star = StarSchema("synth")
    star.add_fact(_people_schema())
    return BenchmarkInstance(
        name="synth",
        star=star,
        tables={"people": people},
        flat_tables={"people": people},
        workload=synth_queries(),
        # Clustered by state: the intro's setting where a city index's
        # entries point into few pages because city determines state.
        primary_keys={"people": ("state",)},
        fk_attrs={"people": ()},
    )
