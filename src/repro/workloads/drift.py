"""Workload drift: deterministic streams of evolving workloads.

Production warehouses do not run a fixed query set — dashboards rotate,
reports retire, traffic shifts.  A :class:`WorkloadStream` turns any
benchmark workload into a deterministic sequence of *phases*: an active
subset of the query pool that rotates (some queries retire, dormant ones
return) and reweights (frequencies drift) from phase to phase.  Each phase
carries the :class:`~repro.relational.query.WorkloadDelta` from its
predecessor, which is exactly what
:meth:`~repro.design.designer.CoraddDesigner.update` consumes — so the
stream is the end-to-end driver for incremental-redesign experiments.

Rotation re-activates *previously seen* queries by design: that is the
regime where incremental redesign shines (their groups and candidates are
already enumerated) and it mirrors reality, where reports come back every
quarter rather than being freshly invented each week.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.query import Query, Workload, WorkloadDelta


@dataclass(frozen=True)
class WorkloadPhase:
    """One step of a drifting workload."""

    index: int
    workload: Workload
    delta: WorkloadDelta  # vs the previous phase (empty for phase 0)

    def __repr__(self) -> str:
        return (
            f"WorkloadPhase({self.index}, {len(self.workload)} queries, "
            f"{self.delta!r})"
        )


class WorkloadStream:
    """A deterministic drifting sequence of workloads over a query pool.

    ``active_fraction`` of the pool is live in phase 0; every later phase
    retires ``rotation`` of the active set (replaced by the longest-dormant
    pool queries, FIFO) and rescales the frequency of ``reweight`` of the
    surviving queries by a seeded log-uniform factor in [1/2, 2].  The
    whole trajectory is a pure function of ``(pool, knobs, seed)``.
    """

    def __init__(
        self,
        base: Workload,
        phases: int = 4,
        rotation: float = 0.25,
        reweight: float = 0.25,
        active_fraction: float = 0.6,
        seed: int = 0,
    ) -> None:
        if phases < 1:
            raise ValueError(f"phases must be >= 1, got {phases}")
        if not 0.0 <= rotation <= 1.0:
            raise ValueError(f"rotation must be in [0, 1], got {rotation}")
        if not 0.0 <= reweight <= 1.0:
            raise ValueError(f"reweight must be in [0, 1], got {reweight}")
        if not 0.0 < active_fraction <= 1.0:
            raise ValueError(
                f"active_fraction must be in (0, 1], got {active_fraction}"
            )
        self.base = base
        self.n_phases = phases
        self.rotation = rotation
        self.reweight = reweight
        self.active_fraction = active_fraction
        self.seed = seed

    def __len__(self) -> int:
        return self.n_phases

    def __iter__(self):
        return iter(self.phases())

    def phases(self) -> list[WorkloadPhase]:
        pool = list(self.base)
        by_name = {q.name: q for q in pool}
        n_active = max(1, round(self.active_fraction * len(pool)))
        active = [q.name for q in pool[:n_active]]
        # Dormant queries wait FIFO: the longest-retired returns first.
        dormant = [q.name for q in pool[n_active:]]
        freqs = {q.name: q.frequency for q in pool}

        out: list[WorkloadPhase] = []
        previous: Workload | None = None
        for phase in range(self.n_phases):
            rng = np.random.default_rng(self.seed + 7919 * phase)
            if phase > 0:
                n_rotate = min(
                    len(dormant),
                    max(1, round(self.rotation * len(active)))
                    if self.rotation > 0
                    else 0,
                )
                if n_rotate:
                    retired_idx = sorted(
                        rng.choice(len(active), size=n_rotate, replace=False)
                    )
                    retired = [active[i] for i in retired_idx]
                    active = [q for q in active if q not in set(retired)]
                    arriving, dormant = dormant[:n_rotate], dormant[n_rotate:]
                    active += arriving
                    dormant += retired
                if self.reweight > 0 and active:
                    n_rw = max(1, round(self.reweight * len(active)))
                    rw_idx = sorted(
                        rng.choice(len(active), size=min(n_rw, len(active)),
                                   replace=False)
                    )
                    factors = np.exp2(rng.uniform(-1.0, 1.0, size=len(rw_idx)))
                    for i, factor in zip(rw_idx, factors):
                        freqs[active[i]] *= float(factor)
            workload = Workload(
                f"{self.base.name}-phase{phase}",
                [
                    by_name[name].with_frequency(freqs[name])
                    for name in sorted(active, key=lambda n: self._pool_rank(n))
                ],
            )
            delta = (
                WorkloadDelta.between(previous, workload)
                if previous is not None
                else WorkloadDelta(workload=workload)
            )
            out.append(WorkloadPhase(index=phase, workload=workload, delta=delta))
            previous = workload
        return out

    def _pool_rank(self, name: str) -> int:
        if not hasattr(self, "_ranks"):
            self._ranks = {q.name: i for i, q in enumerate(self.base)}
        return self._ranks[name]

    def __repr__(self) -> str:
        return (
            f"WorkloadStream({self.base.name!r}, phases={self.n_phases}, "
            f"rotation={self.rotation}, reweight={self.reweight}, "
            f"active={self.active_fraction}, seed={self.seed})"
        )
