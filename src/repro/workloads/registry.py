"""The benchmark registry: construct any workload by name.

Every benchmark is registered under a short name with a uniform knob set —
``scale`` (1.0 = the benchmark's laptop-sized default), ``seed`` (None = the
benchmark's canonical seed, so published experiment numbers stay
reproducible), and ``skew`` (Zipf popularity skew, 0.0 = the spec's
distribution).  Extra keyword arguments pass through to the underlying
generator for callers that need a benchmark-specific knob (e.g. SSB's
``lineorder_rows`` or APB's ``density``)::

    from repro.workloads.registry import make
    inst = make("tpch", scale=0.5, seed=3)

Experiments, examples and the benchmark suite all construct instances this
way, so adding a benchmark here makes it a first-class citizen of the full
designer -> ILP -> measured-execution pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable

from repro.workloads.apb import generate_apb
from repro.workloads.base import BenchmarkInstance
from repro.workloads.ssb import augment_workload as _augment_ssb
from repro.workloads.ssb import generate_ssb
from repro.workloads.synth import generate_synth
from repro.workloads.tpch import augment_workload as _augment_tpch
from repro.workloads.tpch import generate_tpch


@dataclass(frozen=True)
class BenchmarkSpec:
    """A registered benchmark: its canonical seed, a factory with the
    uniform ``(scale, seed, skew)`` signature, and a one-line description."""

    name: str
    factory: Callable[..., BenchmarkInstance]
    default_seed: int
    description: str

    def make(
        self,
        scale: float = 1.0,
        seed: int | None = None,
        skew: float = 0.0,
        **kwargs: Any,
    ) -> BenchmarkInstance:
        if scale <= 0:
            raise ValueError(f"scale must be positive, got {scale}")
        if skew < 0:
            raise ValueError(f"skew must be non-negative, got {skew}")
        effective = self.default_seed if seed is None else seed
        return self.factory(scale=scale, seed=effective, skew=skew, **kwargs)


_REGISTRY: dict[str, BenchmarkSpec] = {}


def register(
    name: str,
    factory: Callable[..., BenchmarkInstance],
    default_seed: int,
    description: str,
) -> BenchmarkSpec:
    """Register (or replace) a benchmark factory under ``name``."""
    spec = BenchmarkSpec(name, factory, default_seed, description)
    _REGISTRY[name] = spec
    return spec


def available() -> list[str]:
    """Registered benchmark names, sorted."""
    return sorted(_REGISTRY)


def get(name: str) -> BenchmarkSpec:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {available()}"
        ) from None


def make(
    name: str,
    scale: float = 1.0,
    seed: int | None = None,
    skew: float = 0.0,
    **kwargs: Any,
) -> BenchmarkInstance:
    """Construct the benchmark ``name`` with the uniform knob set."""
    return get(name).make(scale=scale, seed=seed, skew=skew, **kwargs)


# ----------------------------------------------------------------- adapters
#
# Adapters translate ``scale`` into each generator's native row counts; the
# benchmark-specific kwargs keep working through **kwargs so existing
# experiment signatures (lineorder_rows=..., actuals_rows=...) stay exact.


def _make_ssb(
    scale: float = 1.0,
    seed: int = 42,
    skew: float = 0.0,
    lineorder_rows: int | None = None,
    **kwargs: Any,
) -> BenchmarkInstance:
    rows = (
        lineorder_rows
        if lineorder_rows is not None
        else max(100, int(60_000 * scale))
    )
    return generate_ssb(lineorder_rows=rows, seed=seed, skew=skew, **kwargs)


def _make_apb(
    scale: float = 1.0,
    seed: int = 11,
    skew: float = 0.0,
    actuals_rows: int | None = None,
    **kwargs: Any,
) -> BenchmarkInstance:
    if actuals_rows is None and scale == 1.0:
        # The canonical instance: let the density knob decide the row count,
        # exactly as generate_apb() does by default (200k at 2% density).
        return generate_apb(seed=seed, skew=skew, **kwargs)
    rows = (
        actuals_rows if actuals_rows is not None else max(100, int(200_000 * scale))
    )
    return generate_apb(actuals_rows=rows, seed=seed, skew=skew, **kwargs)


def _make_tpch(
    scale: float = 1.0,
    seed: int = 13,
    skew: float = 0.0,
    **kwargs: Any,
) -> BenchmarkInstance:
    return generate_tpch(scale=scale, seed=seed, skew=skew, **kwargs)


def _make_synth(
    scale: float = 1.0,
    seed: int = 0,
    skew: float = 0.0,
    **kwargs: Any,
) -> BenchmarkInstance:
    return generate_synth(scale=scale, seed=seed, skew=skew, **kwargs)


def _augmented_variant(
    base_factory: Callable[..., BenchmarkInstance],
    augmenter: Callable[..., Any],
) -> Callable[..., BenchmarkInstance]:
    """Wrap a benchmark factory into its paper-style augmented *variant*:
    the same instance with the workload expanded ``augment_factor`` x by the
    benchmark's deterministic variant expander (factor 1 = unchanged).
    Registered variants let experiments ask for e.g. ``ssb-augmented``
    instead of importing ``augment_workload`` themselves."""

    def factory(
        scale: float = 1.0,
        seed: int = 0,
        skew: float = 0.0,
        augment_factor: int = 4,
        augment_seed: int = 7,
        **kwargs: Any,
    ) -> BenchmarkInstance:
        if augment_factor < 1:
            raise ValueError(f"augment_factor must be >= 1, got {augment_factor}")
        inst = base_factory(scale=scale, seed=seed, skew=skew, **kwargs)
        if augment_factor > 1:
            inst.workload = augmenter(
                inst.workload, factor=augment_factor, seed=augment_seed
            )
        return inst

    return factory


def _drift_variant(
    base_factory: Callable[..., BenchmarkInstance],
    augmenter: Callable[..., Any],
) -> Callable[..., BenchmarkInstance]:
    """Wrap a benchmark factory into its *drift* variant: the same instance
    with a deterministic :class:`~repro.workloads.drift.WorkloadStream`
    attached (``phases`` / ``rotation`` / ``reweight`` / ``active_fraction``
    knobs) and ``workload`` set to phase 0.  The pool is pre-expanded by the
    benchmark's variant expander (``augment_factor``) so rotation has
    genuinely dormant queries to bring back — the paper-style variants are
    exactly the "report comes back next quarter" population."""
    from repro.workloads.drift import WorkloadStream

    def factory(
        scale: float = 1.0,
        seed: int = 0,
        skew: float = 0.0,
        augment_factor: int = 2,
        augment_seed: int = 7,
        phases: int = 4,
        rotation: float = 0.25,
        reweight: float = 0.25,
        active_fraction: float = 0.6,
        drift_seed: int = 0,
        **kwargs: Any,
    ) -> BenchmarkInstance:
        if augment_factor < 1:
            raise ValueError(f"augment_factor must be >= 1, got {augment_factor}")
        inst = base_factory(scale=scale, seed=seed, skew=skew, **kwargs)
        pool = inst.workload
        if augment_factor > 1:
            pool = augmenter(pool, factor=augment_factor, seed=augment_seed)
        inst.stream = WorkloadStream(
            pool,
            phases=phases,
            rotation=rotation,
            reweight=reweight,
            active_fraction=active_fraction,
            seed=drift_seed,
        )
        inst.workload = inst.stream.phases()[0].workload
        return inst

    return factory


def _refresh_variant(
    base_factory: Callable[..., BenchmarkInstance],
    fact: str,
    key_attrs: tuple[str, ...],
    recency_attr: str,
) -> Callable[..., BenchmarkInstance]:
    """Wrap a benchmark factory into its *refresh* variant: the same
    instance with a deterministic :class:`~repro.workloads.refresh.
    RefreshStream` attached (``rounds`` / ``insert_fraction`` /
    ``delete_fraction`` knobs) — TPC-H's RF1/RF2 pair, and the analogous
    lineorder insert stream for SSB."""
    from repro.workloads.refresh import RefreshStream

    def factory(
        scale: float = 1.0,
        seed: int = 0,
        skew: float = 0.0,
        rounds: int = 4,
        insert_fraction: float = 0.02,
        delete_fraction: float = 0.01,
        recency_quantile: float = 0.9,
        refresh_seed: int = 0,
        **kwargs: Any,
    ) -> BenchmarkInstance:
        inst = base_factory(scale=scale, seed=seed, skew=skew, **kwargs)
        inst.refresh = RefreshStream(
            inst.flat_tables[fact],
            fact,
            key_attrs,
            recency_attr,
            rounds=rounds,
            insert_fraction=insert_fraction,
            delete_fraction=delete_fraction,
            recency_quantile=recency_quantile,
            seed=refresh_seed,
        )
        return inst

    return factory


def _log_variant(
    base_factory: Callable[..., BenchmarkInstance],
    augmenter: Callable[..., Any],
    spec_getter: Callable[[], Any],
) -> Callable[..., BenchmarkInstance]:
    """Wrap a benchmark factory into its *log* variant: the same instance
    with a synthetic Zipf-skewed :class:`~repro.workloads.compress.QueryLog`
    attached (``log_queries`` / ``log_skew`` / ``log_slots`` knobs) and
    ``workload`` set to the log's template suite — the augmented workload,
    so the log draws from the full structural variety the paper's variant
    expander produces.  The log itself is two integer arrays: a million
    entries cost megabytes, not materialized queries."""
    from repro.workloads.compress import generate_log

    def factory(
        scale: float = 1.0,
        seed: int = 0,
        skew: float = 0.0,
        augment_factor: int = 4,
        augment_seed: int = 7,
        log_queries: int = 1_000_000,
        log_slots: int = 16,
        log_skew: float = 1.1,
        log_slot_skew: float = 1.5,
        log_seed: int = 0,
        **kwargs: Any,
    ) -> BenchmarkInstance:
        if augment_factor < 1:
            raise ValueError(f"augment_factor must be >= 1, got {augment_factor}")
        inst = base_factory(scale=scale, seed=seed, skew=skew, **kwargs)
        templates = inst.workload
        if augment_factor > 1:
            templates = augmenter(
                templates, factor=augment_factor, seed=augment_seed
            )
        inst.workload = templates
        inst.log = generate_log(
            templates,
            spec_getter(),
            n_queries=log_queries,
            n_slots=log_slots,
            skew=log_skew,
            slot_skew=log_slot_skew,
            seed=log_seed,
            name=f"{inst.name}-log",
        )
        return inst

    return factory


def _sharded_variant(
    base_factory: Callable[..., BenchmarkInstance],
    fact: str,
) -> Callable[..., BenchmarkInstance]:
    """Wrap a benchmark factory into its *sharded* variant: the same
    instance with ``inst.sharding`` set to a per-fact
    :class:`~repro.storage.sharded.ShardSpec` (``shards`` / ``shard_key`` /
    ``shard_scheme`` knobs).  ``shard_key=None`` (the default) picks the key
    correlation-aware: :func:`~repro.storage.sharded.choose_shard_key`
    scores every attribute by how strongly it determines the workload's
    predicated attributes, so predicates on correlated non-key columns
    prune shards too."""

    def factory(
        scale: float = 1.0,
        seed: int = 0,
        skew: float = 0.0,
        shards: int = 4,
        shard_key: str | None = None,
        shard_scheme: str = "range",
        **kwargs: Any,
    ) -> BenchmarkInstance:
        from repro.stats.collector import TableStatistics
        from repro.storage.sharded import ShardSpec, choose_shard_key

        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        inst = base_factory(scale=scale, seed=seed, skew=skew, **kwargs)
        if shard_key is None:
            stats = TableStatistics(
                inst.flat_tables[fact], synopsis_rows=2048, seed=seed
            )
            shard_key = choose_shard_key(
                stats, inst.workload.queries_for_fact(fact), shards
            )
        inst.sharding = {fact: ShardSpec(shards, shard_key, shard_scheme)}
        return inst

    return factory


def _ssb_spec():
    from repro.workloads.ssb import AUGMENT_SPEC
    return AUGMENT_SPEC


def _tpch_spec():
    from repro.workloads.tpch import AUGMENT_SPEC
    return AUGMENT_SPEC


register("ssb", _make_ssb, 42,
         "Star Schema Benchmark: lineorder fact, 13 queries (+4x augment)")
register("apb", _make_apb, 11,
         "APB-1 Release II: two facts, deep product hierarchy, 31 queries")
register("tpch", _make_tpch, 13,
         "TPC-H: 8 normalized tables, orders bridge, 12 queries (+4x augment)")
register("synth", _make_synth, 0,
         "People running example: one flat fact, two perfect hierarchies")
register("ssb-augmented", _augmented_variant(_make_ssb, _augment_ssb), 42,
         "SSB with the paper's variant expander (52 queries at the 4x default)")
register("tpch-augmented", _augmented_variant(_make_tpch, _augment_tpch), 13,
         "TPC-H with the variant expander (48 queries at the 4x default)")
register("ssb-drift", _drift_variant(_make_ssb, _augment_ssb), 42,
         "SSB drifting workload: rotating/reweighting phases over the "
         "augmented pool (phases/rotation/reweight knobs)")
register("tpch-drift", _drift_variant(_make_tpch, _augment_tpch), 13,
         "TPC-H drifting workload: rotating/reweighting phases over the "
         "augmented pool (phases/rotation/reweight knobs)")
register(
    "ssb-refresh",
    _refresh_variant(
        _make_ssb, "lineorder", ("orderkey", "linenumber"), "orderdate"
    ),
    42,
    "SSB with a lineorder insert/delete refresh stream "
    "(rounds/insert_fraction/delete_fraction knobs)",
)
register(
    "tpch-refresh",
    _refresh_variant(
        _make_tpch, "lineitem", ("l_orderkey", "l_linenumber"), "o_orderdate"
    ),
    13,
    "TPC-H with RF1/RF2 refresh functions: recent-band inserts and "
    "oldest-slab deletes over lineitem "
    "(rounds/insert_fraction/delete_fraction knobs)",
)
register(
    "ssb-sharded", _sharded_variant(_make_ssb, "lineorder"), 42,
    "SSB with a sharded lineorder fact: correlation-chosen (or explicit) "
    "shard key (shards/shard_key/shard_scheme knobs)",
)
register(
    "tpch-sharded", _sharded_variant(_make_tpch, "lineitem"), 13,
    "TPC-H with a sharded lineitem fact: correlation-chosen (or explicit) "
    "shard key (shards/shard_key/shard_scheme knobs)",
)
register(
    "ssb-log", _log_variant(_make_ssb, _augment_ssb, _ssb_spec), 42,
    "SSB with a synthetic Zipf-skewed query log over the augmented "
    "templates (log_queries/log_skew/log_slots knobs)",
)
register(
    "tpch-log", _log_variant(_make_tpch, _augment_tpch, _tpch_spec), 13,
    "TPC-H with a synthetic Zipf-skewed query log over the augmented "
    "templates (log_queries/log_skew/log_slots knobs)",
)
