"""APB-1 Release II (OLAP Council, 1998), scaled down.

APB-1 models an OLAP sales analysis: a deep product hierarchy (code ->
class -> group -> family -> line -> division), a customer hierarchy (store
-> retailer), a channel dimension, and a monthly time hierarchy (month ->
quarter -> year).  The benchmark's *density* parameter (the paper runs "2%
density on 10 channels") controls what fraction of the possible
(time x product x store x channel) combinations actually appear in the
history fact table; we honor it by drawing that many fact rows.

Two fact tables, as in the paper's setup where "some queries in the workload
access two fact tables at the same time ... we split them into two
independent queries": ``actuals`` (sales history) and ``budget`` (planning
data at the same dimensionality, fewer rows).  The 31 template queries mix
hierarchy levels and dimensions the way APB-1's analytic templates do —
year-level rollups, quarter/channel slices, product-line drilldowns,
store-level lookups — and are split 21/10 across the two facts.
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.table import Table, hash_join
from repro.relational.types import INT8, INT16, INT32, INT64
from repro.workloads.base import BenchmarkInstance
from repro.workloads.synth import skewed_integers

START_YEAR = 1994
NMONTHS = 24
NCHANNELS = 10

# Product hierarchy sizes (top down).
NDIVISIONS = 5
NLINES = 10
NFAMILIES = 50
NGROUPS = 200
NCLASSES = 600
NCODES = 2400


def _time_schema() -> TableSchema:
    return TableSchema(
        "time",
        [
            Column("month", INT32),
            Column("quarter", INT16),
            Column("year", INT16),
        ],
        primary_key=("month",),
    )


def _product_schema() -> TableSchema:
    return TableSchema(
        "product",
        [
            Column("prodkey", INT32),
            Column("p_class", INT16),
            Column("p_group", INT16),
            Column("p_family", INT16),
            Column("p_line", INT8),
            Column("p_division", INT8),
        ],
        primary_key=("prodkey",),
    )


def _store_schema() -> TableSchema:
    return TableSchema(
        "store",
        [Column("storekey", INT32), Column("retailer", INT16)],
        primary_key=("storekey",),
    )


def _channel_schema() -> TableSchema:
    return TableSchema(
        "channel",
        [Column("chankey", INT8), Column("chan_type", INT8)],
        primary_key=("chankey",),
    )


def _actuals_schema() -> TableSchema:
    return TableSchema(
        "actuals",
        [
            Column("salekey", INT64),
            Column("month", INT32),
            Column("prodkey", INT32),
            Column("storekey", INT32),
            Column("chankey", INT8),
            Column("unitssold", INT16),
            Column("dollarsales", INT32),
            Column("cost", INT32),
        ],
        primary_key=("salekey",),
    )


def _budget_schema() -> TableSchema:
    return TableSchema(
        "budget",
        [
            Column("budkey", INT64),
            Column("month", INT32),
            Column("prodkey", INT32),
            Column("storekey", INT32),
            Column("chankey", INT8),
            Column("budgetunits", INT16),
            Column("budgetdollars", INT32),
        ],
        primary_key=("budkey",),
    )


def _months() -> np.ndarray:
    months = []
    for y in range(START_YEAR, START_YEAR + NMONTHS // 12):
        for m in range(1, 13):
            months.append(y * 100 + m)
    return np.array(months, dtype=np.int64)


def generate_apb(
    actuals_rows: int | None = None,
    budget_rows: int | None = None,
    nstores: int = 900,
    density: float = 0.02,
    seed: int = 11,
    skew: float = 0.0,
) -> BenchmarkInstance:
    """Generate an APB-1 instance.

    With ``actuals_rows=None`` the row count follows the density:
    ``density x |months| x |codes| x |stores| x |channels|`` capped at 200k
    so the default stays laptop-sized; pass explicit counts to override.
    ``skew > 0`` replaces the default squared-draw product popularity with a
    Zipf draw of that exponent and skews store popularity the same way.
    """
    rng = np.random.default_rng(seed)
    months = _months()
    time_table = Table(
        _time_schema(),
        {
            "month": months,
            "quarter": (months // 100) * 10 + ((months % 100) - 1) // 3 + 1,
            "year": months // 100,
        },
    )

    codes = np.arange(NCODES, dtype=np.int64)
    classes = codes * NCLASSES // NCODES
    groups = classes * NGROUPS // NCLASSES
    families = groups * NFAMILIES // NGROUPS
    lines = families * NLINES // NFAMILIES
    divisions = lines * NDIVISIONS // NLINES
    product = Table(
        _product_schema(),
        {
            "prodkey": codes,
            "p_class": classes,
            "p_group": groups,
            "p_family": families,
            "p_line": lines,
            "p_division": divisions,
        },
    )

    store = Table(
        _store_schema(),
        {
            "storekey": np.arange(nstores, dtype=np.int64),
            "retailer": np.arange(nstores, dtype=np.int64) // 10,
        },
    )
    channel = Table(
        _channel_schema(),
        {
            "chankey": np.arange(NCHANNELS, dtype=np.int64),
            "chan_type": np.arange(NCHANNELS, dtype=np.int64) // 2,
        },
    )

    possible = NMONTHS * NCODES * nstores * NCHANNELS
    if actuals_rows is None:
        actuals_rows = min(int(density * possible), 200_000)
    if budget_rows is None:
        budget_rows = actuals_rows // 4

    def fact_columns(n: int) -> dict[str, np.ndarray]:
        # Sales arrive in time order (the natural load order of a history
        # table); products skew toward popular codes via a squared draw, or
        # via a Zipf draw when an explicit skew exponent is requested.
        month_col = np.sort(rng.choice(months, size=n))
        if skew > 0:
            popular = skewed_integers(rng, 0, NCODES, n, skew)
            stores = skewed_integers(rng, 0, nstores, n, skew)
        else:
            popular = (rng.random(n) ** 2 * NCODES).astype(np.int64)
            stores = rng.integers(0, nstores, n)
        return {
            "month": month_col,
            "prodkey": popular,
            "storekey": stores,
            "chankey": rng.integers(0, NCHANNELS, n),
        }

    a_cols = fact_columns(actuals_rows)
    units = rng.integers(1, 100, actuals_rows)
    dollars = units * rng.integers(5, 50, actuals_rows)
    actuals = Table(
        _actuals_schema(),
        {
            "salekey": np.arange(actuals_rows, dtype=np.int64),
            **a_cols,
            "unitssold": units,
            "dollarsales": dollars,
            "cost": dollars * 7 // 10,
        },
    )

    b_cols = fact_columns(budget_rows)
    b_units = rng.integers(1, 100, budget_rows)
    budget = Table(
        _budget_schema(),
        {
            "budkey": np.arange(budget_rows, dtype=np.int64),
            **b_cols,
            "budgetunits": b_units,
            "budgetdollars": b_units * rng.integers(5, 50, budget_rows),
        },
    )

    star = StarSchema("apb")
    star.add_fact(_actuals_schema())
    star.add_fact(_budget_schema())
    for dim_schema in (_time_schema(), _product_schema(), _store_schema(), _channel_schema()):
        star.add_dimension(dim_schema)
    for fact in ("actuals", "budget"):
        star.add_foreign_key(ForeignKey(fact, "month", "time", "month"))
        star.add_foreign_key(ForeignKey(fact, "prodkey", "product", "prodkey"))
        star.add_foreign_key(ForeignKey(fact, "storekey", "store", "storekey"))
        star.add_foreign_key(ForeignKey(fact, "chankey", "channel", "chankey"))

    def flatten(fact: Table, name: str) -> Table:
        flat = hash_join(fact, time_table, "month", "month")
        flat = hash_join(flat, product, "prodkey", "prodkey")
        flat = hash_join(flat, store, "storekey", "storekey")
        return hash_join(flat, channel, "chankey", "chankey", new_name=name)

    return BenchmarkInstance(
        name="apb",
        star=star,
        tables={
            "actuals": actuals,
            "budget": budget,
            "time": time_table,
            "product": product,
            "store": store,
            "channel": channel,
        },
        flat_tables={
            "actuals": flatten(actuals, "actuals_flat"),
            "budget": flatten(budget, "budget_flat"),
        },
        workload=apb_queries(),
        primary_keys={"actuals": ("salekey",), "budget": ("budkey",)},
        fk_attrs={
            "actuals": ("month", "prodkey", "storekey", "chankey"),
            "budget": ("month", "prodkey", "storekey", "chankey"),
        },
    )


def apb_queries() -> Workload:
    """31 template queries over the two facts (21 actuals / 10 budget)."""
    sales = [Aggregate("sum", ("dollarsales",))]
    units = [Aggregate("sum", ("unitssold",))]
    margin = [Aggregate("sum", ("dollarsales",)), Aggregate("sum", ("cost",))]
    bud = [Aggregate("sum", ("budgetdollars",))]
    bunits = [Aggregate("sum", ("budgetunits",))]
    y0, y1 = START_YEAR, START_YEAR + 1
    queries = [
        # -- actuals: time rollups at different grains
        Query("A01", "actuals", [EqPredicate("year", y0)], sales, group_by=("quarter",)),
        Query("A02", "actuals", [EqPredicate("quarter", y0 * 10 + 2)], sales, group_by=("month",)),
        Query("A03", "actuals", [EqPredicate("month", y0 * 100 + 6)], sales, group_by=("p_division",)),
        Query("A04", "actuals", [RangePredicate("month", y0 * 100 + 1, y0 * 100 + 3)], units, group_by=("p_line",)),
        # -- product hierarchy slices
        Query("A05", "actuals", [EqPredicate("p_division", 2), EqPredicate("year", y0)], sales, group_by=("p_line",)),
        Query("A06", "actuals", [EqPredicate("p_line", 4), EqPredicate("quarter", y0 * 10 + 1)], sales, group_by=("p_family",)),
        Query("A07", "actuals", [EqPredicate("p_family", 17), EqPredicate("year", y1)], units, group_by=("p_group",)),
        Query("A08", "actuals", [EqPredicate("p_group", 88)], sales, group_by=("month",)),
        Query("A09", "actuals", [EqPredicate("p_class", 265), EqPredicate("year", y1)], margin, group_by=("month",)),
        Query("A10", "actuals", [EqPredicate("prodkey", 1061)], sales, group_by=("month",)),
        # -- channel and customer slices
        Query("A11", "actuals", [EqPredicate("chankey", 3), EqPredicate("year", y0)], sales, group_by=("quarter",)),
        Query("A12", "actuals", [InPredicate("chankey", (2, 5, 7)), EqPredicate("quarter", y1 * 10 + 3)], units, group_by=("chankey",)),
        Query("A13", "actuals", [EqPredicate("retailer", 31), EqPredicate("year", y1)], sales, group_by=("month",)),
        Query("A14", "actuals", [EqPredicate("storekey", 355)], sales, group_by=("month",)),
        Query("A15", "actuals", [EqPredicate("retailer", 12), EqPredicate("p_division", 1)], margin, group_by=("p_line", "quarter")),
        # -- combined drilldowns
        Query("A16", "actuals", [EqPredicate("p_line", 7), EqPredicate("chankey", 1), EqPredicate("year", y0)], sales, group_by=("p_family", "month")),
        Query("A17", "actuals", [EqPredicate("p_family", 33), EqPredicate("retailer", 45)], units, group_by=("month",)),
        Query("A18", "actuals", [EqPredicate("month", y1 * 100 + 11), EqPredicate("p_division", 4)], sales, group_by=("p_group", "chankey")),
        Query("A19", "actuals", [RangePredicate("p_group", 120, 129), EqPredicate("year", y1)], sales, group_by=("p_group",)),
        Query("A20", "actuals", [EqPredicate("quarter", y1 * 10 + 4), InPredicate("p_line", (2, 8))], margin, group_by=("p_line", "month")),
        Query("A21", "actuals", [EqPredicate("year", y1), EqPredicate("chan_type", 2)], units, group_by=("chankey", "quarter")),
        # -- budget: the planning-side templates
        Query("B01", "budget", [EqPredicate("year", y0)], bud, group_by=("quarter",)),
        Query("B02", "budget", [EqPredicate("quarter", y0 * 10 + 3)], bud, group_by=("month",)),
        Query("B03", "budget", [EqPredicate("p_division", 3)], bud, group_by=("p_line", "quarter")),
        Query("B04", "budget", [EqPredicate("p_line", 5), EqPredicate("year", y1)], bunits, group_by=("p_family",)),
        Query("B05", "budget", [EqPredicate("p_family", 21), EqPredicate("quarter", y1 * 10 + 2)], bud, group_by=("p_group",)),
        Query("B06", "budget", [EqPredicate("retailer", 8)], bud, group_by=("month",)),
        Query("B07", "budget", [EqPredicate("chankey", 6), EqPredicate("year", y1)], bunits, group_by=("quarter",)),
        Query("B08", "budget", [EqPredicate("p_group", 150), EqPredicate("chankey", 2)], bud, group_by=("month",)),
        Query("B09", "budget", [EqPredicate("month", y0 * 100 + 9)], bud, group_by=("p_division", "chankey")),
        Query("B10", "budget", [RangePredicate("p_class", 300, 320), EqPredicate("year", y0)], bunits, group_by=("p_class",)),
    ]
    return Workload("apb31", queries)
