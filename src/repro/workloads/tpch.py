"""TPC-H (scaled down), with the *orders bridge* the designer exploits.

Unlike SSB — which denormalizes orders into the ``lineorder`` fact — TPC-H
keeps a normalized schema of 8 tables where ``lineitem`` reaches the
customer-side and date-side attributes only *through* the ``orders`` bridge:

    lineitem --l_orderkey--> orders --o_custkey--> customer --> nation/region
                                   \\--o_orderdate--> date hierarchy

``l_orderkey`` therefore does dual duty: it is both the fact's primary-key
prefix and a near-perfect determinant of ``o_orderdate`` (orders are loaded
in date order), which makes PK clustering ~ time clustering — exactly the
correlation CORADD's clustered-MV designer exploits and a
correlation-oblivious designer cannot see.

Correlated hierarchies generated (all dictionary-coded integers):

* geography: nation -> region (25 -> 5, strength 1), reached separately
  from the customer side (``c_nation``/``c_region``) and the supplier side
  (``s_nation``/``s_region``);
* product: type -> brand -> mfgr (150 -> 25 -> 5, strength 1 upward);
* dates: ``o_orderdate -> o_yearmonth -> o_year`` via the shared calendar,
  plus ``l_shipdate`` trailing ``o_orderdate`` by 1-121 days (strong but
  imperfect), and ``l_linestatus``/``l_returnflag`` determined by whether a
  line shipped before the benchmark's "current date" (1995-06-17).

Cardinalities follow TPC-H's ratios at 1/100 of SF 1 per unit of ``scale``:
customer : orders : lineitem = 1 : 10 : ~40, partsupp = 4 rows per part,
and one third of customers never place orders (the spec's rule).  The
``skew`` knob Zipf-skews part and customer popularity in the fact
(``skew == 0`` keeps the spec's uniform draws).

The query suite encodes 12 single-fact warehouse queries with the predicate
shapes (range / IN / equality / group-by) of Q1, Q3, Q4, Q5, Q6, Q7, Q8,
Q10, Q12, Q14, Q15 and Q19, translated to the flattened attribute universe;
:func:`augment_workload` expands it 4x the same way the SSB expander does.
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.table import Table, hash_join
from repro.relational.types import INT8, INT16, INT32, INT64
from repro.workloads.augment import AugmentSpec
from repro.workloads.augment import augment_workload as generic_augment
from repro.workloads.base import BenchmarkInstance
from repro.workloads.synth import date_dimension, datekey_add_days, skewed_integers

START_YEAR = 1992
NYEARS = 7
CURRENT_DATE = 19950617  # the spec's ":1" date splitting F from O lines
NREGIONS = 5
NNATIONS = 25
PARTSUPP_PER_PART = 4
MAX_SHIP_DAYS = 121  # lines ship 1..121 days after the order

# One unit of scale = 1/100 of TPC-H scale factor 1.
BASE_SUPPLIERS = 100
BASE_CUSTOMERS = 1_500
BASE_PARTS = 2_000
BASE_ORDERS = 15_000

REGION_NAMES = ["AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST"]
# Nation names grouped by region so that n_regionkey == n_nationkey // 5.
NATION_NAMES = [
    "ALGERIA", "ETHIOPIA", "KENYA", "MOROCCO", "MOZAMBIQUE",
    "ARGENTINA", "BRAZIL", "CANADA", "PERU", "UNITED STATES",
    "CHINA", "INDIA", "INDONESIA", "JAPAN", "VIETNAM",
    "FRANCE", "GERMANY", "ROMANIA", "RUSSIA", "UNITED KINGDOM",
    "EGYPT", "IRAN", "IRAQ", "JORDAN", "SAUDI ARABIA",
]
MKTSEGMENTS = ["AUTOMOBILE", "BUILDING", "FURNITURE", "HOUSEHOLD", "MACHINERY"]
PRIORITIES = ["1-URGENT", "2-HIGH", "3-MEDIUM", "4-NOT SPECIFIED", "5-LOW"]
SHIPMODES = ["AIR", "FOB", "MAIL", "RAIL", "REG AIR", "SHIP", "TRUCK"]
SHIPINSTRUCTS = ["COLLECT COD", "DELIVER IN PERSON", "NONE", "TAKE BACK RETURN"]
RETURNFLAGS = ["A", "N", "R"]
LINESTATUSES = ["F", "O"]
ORDERSTATUSES = ["F", "O", "P"]
MFGRS = [f"Manufacturer#{i}" for i in range(1, 6)]


def tpch_cardinalities(scale: float = 1.0) -> dict[str, int]:
    """Exact table cardinalities at ``scale`` (lineitem is ~4x orders but
    stochastic, so it is not listed)."""
    return {
        "region": NREGIONS,
        "nation": NNATIONS,
        "supplier": max(NNATIONS, int(BASE_SUPPLIERS * scale)),
        "customer": max(30, int(BASE_CUSTOMERS * scale)),
        "part": max(20, int(BASE_PARTS * scale)),
        "partsupp": PARTSUPP_PER_PART * max(20, int(BASE_PARTS * scale)),
        "orders": max(50, int(BASE_ORDERS * scale)),
    }


# ------------------------------------------------------------------- schema


def _region_schema() -> TableSchema:
    return TableSchema("region", [Column("r_regionkey", INT8)],
                       primary_key=("r_regionkey",))


def _nation_schema() -> TableSchema:
    return TableSchema(
        "nation",
        [Column("n_nationkey", INT8), Column("n_regionkey", INT8)],
        primary_key=("n_nationkey",),
    )


def _supplier_schema() -> TableSchema:
    return TableSchema(
        "supplier",
        [
            Column("s_suppkey", INT32),
            Column("s_nationkey", INT8),
            Column("s_acctbal", INT32),
        ],
        primary_key=("s_suppkey",),
    )


def _customer_schema() -> TableSchema:
    return TableSchema(
        "customer",
        [
            Column("c_custkey", INT32),
            Column("c_nationkey", INT8),
            Column("c_mktsegment", INT8),
            Column("c_acctbal", INT32),
        ],
        primary_key=("c_custkey",),
    )


def _part_schema() -> TableSchema:
    return TableSchema(
        "part",
        [
            Column("p_partkey", INT32),
            Column("p_mfgr", INT8),
            Column("p_brand", INT8),
            Column("p_type", INT16),
            Column("p_size", INT8),
            Column("p_container", INT8),
            Column("p_retailprice", INT32),
        ],
        primary_key=("p_partkey",),
    )


def _partsupp_schema() -> TableSchema:
    return TableSchema(
        "partsupp",
        [
            Column("ps_partkey", INT32),
            Column("ps_suppkey", INT32),
            Column("ps_availqty", INT16),
            Column("ps_supplycost", INT32),
        ],
        primary_key=("ps_partkey", "ps_suppkey"),
    )


def _orders_schema() -> TableSchema:
    return TableSchema(
        "orders",
        [
            Column("o_orderkey", INT64),
            Column("o_custkey", INT32),
            Column("o_orderstatus", INT8),
            Column("o_totalprice", INT32),
            Column("o_orderdate", INT32),
            Column("o_orderpriority", INT8),
            Column("o_shippriority", INT8),
        ],
        primary_key=("o_orderkey",),
    )


def _lineitem_schema() -> TableSchema:
    # l_shipyear / l_shipyearmonth are dictionary-coded derived date levels
    # carried in the fact, the same way SSB's fact carries orderdate: the
    # ship-date hierarchy is part of the attribute universe.
    return TableSchema(
        "lineitem",
        [
            Column("l_orderkey", INT64),
            Column("l_linenumber", INT8),
            Column("l_partkey", INT32),
            Column("l_suppkey", INT32),
            Column("l_quantity", INT8),
            Column("l_extendedprice", INT32),
            Column("l_discount", INT8),
            Column("l_tax", INT8),
            Column("l_returnflag", INT8),
            Column("l_linestatus", INT8),
            Column("l_shipdate", INT32),
            Column("l_commitdate", INT32),
            Column("l_receiptdate", INT32),
            Column("l_shipmode", INT8),
            Column("l_shipinstruct", INT8),
            Column("l_shipyear", INT16),
            Column("l_shipyearmonth", INT32),
        ],
        primary_key=("l_orderkey", "l_linenumber"),
    )


def _orders_dim_schema() -> TableSchema:
    """The orders bridge as the flattener sees it: the normalized columns
    plus the calendar hierarchy of ``o_orderdate``."""
    return TableSchema(
        "orders",
        [
            Column("o_orderkey", INT64),
            Column("o_custkey", INT32),
            Column("o_orderstatus", INT8),
            Column("o_totalprice", INT32),
            Column("o_orderdate", INT32),
            Column("o_orderpriority", INT8),
            Column("o_year", INT16),
            Column("o_yearmonth", INT32),
            Column("o_monthnum", INT8),
            Column("o_weeknum", INT8),
        ],
        primary_key=("o_orderkey",),
    )


def _customer_dim_schema() -> TableSchema:
    return TableSchema(
        "customer",
        [
            Column("c_custkey", INT32),
            Column("c_mktsegment", INT8),
            Column("c_acctbal", INT32),
            Column("c_nation", INT8),
            Column("c_region", INT8),
        ],
        primary_key=("c_custkey",),
    )


def _supplier_dim_schema() -> TableSchema:
    return TableSchema(
        "supplier",
        [
            Column("s_suppkey", INT32),
            Column("s_acctbal", INT32),
            Column("s_nation", INT8),
            Column("s_region", INT8),
        ],
        primary_key=("s_suppkey",),
    )


# ---------------------------------------------------------------- generator


def _partsupp_step(nsupp: int) -> int:
    """Stride scattering a part's 4 suppliers over the supplier space; must
    keep i*step distinct (mod nsupp) for i in 0..3."""
    step = nsupp // PARTSUPP_PER_PART + 1
    while any(j * step % nsupp == 0 for j in range(1, PARTSUPP_PER_PART)):
        step += 1
    return step


def generate_tpch(
    scale: float = 1.0,
    seed: int = 13,
    skew: float = 0.0,
    orders_rows: int | None = None,
) -> BenchmarkInstance:
    """Generate a TPC-H instance at ``scale`` (1.0 ~ 1/100 of SF 1).

    ``orders_rows`` overrides the order count directly (dimensions still
    follow ``scale``); lineitem draws 1-7 lines per order.
    """
    rng = np.random.default_rng(seed)
    card = tpch_cardinalities(scale)
    nsupp = card["supplier"]
    ncust = card["customer"]
    npart = card["part"]
    norders = max(50, orders_rows) if orders_rows is not None else card["orders"]

    date_cols = date_dimension(START_YEAR, NYEARS)
    calendar = date_cols["datekey"]

    region = Table(
        _region_schema(),
        {"r_regionkey": np.arange(NREGIONS, dtype=np.int64)},
        decoders={"r_regionkey": REGION_NAMES},
    )
    nation_keys = np.arange(NNATIONS, dtype=np.int64)
    nation = Table(
        _nation_schema(),
        {"n_nationkey": nation_keys, "n_regionkey": nation_keys // NREGIONS},
        decoders={"n_nationkey": NATION_NAMES, "n_regionkey": REGION_NAMES},
    )

    # Balanced (shuffled round-robin) nation assignment: every nation keeps
    # suppliers/customers even at small scales, so nation-predicated
    # queries never go trivially empty.
    s_nationkey = rng.permutation(np.arange(nsupp, dtype=np.int64) % NNATIONS)
    supplier = Table(
        _supplier_schema(),
        {
            "s_suppkey": np.arange(1, nsupp + 1, dtype=np.int64),
            "s_nationkey": s_nationkey,
            "s_acctbal": rng.integers(-1_000, 10_000, nsupp),
        },
    )

    c_nationkey = rng.permutation(np.arange(ncust, dtype=np.int64) % NNATIONS)
    c_mktsegment = rng.integers(0, len(MKTSEGMENTS), ncust)
    customer = Table(
        _customer_schema(),
        {
            "c_custkey": np.arange(1, ncust + 1, dtype=np.int64),
            "c_nationkey": c_nationkey,
            "c_mktsegment": c_mktsegment,
            "c_acctbal": rng.integers(-1_000, 10_000, ncust),
        },
        decoders={"c_mktsegment": MKTSEGMENTS},
    )

    p_mfgr = rng.integers(0, 5, npart)
    p_brand = p_mfgr * 5 + rng.integers(0, 5, npart)
    p_type = p_brand * 6 + rng.integers(0, 6, npart)
    p_retailprice = rng.integers(900, 2_100, npart)
    part = Table(
        _part_schema(),
        {
            "p_partkey": np.arange(1, npart + 1, dtype=np.int64),
            "p_mfgr": p_mfgr,
            "p_brand": p_brand,
            "p_type": p_type,
            "p_size": rng.integers(1, 51, npart),
            "p_container": rng.integers(0, 40, npart),
            "p_retailprice": p_retailprice,
        },
        decoders={"p_mfgr": MFGRS},
    )

    step = _partsupp_step(nsupp)
    ps_partkey = np.repeat(np.arange(1, npart + 1, dtype=np.int64), PARTSUPP_PER_PART)
    ps_slot = np.tile(np.arange(PARTSUPP_PER_PART, dtype=np.int64), npart)
    partsupp = Table(
        _partsupp_schema(),
        {
            "ps_partkey": ps_partkey,
            "ps_suppkey": (ps_partkey - 1 + ps_slot * step) % nsupp + 1,
            "ps_availqty": rng.integers(1, 10_000, npart * PARTSUPP_PER_PART),
            "ps_supplycost": rng.integers(100, 1_000, npart * PARTSUPP_PER_PART),
        },
    )

    # ---- orders: date-ordered keys (the dual-duty l_orderkey correlation),
    # only two thirds of customers ever order (the spec's rule), and dates
    # stop MAX_SHIP_DAYS+1 before the calendar end so every line ships
    # inside it.
    custkeys = np.arange(1, ncust + 1, dtype=np.int64)
    eligible = custkeys[custkeys % 3 != 0]
    order_day_idx = np.sort(
        rng.integers(0, len(calendar) - (MAX_SHIP_DAYS + 1), norders)
    )
    o_orderdate = calendar[order_day_idx]
    o_custkey = eligible[skewed_integers(rng, 0, len(eligible), norders, skew)]
    current_idx = int(np.searchsorted(calendar, CURRENT_DATE))
    # F: every line shipped before the current date; O: ordered after it;
    # P: the in-flight band in between — all functions of the order date.
    o_orderstatus = np.where(
        order_day_idx + MAX_SHIP_DAYS + 1 < current_idx,
        0,
        np.where(order_day_idx > current_idx, 1, 2),
    )
    o_orderpriority = rng.integers(0, len(PRIORITIES), norders)

    # ---- lineitem: 1..7 lines per order.
    counts = rng.integers(1, 8, norders)
    total = int(counts.sum())
    offsets = np.concatenate(([0], np.cumsum(counts)[:-1]))
    order_idx = np.repeat(np.arange(norders), counts)
    l_orderkey = order_idx + 1
    l_linenumber = np.arange(total, dtype=np.int64) - np.repeat(offsets, counts) + 1
    l_partkey = skewed_integers(rng, 1, npart + 1, total, skew)
    l_suppkey = (
        l_partkey - 1 + rng.integers(0, PARTSUPP_PER_PART, total) * step
    ) % nsupp + 1
    l_quantity = rng.integers(1, 51, total)
    l_extendedprice = l_quantity * p_retailprice[l_partkey - 1]
    line_orderdate = o_orderdate[order_idx]
    l_shipdate = datekey_add_days(
        line_orderdate, rng.integers(1, MAX_SHIP_DAYS + 1, total), calendar
    )
    l_commitdate = datekey_add_days(
        line_orderdate, rng.integers(30, 91, total), calendar
    )
    l_receiptdate = datekey_add_days(l_shipdate, rng.integers(1, 31, total), calendar)
    l_linestatus = (l_shipdate > CURRENT_DATE).astype(np.int64)
    # Shipped lines returned (R) or accepted (A); open lines are N.
    l_returnflag = np.where(
        l_linestatus == 1, 1, np.where(rng.random(total) < 0.5, 0, 2)
    )
    lineitem = Table(
        _lineitem_schema(),
        {
            "l_orderkey": l_orderkey,
            "l_linenumber": l_linenumber,
            "l_partkey": l_partkey,
            "l_suppkey": l_suppkey,
            "l_quantity": l_quantity,
            "l_extendedprice": l_extendedprice,
            "l_discount": rng.integers(0, 11, total),
            "l_tax": rng.integers(0, 9, total),
            "l_returnflag": l_returnflag,
            "l_linestatus": l_linestatus,
            "l_shipdate": l_shipdate,
            "l_commitdate": l_commitdate,
            "l_receiptdate": l_receiptdate,
            "l_shipmode": rng.integers(0, len(SHIPMODES), total),
            "l_shipinstruct": rng.integers(0, len(SHIPINSTRUCTS), total),
            "l_shipyear": l_shipdate // 10_000,
            "l_shipyearmonth": l_shipdate // 100,
        },
        decoders={
            "l_returnflag": RETURNFLAGS,
            "l_linestatus": LINESTATUSES,
            "l_shipmode": SHIPMODES,
            "l_shipinstruct": SHIPINSTRUCTS,
        },
    )

    o_totalprice = np.bincount(
        l_orderkey, weights=l_extendedprice.astype(np.float64), minlength=norders + 1
    )[1:].astype(np.int64)
    orders = Table(
        _orders_schema(),
        {
            "o_orderkey": np.arange(1, norders + 1, dtype=np.int64),
            "o_custkey": o_custkey,
            "o_orderstatus": o_orderstatus,
            "o_totalprice": o_totalprice,
            "o_orderdate": o_orderdate,
            "o_orderpriority": o_orderpriority,
            "o_shippriority": np.zeros(norders, dtype=np.int64),
        },
        decoders={"o_orderstatus": ORDERSTATUSES, "o_orderpriority": PRIORITIES},
    )

    # ---- flattening through the orders bridge: the calendar hierarchy
    # rides on the bridge, the geography hierarchies on the enriched
    # customer/supplier dimensions.
    orders_dim = Table(
        _orders_dim_schema(),
        {
            "o_orderkey": orders.column("o_orderkey"),
            "o_custkey": o_custkey,
            "o_orderstatus": o_orderstatus,
            "o_totalprice": o_totalprice,
            "o_orderdate": o_orderdate,
            "o_orderpriority": o_orderpriority,
            "o_year": date_cols["year"][order_day_idx],
            "o_yearmonth": date_cols["yearmonth"][order_day_idx],
            "o_monthnum": date_cols["monthnum"][order_day_idx],
            "o_weeknum": date_cols["weeknum"][order_day_idx],
        },
        decoders={"o_orderstatus": ORDERSTATUSES, "o_orderpriority": PRIORITIES},
    )
    customer_dim = Table(
        _customer_dim_schema(),
        {
            "c_custkey": customer.column("c_custkey"),
            "c_mktsegment": c_mktsegment,
            "c_acctbal": customer.column("c_acctbal"),
            "c_nation": c_nationkey,
            "c_region": c_nationkey // NREGIONS,
        },
        decoders={
            "c_mktsegment": MKTSEGMENTS,
            "c_nation": NATION_NAMES,
            "c_region": REGION_NAMES,
        },
    )
    supplier_dim = Table(
        _supplier_dim_schema(),
        {
            "s_suppkey": supplier.column("s_suppkey"),
            "s_acctbal": supplier.column("s_acctbal"),
            "s_nation": s_nationkey,
            "s_region": s_nationkey // NREGIONS,
        },
        decoders={"s_nation": NATION_NAMES, "s_region": REGION_NAMES},
    )

    flat = hash_join(lineitem, orders_dim, "l_orderkey", "o_orderkey")
    flat = hash_join(flat, customer_dim, "o_custkey", "c_custkey")
    flat = hash_join(flat, supplier_dim, "l_suppkey", "s_suppkey")
    flat = hash_join(flat, part, "l_partkey", "p_partkey", new_name="lineitem_flat")

    # The star records the denormalized join graph the flattener walks
    # (including the orders -> customer bridge FK); ``tables`` holds the 8
    # normalized TPC-H relations.
    star = StarSchema("tpch")
    star.add_fact(_lineitem_schema())
    star.add_dimension(_orders_dim_schema())
    star.add_dimension(_customer_dim_schema())
    star.add_dimension(_supplier_dim_schema())
    star.add_dimension(_part_schema())
    star.add_foreign_key(ForeignKey("lineitem", "l_orderkey", "orders", "o_orderkey"))
    star.add_foreign_key(ForeignKey("orders", "o_custkey", "customer", "c_custkey"))
    star.add_foreign_key(ForeignKey("lineitem", "l_suppkey", "supplier", "s_suppkey"))
    star.add_foreign_key(ForeignKey("lineitem", "l_partkey", "part", "p_partkey"))

    return BenchmarkInstance(
        name="tpch",
        star=star,
        tables={
            "region": region,
            "nation": nation,
            "supplier": supplier,
            "customer": customer,
            "part": part,
            "partsupp": partsupp,
            "orders": orders,
            "lineitem": lineitem,
        },
        flat_tables={"lineitem": flat},
        workload=tpch_queries(),
        primary_keys={"lineitem": ("l_orderkey", "l_linenumber")},
        fk_attrs={
            "lineitem": ("l_orderkey", "l_partkey", "l_suppkey", "l_shipdate")
        },
    )


# ----------------------------------------------------------------- queries


def tpch_queries() -> Workload:
    """12 warehouse queries with the predicate shapes of the TPC-H suite,
    over the flattened (bridge-joined) attribute universe."""
    sum_rev = [Aggregate("sum", ("l_extendedprice",))]
    sum_disc_price = [Aggregate("sum", ("l_extendedprice", "l_discount"))]
    count_lines = [Aggregate("count", ("l_orderkey",))]
    queries = [
        # Q1: pricing summary report — one wide range, tiny group space.
        Query(
            "TQ1",
            "lineitem",
            [RangePredicate("l_shipdate", 19920101, 19980902)],
            [Aggregate("sum", ("l_quantity",)),
             Aggregate("sum", ("l_extendedprice",))],
            group_by=("l_returnflag", "l_linestatus"),
        ),
        # Q3: shipping priority — segment via the customer bridge plus the
        # order/ship date straddle.
        Query(
            "TQ3",
            "lineitem",
            [
                EqPredicate("c_mktsegment", 1),
                RangePredicate("o_orderdate", 19920101, 19950314),
                RangePredicate("l_shipdate", 19950315, 19981231),
            ],
            sum_rev,
            group_by=("o_yearmonth",),
        ),
        # Q4: order priority checking over one quarter.
        Query(
            "TQ4",
            "lineitem",
            [RangePredicate("o_yearmonth", 199307, 199309)],
            count_lines,
            group_by=("o_orderpriority",),
        ),
        # Q5: local supplier volume — region reached only through the
        # orders -> customer bridge, the paper's headline pattern.
        Query(
            "TQ5",
            "lineitem",
            [EqPredicate("c_region", 3), EqPredicate("o_year", 1994)],
            sum_rev,
            group_by=("c_nation",),
        ),
        # Q6: forecasting revenue change — pure fact-side ranges.
        Query(
            "TQ6",
            "lineitem",
            [
                EqPredicate("l_shipyear", 1994),
                RangePredicate("l_discount", 5, 7),
                RangePredicate("l_quantity", 1, 23),
            ],
            sum_disc_price,
        ),
        # Q7: volume shipping between two nations.
        Query(
            "TQ7",
            "lineitem",
            [
                EqPredicate("c_nation", 6),
                EqPredicate("s_nation", 16),
                RangePredicate("l_shipyear", 1995, 1996),
            ],
            sum_rev,
            group_by=("l_shipyear",),
        ),
        # Q8: national market share within a region and product line.
        Query(
            "TQ8",
            "lineitem",
            [
                EqPredicate("c_region", 1),
                EqPredicate("p_mfgr", 2),
                RangePredicate("o_year", 1995, 1996),
            ],
            sum_rev,
            group_by=("o_year", "s_nation"),
        ),
        # Q10: returned item reporting by customer nation.
        Query(
            "TQ10",
            "lineitem",
            [
                RangePredicate("o_yearmonth", 199310, 199312),
                EqPredicate("l_returnflag", 2),
            ],
            sum_rev,
            group_by=("c_nation",),
        ),
        # Q12: shipping modes and order priority.
        Query(
            "TQ12",
            "lineitem",
            [InPredicate("l_shipmode", (2, 5)), EqPredicate("o_year", 1994)],
            count_lines,
            group_by=("l_shipmode", "o_orderpriority"),
        ),
        # Q14: promotion effect in one ship month.
        Query(
            "TQ14",
            "lineitem",
            [EqPredicate("l_shipyearmonth", 199509)],
            sum_disc_price,
            group_by=("p_mfgr",),
        ),
        # Q15: top supplier over a quarter of shipments.
        Query(
            "TQ15",
            "lineitem",
            [RangePredicate("l_shipyearmonth", 199601, 199603)],
            sum_rev,
            group_by=("s_nation",),
        ),
        # Q19: discounted revenue for branded parts in bounded quantities.
        Query(
            "TQ19",
            "lineitem",
            [
                InPredicate("p_brand", (5, 12, 21)),
                RangePredicate("l_quantity", 10, 30),
                InPredicate("l_shipmode", (0, 4)),
            ],
            sum_disc_price,
        ),
    ]
    return Workload("tpch12", queries)


# -------------------------------------------------------------- augmentation


AUGMENT_SPEC = AugmentSpec(
    domains={
        "o_year": (START_YEAR, NYEARS),
        "l_shipyear": (START_YEAR, NYEARS),
        "c_region": (0, NREGIONS),
        "s_region": (0, NREGIONS),
        "c_nation": (0, NNATIONS),
        "s_nation": (0, NNATIONS),
        "c_mktsegment": (0, len(MKTSEGMENTS)),
        "o_orderpriority": (0, len(PRIORITIES)),
        "o_orderstatus": (0, len(ORDERSTATUSES)),
        "p_mfgr": (0, 5),
        "p_brand": (0, 25),
        "p_type": (0, 150),
        "l_discount": (0, 11),
        "l_tax": (0, 9),
        "l_quantity": (1, 50),
        "l_shipmode": (0, len(SHIPMODES)),
        "l_returnflag": (0, len(RETURNFLAGS)),
    },
    group_by_pool=(
        "o_year", "c_nation", "s_nation", "p_mfgr", "l_shipmode", "c_region",
    ),
    start_year=START_YEAR,
    nyears=NYEARS,
    yearmonth_attrs=frozenset({"o_yearmonth", "l_shipyearmonth"}),
)


def augment_workload(
    base: Workload, factor: int = 4, seed: int = 7, name: str | None = None
) -> Workload:
    """4x-style variant expansion of the TPC-H suite, mirroring the SSB
    expander (same machinery, TPC-H value domains)."""
    return generic_augment(base, AUGMENT_SPEC, factor=factor, seed=seed, name=name)
