"""The Star Schema Benchmark (O'Neil, O'Neil & Chen, 2007).

Schema: a ``lineorder`` fact with four dimensions — ``date``, ``customer``,
``supplier``, ``part`` — carrying exactly the hierarchies the paper's
correlations live in:

* date: datekey -> yearmonth -> year (strength 1 upward), weeknum
  crossing month boundaries (strength ~0.12 toward yearmonth, Table 1);
* geography: city -> nation -> region for customers and suppliers;
* product: brand -> category -> mfgr.

The 13 standard queries (4 flights) are encoded with the paper's predicate
constants translated to the generator's integer codes; selectivities land
where Table 1 reports them (year=1993 ~ 1/7 ~ 0.15, discount bands ~ 3/11 ~
0.27, quantity<25 ~ 0.48, ...).  ``augment_workload`` produces the paper's
"4x larger, varied predicates / targets / group-bys" 52-query workload.

Value encodings (dictionary codes):
  region: 0=AMERICA 1=ASIA 2=EUROPE 3=AFRICA 4=MIDDLE EAST
  nation: region * 5 + k (25 total);  city: nation * 10 + k (250 total)
  mfgr: 0..4;  category: mfgr * 5 + k (25); brand: category * 40 + k (1000)
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import (
    Aggregate,
    EqPredicate,
    InPredicate,
    Query,
    RangePredicate,
    Workload,
)
from repro.relational.schema import Column, ForeignKey, StarSchema, TableSchema
from repro.relational.table import Table, hash_join
from repro.relational.types import INT8, INT16, INT32, INT64
from repro.workloads.augment import AugmentSpec
from repro.workloads.augment import augment_workload as generic_augment
from repro.workloads.base import BenchmarkInstance
from repro.workloads.synth import (
    child_codes,
    date_dimension,
    datekey_add_days,
    skewed_integers,
)

REGIONS = ["AMERICA", "ASIA", "EUROPE", "AFRICA", "MIDDLE EAST"]
START_YEAR = 1992
NYEARS = 7


# ------------------------------------------------------------------- schema


def _date_schema() -> TableSchema:
    return TableSchema(
        "date",
        [
            Column("datekey", INT32),
            Column("year", INT16),
            Column("yearmonth", INT32),
            Column("monthnum", INT8),
            Column("weeknum", INT8),
            Column("daynumweek", INT8),
            Column("daynummonth", INT8),
        ],
        primary_key=("datekey",),
    )


def _customer_schema() -> TableSchema:
    return TableSchema(
        "customer",
        [
            Column("custkey", INT32),
            Column("c_city", INT16),
            Column("c_nation", INT8),
            Column("c_region", INT8),
            Column("c_mktsegment", INT8),
        ],
        primary_key=("custkey",),
    )


def _supplier_schema() -> TableSchema:
    return TableSchema(
        "supplier",
        [
            Column("suppkey", INT32),
            Column("s_city", INT16),
            Column("s_nation", INT8),
            Column("s_region", INT8),
        ],
        primary_key=("suppkey",),
    )


def _part_schema() -> TableSchema:
    return TableSchema(
        "part",
        [
            Column("partkey", INT32),
            Column("p_mfgr", INT8),
            Column("p_category", INT8),
            Column("p_brand", INT16),
            Column("p_color", INT8),
            Column("p_size", INT8),
            Column("p_container", INT8),
        ],
        primary_key=("partkey",),
    )


def _lineorder_schema() -> TableSchema:
    return TableSchema(
        "lineorder",
        [
            Column("orderkey", INT64),
            Column("linenumber", INT8),
            Column("custkey", INT32),
            Column("partkey", INT32),
            Column("suppkey", INT32),
            Column("orderdate", INT32),
            Column("commitdate", INT32),
            Column("quantity", INT8),
            Column("discount", INT8),
            Column("extendedprice", INT32),
            Column("ordtotalprice", INT32),
            Column("revenue", INT32),
            Column("supplycost", INT32),
            Column("tax", INT8),
            Column("shippriority", INT8),
        ],
        primary_key=("orderkey", "linenumber"),
    )


# ---------------------------------------------------------------- generator


def generate_ssb(
    lineorder_rows: int = 60_000,
    ncustomers: int = 1_000,
    nsuppliers: int = 200,
    nparts: int = 2_000,
    seed: int = 42,
    skew: float = 0.0,
) -> BenchmarkInstance:
    """Generate an SSB instance.  Row counts scale freely; hierarchies and
    correlations match the benchmark's structure at any size.  ``skew > 0``
    Zipf-skews which customers/suppliers/parts the fact rows reference
    (popularity skew), leaving the dimension hierarchies untouched."""
    rng = np.random.default_rng(seed)

    date_cols = date_dimension(START_YEAR, NYEARS)
    date_table = Table(_date_schema(), date_cols)
    calendar = date_cols["datekey"]

    c_nation = rng.integers(0, 25, ncustomers)
    customer = Table(
        _customer_schema(),
        {
            "custkey": np.arange(1, ncustomers + 1, dtype=np.int64),
            "c_city": child_codes(c_nation, 10, rng),
            "c_nation": c_nation,
            "c_region": c_nation // 5,
            "c_mktsegment": rng.integers(0, 5, ncustomers),
        },
    )

    s_nation = rng.integers(0, 25, nsuppliers)
    supplier = Table(
        _supplier_schema(),
        {
            "suppkey": np.arange(1, nsuppliers + 1, dtype=np.int64),
            "s_city": child_codes(s_nation, 10, rng),
            "s_nation": s_nation,
            "s_region": s_nation // 5,
        },
    )

    p_mfgr = rng.integers(0, 5, nparts)
    p_category = child_codes(p_mfgr, 5, rng)
    part = Table(
        _part_schema(),
        {
            "partkey": np.arange(1, nparts + 1, dtype=np.int64),
            "p_mfgr": p_mfgr,
            "p_category": p_category,
            "p_brand": child_codes(p_category, 40, rng),
            "p_color": rng.integers(0, 92, nparts),
            "p_size": rng.integers(1, 51, nparts),
            "p_container": rng.integers(0, 40, nparts),
        },
    )

    n = lineorder_rows
    # Orders arrive in date order: orderkey increases with orderdate, the
    # TPC-H/SSB property that makes PK clustering ~ time clustering.
    order_day_idx = np.sort(rng.integers(0, len(calendar), n))
    orderdate = calendar[order_day_idx]
    orderkey = np.arange(1, n + 1, dtype=np.int64)
    quantity = rng.integers(1, 51, n)
    extendedprice = rng.integers(100, 10_000, n) * quantity
    discount = rng.integers(0, 11, n)
    revenue = extendedprice * (100 - discount) // 100
    lineorder = Table(
        _lineorder_schema(),
        {
            "orderkey": orderkey,
            "linenumber": rng.integers(1, 8, n),
            "custkey": skewed_integers(rng, 1, ncustomers + 1, n, skew),
            "partkey": skewed_integers(rng, 1, nparts + 1, n, skew),
            "suppkey": skewed_integers(rng, 1, nsuppliers + 1, n, skew),
            "orderdate": orderdate,
            "commitdate": datekey_add_days(
                orderdate, rng.integers(1, 91, n), calendar
            ),
            "quantity": quantity,
            "discount": discount,
            "extendedprice": extendedprice,
            "ordtotalprice": extendedprice + rng.integers(0, 5_000, n),
            "revenue": revenue,
            "supplycost": extendedprice * 6 // 10,
            "tax": rng.integers(0, 9, n),
            "shippriority": np.zeros(n, dtype=np.int64),
        },
    )

    star = StarSchema("ssb")
    star.add_fact(_lineorder_schema())
    for dim in (date_table, customer, supplier, part):
        star.add_dimension(dim.schema)
    star.add_foreign_key(ForeignKey("lineorder", "orderdate", "date", "datekey"))
    star.add_foreign_key(ForeignKey("lineorder", "custkey", "customer", "custkey"))
    star.add_foreign_key(ForeignKey("lineorder", "suppkey", "supplier", "suppkey"))
    star.add_foreign_key(ForeignKey("lineorder", "partkey", "part", "partkey"))

    flat = hash_join(lineorder, date_table, "orderdate", "datekey")
    flat = hash_join(flat, customer, "custkey", "custkey")
    flat = hash_join(flat, supplier, "suppkey", "suppkey")
    flat = hash_join(flat, part, "partkey", "partkey", new_name="lineorder_flat")

    return BenchmarkInstance(
        name="ssb",
        star=star,
        tables={
            "lineorder": lineorder,
            "date": date_table,
            "customer": customer,
            "supplier": supplier,
            "part": part,
        },
        flat_tables={"lineorder": flat},
        workload=ssb_queries(),
        primary_keys={"lineorder": ("orderkey", "linenumber")},
        fk_attrs={"lineorder": ("orderdate", "custkey", "suppkey", "partkey")},
    )


# ----------------------------------------------------------------- queries


def _city(nation: int, k: int) -> int:
    return nation * 10 + k


def ssb_queries() -> Workload:
    """The 13 SSB queries with the paper's predicate shapes."""
    sum_rev = [Aggregate("sum", ("revenue",))]
    sum_disc_price = [Aggregate("sum", ("extendedprice", "discount"))]
    profit = [Aggregate("sum", ("revenue",)), Aggregate("sum", ("supplycost",))]
    q = [
        Query(
            "Q1.1",
            "lineorder",
            [
                EqPredicate("year", 1993),
                RangePredicate("discount", 1, 3),
                RangePredicate("quantity", 1, 24),
            ],
            sum_disc_price,
        ),
        Query(
            "Q1.2",
            "lineorder",
            [
                EqPredicate("yearmonth", 199401),
                RangePredicate("discount", 4, 6),
                RangePredicate("quantity", 26, 35),
            ],
            sum_disc_price,
        ),
        Query(
            "Q1.3",
            "lineorder",
            [
                EqPredicate("weeknum", 6),
                EqPredicate("year", 1994),
                RangePredicate("discount", 5, 7),
                RangePredicate("quantity", 26, 35),
            ],
            sum_disc_price,
        ),
        Query(
            "Q2.1",
            "lineorder",
            [EqPredicate("p_category", 6), EqPredicate("s_region", 0)],
            sum_rev,
            group_by=("year", "p_brand"),
        ),
        Query(
            "Q2.2",
            "lineorder",
            [RangePredicate("p_brand", 440, 447), EqPredicate("s_region", 1)],
            sum_rev,
            group_by=("year", "p_brand"),
        ),
        Query(
            "Q2.3",
            "lineorder",
            [EqPredicate("p_brand", 350), EqPredicate("s_region", 2)],
            sum_rev,
            group_by=("year", "p_brand"),
        ),
        Query(
            "Q3.1",
            "lineorder",
            [
                EqPredicate("c_region", 1),
                EqPredicate("s_region", 1),
                RangePredicate("year", 1992, 1997),
            ],
            sum_rev,
            group_by=("c_nation", "s_nation", "year"),
        ),
        Query(
            "Q3.2",
            "lineorder",
            [
                EqPredicate("c_nation", 3),
                EqPredicate("s_nation", 3),
                RangePredicate("year", 1992, 1997),
            ],
            sum_rev,
            group_by=("c_city", "s_city", "year"),
        ),
        Query(
            "Q3.3",
            "lineorder",
            [
                InPredicate("c_city", (_city(11, 1), _city(11, 5))),
                InPredicate("s_city", (_city(11, 1), _city(11, 5))),
                RangePredicate("year", 1992, 1997),
            ],
            sum_rev,
            group_by=("c_city", "s_city", "year"),
        ),
        Query(
            "Q3.4",
            "lineorder",
            [
                InPredicate("c_city", (_city(11, 1), _city(11, 5))),
                InPredicate("s_city", (_city(11, 1), _city(11, 5))),
                EqPredicate("yearmonth", 199712),
            ],
            sum_rev,
            group_by=("c_city", "s_city", "year"),
        ),
        Query(
            "Q4.1",
            "lineorder",
            [
                EqPredicate("c_region", 0),
                EqPredicate("s_region", 0),
                InPredicate("p_mfgr", (0, 1)),
            ],
            profit,
            group_by=("year", "c_nation"),
        ),
        Query(
            "Q4.2",
            "lineorder",
            [
                EqPredicate("c_region", 0),
                EqPredicate("s_region", 0),
                InPredicate("year", (1997, 1998)),
                InPredicate("p_mfgr", (0, 1)),
            ],
            profit,
            group_by=("year", "s_nation", "p_category"),
        ),
        Query(
            "Q4.3",
            "lineorder",
            [
                EqPredicate("c_region", 0),
                EqPredicate("s_nation", 3),
                InPredicate("year", (1997, 1998)),
                EqPredicate("p_category", 14),
            ],
            profit,
            group_by=("year", "s_city", "p_brand"),
        ),
    ]
    return Workload("ssb13", q)


# -------------------------------------------------------------- augmentation


# Closed value domains (lo, count) for attributes whose shifted constants
# must wrap rather than walk out of range; predicates on attributes outside
# this map (raw date keys) shift by small offsets and stay valid anyway.
AUGMENT_SPEC = AugmentSpec(
    domains={
        "year": (START_YEAR, NYEARS),
        "c_region": (0, 5),
        "s_region": (0, 5),
        "c_nation": (0, 25),
        "s_nation": (0, 25),
        "p_mfgr": (0, 5),
        "p_category": (0, 25),
        "weeknum": (1, 52),
        "discount": (0, 11),
        "tax": (0, 9),
    },
    group_by_pool=("year", "c_nation", "s_nation", "p_category", "c_region"),
    start_year=START_YEAR,
    nyears=NYEARS,
    yearmonth_attrs=frozenset({"yearmonth"}),
)


def augment_workload(
    base: Workload, factor: int = 4, seed: int = 7, name: str | None = None
) -> Workload:
    """The paper's augmented workload: ``factor`` x more queries "based on
    the original ... but with varied target attributes, predicates,
    GROUP-BY, ORDER-BY and aggregate values"."""
    return generic_augment(base, AUGMENT_SPEC, factor=factor, seed=seed, name=name)
