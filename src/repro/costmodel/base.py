"""Shared cost-model machinery: hypothetical object geometry.

An :class:`ObjectGeometry` describes a *hypothetical* physical object — an MV
candidate defined by its attribute set and clustered key — in the units cost
models reason about: rows, pages, B+Tree height, full-scan seconds.  It is
computed from the statistics facade and the disk model only; nothing is
materialized.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

from repro.relational.query import Query
from repro.stats.collector import TableStatistics
from repro.storage.btree import btree_height
from repro.storage.disk import DiskModel


@dataclass(frozen=True)
class ObjectGeometry:
    """Physical shape of a (hypothetical) clustered object."""

    attrs: tuple[str, ...]
    cluster_key: tuple[str, ...]
    nrows: int
    row_bytes: int
    npages: int
    btree_height: int
    full_scan_s: float

    @staticmethod
    def from_heapfile(heapfile) -> "ObjectGeometry":
        """Geometry of an already-materialized heap file (used when a cost
        model must price plans over physical objects, e.g. emulating the
        commercial optimizer's plan choice at run time)."""
        return ObjectGeometry(
            attrs=tuple(heapfile.table.column_names),
            cluster_key=heapfile.cluster_key,
            nrows=heapfile.nrows,
            row_bytes=heapfile.row_bytes,
            npages=heapfile.npages,
            btree_height=heapfile.btree_height,
            full_scan_s=heapfile.full_scan_seconds(),
        )

    @staticmethod
    def from_attrs(
        stats: TableStatistics,
        disk: DiskModel,
        attrs: tuple[str, ...],
        cluster_key: tuple[str, ...],
    ) -> "ObjectGeometry":
        for a in cluster_key:
            if a not in attrs:
                raise ValueError(f"cluster key attr {a!r} not in MV attrs")
        row_bytes = stats.table.schema.byte_size(attrs)
        nrows = stats.nrows
        npages = disk.pages_for_rows(nrows, row_bytes)
        key_bytes = (
            stats.table.schema.byte_size(cluster_key) if cluster_key else 8
        )
        height = btree_height(max(npages, 1), max(key_bytes, 1), disk.page_size)
        return ObjectGeometry(
            attrs=tuple(attrs),
            cluster_key=tuple(cluster_key),
            nrows=nrows,
            row_bytes=row_bytes,
            npages=npages,
            btree_height=height,
            full_scan_s=disk.full_scan_seconds(npages),
        )

    def covers(self, query: Query) -> bool:
        have = set(self.attrs)
        return all(a in have for a in query.attributes())


@dataclass(frozen=True)
class PlanEstimate:
    """An estimated plan: name, seconds, and the model's internal terms."""

    plan: str
    seconds: float
    read_s: float = 0.0
    seek_s: float = 0.0
    fragments: float = 0.0
    scanned_fraction: float = 1.0


class CostModel(Protocol):
    """What the designer needs from a cost model."""

    def query_seconds(self, geometry: ObjectGeometry, query: Query) -> float:
        """Estimated runtime of ``query`` on an object with ``geometry``
        (best plan the model believes in).  Must return +inf when the
        geometry does not cover the query."""
        ...

    def explain(self, geometry: ObjectGeometry, query: Query) -> PlanEstimate:
        """The winning plan with its cost breakdown."""
        ...
