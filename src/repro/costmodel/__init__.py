"""Cost models: correlation-aware (the paper's) and correlation-oblivious.

Both models estimate query runtime on a hypothetical MV design *without
materializing it*, from statistics alone — that is what makes candidate
enumeration over thousands of MVs feasible.  The correlation-aware model
(Appendix A-2.2) prices the seek term by the number of clustered-key
fragments a predicate co-occurs with; the oblivious model reproduces the
commercial optimizer's blind spot (Figure 10): its estimate is identical for
every choice of clustered index.
"""

from repro.costmodel.base import ObjectGeometry, CostModel, PlanEstimate
from repro.costmodel.correlation_aware import CorrelationAwareCostModel
from repro.costmodel.oblivious import ObliviousCostModel

__all__ = [
    "ObjectGeometry",
    "CostModel",
    "PlanEstimate",
    "CorrelationAwareCostModel",
    "ObliviousCostModel",
]
