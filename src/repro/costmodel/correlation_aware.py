"""The paper's correlation-aware cost model (Appendix A-2.2).

    cost      = cost_read + cost_seek
    cost_read = fullscancost x selectivity          (fraction of table read)
    cost_seek = seek_cost x fragments x btree_height

with ``fragments`` = the number of contiguous clustered-key groups the
query's predicates co-occur with — estimated, as in the paper, by running
the Adaptive Estimator over the table synopsis ("we run AE over random
samples on the fly to estimate fragments and selectivity for a given MV
design and query").

The model prices three plan families on a hypothetical MV and returns the
cheapest: a full scan, a clustered-prefix scan, and a CM-assisted scan
(predicates on unclustered attributes resolved through a Correlation Map).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.base import ObjectGeometry, PlanEstimate
from repro.relational.query import KIND_EQ, Query
from repro.stats.collector import TableStatistics
from repro.storage.disk import DiskModel


def expected_runs(groups_hit: float, groups_total: float) -> float:
    """Expected number of maximal runs when ``groups_hit`` of
    ``groups_total`` ordered groups are selected (uniformly at random):
    ``k (D - k + 1) / D``.  Captures both regimes — hitting nearly all
    groups yields one big run; hitting few yields one run each."""
    k, d = groups_hit, groups_total
    if d <= 0 or k <= 0:
        return 0.0
    k = min(k, d)
    return max(1.0, k * (d - k + 1.0) / d)


@dataclass
class CorrelationAwareCostModel:
    """CORADD's cost model, bound to one fact table's statistics."""

    stats: TableStatistics
    disk: DiskModel
    use_cm: bool = True

    # ------------------------------------------------------------ internals

    def _max_fragments(self, geometry: ObjectGeometry) -> float:
        """Physical ceiling on fragments after readahead coalescing: runs
        must be separated by more than the readahead gap."""
        return max(1.0, geometry.npages / (self.disk.fragment_gap_pages + 1.0))

    def _usable_prefix(self, geometry: ObjectGeometry, query: Query) -> int:
        depth = 0
        for attr in geometry.cluster_key:
            pred = query.predicate_on(attr)
            if pred is None:
                break
            depth += 1
            if pred.kind != KIND_EQ:
                break
        return depth

    def _gap_rows(self, geometry: ObjectGeometry) -> int:
        rows_per_page = self.disk.rows_per_page(max(geometry.row_bytes, 1))
        return self.disk.fragment_gap_pages * rows_per_page

    def _scan_plan(
        self,
        geometry: ObjectGeometry,
        query: Query,
        group_attrs: tuple[str, ...],
        pred_attrs: tuple[str, ...],
        plan_name: str,
    ) -> PlanEstimate:
        """Price a scan that reads every clustered group of ``group_attrs``
        co-occurring with the predicates on ``pred_attrs``.

        Primary estimator: layout simulation on the synopsis (fragments and
        scanned fraction read off the sorted sample).  Fallback when the
        synopsis has too few matching rows: AE-scaled distinct counts of the
        co-occurring groups, with the expected-runs adjacency correction —
        the paper's "AE over random samples on the fly" path.
        """
        layout = self.stats.estimate_layout(
            group_attrs, query, self._gap_rows(geometry), pred_attrs=pred_attrs
        )
        if layout is not None:
            fragments, fraction = layout
        else:
            mask = self.stats.sample_mask(query, attrs=pred_attrs)
            groups_total = max(1.0, self.stats.distinct(group_attrs))
            groups_hit = self.stats.distinct_among(mask, group_attrs)
            if groups_hit <= 0.0:
                sel = max(
                    self.stats.query_selectivity(query),
                    1.0 / max(self.stats.nrows, 1),
                )
                groups_hit = max(1.0, sel * groups_total)
            fraction = min(1.0, groups_hit / groups_total)
            fragments = expected_runs(groups_hit, groups_total)
        fragments = min(fragments, self._max_fragments(geometry))
        read_s = geometry.full_scan_s * fraction
        seek_s = self.disk.seek_cost_s * fragments * geometry.btree_height
        return PlanEstimate(
            plan=plan_name,
            seconds=read_s + seek_s,
            read_s=read_s,
            seek_s=seek_s,
            fragments=fragments,
            scanned_fraction=fraction,
        )

    def secondary_btree_plan(
        self, geometry: ObjectGeometry, query: Query, key_attrs: tuple[str, ...]
    ) -> PlanEstimate:
        """Price a sorted scan through a dense secondary B+Tree on
        ``key_attrs`` — the plan Figure 10 measures.  Same layout machinery
        as the CM plan but without group expansion: only pages holding
        matching rows are read, and each fragment costs a descent."""
        layout = self.stats.estimate_layout(
            geometry.cluster_key,
            query,
            self._gap_rows(geometry),
            pred_attrs=key_attrs,
            expand_groups=False,
        )
        if layout is not None:
            fragments, fraction = layout
        else:
            sel = 1.0
            for attr in key_attrs:
                sel *= self.stats.predicate_selectivity(query, attr)
            matching = sel * self.stats.nrows
            rows_per_page = self.disk.rows_per_page(max(geometry.row_bytes, 1))
            fragments = min(matching, geometry.npages)
            fraction = min(1.0, matching / max(rows_per_page, 1) / max(geometry.npages, 1))
        fragments = min(fragments, self._max_fragments(geometry))
        # Each fragment spans at least one page.
        fraction = max(fraction, fragments / max(geometry.npages, 1))
        read_s = geometry.full_scan_s * fraction
        seek_s = self.disk.seek_cost_s * fragments * geometry.btree_height
        return PlanEstimate(
            plan=f"secondary_btree[{','.join(key_attrs)}]",
            seconds=read_s + seek_s,
            read_s=read_s,
            seek_s=seek_s,
            fragments=fragments,
            scanned_fraction=fraction,
        )

    def _clustered_plan(
        self, geometry: ObjectGeometry, query: Query
    ) -> PlanEstimate | None:
        depth = self._usable_prefix(geometry, query)
        if depth == 0:
            return None
        prefix = geometry.cluster_key[:depth]
        return self._scan_plan(
            geometry, query, prefix, prefix, f"clustered[{','.join(prefix)}]"
        )

    def _cm_plan(self, geometry: ObjectGeometry, query: Query) -> PlanEstimate | None:
        if not geometry.cluster_key:
            return None
        pred_attrs = tuple(
            a for a in query.predicate_attrs() if a in geometry.attrs
        )
        if not pred_attrs:
            return None
        return self._scan_plan(
            geometry,
            query,
            geometry.cluster_key,
            pred_attrs,
            f"cm[{','.join(pred_attrs)}]",
        )

    def _full_scan_plan(self, geometry: ObjectGeometry) -> PlanEstimate:
        seek_s = self.disk.seek_cost_s
        return PlanEstimate(
            plan="full_scan",
            seconds=geometry.full_scan_s + seek_s,
            read_s=geometry.full_scan_s,
            seek_s=seek_s,
            fragments=1.0,
            scanned_fraction=1.0,
        )

    # -------------------------------------------------------------- surface

    def explain(self, geometry: ObjectGeometry, query: Query) -> PlanEstimate:
        if not geometry.covers(query):
            return PlanEstimate(plan="not_covered", seconds=float("inf"))
        plans = [self._full_scan_plan(geometry)]
        clustered = self._clustered_plan(geometry, query)
        if clustered is not None:
            plans.append(clustered)
        if self.use_cm:
            cm = self._cm_plan(geometry, query)
            if cm is not None:
                plans.append(cm)
        return min(plans, key=lambda p: p.seconds)

    def query_seconds(self, geometry: ObjectGeometry, query: Query) -> float:
        return self.explain(geometry, query).seconds
