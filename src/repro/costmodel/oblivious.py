"""A correlation-oblivious cost model, emulating the commercial optimizer.

Figure 10 of the paper shows the commercial cost model predicting the *same*
runtime for a secondary-index scan regardless of how the table is clustered,
while actual runtime varied 25x with the correlation between secondary and
clustered keys.  This model reproduces that blind spot, which has two
ingredients:

* **independence**: conjunctive selectivity is the product of per-attribute
  selectivities — no notion that ``yearmonth=199401`` implies ``year=1994``;
* **uniform scatter**: matching rows are assumed spread uniformly over the
  heap, so the pages touched by an index scan follow the classic
  Cardenas/Mackert-Lohman estimate, and sorted-scan I/O is priced as
  sequential transfer without a per-fragment seek penalty.  The estimate
  depends only on selectivity — never on the clustered key.

The result is systematic optimism for index plans on uncorrelated
clusterings, which is exactly why the emulated commercial designer picks the
designs it picks (Figures 9 and 11).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.costmodel.base import ObjectGeometry, PlanEstimate
from repro.relational.query import KIND_EQ, Query
from repro.stats.collector import TableStatistics
from repro.storage.disk import DiskModel


def cardenas_pages(npages: int, matching_rows: float) -> float:
    """Expected distinct pages touched by ``matching_rows`` uniform-random
    rows over ``npages`` pages: ``P (1 - (1 - 1/P)^k)``."""
    if npages <= 0 or matching_rows <= 0:
        return 0.0
    return npages * (1.0 - (1.0 - 1.0 / npages) ** matching_rows)


@dataclass
class ObliviousCostModel:
    """Commercial-style estimates: independence + uniform scatter."""

    stats: TableStatistics
    disk: DiskModel

    def _independent_selectivity(self, query: Query, attrs: tuple[str, ...]) -> float:
        sel = 1.0
        for attr in attrs:
            sel *= self.stats.predicate_selectivity(query, attr)
        return sel

    def _full_scan_plan(self, geometry: ObjectGeometry) -> PlanEstimate:
        return PlanEstimate(
            plan="full_scan",
            seconds=geometry.full_scan_s + self.disk.seek_cost_s,
            read_s=geometry.full_scan_s,
            seek_s=self.disk.seek_cost_s,
            fragments=1.0,
            scanned_fraction=1.0,
        )

    def _clustered_plan(
        self, geometry: ObjectGeometry, query: Query
    ) -> PlanEstimate | None:
        depth = 0
        for attr in geometry.cluster_key:
            pred = query.predicate_on(attr)
            if pred is None:
                break
            depth += 1
            if pred.kind != KIND_EQ:
                break
        if depth == 0:
            return None
        prefix = geometry.cluster_key[:depth]
        fraction = self._independent_selectivity(query, prefix)
        read_s = geometry.full_scan_s * fraction
        seek_s = self.disk.seek_cost_s * geometry.btree_height
        return PlanEstimate(
            plan=f"clustered[{','.join(prefix)}]",
            seconds=read_s + seek_s,
            read_s=read_s,
            seek_s=seek_s,
            fragments=1.0,
            scanned_fraction=fraction,
        )

    def secondary_index_plan(
        self, geometry: ObjectGeometry, query: Query
    ) -> PlanEstimate | None:
        """Sorted secondary-index scan priced under uniform scatter.

        Note what is *absent*: the clustered key.  Two geometries differing
        only in clustering get identical estimates — the Figure 10 flat line.
        """
        pred_attrs = tuple(a for a in query.predicate_attrs() if a in geometry.attrs)
        if not pred_attrs:
            return None
        sel = self._independent_selectivity(query, pred_attrs)
        matching = sel * geometry.nrows
        pages = cardenas_pages(geometry.npages, matching)
        pages = min(pages, float(geometry.npages))
        # Sorted rowid sweep: sequential transfer of the touched pages plus
        # one index descent — no per-fragment seek penalty.
        read_s = pages * self.disk.page_read_s
        seek_s = self.disk.seek_cost_s * geometry.btree_height
        return PlanEstimate(
            plan=f"secondary[{','.join(pred_attrs)}]",
            seconds=read_s + seek_s,
            read_s=read_s,
            seek_s=seek_s,
            fragments=1.0,
            scanned_fraction=pages / max(geometry.npages, 1),
        )

    def plan_options(
        self,
        geometry: ObjectGeometry,
        query: Query,
        btree_keys: tuple[tuple[str, ...], ...] = (),
    ) -> list[tuple[str, tuple[str, ...] | None, float]]:
        """Every plan the commercial optimizer would consider on a physical
        object, with its estimate: (kind, index key, estimated seconds).
        Kinds: 'full', 'clustered', 'secondary'.  Note the estimate for a
        secondary plan is identical for every index key and clustering —
        that is the blindness being emulated."""
        options: list[tuple[str, tuple[str, ...] | None, float]] = [
            ("full", None, self._full_scan_plan(geometry).seconds)
        ]
        clustered = self._clustered_plan(geometry, query)
        if clustered is not None:
            options.append(("clustered", None, clustered.seconds))
        for key in btree_keys:
            if any(query.predicate_on(a) is not None for a in key):
                secondary = self.secondary_index_plan(geometry, query)
                if secondary is not None:
                    options.append(("secondary", key, secondary.seconds))
        return options

    def explain(self, geometry: ObjectGeometry, query: Query) -> PlanEstimate:
        if not geometry.covers(query):
            return PlanEstimate(plan="not_covered", seconds=float("inf"))
        plans = [self._full_scan_plan(geometry)]
        clustered = self._clustered_plan(geometry, query)
        if clustered is not None:
            plans.append(clustered)
        secondary = self.secondary_index_plan(geometry, query)
        if secondary is not None:
            plans.append(secondary)
        return min(plans, key=lambda p: p.seconds)

    def query_seconds(self, geometry: ObjectGeometry, query: Query) -> float:
        return self.explain(geometry, query).seconds
