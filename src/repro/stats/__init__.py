"""Statistics substrate: histograms, sampling, distinct estimation, FDs.

CORADD's pipeline starts with a statistics pass (Section A-2.2): attribute
cardinalities, functional-dependency strengths (the CORDS measure), workload
predicate selectivities and random table synopses.  Distinct-value counts
come from Gibbons' distinct sampling over full columns and from
Charikar-style estimators (GEE / Chao / AE) over synopses.
"""

from repro.stats.histogram import EquiWidthHistogram, EquiDepthHistogram
from repro.stats.sampling import reservoir_sample_indices, bernoulli_sample_indices
from repro.stats.distinct import (
    exact_distinct,
    gee_estimator,
    chao_estimator,
    adaptive_estimator,
    GibbonsDistinctSampler,
)
from repro.stats.correlation import strength, CorrelationModel
from repro.stats.collector import TableStatistics

__all__ = [
    "EquiWidthHistogram",
    "EquiDepthHistogram",
    "reservoir_sample_indices",
    "bernoulli_sample_indices",
    "exact_distinct",
    "gee_estimator",
    "chao_estimator",
    "adaptive_estimator",
    "GibbonsDistinctSampler",
    "strength",
    "CorrelationModel",
    "TableStatistics",
]
