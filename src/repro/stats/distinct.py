"""Distinct-value counting: exact, sample-scaled estimators, and Gibbons'
distinct sampling.

The paper estimates "the number of distinct values of each attribute" with
Gibbons' Distinct Sampling [VLDB 2001] and uses "Adaptive Estimation (AE)"
[Charikar et al., PODS 2000] for composite attributes and for on-the-fly
``fragments`` estimation over synopses (Appendix A-2.2).

Implementation notes recorded in DESIGN.md: we implement GEE exactly as
published (``sqrt(n/r) * f1 + sum_{j>=2} f_j``); Chao's 1984 estimator
(``d + f1^2 / (2 f2)``); and an ``adaptive_estimator`` that follows AE's
adaptive idea — use the data's own skew to choose how aggressively to scale
the singletons — via a smooth blend between Chao (low skew evidence) and GEE
(high skew evidence).  All three are cross-validated against exact counts in
the test suite; the designer is insensitive to which is used because only
relative fragment counts matter.
"""

from __future__ import annotations

import math

import numpy as np


def exact_distinct(values: np.ndarray) -> int:
    """Exact distinct count of a (code) array."""
    if len(values) == 0:
        return 0
    return len(np.unique(values))


def _frequency_of_frequencies(sample: np.ndarray) -> tuple[int, np.ndarray]:
    """(d, f) where d = distinct in sample and f[j] = number of values seen
    exactly j+1 times."""
    if len(sample) == 0:
        return 0, np.zeros(0, dtype=np.int64)
    _, counts = np.unique(sample, return_counts=True)
    d = len(counts)
    f = np.bincount(counts)[1:]  # f[0] -> values seen once
    return d, f.astype(np.int64)


def gee_estimator(sample: np.ndarray, n_total: int) -> float:
    """Guaranteed-Error Estimator of Charikar et al.:
    ``sqrt(n/r) * f1 + sum_{j>=2} f_j``."""
    r = len(sample)
    if r == 0:
        return 0.0
    if n_total < r:
        raise ValueError("n_total must be >= sample size")
    d, f = _frequency_of_frequencies(sample)
    f1 = int(f[0]) if len(f) else 0
    rest = d - f1
    return math.sqrt(n_total / r) * f1 + rest


def chao_estimator(sample: np.ndarray) -> float:
    """Chao's 1984 lower-bound estimator: ``d + f1^2 / (2 f2)``.

    When no value is seen twice (f2 = 0) the bias-corrected form
    ``d + f1 (f1 - 1) / 2`` is used.
    """
    d, f = _frequency_of_frequencies(sample)
    if d == 0:
        return 0.0
    f1 = int(f[0]) if len(f) >= 1 else 0
    f2 = int(f[1]) if len(f) >= 2 else 0
    if f2 > 0:
        return d + f1 * f1 / (2.0 * f2)
    return d + f1 * max(f1 - 1, 0) / 2.0


def adaptive_estimator(sample: np.ndarray, n_total: int) -> float:
    """AE-style adaptive distinct estimator over a uniform sample.

    Charikar et al.'s AE adapts to the skew of the data: for low-skew data
    the singleton count f1 mostly reflects genuinely rare values and a
    Chao-style correction suffices; for high-skew data singletons must be
    scaled up toward the GEE bound.  We measure skew evidence as the
    singleton fraction ``f1 / d`` and interpolate between the two published
    estimators, clamped to the feasible range [d, n_total].
    """
    r = len(sample)
    if r == 0:
        return 0.0
    if n_total < r:
        raise ValueError("n_total must be >= sample size")
    d, f = _frequency_of_frequencies(sample)
    f1 = int(f[0]) if len(f) >= 1 else 0
    if d == 0:
        return 0.0
    if f1 == 0:
        # Every value repeated: the sample has very likely seen everything.
        return float(d)
    skew_evidence = f1 / d
    low = chao_estimator(sample)
    high = gee_estimator(sample, n_total)
    est = (1.0 - skew_evidence) * low + skew_evidence * high
    return float(min(max(est, d), n_total))


def scale_distinct(
    sample: np.ndarray, n_total: int, estimator: str = "ae"
) -> float:
    """Estimate the distinct count of a population of ``n_total`` rows from
    a uniform sample, by estimator name ('exact' treats the sample as the
    population)."""
    if estimator == "exact":
        return float(exact_distinct(sample))
    if estimator == "gee":
        return gee_estimator(sample, n_total)
    if estimator == "chao":
        return chao_estimator(sample)
    if estimator == "ae":
        return adaptive_estimator(sample, n_total)
    raise ValueError(f"unknown estimator {estimator!r}")


def _mix64(x: np.ndarray) -> np.ndarray:
    """Deterministic 64-bit mix (splitmix64 finalizer) for hashing codes."""
    z = x.astype(np.uint64)
    z = (z + np.uint64(0x9E3779B97F4A7C15)) * np.uint64(0xBF58476D1CE4E5B9)
    z ^= z >> np.uint64(30)
    z *= np.uint64(0x94D049BB133111EB)
    z ^= z >> np.uint64(31)
    return z


class GibbonsDistinctSampler:
    """Gibbons' distinct sampling (VLDB 2001), the level-based hash sketch.

    A value is retained at level ``l`` when its hash has at least ``l``
    trailing zero bits; the level rises whenever the retained set outgrows
    the space bound.  The distinct-count estimate is ``|S| * 2^level``.
    Maintained incrementally, so it supports the paper's claim that these
    statistics "can be efficiently maintained under updates".
    """

    def __init__(self, max_size: int = 4096) -> None:
        if max_size <= 0:
            raise ValueError("max_size must be positive")
        self.max_size = max_size
        self.level = 0
        self._kept: set[int] = set()

    def add_batch(self, values: np.ndarray) -> None:
        hashes = _mix64(np.asarray(values, dtype=np.int64))
        # Trailing-zero count via bitwise isolation of the lowest set bit.
        for h in hashes:
            h_int = int(h)
            if h_int == 0:
                tz = 64
            else:
                tz = (h_int & -h_int).bit_length() - 1
            if tz >= self.level:
                self._kept.add(h_int)
        while len(self._kept) > self.max_size:
            self.level += 1
            threshold = self.level
            self._kept = {
                h for h in self._kept
                if h == 0 or ((h & -h).bit_length() - 1) >= threshold
            }

    def estimate(self) -> float:
        return len(self._kept) * float(2**self.level)


def gibbons_distinct(values: np.ndarray, max_size: int = 4096) -> float:
    """One-shot Gibbons distinct-sampling estimate over an array."""
    sampler = GibbonsDistinctSampler(max_size)
    sampler.add_batch(values)
    return sampler.estimate()
