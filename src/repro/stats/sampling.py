"""Random sampling: reservoir and Bernoulli row samples.

The paper's statistics pass keeps "table synopses consisting of random
samples" (Appendix A-2.2, item 4) and runs distinct estimators over them on
the fly.  Reservoir sampling (Vitter's algorithm R, vectorized) yields
fixed-size synopses; Bernoulli sampling yields per-row coin-flip samples as
used by CORDS/BHUNT-style correlation discovery.
"""

from __future__ import annotations

import numpy as np


def reservoir_sample_indices(n: int, k: int, seed: int = 0) -> np.ndarray:
    """Sorted indices of a uniform ``k``-subset of ``range(n)``.

    Equivalent in distribution to algorithm R; implemented as a partial
    Fisher-Yates draw, which numpy does in one call.
    """
    if n < 0 or k < 0:
        raise ValueError("n and k must be non-negative")
    rng = np.random.default_rng(seed)
    take = min(n, k)
    if take == 0:
        return np.empty(0, dtype=np.int64)
    idx = rng.choice(n, size=take, replace=False)
    return np.sort(idx.astype(np.int64))


def bernoulli_sample_indices(n: int, rate: float, seed: int = 0) -> np.ndarray:
    """Sorted indices where an independent coin with ``P(keep)=rate`` landed
    heads."""
    if not (0.0 <= rate <= 1.0):
        raise ValueError("rate must be in [0, 1]")
    rng = np.random.default_rng(seed)
    if n <= 0 or rate == 0.0:
        return np.empty(0, dtype=np.int64)
    mask = rng.random(n) < rate
    return np.nonzero(mask)[0].astype(np.int64)
