"""Correlation (soft functional dependency) discovery — the CORDS measure.

The paper adopts CORDS' strength measure (Section 4.1.1): for attribute sets
C1, C2 with |C1| distinct values and |C1 C2| distinct joint values,

    strength(C1 -> C2) = |C1| / |C1 C2|

A strength of 1 means C1 functionally determines C2 (each C1 value co-occurs
with exactly one C2 value); lower values mean each C1 value fans out over
more C2 values.  Strengths feed selectivity propagation (Section 4.1.1) and
the fragments term of the cost model.

:class:`CorrelationModel` caches pairwise and composite strengths computed
over a table or synopsis, optionally scaled with a distinct estimator.
"""

from __future__ import annotations

from repro.relational.table import Table
from repro.stats.distinct import scale_distinct


def strength(
    table: Table,
    determinant: tuple[str, ...],
    dependent: tuple[str, ...],
    n_total: int | None = None,
    estimator: str = "exact",
) -> float:
    """CORDS strength of ``determinant -> dependent`` over ``table``.

    With ``estimator != 'exact'``, ``table`` is treated as a uniform sample
    of a population of ``n_total`` rows and distinct counts are scaled up.
    """
    if not determinant:
        raise ValueError("determinant must be non-empty")
    joint = tuple(dict.fromkeys(determinant + dependent))
    if estimator == "exact":
        d_det = table.distinct_count(determinant)
        d_joint = table.distinct_count(joint)
    else:
        if n_total is None:
            raise ValueError("n_total required for sample-scaled strength")
        d_det = scale_distinct(table._key_codes(tuple(determinant)), n_total, estimator)
        d_joint = scale_distinct(table._key_codes(joint), n_total, estimator)
    if d_joint <= 0:
        return 1.0
    return min(1.0, d_det / d_joint)


class CorrelationModel:
    """Cached strengths over one (flattened) table or synopsis.

    The model is lazy: strengths are computed on first request and memoized.
    ``attrs`` restricts the advertised universe (typically the workload's
    attribute universe) but any column of the table can be queried.
    """

    def __init__(
        self,
        table: Table,
        attrs: tuple[str, ...] | None = None,
        n_total: int | None = None,
        estimator: str = "exact",
    ) -> None:
        self.table = table
        self.attrs = tuple(attrs) if attrs is not None else tuple(table.column_names)
        self.n_total = n_total if n_total is not None else table.nrows
        self.estimator = estimator
        self._strengths: dict[tuple[tuple[str, ...], tuple[str, ...]], float] = {}
        self._distincts: dict[tuple[str, ...], float] = {}

    def distinct(self, names: tuple[str, ...]) -> float:
        """(Estimated) distinct count of a joint key."""
        key = tuple(names)
        cached = self._distincts.get(key)
        if cached is not None:
            return cached
        if self.estimator == "exact":
            value = float(self.table.distinct_count(key))
        else:
            value = scale_distinct(self.table._key_codes(key), self.n_total, self.estimator)
        self._distincts[key] = value
        return value

    def strength(
        self, determinant: tuple[str, ...], dependent: tuple[str, ...]
    ) -> float:
        """Memoized strength(determinant -> dependent)."""
        key = (tuple(determinant), tuple(dependent))
        cached = self._strengths.get(key)
        if cached is not None:
            return cached
        d_det = self.distinct(key[0])
        joint = tuple(dict.fromkeys(key[0] + key[1]))
        d_joint = self.distinct(joint)
        value = 1.0 if d_joint <= 0 else min(1.0, d_det / d_joint)
        self._strengths[key] = value
        return value

    def strong_pairs(self, threshold: float = 0.8) -> list[tuple[str, str, float]]:
        """All ordered attribute pairs (a -> b) with strength >= threshold.

        This is the discovery pass CORDS performs; CORADD consumes the full
        strength matrix, but surfacing the strong pairs is useful for the
        correlation-explorer example and for tests.
        """
        out: list[tuple[str, str, float]] = []
        for a in self.attrs:
            for b in self.attrs:
                if a == b:
                    continue
                s = self.strength((a,), (b,))
                if s >= threshold:
                    out.append((a, b, s))
        out.sort(key=lambda item: -item[2])
        return out
