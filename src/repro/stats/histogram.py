"""Histograms for selectivity estimation.

The paper builds selectivity vectors "from histograms we build by scanning
the database" (Section 4.1.1).  Equi-width histograms estimate range and
equality selectivities with the standard uniform-within-bucket assumption;
equi-depth histograms bound per-bucket error and also provide the bucket
boundaries the CM designer uses when bucketing unclustered attributes.
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import (
    EqPredicate,
    InPredicate,
    Predicate,
    RangePredicate,
)


class EquiWidthHistogram:
    """Fixed-width buckets over a numeric column."""

    def __init__(self, values: np.ndarray, nbuckets: int = 64) -> None:
        if nbuckets <= 0:
            raise ValueError("nbuckets must be positive")
        values = np.asarray(values, dtype=np.float64)
        self.n = len(values)
        if self.n == 0:
            self.lo, self.hi = 0.0, 0.0
            self.counts = np.zeros(1, dtype=np.int64)
            self.width = 1.0
            self.ndistinct = 0
            return
        self.lo = float(values.min())
        self.hi = float(values.max())
        span = self.hi - self.lo
        self.width = span / nbuckets if span > 0 else 1.0
        idx = np.clip(((values - self.lo) / self.width).astype(np.int64), 0, nbuckets - 1)
        self.counts = np.bincount(idx, minlength=nbuckets).astype(np.int64)
        self.ndistinct = len(np.unique(values))

    def _bucket_of(self, v: float) -> int:
        return int(np.clip((v - self.lo) / self.width, 0, len(self.counts) - 1))

    def range_fraction(self, lo: float, hi: float) -> float:
        """Estimated fraction of rows with lo <= value <= hi."""
        if self.n == 0 or hi < self.lo or lo > self.hi:
            return 0.0
        lo = max(lo, self.lo)
        hi = min(hi, self.hi)
        b_lo, b_hi = self._bucket_of(lo), self._bucket_of(hi)
        if b_lo == b_hi:
            frac = (hi - lo) / self.width if self.width > 0 else 1.0
            return min(1.0, self.counts[b_lo] * min(1.0, max(frac, 1.0 / max(self.ndistinct, 1))) / self.n)
        total = 0.0
        # Partial first and last buckets, full middles.
        first_frac = ((self.lo + (b_lo + 1) * self.width) - lo) / self.width
        last_frac = (hi - (self.lo + b_hi * self.width)) / self.width
        total += self.counts[b_lo] * min(1.0, max(0.0, first_frac))
        total += self.counts[b_hi] * min(1.0, max(0.0, last_frac))
        total += self.counts[b_lo + 1 : b_hi].sum()
        return min(1.0, total / self.n)

    def eq_fraction(self, value: float) -> float:
        """Estimated fraction equal to ``value``: bucket mass spread evenly
        over the distinct values assumed in the bucket."""
        if self.n == 0 or value < self.lo or value > self.hi:
            return 0.0
        bucket = self._bucket_of(value)
        distinct_per_bucket = max(1.0, self.ndistinct / len(self.counts))
        return min(1.0, self.counts[bucket] / distinct_per_bucket / self.n)

    def estimate(self, pred: Predicate) -> float:
        """Estimated selectivity of ``pred`` over the histogrammed column."""
        if isinstance(pred, EqPredicate):
            return self.eq_fraction(pred.value)
        if isinstance(pred, RangePredicate):
            return self.range_fraction(pred.lo, pred.hi)
        if isinstance(pred, InPredicate):
            return min(1.0, sum(self.eq_fraction(v) for v in pred.values))
        raise TypeError(f"unsupported predicate type {type(pred).__name__}")


class EquiDepthHistogram:
    """Buckets with (approximately) equal row counts; boundaries are
    quantiles.  ``boundaries[i] .. boundaries[i+1]`` holds ~n/nbuckets rows."""

    def __init__(self, values: np.ndarray, nbuckets: int = 64) -> None:
        if nbuckets <= 0:
            raise ValueError("nbuckets must be positive")
        values = np.sort(np.asarray(values, dtype=np.float64))
        self.n = len(values)
        if self.n == 0:
            self.boundaries = np.array([0.0, 0.0])
            return
        qs = np.linspace(0.0, 1.0, nbuckets + 1)
        self.boundaries = np.quantile(values, qs)

    @property
    def nbuckets(self) -> int:
        return len(self.boundaries) - 1

    def range_fraction(self, lo: float, hi: float) -> float:
        if self.n == 0:
            return 0.0
        b = self.boundaries
        if hi < b[0] or lo > b[-1]:
            return 0.0
        # Interpolate positions of lo and hi within the quantile ladder.
        pos_lo = np.interp(lo, b, np.linspace(0.0, 1.0, len(b)))
        pos_hi = np.interp(hi, b, np.linspace(0.0, 1.0, len(b)))
        return float(min(1.0, max(0.0, pos_hi - pos_lo)))
