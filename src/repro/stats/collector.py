"""Statistics facade: everything the designer knows about one fact table.

Mirrors the paper's startup pass (Appendix A-2.2): one scan of the database
collects (1) attribute cardinalities, (2) FD strengths, (3) workload
predicate selectivities, and (4) a random synopsis over which the Adaptive
Estimator runs "on the fly to estimate fragments and selectivity for a given
MV design and query".

A :class:`TableStatistics` is bound to one *flattened* fact table (fact
columns + reachable dimension columns) because that is the attribute
universe MV candidates draw from.
"""

from __future__ import annotations

import numpy as np

from repro.relational.query import Query
from repro.relational.table import Table
from repro.stats.correlation import CorrelationModel
from repro.stats.distinct import scale_distinct
from repro.stats.histogram import EquiWidthHistogram
from repro.stats.sampling import reservoir_sample_indices


class TableStatistics:
    """Cardinalities, strengths, selectivities and a synopsis for one table."""

    def __init__(
        self,
        table: Table,
        synopsis_rows: int = 4096,
        seed: int = 0,
        estimator: str = "ae",
    ) -> None:
        self.table = table
        self.nrows = table.nrows
        self.estimator = estimator
        idx = reservoir_sample_indices(table.nrows, synopsis_rows, seed)
        self.synopsis = table.select(idx, new_name=f"{table.schema.name}_synopsis")
        # Strengths and cardinalities come from the synopsis with estimator
        # scale-up — the paper's sampling-based discovery — except when the
        # table is small enough that the synopsis *is* the table.
        sample_is_table = self.synopsis.nrows >= table.nrows
        self.corr = CorrelationModel(
            self.synopsis if not sample_is_table else table,
            n_total=table.nrows,
            estimator="exact" if sample_is_table else estimator,
        )
        self._histograms: dict[str, EquiWidthHistogram] = {}
        self._query_sel: dict[str, float] = {}
        self._pred_sel: dict[tuple[str, str], float] = {}
        self._layout_cache: dict[tuple[str, ...], tuple[np.ndarray, np.ndarray]] = {}
        self._pred_mask_cache: dict[tuple[str, str], np.ndarray] = {}

    # ----------------------------------------------------------- primitives

    def histogram(self, attr: str, nbuckets: int = 64) -> EquiWidthHistogram:
        hist = self._histograms.get(attr)
        if hist is None:
            hist = EquiWidthHistogram(self.table.column(attr), nbuckets)
            self._histograms[attr] = hist
        return hist

    def distinct(self, attrs: tuple[str, ...]) -> float:
        """(Estimated) distinct count of a joint key."""
        return self.corr.distinct(tuple(attrs))

    def strength(self, determinant: tuple[str, ...], dependent: tuple[str, ...]) -> float:
        return self.corr.strength(tuple(determinant), tuple(dependent))

    # --------------------------------------------------------- selectivities

    def predicate_selectivity(self, query: Query, attr: str) -> float:
        """Exact selectivity of the query's predicate on ``attr`` (1.0 when
        unpredicated), memoized.  The paper computes these by scanning.

        Cache keys carry the predicate text, not just the query name —
        distinct Query objects may reuse a name (common in tests and ad-hoc
        exploration) and must never see each other's entries.
        """
        pred = query.predicate_on(attr)
        if pred is None:
            return 1.0
        key = (attr, str(pred))
        cached = self._pred_sel.get(key)
        if cached is not None:
            return cached
        value = pred.selectivity(self.table)
        self._pred_sel[key] = value
        return value

    def query_selectivity(self, query: Query) -> float:
        """Exact conjunctive selectivity of the whole query, memoized."""
        key = " & ".join(sorted(str(p) for p in query.predicates))
        cached = self._query_sel.get(key)
        if cached is not None:
            return cached
        value = query.selectivity(self.table)
        self._query_sel[key] = value
        return value

    # --------------------------------------- synopsis-driven fragment inputs

    def sample_mask(self, query: Query, attrs: tuple[str, ...] | None = None) -> np.ndarray:
        """Boolean mask of synopsis rows matching the query's predicates
        (restricted to ``attrs`` when given)."""
        mask = np.ones(self.synopsis.nrows, dtype=bool)
        for pred in query.predicates:
            if attrs is not None and pred.attr not in attrs:
                continue
            mask &= pred.mask(self.synopsis.column(pred.attr))
        return mask

    def _sorted_synopsis_codes(
        self, cluster_key: tuple[str, ...]
    ) -> tuple[np.ndarray, np.ndarray]:
        """(sort permutation, dense group codes) of the synopsis under
        ``cluster_key`` — the sample-scale mirror of a heap file's layout.
        Cached per cluster key because clustered-index design evaluates many
        queries against the same key."""
        hit = self._layout_cache.get(cluster_key)
        if hit is not None:
            return hit
        perm = self.synopsis.sort_permutation(cluster_key)
        changed = np.zeros(self.synopsis.nrows, dtype=bool)
        if self.synopsis.nrows:
            for attr in cluster_key:
                arr = self.synopsis.column(attr)[perm]
                changed[1:] |= arr[1:] != arr[:-1]
        codes = np.cumsum(changed).astype(np.int64)
        self._layout_cache[cluster_key] = (perm, codes)
        return perm, codes

    def _synopsis_pred_mask(self, query: Query, attr: str) -> np.ndarray:
        """Cached mask of the (unsorted) synopsis under the query's
        predicate on ``attr`` — shared across every cluster key evaluated.
        Keyed by predicate text so same-named queries cannot collide."""
        pred = query.predicate_on(attr)
        if pred is None:
            return np.ones(self.synopsis.nrows, dtype=bool)
        key = (attr, str(pred))
        cached = self._pred_mask_cache.get(key)
        if cached is None:
            cached = pred.mask(self.synopsis.column(attr))
            self._pred_mask_cache[key] = cached
        return cached

    def estimate_layout(
        self,
        cluster_key: tuple[str, ...],
        query: Query,
        gap_rows: int,
        pred_attrs: tuple[str, ...] | None = None,
        min_sample_matches: int = 8,
        expand_groups: bool = True,
    ) -> tuple[float, float] | None:
        """(fragments, scanned fraction) a CM-guided scan would see on a
        heap clustered by ``cluster_key`` — estimated by *simulating the
        layout on the synopsis*.

        The synopsis is a uniform thinning of the table, so sorting it by
        the cluster key mirrors the heap order: population runs map to
        sample runs, and a population readahead gap of ``gap_rows`` rows
        maps to ``gap_rows x (sample/population)`` sample rows.  The scan
        reads every row whose cluster-key group co-occurs with a matching
        row (CM false positives included), so fragments/fraction are
        measured over those group-expanded rows.

        Returns None when fewer than ``min_sample_matches`` sample rows
        match — the caller should fall back to the distinct-value estimate
        (:meth:`distinct_among`), as the paper's AE-based path does.
        """
        if not cluster_key or self.synopsis.nrows == 0:
            return None
        perm, codes = self._sorted_synopsis_codes(tuple(cluster_key))
        attrs = query.predicate_attrs() if pred_attrs is None else pred_attrs
        mask = np.ones(self.synopsis.nrows, dtype=bool)
        for attr in attrs:
            if query.predicate_on(attr) is not None:
                mask &= self._synopsis_pred_mask(query, attr)
        mask = mask[perm]
        n_match = int(mask.sum())
        if n_match < min_sample_matches:
            return None
        ratio = self.synopsis.nrows / max(self.nrows, 1)
        sample_gap = max(1.0, gap_rows * ratio)
        if expand_groups:
            # CM semantics: every row of a co-occurring clustered group is
            # read (bucketing false positives are part of the plan).
            hit_groups = np.unique(codes[mask])
            scanned = np.isin(codes, hit_groups)
            fraction = float(scanned.mean())
            positions = np.nonzero(scanned)[0]
            fragments = 1.0 + float((np.diff(positions) > sample_gap).sum())
            return fragments, fraction
        # Sorted secondary-B+Tree semantics: only pages holding matching
        # rows (plus readahead-bridged holes) are read.  Sampling thins
        # matches, so run counts cannot be read off the sample directly;
        # instead, group the seen matches into generous *regions*, estimate
        # each region's population match density d, and treat the matches
        # as a Poisson scatter within the region:
        #   fragments ~ M (1-d)^gap        (a match starts a fragment iff no
        #                                   neighbour within the gap window)
        #   rows swept ~ M [min(1/d, gap) p_link + (1 - p_link)]
        #     with p_link = 1 - (1-d)^gap: a linked match drags in its mean
        #     spacing of hole rows (readahead reads them); an isolated match
        #     sweeps just itself.
        # Dense regions collapse to ~1 fragment spanning ~M/d rows; sparse
        # regions approach one fragment and one row per match — both limits
        # of the real coalescing behaviour.
        match_fraction = float(mask.mean())
        positions = np.nonzero(mask)[0]
        pop_matches = max(float(n_match), match_fraction * self.nrows)
        per_seen = pop_matches / n_match
        global_density = pop_matches / max(self.nrows, 1)
        span_all = float(positions[-1] - positions[0] + 1)
        tol = max(sample_gap, 4.0 * span_all / n_match)
        breaks = np.nonzero(np.diff(positions) > tol)[0]
        starts = np.concatenate(([0], breaks + 1))
        ends = np.concatenate((breaks, [len(positions) - 1]))
        fragments = 0.0
        swept_rows = 0.0
        gap = float(max(gap_rows, 1))
        for s, e in zip(starts, ends):
            k = float(e - s + 1)
            if k <= 1.0:
                density = global_density
            else:
                span_pop = (positions[e] - positions[s] + 1) / ratio
                density = min(0.99, k * per_seen / max(span_pop, 1.0))
            density = max(density, 1.0 / max(self.nrows, 1))
            m_region = k * per_seen
            p_link = 1.0 - (1.0 - density) ** gap
            fragments += max(1.0, m_region * (1.0 - density) ** gap)
            swept_rows += m_region * (
                min(1.0 / density, gap) * p_link + (1.0 - p_link)
            )
        fraction = min(1.0, max(match_fraction, swept_rows / max(self.nrows, 1)))
        return max(1.0, fragments), fraction

    def distinct_among(self, mask: np.ndarray, attrs: tuple[str, ...]) -> float:
        """Estimated population distinct count of ``attrs`` among rows
        matching ``mask`` — the quantity behind the cost model's
        ``fragments`` ("the number of distinct values of the clustered index
        to be scanned", Section 2.1).

        The matching sample rows are a uniform sample of the matching
        population rows, so the distinct estimator applies with the matching
        population size as ``n_total``.
        """
        sub = self.synopsis._key_codes(tuple(attrs))[mask]
        if len(sub) == 0:
            return 0.0
        matched_fraction = len(sub) / max(1, self.synopsis.nrows)
        n_matching = max(len(sub), int(round(matched_fraction * self.nrows)))
        est = scale_distinct(sub, n_matching, self.estimator)
        # Never more groups than the key has distinct values overall.
        return float(min(est, self.distinct(attrs)))

    def __repr__(self) -> str:
        return (
            f"TableStatistics({self.table.schema.name!r}, rows={self.nrows}, "
            f"synopsis={self.synopsis.nrows})"
        )
