"""Physical access paths: full scan, clustered scan, secondary scans.

Each plan executes *for real* over the heap file's tuples: it computes the
matching rowids, maps them to pages, coalesces pages into fragments, and
charges the disk model.  Random heap accesses cost one clustered-B+Tree
descent per fragment (``btree_height`` random page touches), which is
exactly the seek term of the paper's cost model
(``cost_seek = seek_cost x fragments x btree_height``, Appendix A-2.2) —
here it *emerges* from the simulated access pattern instead of being
estimated.

Plans also return the exact boolean result mask so tests can verify that
every plan computes the same answer.

Plans share derived state through an :class:`~repro.engine.EvalContext`:
the executor builds one context per (object, query) so predicate masks,
rowids and fragments are computed once and consumed by every plan, and an
active :class:`~repro.engine.EvalSession` extends the sharing across
objects, designs and budgets.  Each plan also accepts ``ctx=None`` and
builds its own context, so standalone calls keep working unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol

import numpy as np

from repro.engine.context import EvalContext
from repro.engine.session import get_session
from repro.relational.query import KIND_EQ, Query
from repro.storage.btree import btree_height, leaf_entries_per_page
from repro.storage.fragments import pages_spanned
from repro.storage.layout import HeapFile


@dataclass(frozen=True)
class SimulatedCost:
    """Outcome of charging the disk model for one plan execution."""

    seconds: float
    pages_read: int
    seeks: int
    fragments: int

    def __add__(self, other: "SimulatedCost") -> "SimulatedCost":
        return SimulatedCost(
            self.seconds + other.seconds,
            self.pages_read + other.pages_read,
            self.seeks + other.seeks,
            self.fragments + other.fragments,
        )


ZERO_COST = SimulatedCost(0.0, 0, 0, 0)


@dataclass(frozen=True)
class AccessResult:
    """A executed plan: its name, what it cost, and the exact result mask."""

    plan: str
    cost: SimulatedCost
    mask: np.ndarray

    @property
    def seconds(self) -> float:
        return self.cost.seconds


class SecondaryStructure(Protocol):
    """What a secondary access structure must expose to be scannable.

    Correlation Maps (:mod:`repro.cm`) implement this; dense secondary
    B+Trees are handled natively by :func:`secondary_btree_scan`.
    """

    name: str
    key_attrs: tuple[str, ...]
    depth: int  # clustered-prefix depth whose rank codes the structure maps to

    def lookup(self, query: Query) -> np.ndarray | None:
        """Rank codes of clustered-prefix groups to scan, or None if the
        query has no usable predicate on the structure's key."""
        ...


def _context(heapfile: HeapFile, query: Query, ctx: EvalContext | None) -> EvalContext:
    return ctx if ctx is not None else EvalContext(heapfile, query)


def _result_mask(heapfile: HeapFile, ctx: EvalContext) -> np.ndarray:
    """The exact result mask: the query mask with tombstoned rows removed.
    On a pristine file this *is* the (cached, frozen) query mask — the
    mutation-free path stays bit-identical."""
    mask = ctx.query_mask
    live = heapfile.live
    if live is None:
        return mask
    return mask & live


def _heap_access_cost(heapfile: HeapFile, fragments: list[tuple[int, int]]) -> SimulatedCost:
    """Cost of reading the given page fragments, one index descent each."""
    nfrag = len(fragments)
    pages = pages_spanned(fragments)
    seeks = nfrag * heapfile.btree_height
    seconds = heapfile.disk.scan_seconds(pages, seeks)
    return SimulatedCost(seconds, pages, seeks, nfrag)


def _tail_read_cost(
    heapfile: HeapFile, fragments: list[tuple[int, int]]
) -> SimulatedCost:
    """Cost of reading the unsorted insert tail wholesale: one seek plus a
    sequential sweep — the tail is an append region, so no index descent
    applies.  The page straddling the sorted/tail boundary may already be
    covered by the index-guided ``fragments``; it is then not re-charged."""
    tail = heapfile.tail_page_fragment()
    if tail is None:
        return ZERO_COST
    first, last = tail
    pages = last - first + 1
    if any(f_last >= first for _, f_last in fragments):
        pages -= 1  # boundary page already read by a fragment
    if pages <= 0:
        return ZERO_COST
    return SimulatedCost(heapfile.disk.scan_seconds(pages, 1), pages, 1, 1)


def full_scan(
    heapfile: HeapFile, query: Query, ctx: EvalContext | None = None
) -> AccessResult:
    """Sequential scan of every heap page (tail and tombstoned rows
    included — they occupy pages until compaction)."""
    mask = _result_mask(heapfile, _context(heapfile, query, ctx))
    cost = SimulatedCost(
        heapfile.full_scan_seconds(), heapfile.npages, 1, 1 if heapfile.npages else 0
    )
    return AccessResult("full_scan", cost, mask)


def usable_cluster_prefix(heapfile: HeapFile, query: Query) -> int:
    """How many leading clustered-key attributes the query can exploit.

    The scan can narrow through equality predicates; the first non-equality
    predicate (range / IN) still narrows but ends the prefix, and a
    non-predicated attribute ends it immediately.
    """
    depth = 0
    for attr in heapfile.cluster_key:
        pred = query.predicate_on(attr)
        if pred is None:
            break
        depth += 1
        if pred.kind != KIND_EQ:
            break
    return depth


def clustered_scan(
    heapfile: HeapFile, query: Query, ctx: EvalContext | None = None
) -> AccessResult | None:
    """Scan via the clustered index using the usable key prefix.

    Rows matching the prefix predicates are contiguous runs in the heap
    (possibly several runs for IN predicates or equality groups under a
    range); residual predicates are applied in memory for free — their I/O
    was already paid.  An unsorted insert tail is outside the clustered
    order, so — like a CM-guided scan — the scan reads it wholesale on top
    of its index-guided fragments.
    Returns None when the leading clustered attribute is not predicated.
    """
    depth = usable_cluster_prefix(heapfile, query)
    if depth == 0:
        return None
    ctx = _context(heapfile, query, ctx)
    session = ctx.session
    if session is not None:
        cached = session.scan_cost(heapfile, ("clustered",), query)
        if cached is not None:
            plan, cost = cached
            return AccessResult(plan, cost, _result_mask(heapfile, ctx))
    prefix_preds = []
    for attr in heapfile.cluster_key[:depth]:
        pred = query.predicate_on(attr)
        assert pred is not None
        prefix_preds.append(pred)
    fragments = ctx.sorted_region_fragments(tuple(prefix_preds))
    cost = _heap_access_cost(heapfile, fragments) + _tail_read_cost(
        heapfile, fragments
    )
    plan = f"clustered_scan[{','.join(heapfile.cluster_key[:depth])}]"
    if session is not None:
        session.store_scan_cost(heapfile, ("clustered",), query, plan, cost)
    return AccessResult(plan, cost, _result_mask(heapfile, ctx))


def secondary_btree_scan(
    heapfile: HeapFile,
    query: Query,
    key_attrs: tuple[str, ...],
    ctx: EvalContext | None = None,
) -> AccessResult | None:
    """Sorted scan through a dense secondary B+Tree on ``key_attrs``.

    The index yields the rowids of rows matching the predicates on its key
    attributes; the engine sorts them and sweeps the heap once.  The index
    itself costs one descent plus a sequential leaf scan sized by the number
    of matching entries.  Residual predicates are free.
    Returns None when no key attribute is predicated.
    """
    indexed_preds = [query.predicate_on(a) for a in key_attrs]
    usable = [p for p in indexed_preds if p is not None]
    if not usable or indexed_preds[0] is None:
        return None
    ctx = _context(heapfile, query, ctx)
    session = ctx.session
    if session is not None:
        cached = session.scan_cost(
            heapfile, ("secondary", tuple(key_attrs)), query
        )
        if cached is not None:
            plan, cost = cached
            return AccessResult(plan, cost, _result_mask(heapfile, ctx))
    rowids = ctx.rowids(tuple(usable))
    fragments = ctx.fragments(tuple(usable))
    heap_cost = _heap_access_cost(heapfile, fragments)

    key_bytes = heapfile.table.schema.byte_size(key_attrs)
    entries_per_leaf = leaf_entries_per_page(key_bytes, heapfile.disk.page_size)
    nleaves = (heapfile.nrows + entries_per_leaf - 1) // entries_per_leaf
    leaf_pages_read = (len(rowids) + entries_per_leaf - 1) // entries_per_leaf
    idx_height = btree_height(max(nleaves, 1), key_bytes, heapfile.disk.page_size)
    index_cost = SimulatedCost(
        heapfile.disk.scan_seconds(leaf_pages_read, idx_height),
        leaf_pages_read,
        idx_height,
        1 if leaf_pages_read else 0,
    )
    plan = f"secondary_btree[{','.join(key_attrs)}]"
    cost = heap_cost + index_cost
    if session is not None:
        session.store_scan_cost(
            heapfile, ("secondary", tuple(key_attrs)), query, plan, cost
        )
    return AccessResult(plan, cost, _result_mask(heapfile, ctx))


def cm_scan(
    heapfile: HeapFile,
    query: Query,
    cm: SecondaryStructure,
    ctx: EvalContext | None = None,
) -> AccessResult | None:
    """Scan guided by a Correlation Map (or any rank-code structure).

    The CM maps predicate values to the clustered-prefix groups they co-occur
    with; those groups are contiguous rowid ranges of the heap.  Bucketing
    introduces false positives — a superset of rows is read — but the result
    mask stays exact because residual filtering happens in memory.  The CM
    itself is assumed memory-resident (the paper's premise: CMs are tiny).

    With an active :class:`~repro.engine.EvalSession` the executed (plan,
    cost) pair is memoized per (heap-file content, CM content, query
    fingerprint) — the CM Designer's probe of a winning candidate is the
    same scan the executor later runs at every budget — and on a miss the
    rank-codes -> page-fragments resolution is shared content-wise across
    CMs and queries.  The result mask always comes from the (cached) query
    mask, so memoized and fresh results are bit-identical.
    """
    session = ctx.session if ctx is not None else get_session()
    if session is not None:
        cached = session.scan_cost(heapfile, cm, query)
        if cached is not None:
            plan, cost = cached
            context = _context(heapfile, query, ctx)
            return AccessResult(plan, cost, _result_mask(heapfile, context))
    codes = cm.lookup(query)
    if codes is None:
        return None
    if session is not None:
        fragments = session.cm_page_fragments(heapfile, cm.depth, codes)
    else:
        fragments = heapfile.page_fragments_for_prefix_codes(cm.depth, codes)
    # Tail rows are outside the rank-code space until compaction: a
    # CM-guided scan reads the whole tail on top of its fragments.
    cost = _heap_access_cost(heapfile, fragments) + _tail_read_cost(
        heapfile, fragments
    )
    plan = f"cm_scan[{cm.name}]"
    if session is not None:
        session.store_scan_cost(heapfile, cm, query, plan, cost)
    context = _context(heapfile, query, ctx)
    return AccessResult(plan, cost, _result_mask(heapfile, context))
