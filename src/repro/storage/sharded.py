"""Sharded heap files: partitioned facts with predicate-driven shard pruning.

A :class:`ShardedHeapFile` range- or hash-partitions a fact table on a chosen
*shard key* into per-shard :class:`~repro.storage.layout.HeapFile`s, each
clustered independently on the same key.  Before any access path runs, the
shard map prunes shards the query provably cannot touch:

* **Key pruning** — the routing function is monotone (range scheme) or exact
  (hash scheme on equality/IN values), so a predicate on the shard key maps
  directly to the shards its values can land on.
* **Zone pruning** — every shard keeps a zone map, the ``(min, max)`` of each
  column over its rows.  Partitioning on a key that *determines* other
  attributes (CORADD's correlation machinery scores exactly this) clusters
  those attributes into tight per-shard ranges, so predicates on correlated
  non-key attributes prune too.  Zone bounds only ever widen under inserts
  and are recomputed (tightened) on compaction, so pruning stays sound under
  any mutation schedule.

Pruning is observationally invisible: answers, per-surviving-shard plans and
costs are bit-identical to evaluating each shard unconditionally — only the
touched pages shrink.  :func:`choose_shard_key` picks the key by summing, per
query, the strongest correlation from the key to any predicated attribute —
the shard key is "just another correlated column" (ROADMAP direction 2).

:func:`run_workload_shard_parallel` fans a workload's (object, surviving
shard) units across an existing :class:`~repro.engine.parallel.ParallelSweep`
pool and reassembles per-query winners bit-identically to the serial
executor.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.engine.context import EvalContext
from repro.engine.session import get_session
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate, span
from repro.relational.query import KIND_IN, Query
from repro.relational.table import Table
from repro.storage.access import (
    AccessResult,
    SimulatedCost,
    ZERO_COST,
    clustered_scan,
    cm_scan,
    full_scan,
    secondary_btree_scan,
)
from repro.storage.disk import DiskModel
from repro.storage.layout import HeapFile

RANGE = "range"
HASH = "hash"

# Logical page-id stride separating shard page spaces: page tokens returned
# by sharded insert/delete accounting stay globally unique so the buffer
# pool never aliases two shards' pages.
_PAGE_STRIDE = np.int64(1) << np.int64(40)

# Knuth multiplicative hash over the key's integral value — deterministic
# across processes (never Python's salted hash()).
_HASH_MULT = np.int64(2654435761)
_HASH_MASK = np.int64(0x7FFFFFFF)


def _hash_shard(values: np.ndarray, shards: int) -> np.ndarray:
    v = np.asarray(values).astype(np.int64, copy=False)
    return ((v * _HASH_MULT) & _HASH_MASK) % np.int64(shards)


@dataclass(frozen=True)
class ShardSpec:
    """How to partition a fact: shard count, shard key, scheme."""

    shards: int
    key: str
    scheme: str = RANGE

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError(f"shards must be >= 1, got {self.shards}")
        if self.scheme not in (RANGE, HASH):
            raise ValueError(f"unknown shard scheme {self.scheme!r}")


class ShardMap:
    """Routes key values to shards and prunes shards from key predicates.

    Range scheme: ``boundaries`` holds the ``shards - 1`` inner quantile
    boundaries of the build-time key distribution; routing is
    ``searchsorted(boundaries, value, side="right")`` — monotone in the key,
    which is what makes range pruning sound.  Hash scheme: multiplicative
    hashing of the integral key value; only equality/IN predicates prune.
    Boundaries are frozen at build time so rows inserted later route to the
    same shards pruning assumes.
    """

    def __init__(self, spec: ShardSpec, key_values: np.ndarray) -> None:
        self.spec = spec
        if spec.scheme == RANGE:
            values = np.asarray(key_values, dtype=np.float64)
            if len(values) == 0:
                boundaries = np.zeros(spec.shards - 1, dtype=np.float64)
            else:
                qs = np.linspace(0.0, 1.0, spec.shards + 1)[1:-1]
                boundaries = np.quantile(values, qs)
            # Skewed keys can repeat a boundary; the corresponding shards
            # are simply empty, which pruning and routing both handle.
            self.boundaries = np.asarray(boundaries, dtype=np.float64)
        else:
            self.boundaries = np.empty(0, dtype=np.float64)

    def route(self, key_values: np.ndarray) -> np.ndarray:
        """Shard index of each key value (same routing at build and insert
        time — the invariant pruning relies on)."""
        values = np.asarray(key_values)
        if self.spec.scheme == RANGE:
            return np.searchsorted(
                self.boundaries, values.astype(np.float64, copy=False),
                side="right",
            ).astype(np.int64)
        return _hash_shard(values, self.spec.shards)

    def shards_for_query(self, query: Query) -> np.ndarray:
        """Shards that may hold rows matching the query's *shard-key*
        predicate (all shards when the key is unpredicated)."""
        everything = np.arange(self.spec.shards, dtype=np.int64)
        pred = query.predicate_on(self.spec.key)
        if pred is None:
            return everything
        if self.spec.scheme == HASH:
            if pred.kind == KIND_IN:
                return np.unique(self.route(np.asarray(pred.values)))
            lo, hi = pred.value_range()
            if lo == hi:  # equality routes exactly
                return np.unique(self.route(np.asarray([lo])))
            return everything  # ranges don't localize under hashing
        if pred.kind == KIND_IN:
            return np.unique(self.route(np.asarray(pred.values)))
        lo, hi = pred.value_range()
        first = int(np.searchsorted(self.boundaries, lo, side="right"))
        last = int(np.searchsorted(self.boundaries, hi, side="right"))
        return np.arange(first, last + 1, dtype=np.int64)


_SCORE_SAMPLE_ROWS = 4096


def _zone_tightness(
    key_vals: np.ndarray, pred_vals: np.ndarray, shards: int
) -> float:
    """How well range-partitioning on ``key_vals`` localizes ``pred_vals``:
    1 - (mean per-chunk value range / global range) over ``shards``
    quantile chunks of the key order.  1.0 means each shard sees a point
    value of the attribute (every predicate prunes perfectly); 0.0 means
    every shard sees the full range (no predicate ever prunes)."""
    order = np.argsort(key_vals, kind="stable")
    p = pred_vals[order].astype(np.float64, copy=False)
    lo, hi = float(p.min()), float(p.max())
    if hi <= lo:
        return 0.0
    width = sum(
        float(chunk.max()) - float(chunk.min())
        for chunk in np.array_split(p, shards)
        if len(chunk)
    )
    return 1.0 - width / (shards * (hi - lo))


def choose_shard_key(stats, queries, shards: int, candidates=None) -> str:
    """Correlation-scored shard key choice over ``TableStatistics``.

    For each candidate attribute ``a`` with at least ``shards`` distinct
    values, score ``sum_q frequency(q) * max_p tightness(a, p.attr)`` over
    the queries' predicates, where tightness measures (on a deterministic
    row sample) how narrow each predicated attribute's per-shard zone gets
    when the fact is range-partitioned on ``a`` — exactly the signal
    zone-map pruning exploits.  A correlated hierarchy scores high in both
    directions (partitioning on ``orderdate`` localizes ``year`` and vice
    versa); an uncorrelated near-unique column scores ~0 even though it
    functionally "determines" everything.  Deterministic tie-break by name.
    """
    table = stats.table
    universe = list(candidates) if candidates is not None else list(
        table.column_names
    )
    viable = [a for a in universe if stats.distinct((a,)) >= shards]
    if not viable:
        viable = sorted(
            universe, key=lambda a: (-stats.distinct((a,)), a)
        )[:1]
    if not viable:
        raise ValueError("no shard-key candidates")
    step = max(1, table.nrows // _SCORE_SAMPLE_ROWS)
    sampled: dict[str, np.ndarray] = {}

    def col(name: str) -> np.ndarray:
        arr = sampled.get(name)
        if arr is None:
            arr = table.column(name)[::step]
            sampled[name] = arr
        return arr

    pred_attrs = {
        p.attr for q in queries for p in q.predicates
        if table.has_column(p.attr)
    }
    tightness: dict[tuple[str, str], float] = {}
    best_key, best_score = None, -1.0
    for a in sorted(viable):
        score = 0.0
        for q in queries:
            best_p = 0.0
            for p in q.predicates:
                if p.attr not in pred_attrs:
                    continue
                t = tightness.get((a, p.attr))
                if t is None:
                    t = _zone_tightness(col(a), col(p.attr), shards)
                    tightness[(a, p.attr)] = t
                best_p = max(best_p, t)
            score += q.frequency * best_p
        if score > best_score:
            best_key, best_score = a, score
    assert best_key is not None
    return best_key


class _ConcatView:
    """A read-only, lazily column-concatenated view over the shards.

    Duck-types the slice of the :class:`Table` API consumers of
    ``heapfile.table`` actually use (schema, ``has_column``, ``column``,
    ``nrows``) so covering checks are free and answer verification works
    without materializing the concatenation eagerly.
    """

    def __init__(self, owner: "ShardedHeapFile") -> None:
        self._owner = owner
        self._cache: dict[str, np.ndarray] = {}
        first = owner.shards[0].table
        self.schema = first.schema
        self.decoders = first.decoders

    @property
    def nrows(self) -> int:
        return self._owner.nrows

    @property
    def column_names(self) -> list[str]:
        return self._owner.shards[0].table.column_names

    def has_column(self, name: str) -> bool:
        return self._owner.shards[0].table.has_column(name)

    def column(self, name: str) -> np.ndarray:
        arr = self._cache.get(name)
        if arr is None:
            arr = np.concatenate(
                [s.table.column(name) for s in self._owner.shards]
            )
            self._cache[name] = arr
        return arr


def _zone_map(table) -> dict[str, tuple[float, float]]:
    zones: dict[str, tuple[float, float]] = {}
    for name in table.column_names:
        col = table.column(name)
        if len(col) == 0:
            continue
        zones[name] = (float(col.min()), float(col.max()))
    return zones


class ShardedHeapFile:
    """A fact partitioned into per-shard heap files behind one facade.

    Exposes the aggregate geometry the executor, cost accounting and the
    refresh path read from plain heap files; rowids in the facade's
    coordinate space are concatenation-order (shard 0's rows first), and
    ``source_rowids`` carries *global* provenance so deletions propagate
    across shards and projections identically to the unsharded file.
    """

    def __init__(
        self,
        table: Table,
        cluster_key: tuple[str, ...],
        disk: DiskModel,
        spec: ShardSpec,
        name: str | None = None,
        shard_map: ShardMap | None = None,
    ) -> None:
        table.column(spec.key)  # raises KeyError on unknown shard keys
        self.name = name or table.schema.name
        self.cluster_key = tuple(cluster_key)
        self.disk = disk
        self.spec = spec
        self.shard_map = shard_map or ShardMap(spec, table.column(spec.key))
        assign = self.shard_map.route(table.column(spec.key))
        self.shards: list[HeapFile] = []
        self.zone_maps: list[dict[str, tuple[float, float]]] = []
        for s in range(spec.shards):
            rows = np.nonzero(assign == s)[0].astype(np.int64)
            sub = table.select(rows, new_name=f"{self.name}#s{s}")
            hf = HeapFile(sub, self.cluster_key, disk, name=f"{self.name}#s{s}")
            # HeapFile provenance points into the shard's sub-table; rewrite
            # it to global (flat-table) row ids so cross-shard/projection
            # deletion propagation keeps working.
            hf.source_rowids = rows[hf.source_rowids]
            self.shards.append(hf)
            self.zone_maps.append(_zone_map(hf.table))
        # Per-shard secondary CM structures (shard-local candidate objects).
        self.shard_cms: list[list] = [[] for _ in range(spec.shards)]
        self.shared = False
        # Routing of the last insert batch: {shard: rows} (test/obs hook).
        self.last_route: dict[int, int] = {}
        self._view: _ConcatView | None = None
        self._view_version = -1

    # --------------------------------------------------------------- facade

    @property
    def table(self) -> _ConcatView:
        if self._view is None or self._view_version != self.version:
            self._view = _ConcatView(self)
            self._view_version = self.version
        return self._view

    @property
    def nrows(self) -> int:
        return sum(s.nrows for s in self.shards)

    @property
    def live_rows(self) -> int:
        return sum(s.live_rows for s in self.shards)

    @property
    def tail_rows(self) -> int:
        return sum(s.tail_rows for s in self.shards)

    @property
    def sorted_rows(self) -> int:
        return sum(s.sorted_rows for s in self.shards)

    @property
    def npages(self) -> int:
        return sum(s.npages for s in self.shards)

    @property
    def rows_per_page(self) -> int:
        return self.shards[0].rows_per_page

    @property
    def row_bytes(self) -> int:
        return self.shards[0].row_bytes

    @property
    def btree_height(self) -> int:
        return max(s.btree_height for s in self.shards)

    @property
    def version(self) -> int:
        return sum(s.version for s in self.shards)

    @property
    def heap_bytes(self) -> int:
        return sum(s.heap_bytes for s in self.shards)

    @property
    def size_bytes(self) -> int:
        return sum(s.size_bytes for s in self.shards)

    @property
    def shm_shared(self) -> bool:
        return all(s.shm_shared for s in self.shards)

    @property
    def source_rowids(self) -> np.ndarray:
        return np.concatenate([s.source_rowids for s in self.shards])

    @property
    def live(self) -> np.ndarray | None:
        if all(s.live is None for s in self.shards):
            return None
        return np.concatenate([
            np.ones(s.nrows, dtype=bool) if s.live is None else s.live
            for s in self.shards
        ])

    def full_scan_seconds(self) -> float:
        return sum(s.full_scan_seconds() for s in self.shards)

    def _shard_bases(self) -> np.ndarray:
        """Concat-space starting rowid of each shard (+ total sentinel)."""
        return np.concatenate(
            ([0], np.cumsum([s.nrows for s in self.shards]))
        ).astype(np.int64)

    # ------------------------------------------------------------- sharing

    def mutable_copy(self) -> "ShardedHeapFile":
        clone = object.__new__(ShardedHeapFile)
        clone.__dict__ = dict(self.__dict__)
        clone.shards = [s.mutable_copy() for s in self.shards]
        clone.zone_maps = [dict(z) for z in self.zone_maps]
        clone.shard_cms = [
            [_rebind_cm(cm, hf) for cm in cms]
            for cms, hf in zip(self.shard_cms, clone.shards)
        ]
        clone.shared = False
        clone.last_route = dict(self.last_route)
        clone._view = None
        clone._view_version = -1
        return clone

    def share_columns(self, arena) -> int:
        """Ship every shard's columns into the shared-memory arena
        (idempotent per shard, like :meth:`HeapFile.share_columns`)."""
        return sum(s.share_columns(arena) for s in self.shards)

    # ------------------------------------------------------------- pruning

    def shards_for_query(self, query: Query) -> np.ndarray:
        """Surviving shard indexes, ascending: key pruning via the shard
        map intersected with zone-map pruning over *every* predicate."""
        survivors = []
        for s in self.shard_map.shards_for_query(query):
            s = int(s)
            if self.shards[s].nrows == 0:
                continue  # provably no rows at all
            zones = self.zone_maps[s]
            alive = True
            for pred in query.predicates:
                zone = zones.get(pred.attr)
                if zone is None:
                    continue
                zlo, zhi = zone
                if pred.kind == KIND_IN:
                    if not any(zlo <= v <= zhi for v in pred.values):
                        alive = False
                        break
                else:
                    lo, hi = pred.value_range()
                    if hi < zlo or lo > zhi:
                        alive = False
                        break
            if alive:
                survivors.append(s)
        return np.asarray(survivors, dtype=np.int64)

    # ------------------------------------------------------------ mutation

    def insert(
        self,
        columns: dict[str, np.ndarray],
        source_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Route a batch to its target shards (build-time boundaries) and
        append per shard; returns globally-unique logical page tokens
        (shard-strided) per input row, for maintenance accounting."""
        key_values = np.asarray(columns[self.spec.key])
        n_new = len(key_values)
        if n_new == 0:
            self.last_route = {}
            return np.empty(0, dtype=np.int64)
        if source_ids is None:
            start = int(max(
                int(s.source_rowids.max(initial=-1)) for s in self.shards
            )) + 1
            source_ids = np.arange(start, start + n_new, dtype=np.int64)
        else:
            source_ids = np.asarray(source_ids, dtype=np.int64)
        assign = self.shard_map.route(key_values)
        out = np.empty(n_new, dtype=np.int64)
        self.last_route = {}
        for s, hf in enumerate(self.shards):
            rows = np.nonzero(assign == s)[0]
            if len(rows) == 0:
                continue
            sub = {n: np.asarray(arr)[rows] for n, arr in columns.items()}
            pages = hf.insert(sub, source_ids[rows])
            out[rows] = pages + np.int64(s) * _PAGE_STRIDE
            self.last_route[s] = len(rows)
            zones = self.zone_maps[s]
            for name in hf.table.column_names:
                batch = np.asarray(sub[name])
                lo, hi = float(batch.min()), float(batch.max())
                old = zones.get(name)
                zones[name] = (lo, hi) if old is None else (
                    min(old[0], lo), max(old[1], hi)
                )
        return out

    def delete_source(self, source_ids: np.ndarray) -> np.ndarray:
        """Tombstone matching rows in every shard; returns concat-space
        rowids (zone maps stay valid — bounds only ever over-cover)."""
        bases = self._shard_bases()
        out = []
        for s, hf in enumerate(self.shards):
            rowids = hf.delete_source(source_ids)
            if len(rowids):
                out.append(rowids + bases[s])
        if not out:
            return np.empty(0, dtype=np.int64)
        return np.concatenate(out)

    def pages_for_rowids(self, rowids: np.ndarray) -> np.ndarray:
        """Globally-unique (shard-strided) page tokens of concat-space
        rowids."""
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) == 0:
            return np.empty(0, dtype=np.int64)
        bases = self._shard_bases()
        shard = np.searchsorted(bases, rowids, side="right") - 1
        local = rowids - bases[shard]
        return np.unique(
            local // self.rows_per_page + shard * _PAGE_STRIDE
        )

    def refresh_zone_maps(self) -> None:
        """Recompute (tighten) every shard's zone map from current content
        — called after compaction reclaims tombstones."""
        self.zone_maps = [_zone_map(s.table) for s in self.shards]

    def __repr__(self) -> str:
        key = ",".join(self.cluster_key) or "<unclustered>"
        return (
            f"ShardedHeapFile({self.name!r}, key=({key}), "
            f"shards={self.spec.shards}x{self.spec.scheme}"
            f"[{self.spec.key}], pages={self.npages})"
        )


def _rebind_cm(cm, heapfile):
    """Shallow-rebind a CM onto a privatized shard heap file (mirrors the
    refresh executor's CM privatization trick)."""
    clone = object.__new__(type(cm))
    clone.__dict__ = {**cm.__dict__, "heapfile": heapfile}
    return clone


# ---------------------------------------------------------------- access


@dataclass(frozen=True)
class ShardAccess:
    """One surviving shard's winning plan inside a sharded access."""

    shard: int
    plan: str
    cost: SimulatedCost


@dataclass(frozen=True)
class ShardedAccessResult(AccessResult):
    """Aggregate access over surviving shards; ``mask`` covers the full
    concat space (pruned shards contribute all-False segments)."""

    shard_details: tuple[ShardAccess, ...] = ()
    shards_total: int = 0
    pages_avoided: int = 0

    @property
    def shards_scanned(self) -> int:
        return len(self.shard_details)


def shard_best_plan(
    sharded: ShardedHeapFile,
    s: int,
    query: Query,
    btree_keys: tuple[tuple[str, ...], ...] = (),
) -> AccessResult:
    """Cheapest plan over one shard, same plan set and strict-< tie-break
    as :meth:`PhysicalDatabase.plans_for` on a plain object."""
    hf = sharded.shards[s]
    session = get_session()
    if session is not None:
        # Pin the shard into the session's content-keyed caches: each shard
        # caches independently (per-shard cache keys), and share_heapfiles()
        # later ships pinned shard columns zero-copy to workers.
        session.adopt_heapfile(hf)
    ctx = EvalContext(hf, query)
    best = full_scan(hf, query, ctx)
    cscan = clustered_scan(hf, query, ctx)
    if cscan is not None and cscan.seconds < best.seconds:
        best = cscan
    for cm in sharded.shard_cms[s]:
        res = cm_scan(hf, query, cm, ctx)
        if res is not None and res.seconds < best.seconds:
            best = res
    for key in btree_keys:
        res = secondary_btree_scan(hf, query, tuple(key), ctx)
        if res is not None and res.seconds < best.seconds:
            best = res
    return best


def combine_shard_results(
    sharded: ShardedHeapFile,
    survivors: list[int],
    results: list[AccessResult],
) -> ShardedAccessResult:
    """Assemble per-shard results into one concat-space result.  Both the
    serial and the parallel path go through this function with survivors in
    ascending order, so cost summation order (float addition) is identical
    — the bit-identity requirement."""
    by_shard = dict(zip(survivors, results))
    mask = np.zeros(sharded.nrows, dtype=bool)
    cost = ZERO_COST
    details = []
    pages_avoided = 0
    base = 0
    for s, hf in enumerate(sharded.shards):
        res = by_shard.get(s)
        if res is not None:
            mask[base:base + hf.nrows] = res.mask
            cost = cost + res.cost
            details.append(ShardAccess(s, res.plan, res.cost))
        else:
            pages_avoided += hf.npages
        base += hf.nrows
    plan = f"sharded[{len(details)}/{len(sharded.shards)}]"
    return ShardedAccessResult(
        plan,
        cost,
        mask,
        shard_details=tuple(details),
        shards_total=len(sharded.shards),
        pages_avoided=pages_avoided,
    )


def sharded_scan(
    sharded: ShardedHeapFile,
    query: Query,
    btree_keys: tuple[tuple[str, ...], ...] = (),
) -> ShardedAccessResult:
    """Prune, then evaluate each surviving shard with its cheapest plan."""
    with span("shard.prune", object=sharded.name, query=query.name):
        survivors = [int(s) for s in sharded.shards_for_query(query)]
        pruned = sharded.spec.shards - len(survivors)
        pages_avoided = sum(
            hf.npages for i, hf in enumerate(sharded.shards)
            if i not in survivors
        )
        obs_metrics.count("engine.shard.shards_pruned", pruned)
        obs_metrics.count("engine.shard.pages_avoided", pages_avoided)
        annotate(
            shards=sharded.spec.shards,
            scanned=len(survivors),
            pages_avoided=pages_avoided,
        )
    results = [
        shard_best_plan(sharded, s, query, btree_keys) for s in survivors
    ]
    return combine_shard_results(sharded, survivors, results)


# ---------------------------------------------------- shard-parallel sweeps


def run_workload_shard_parallel(
    db, workload, sweep, session=None
) -> dict:
    """Evaluate a workload with (object, surviving shard) as the unit of
    parallelism over ``sweep``'s steal pool.

    Sharded objects expand into one task per surviving shard; plain objects
    stay one task.  Reassembly walks objects in the executor's dict order
    and sums shard costs in ascending shard order, so the returned
    :class:`PlanChoice` per query is bit-identical to serial ``db.run`` —
    plans, costs and masks included.
    """
    from repro.storage.executor import PlanChoice

    queries = list(workload)
    survivors_by: dict[tuple[int, str], list[int] | None] = {}
    units: list[tuple[int, str, int]] = []
    for qi, q in enumerate(queries):
        for obj_name, obj in db.objects.items():
            if not obj.covers(q):
                continue
            hf = obj.heapfile
            if isinstance(hf, ShardedHeapFile):
                with span("shard.prune", object=obj_name, query=q.name):
                    surv = [int(s) for s in hf.shards_for_query(q)]
                    pruned = hf.spec.shards - len(surv)
                    pages_avoided = sum(
                        shard.npages for i, shard in enumerate(hf.shards)
                        if i not in surv
                    )
                    obs_metrics.count("engine.shard.shards_pruned", pruned)
                    obs_metrics.count(
                        "engine.shard.pages_avoided", pages_avoided
                    )
                    annotate(shards=hf.spec.shards, scanned=len(surv))
                survivors_by[(qi, obj_name)] = surv
                units.extend((qi, obj_name, s) for s in surv)
            else:
                survivors_by[(qi, obj_name)] = None
                units.append((qi, obj_name, -1))
    obs_metrics.count("engine.shard.shard_parallel_tasks", len(units))

    def eval_unit(unit: tuple[int, str, int]) -> AccessResult:
        qi, obj_name, s = unit
        q = queries[qi]
        obj = db.objects[obj_name]
        if s < 0:
            best = None
            for res in db.plans_for(q, obj):
                if best is None or res.seconds < best.seconds:
                    best = res
            assert best is not None  # full_scan always applies
            return best
        return shard_best_plan(
            obj.heapfile, s, q, tuple(tuple(k) for k in obj.btree_keys)
        )

    flat = sweep.map(eval_unit, units, session=session)
    grouped: dict[tuple[int, str], list[AccessResult]] = {
        key: [] for key in survivors_by
    }
    for unit, res in zip(units, flat):
        grouped[(unit[0], unit[1])].append(res)

    out: dict[str, PlanChoice] = {}
    for qi, q in enumerate(queries):
        best: PlanChoice | None = None
        for obj_name, obj in db.objects.items():
            key = (qi, obj_name)
            if key not in survivors_by:
                continue
            surv = survivors_by[key]
            if surv is None:
                res = grouped[key][0]
            else:
                res = combine_shard_results(obj.heapfile, surv, grouped[key])
            if best is None or res.seconds < best.seconds:
                best = PlanChoice(obj_name, res)
        if best is None:
            raise ValueError(
                f"no physical object covers query {q.name!r} "
                f"(attrs {q.attributes()})"
            )
        out[q.name] = best
    return out


def sharded_fact_object(
    flat: Table,
    fact: str,
    primary_key: tuple[str, ...],
    spec: ShardSpec,
    disk: DiskModel | None = None,
):
    """Build the sharded base :class:`PhysicalObject` for a fact."""
    from repro.storage.executor import PhysicalObject

    disk = disk if disk is not None else DiskModel()
    shf = ShardedHeapFile(flat, tuple(primary_key), disk, spec, name=fact)
    return PhysicalObject(shf, fact=fact)  # type: ignore[arg-type]
