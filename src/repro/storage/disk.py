"""Disk model: converts page counts and seek counts into simulated seconds.

Matches the paper's cost-model vocabulary (Appendix A-2.2, Table 5):

* ``seek_cost`` — time to seek to a random page and read it ("typical value:
  5.5 ms" per the paper);
* sequential read throughput, from which per-page read time is derived;
* ``fragment_gap_pages`` — two row accesses within this many pages count as
  one fragment, modelling DBMS readahead ("our model considers two tuples
  placed at nearby positions in the heap file to be one fragment").
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class DiskModel:
    """Parameters of the simulated disk and page layout."""

    page_size: int = 8192
    seek_cost_s: float = 5.5e-3
    sequential_mb_per_s: float = 80.0
    fragment_gap_pages: int = 8
    # Fill factor applied to heap/leaf pages (B+Trees are not packed full).
    fill_factor: float = 0.9

    def __post_init__(self) -> None:
        if self.page_size <= 0:
            raise ValueError("page_size must be positive")
        if self.sequential_mb_per_s <= 0:
            raise ValueError("sequential_mb_per_s must be positive")
        if not (0.0 < self.fill_factor <= 1.0):
            raise ValueError("fill_factor must be in (0, 1]")
        if self.fragment_gap_pages < 0:
            raise ValueError("fragment_gap_pages must be non-negative")

    @property
    def page_read_s(self) -> float:
        """Seconds to sequentially read one page."""
        return self.page_size / (self.sequential_mb_per_s * 1024 * 1024)

    @property
    def page_write_s(self) -> float:
        """Seconds to write one (random) dirty page: a seek plus a transfer."""
        return self.seek_cost_s + self.page_read_s

    def rows_per_page(self, row_bytes: int) -> int:
        """How many rows of ``row_bytes`` fit in one page (>= 1)."""
        if row_bytes <= 0:
            raise ValueError("row_bytes must be positive")
        return max(1, int(self.page_size * self.fill_factor / row_bytes))

    def pages_for_rows(self, nrows: int, row_bytes: int) -> int:
        per_page = self.rows_per_page(row_bytes)
        return (max(0, nrows) + per_page - 1) // per_page

    def scan_seconds(self, npages: int, nseeks: int = 1) -> float:
        """Seconds for ``nseeks`` random seeks plus ``npages`` sequential reads."""
        return nseeks * self.seek_cost_s + npages * self.page_read_s

    def full_scan_seconds(self, npages: int) -> float:
        return self.scan_seconds(npages, nseeks=1)
