"""Fragment computation: coalescing page accesses into contiguous runs.

The correlation effect at the heart of the paper (Figure 13) is visible in
this module: a sorted secondary-index scan touches a set of heap pages, and
its cost is driven by how many *contiguous runs* ("fragments") those pages
form.  Matching rows clustered near each other produce a few long fragments
(cheap: few seeks); scattered rows produce one fragment per page (expensive).
"""

from __future__ import annotations

import numpy as np


def pages_for_rowids(rowids: np.ndarray, rows_per_page: int) -> np.ndarray:
    """Sorted unique page numbers touched by ``rowids`` (positions in the
    heap file's clustered order)."""
    if rows_per_page <= 0:
        raise ValueError("rows_per_page must be positive")
    if len(rowids) == 0:
        return np.empty(0, dtype=np.int64)
    pages = np.asarray(rowids, dtype=np.int64) // rows_per_page
    return np.unique(pages)


def coalesce_pages(pages: np.ndarray, gap: int) -> list[tuple[int, int]]:
    """Group sorted unique page numbers into fragments.

    Two consecutive page accesses belong to the same fragment when they are
    at most ``gap`` pages apart (modelling readahead: the DBMS keeps reading
    sequentially over small holes rather than seeking).  Returns inclusive
    ``(first_page, last_page)`` runs.
    """
    if gap < 0:
        raise ValueError("gap must be non-negative")
    if len(pages) == 0:
        return []
    pages = np.asarray(pages, dtype=np.int64)
    breaks = np.nonzero(np.diff(pages) > gap + 1)[0]
    starts = np.concatenate(([0], breaks + 1))
    ends = np.concatenate((breaks, [len(pages) - 1]))
    return [(int(pages[s]), int(pages[e])) for s, e in zip(starts, ends)]


def fragment_count(pages: np.ndarray, gap: int) -> int:
    """Number of fragments (see :func:`coalesce_pages`)."""
    if len(pages) == 0:
        return 0
    pages = np.asarray(pages, dtype=np.int64)
    return 1 + int((np.diff(pages) > gap + 1).sum())


def pages_spanned(fragments: list[tuple[int, int]]) -> int:
    """Total pages actually read: each fragment is read end to end
    (readahead reads the holes too)."""
    return sum(last - first + 1 for first, last in fragments)
