"""Physical substrate: a simulated disk-resident storage engine.

The paper's experiments run on a commercial DBMS over a 10k RPM disk; every
effect it reports (Figures 9-11, 10, 13, 14) is an I/O-shape effect — runtime
is dominated by how many *random seeks* and how many *sequential pages* a
plan touches.  This package reproduces that substrate: heap files laid out in
pages under a clustered sort order, B+Tree size/height models, secondary
index and Correlation-Map scans that coalesce row accesses into fragments,
and a disk model that converts (seeks, pages) into simulated seconds.

Executing a plan here computes the *actual* page-access pattern over *actual*
generated tuples, so correlation effects emerge rather than being assumed.
"""

from repro.storage.disk import DiskModel
from repro.storage.fragments import coalesce_pages, fragment_count, pages_for_rowids
from repro.storage.btree import btree_height, secondary_index_bytes, clustered_overhead_bytes
from repro.storage.layout import HeapFile
from repro.storage.access import (
    SimulatedCost,
    AccessResult,
    full_scan,
    clustered_scan,
    secondary_btree_scan,
    cm_scan,
)
from repro.storage.executor import PhysicalDatabase, PhysicalObject, run_query
from repro.storage.bufferpool import BufferPool, simulate_insert_workload

__all__ = [
    "DiskModel",
    "coalesce_pages",
    "fragment_count",
    "pages_for_rowids",
    "btree_height",
    "secondary_index_bytes",
    "clustered_overhead_bytes",
    "HeapFile",
    "SimulatedCost",
    "AccessResult",
    "full_scan",
    "clustered_scan",
    "secondary_btree_scan",
    "cm_scan",
    "PhysicalDatabase",
    "PhysicalObject",
    "run_query",
    "BufferPool",
    "simulate_insert_workload",
]
