"""Applying refresh streams to a live :class:`PhysicalDatabase`.

This is the piece Figure 14 was missing an engine for: the buffer-pool
simulation knew *why* extra materialized objects make inserts expensive, but
nothing could actually apply an insert.  A :class:`RefreshExecutor` routes a
refresh batch (inserts of flat-universe rows, or deletes by predicate) to
every physical object derived from the batch's fact table:

* the heap file takes the batch through :meth:`~repro.storage.layout.
  HeapFile.insert` / :meth:`~repro.storage.layout.HeapFile.delete_source`
  (append + tombstone; provenance ids propagate deletes into projections
  that do not carry the predicate's attributes);
* every page the mutation *logically dirties* — the row's position under the
  object's clustered order, plus one leaf touch per dense secondary B+Tree —
  goes through a real :class:`~repro.storage.bufferpool.BufferPool`, so
  maintenance cost emerges from LRU hits/misses exactly as in the paper's
  Appendix A-3 experiment;
* Correlation Maps are refreshed incrementally (:meth:`~repro.cm.
  correlation_map.CorrelationMap.refresh`: a no-op for tail inserts, a
  rebuild after compaction);
* the database's plan memo is invalidated, and an active
  :class:`~repro.engine.EvalSession` re-keys the mutated heap files so every
  content-keyed cache tier misses onto fresh entries (a key bump, not a
  cache teardown).

Session-cached heap files may back several databases of a sweep, so the
executor privatizes an object (``HeapFile.mutable_copy`` + rebound CMs)
before its first mutation — other databases keep seeing the pristine file.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.engine.session import EvalSession, get_session
from repro.obs import metrics as obs_metrics
from repro.obs.trace import annotate, span
from repro.storage.bufferpool import DEFAULT_POOL_PAGES, BufferPool
from repro.storage.btree import leaf_entries_per_page
from repro.storage.disk import DiskModel
from repro.storage.executor import PhysicalDatabase, PhysicalObject
from repro.storage.layout import HeapFile
from repro.storage.sharded import ShardedHeapFile


@dataclass(frozen=True)
class RefreshOutcome:
    """Accounting for one applied batch."""

    kind: str  # "insert" | "delete"
    fact: str
    rows: int
    objects_touched: int
    seconds: float
    page_reads: int
    page_writes: int
    compactions: int


class RefreshExecutor:
    """Applies insert/delete batches to a database, charging a buffer pool.

    ``compact_threshold`` triggers an object's compaction once its unsorted
    tail exceeds that fraction of the sorted region (0 disables).  The
    executor owns the pool: cost accumulates across batches the way a real
    warm buffer pool would, and :meth:`flush` settles the remaining dirty
    pages at the end of a stream.

    ``compaction`` picks how a triggered compaction runs: ``"rewrite"``
    (the baseline) rewrites the whole file synchronously and rebuilds its
    CMs; ``"tail-merge"`` rewrites only the suffix the churn can reach
    (:meth:`~repro.storage.layout.HeapFile.tail_merge` — bit-identical
    layout), keeps the object's warm prefix pages in the pool, and refreshes
    CMs incrementally with amortized rebuilds
    (:meth:`~repro.cm.correlation_map.CorrelationMap.refresh_merged`).
    Query answers are identical under either mode; only the charged
    maintenance I/O and CM bookkeeping differ.
    """

    #: Valid ``compaction`` modes.
    COMPACTION_MODES = ("rewrite", "tail-merge")

    def __init__(
        self,
        db: PhysicalDatabase,
        pool_pages: int = DEFAULT_POOL_PAGES,
        disk: DiskModel | None = None,
        session: EvalSession | None = None,
        compact_threshold: float = 0.25,
        compaction: str = "rewrite",
    ) -> None:
        if compaction not in self.COMPACTION_MODES:
            raise ValueError(
                f"unknown compaction mode {compaction!r}; "
                f"expected one of {self.COMPACTION_MODES}"
            )
        self.db = db
        self.disk = disk or DiskModel()
        self.pool = BufferPool(pool_pages)
        self.session = session if session is not None else get_session()
        self.compact_threshold = compact_threshold
        self.compaction = compaction
        self._obj_ids: dict[str, int] = {}
        self._next_source: dict[str, int] = {}
        # (object name, btree key) -> sorted key values at first touch, for
        # deterministic leaf-page targeting of index maintenance.
        self._index_keys: dict[tuple[str, tuple[str, ...]], np.ndarray] = {}
        # Applied-batch log, in order: what a freshly built object (an MV
        # deployed mid-stream) must replay to catch up with the batches it
        # was not there for.
        self._log: list[tuple] = []
        self.compactions = 0

    # ------------------------------------------------------------- plumbing

    def _obj_id(self, name: str) -> int:
        return self._obj_ids.setdefault(name, len(self._obj_ids))

    def _privatize(self, obj: PhysicalObject) -> HeapFile:
        """Make the object's heap file safe to mutate: session-cached files
        are shared across the sweep's databases, so the first mutation swaps
        in a private copy (and rebinds the CMs to it)."""
        hf = obj.heapfile
        if hf.shared:
            hf = hf.mutable_copy()
            obj.heapfile = hf
            obj.cms = [self._rebound_cm(cm, hf) for cm in obj.cms]
        if self.session is not None:
            if isinstance(hf, ShardedHeapFile):
                # Scans run on (and cache-key off) the per-shard files.
                for shard in hf.shards:
                    self.session.adopt_heapfile(shard)
            else:
                self.session.adopt_heapfile(hf)
        return hf

    @staticmethod
    def _rebound_cm(cm, heapfile: HeapFile):
        clone = object.__new__(type(cm))
        clone.__dict__ = {**cm.__dict__, "heapfile": heapfile}
        return clone

    def _next_source_ids(self, fact: str, n: int) -> np.ndarray:
        start = self._next_source.get(fact)
        if start is None:
            start = 0
            for obj in self.db.objects_for_fact(fact):
                ids = obj.heapfile.source_rowids
                if len(ids):
                    start = max(start, int(ids.max()) + 1)
        self._next_source[fact] = start + n
        return np.arange(start, start + n, dtype=np.int64)

    def _charge(self, reads: int, writes: int) -> float:
        return (reads + writes) * self.disk.page_write_s

    def _pool_delta(self) -> tuple[int, int]:
        return (self.pool.misses, self.pool.dirty_evictions)

    def _publish(self, outcome: RefreshOutcome) -> None:
        """Record one applied batch on the ambient metrics registry (no-op
        when metrics are disabled)."""
        obs_metrics.count(f"storage.refresh.{outcome.kind}_batches")
        obs_metrics.count(f"storage.refresh.{outcome.kind}_rows", outcome.rows)
        obs_metrics.count("storage.refresh.page_reads", outcome.page_reads)
        obs_metrics.count("storage.refresh.page_writes", outcome.page_writes)
        obs_metrics.count("storage.refresh.compactions", outcome.compactions)
        obs_metrics.observe("storage.refresh.batch_seconds", outcome.seconds)
        self.pool.publish_metrics()

    # -------------------------------------------------------------- applying

    def apply(self, batch) -> RefreshOutcome:
        """Apply one :class:`~repro.workloads.refresh.RefreshBatch` (duck
        typed: anything with ``kind``/``fact``/``columns``/``delete_predicates``)."""
        if batch.kind == "insert":
            return self.apply_insert(batch.fact, batch.columns)
        if batch.kind == "delete":
            return self.apply_delete(batch.fact, list(batch.delete_predicates))
        raise ValueError(f"unknown refresh batch kind {batch.kind!r}")

    def apply_insert(
        self, fact: str, columns: dict[str, np.ndarray]
    ) -> RefreshOutcome:
        """Insert a batch of flat-universe rows into every object of
        ``fact``; returns the maintenance accounting."""
        objects = self.db.objects_for_fact(fact)
        if not objects:
            raise KeyError(f"no physical objects materialize fact {fact!r}")
        nrows = len(next(iter(columns.values()))) if columns else 0
        if nrows == 0:
            return RefreshOutcome("insert", fact, 0, 0, 0.0, 0, 0, 0)
        with span("refresh.insert", fact=fact, rows=nrows):
            source_ids = self._next_source_ids(fact, nrows)
            self._log.append(("insert", fact, columns, source_ids))
            reads0, writes0 = self._pool_delta()
            compactions = 0
            compact_seconds = 0.0
            for obj in objects:
                hf = self._privatize(obj)
                obj_id = self._obj_id(obj.name)
                target_pages = hf.insert(columns, source_ids)
                for page in np.unique(target_pages):
                    self.pool.access(obj_id, int(page), dirty=True)
                self._charge_index_maintenance(obj, hf, columns, nrows)
                seconds = self._maybe_compact(obj, hf)
                if seconds:
                    compactions += 1
                    compact_seconds += seconds
            self._settle(fact)
            reads1, writes1 = self._pool_delta()
            reads, writes = reads1 - reads0, writes1 - writes0
            outcome = RefreshOutcome(
                "insert", fact, nrows, len(objects),
                self._charge(reads, writes) + compact_seconds,
                reads, writes, compactions,
            )
            annotate(seconds=outcome.seconds, compactions=compactions)
            self._publish(outcome)
            return outcome

    def apply_delete(self, fact: str, predicates: list) -> RefreshOutcome:
        """Delete (tombstone) every live row of ``fact`` matching the
        conjunction of ``predicates``, across every derived object.  The
        predicate is evaluated once on an anchor object carrying all its
        attributes; provenance ids propagate the decision everywhere else.
        """
        objects = self.db.objects_for_fact(fact)
        if not objects:
            raise KeyError(f"no physical objects materialize fact {fact!r}")
        with span("refresh.delete", fact=fact):
            anchor = self._anchor_for(objects, predicates, fact)
            hf = anchor.heapfile
            mask = np.ones(hf.nrows, dtype=bool)
            for pred in predicates:
                mask &= pred.mask(hf.table.column(pred.attr))
            if hf.live is not None:
                mask &= hf.live
            doomed_sources = hf.source_rowids[mask]
            self._log.append(("delete", fact, doomed_sources))
            reads0, writes0 = self._pool_delta()
            compactions = 0
            compact_seconds = 0.0
            removed = 0
            for obj in objects:
                ohf = self._privatize(obj)
                rowids = ohf.delete_source(doomed_sources)
                if obj is anchor:
                    removed = len(rowids)
                obj_id = self._obj_id(obj.name)
                for page in ohf.pages_for_rowids(rowids):
                    self.pool.access(obj_id, int(page), dirty=True)
                seconds = self._maybe_compact(obj, ohf)
                if seconds:
                    compactions += 1
                    compact_seconds += seconds
            self._settle(fact)
            reads1, writes1 = self._pool_delta()
            reads, writes = reads1 - reads0, writes1 - writes0
            outcome = RefreshOutcome(
                "delete", fact, removed, len(objects),
                self._charge(reads, writes) + compact_seconds,
                reads, writes, compactions,
            )
            annotate(rows=removed, seconds=outcome.seconds)
            self._publish(outcome)
            return outcome

    def flush(self) -> float:
        """Write out the pool's remaining dirty pages (end of a stream);
        returns the seconds charged."""
        dirty = self.pool.flush()
        obs_metrics.count("storage.refresh.flush_writes", dirty)
        self.pool.publish_metrics()
        return dirty * self.disk.page_write_s

    def catch_up(self, obj: PhysicalObject) -> float:
        """Replay every already-applied batch into ``obj`` — an object that
        was built *after* the stream started (an online MV build) holds the
        design-time snapshot and must take the mutations it missed.
        Returns the seconds charged."""
        with span("refresh.catch_up", object=obj.name):
            return self._catch_up(obj)

    def _catch_up(self, obj: PhysicalObject) -> float:
        reads0, writes0 = self._pool_delta()
        compact_seconds = 0.0
        touched = False
        for entry in self._log:
            if entry[0] == "insert":
                _, fact, columns, source_ids = entry
                if not obj.serves_fact(fact):
                    continue
                hf = self._privatize(obj)
                obj_id = self._obj_id(obj.name)
                pages = hf.insert(columns, source_ids)
                for page in np.unique(pages):
                    self.pool.access(obj_id, int(page), dirty=True)
                self._charge_index_maintenance(
                    obj, hf, columns, len(source_ids)
                )
                touched = True
            else:
                _, fact, doomed_sources = entry
                if not obj.serves_fact(fact):
                    continue
                hf = self._privatize(obj)
                obj_id = self._obj_id(obj.name)
                rowids = hf.delete_source(doomed_sources)
                for page in hf.pages_for_rowids(rowids):
                    self.pool.access(obj_id, int(page), dirty=True)
                touched = True
        if touched:
            compact_seconds = self._maybe_compact(obj, obj.heapfile)
            self.db.invalidate_plans()
        reads1, writes1 = self._pool_delta()
        seconds = self._charge(reads1 - reads0, writes1 - writes0) + compact_seconds
        annotate(seconds=seconds, batches=len(self._log))
        obs_metrics.count("storage.refresh.catch_ups")
        self.pool.publish_metrics()
        return seconds

    # -------------------------------------------------------------- helpers

    @staticmethod
    def _anchor_for(
        objects: list[PhysicalObject], predicates: list, fact: str
    ) -> PhysicalObject:
        attrs = [p.attr for p in predicates]
        for obj in objects:
            if obj.name == fact and all(
                obj.heapfile.table.has_column(a) for a in attrs
            ):
                return obj
        for obj in objects:
            if all(obj.heapfile.table.has_column(a) for a in attrs):
                return obj
        raise KeyError(
            f"no object of fact {fact!r} carries delete attributes {attrs}"
        )

    def _charge_index_maintenance(
        self,
        obj: PhysicalObject,
        hf: HeapFile,
        columns: dict[str, np.ndarray],
        nrows: int,
    ) -> None:
        """One leaf-page touch per insert per dense secondary B+Tree, at the
        leaf holding the new key's sorted position."""
        for key in obj.btree_keys:
            lead = key[0]
            cache_key = (obj.name, tuple(key))
            # Each index gets its own pool object-id, so leaf page numbers
            # never alias heap pages (whose count grows with every batch).
            idx_id = self._obj_id(f"{obj.name}#btree[{','.join(key)}]")
            sorted_vals = self._index_keys.get(cache_key)
            if sorted_vals is None:
                sorted_vals = np.sort(hf.table.column(lead))
                self._index_keys[cache_key] = sorted_vals
            key_bytes = hf.table.schema.byte_size(key)
            per_leaf = leaf_entries_per_page(key_bytes, self.disk.page_size)
            positions = np.searchsorted(sorted_vals, np.asarray(columns[lead]))
            leaves = np.unique(positions // per_leaf)
            for leaf in leaves:
                self.pool.access(idx_id, int(leaf), dirty=True)

    def _maybe_compact(self, obj: PhysicalObject, hf: HeapFile) -> float:
        """Compact when the churn (tail + tombstones) crosses the threshold;
        returns the seconds charged (0.0 when nothing happened)."""
        if self.compact_threshold <= 0:
            return 0.0
        if isinstance(hf, ShardedHeapFile):
            return self._maybe_compact_sharded(obj, hf)
        dead = hf.nrows - hf.live_rows
        churn = hf.tail_rows + dead
        if churn <= self.compact_threshold * max(1, hf.sorted_rows):
            return 0.0
        if self.compaction == "tail-merge":
            # Incremental reorganization: rewrite (and charge) only the
            # suffix the churn can reach, keep the object's warm prefix
            # pages cached, and refresh CMs with suffix-proportional work.
            stats = hf.tail_merge()
            seconds = (
                stats.pages_read + stats.pages_written
            ) * self.disk.page_read_s
            self.pool.drop_pages_from(
                self._obj_id(obj.name),
                stats.merged_from_row // hf.rows_per_page,
            )
            for cm in obj.cms:
                outcome = cm.refresh_merged(
                    hf, merged_from_row=stats.merged_from_row
                )
                obs_metrics.count(
                    "storage.refresh.cm_incremental"
                    if outcome == "incremental"
                    else "storage.refresh.cm_rebuilds"
                )
            obs_metrics.count("storage.refresh.tail_merges")
        else:
            stats = hf.compact()
            # A full compaction is a sequential rewrite: read every old
            # page, write every new page (sequential I/O, not pool
            # traffic).  The rewrite settles every cached page of the
            # object, so its heap pool entries are dropped rather than left
            # to masquerade as future hits or surface as already-paid dirty
            # evictions.
            seconds = (
                stats.pages_read + stats.pages_written
            ) * self.disk.page_read_s
            self.pool.drop_object(self._obj_id(obj.name))
            for cm in obj.cms:
                cm.refresh(hf)
        # Secondary indexes are rewritten under either mode: their sorted
        # key arrays absorb the merged rows wholesale.
        for key in obj.btree_keys:
            self.pool.drop_object(
                self._obj_id(f"{obj.name}#btree[{','.join(key)}]")
            )
        self._index_keys = {
            k: v for k, v in self._index_keys.items() if k[0] != obj.name
        }
        self.compactions += 1
        return seconds

    def _maybe_compact_sharded(
        self, obj: PhysicalObject, shf: ShardedHeapFile
    ) -> float:
        """Per-shard compaction: only shards whose own churn crosses the
        threshold are reorganized — hot shards pay, cold shards don't, which
        is exactly the maintenance skew the objective should see."""
        seconds = 0.0
        compacted = False
        for s, hf in enumerate(shf.shards):
            churn = hf.tail_rows + (hf.nrows - hf.live_rows)
            if churn <= self.compact_threshold * max(1, hf.sorted_rows):
                continue
            if self.compaction == "tail-merge":
                stats = hf.tail_merge()
                obs_metrics.count("storage.refresh.tail_merges")
            else:
                stats = hf.compact()
            seconds += (
                stats.pages_read + stats.pages_written
            ) * self.disk.page_read_s
            for cm in shf.shard_cms[s]:
                cm.refresh(hf)
            compacted = True
            self.compactions += 1
            obs_metrics.count("engine.shard.compactions")
        if compacted:
            # Tombstones are gone: tighten zone maps from current content,
            # and settle the object's (shard-strided) pool pages wholesale.
            shf.refresh_zone_maps()
            self.pool.drop_object(self._obj_id(obj.name))
            for key in obj.btree_keys:
                self.pool.drop_object(
                    self._obj_id(f"{obj.name}#btree[{','.join(key)}]")
                )
            self._index_keys = {
                k: v for k, v in self._index_keys.items() if k[0] != obj.name
            }
        return seconds

    def _settle(self, fact: str) -> None:
        """Post-mutation bookkeeping: drop memoized plans (any of them may
        have routed through a mutated object)."""
        self.db.invalidate_plans()
