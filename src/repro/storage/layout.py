"""Heap files: tables laid out in pages under a clustered sort order.

A :class:`HeapFile` is the physical form of a base table or MV: the rows of a
:class:`~repro.relational.table.Table`, sorted lexicographically by the
clustered index key, packed into fixed-size pages.  Row position in that
order is the *rowid*; ``rowid // rows_per_page`` is the page.  Everything the
access paths need — predicate masks to rowids, rowids to pages, clustered-key
values to contiguous row ranges — is computed against this layout.

Heap files are *mutable*: :meth:`HeapFile.insert` appends a batch of rows to
an unsorted tail region (rowids ``[sorted_rows, nrows)``), :meth:`delete_rows`
tombstones rows in place, and :meth:`compact` folds the tail into the sorted
region and reclaims tombstoned space.  The sorted region's arrays are never
mutated — every mutation builds fresh column arrays — so content-keyed caches
(:class:`~repro.engine.session.EvalSession`) observe mutations as new content
keys rather than silently stale entries.  ``version`` counts mutations;
``source_rowids`` keeps the provenance of every heap row back to its source
(flat-table) row, which is what lets a deletion propagate to projections that
do not carry the deletion predicate's attributes.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.relational.table import Table
from repro.storage.btree import btree_height, clustered_overhead_bytes
from repro.storage.disk import DiskModel


@dataclass(frozen=True)
class CompactionStats:
    """What one :meth:`HeapFile.compact` / :meth:`HeapFile.tail_merge` did.

    ``pages_read`` / ``pages_written`` are the pages the rewrite actually
    touched: the whole file for a full compaction, only the affected suffix
    for a tail merge.  ``merged_from_row`` is the first row whose position
    (and so clustered rank) may have changed — rows below it are untouched,
    which is what lets Correlation Maps refresh incrementally.
    """

    rows_merged: int  # tail rows folded into the sorted region
    rows_reclaimed: int  # tombstoned rows dropped
    pages_before: int
    pages_after: int
    pages_read: int = 0
    pages_written: int = 0
    merged_from_row: int = 0


class HeapFile:
    """A clustered, paged layout of a table."""

    def __init__(
        self,
        table: Table,
        cluster_key: tuple[str, ...],
        disk: DiskModel,
        name: str | None = None,
        permutation: np.ndarray | None = None,
    ) -> None:
        for attr in cluster_key:
            table.column(attr)  # raises KeyError on unknown attributes
        self.name = name or table.schema.name
        self.cluster_key = tuple(cluster_key)
        self.disk = disk
        if cluster_key:
            # ``permutation`` is the precomputed stable sort order of the
            # rows (what ``table.sort_permutation(cluster_key)`` would
            # return) — callers that cache orderings skip the lexsort.
            if permutation is not None:
                if len(permutation) != table.nrows:
                    raise ValueError("permutation length does not match table rows")
            else:
                permutation = table.sort_permutation(self.cluster_key)
            self.table = table.select(permutation)
            self.source_rowids = np.asarray(permutation, dtype=np.int64)
        else:
            self.table = table
            self.source_rowids = np.arange(table.nrows, dtype=np.int64)
        self.row_bytes = self.table.row_bytes()
        self.rows_per_page = disk.rows_per_page(self.row_bytes)
        self.npages = disk.pages_for_rows(self.table.nrows, self.row_bytes)
        key_bytes = max(1, self.table.schema.byte_size(self.cluster_key)) if cluster_key else 8
        self._key_bytes = key_bytes
        self.btree_height = btree_height(self.npages, key_bytes, disk.page_size)
        # Sorted codes of the full cluster key and of each prefix, built
        # lazily: prefix range lookups are the hot path of CM scans.
        self._prefix_codes: dict[int, np.ndarray] = {}
        # -- mutation state -------------------------------------------------
        # Rows [0, sorted_rows) are in clustered order; [sorted_rows, nrows)
        # is the unsorted insert tail.  ``live`` is None (all rows live) or a
        # boolean mask; tombstoned rows keep their pages until compaction.
        self.version = 0
        # Counts *sorted-region* changes only: inserts grow the tail and
        # deletes tombstone in place, but only compaction rewrites the
        # clustered order — the event rank-code consumers (CMs) care about.
        self.sorted_epoch = 0
        self.sorted_rows = self.table.nrows
        self.live: np.ndarray | None = None
        # Set by EvalSession.heapfile(): a session-cached file may back
        # several databases, so mutators must work on a private copy.
        self.shared = False
        # Set by share_columns(): this file's column arrays are read-only
        # views into a shared-memory arena (zero-copy across fork).
        self.shm_shared = False

    # --------------------------------------------------------------- sizing

    @property
    def nrows(self) -> int:
        return self.table.nrows

    @property
    def live_rows(self) -> int:
        """Rows not tombstoned (what queries can return)."""
        if self.live is None:
            return self.nrows
        return int(self.live.sum())

    @property
    def tail_rows(self) -> int:
        """Appended rows not yet folded into the clustered order."""
        return self.nrows - self.sorted_rows

    @property
    def heap_bytes(self) -> int:
        return self.npages * self.disk.page_size

    @property
    def size_bytes(self) -> int:
        """Heap pages plus the clustered B+Tree's internal nodes."""
        return self.heap_bytes + clustered_overhead_bytes(
            self.npages, self._key_bytes, self.disk.page_size
        )

    def full_scan_seconds(self) -> float:
        return self.disk.full_scan_seconds(self.npages)

    # ------------------------------------------------------------- mutation

    def mutable_copy(self) -> "HeapFile":
        """A private copy sharing this file's (immutable) arrays.

        Mutators rebind whole arrays rather than writing into them, so a
        shallow copy fully isolates the copy's future mutations from the
        original — the escape hatch for session-cached files that back more
        than one database.
        """
        clone = object.__new__(HeapFile)
        clone.__dict__ = dict(self.__dict__)
        clone._prefix_codes = dict(self._prefix_codes)
        clone.shared = False
        return clone

    def share_columns(self, arena) -> int:
        """Rebind this file's column arrays (and row provenance) to
        read-only views of ``arena`` shared-memory segments; returns the
        bytes moved.  Content is bit-identical, so session content keys do
        not change and ``version`` does not bump.  Safe because the sorted
        region is never written in place — every mutator rebinds whole
        arrays, and a rebound array is a fresh private one.  Forked workers
        inherit the views' mappings, so parent and children read the same
        physical pages instead of duplicating them.  Idempotent."""
        if self.shm_shared:
            return 0
        moved = 0
        cols: dict[str, np.ndarray] = {}
        for name in self.table.column_names:
            arr = self.table.column(name)
            cols[name] = arena.register_view(arr)
            moved += arr.nbytes
        self.table = Table(self.table.schema, cols, self.table.decoders)
        moved += self.source_rowids.nbytes
        self.source_rowids = arena.register_view(self.source_rowids)
        self.shm_shared = True
        return moved

    def _refresh_geometry(self) -> None:
        self.npages = self.disk.pages_for_rows(self.table.nrows, self.row_bytes)
        self.btree_height = btree_height(
            self.npages, self._key_bytes, self.disk.page_size
        )
        self.version += 1
        # Mutators rebind arrays, so the file may no longer be fully
        # arena-backed; allow a later share_columns() to re-share it.
        self.shm_shared = False

    def insert(
        self,
        columns: dict[str, np.ndarray],
        source_ids: np.ndarray | None = None,
    ) -> np.ndarray:
        """Append a batch of rows to the unsorted tail; returns the heap
        pages each row *logically lands on* — its would-be position under
        the clustered order — which is what maintenance accounting charges
        (a real clustered structure dirties the page at the key's position;
        the tail is our staging of that write).

        ``columns`` must cover every column of this file's table (extra
        columns — e.g. the full flat-table universe — are ignored, which is
        how one batch feeds base facts and projections alike).
        ``source_ids`` carries row provenance; defaults to fresh ids beyond
        the current maximum.
        """
        names = self.table.column_names
        batch = {n: np.asarray(columns[n]) for n in names}
        lengths = {len(arr) for arr in batch.values()}
        if len(lengths) != 1:
            raise ValueError(f"ragged insert batch lengths: {sorted(lengths)}")
        n_new = lengths.pop()
        if n_new == 0:
            return np.empty(0, dtype=np.int64)
        if source_ids is None:
            start = int(self.source_rowids.max(initial=-1)) + 1
            source_ids = np.arange(start, start + n_new, dtype=np.int64)
        elif len(source_ids) != n_new:
            raise ValueError("source_ids length does not match batch rows")
        target_pages = self._clustered_target_pages(batch, n_new)
        cols = {
            n: np.concatenate((self.table.column(n), batch[n].astype(
                self.table.column(n).dtype, copy=False
            )))
            for n in names
        }
        self.table = Table(self.table.schema, cols, self.table.decoders)
        self.source_rowids = np.concatenate(
            (self.source_rowids, np.asarray(source_ids, dtype=np.int64))
        )
        if self.live is not None:
            self.live = np.concatenate(
                (self.live, np.ones(n_new, dtype=bool))
            )
        self._refresh_geometry()
        return target_pages

    def _clustered_target_pages(
        self, batch: dict[str, np.ndarray], n_new: int
    ) -> np.ndarray:
        """Pages the batch rows would land on under the clustered order.
        Position is approximated by the leading cluster-key attribute (the
        page-locality determinant); unclustered files append sequentially."""
        if not self.cluster_key or self.sorted_rows == 0:
            first_free = self.nrows
            positions = first_free + np.arange(n_new, dtype=np.int64)
            return positions // self.rows_per_page
        lead = self.cluster_key[0]
        sorted_lead = self.table.column(lead)[: self.sorted_rows]
        positions = np.searchsorted(sorted_lead, batch[lead])
        return positions // self.rows_per_page

    def delete_rows(self, rowids: np.ndarray) -> np.ndarray:
        """Tombstone the given heap rowids (already-dead ids are ignored);
        returns the rowids actually tombstoned.  Pages are not reclaimed
        until :meth:`compact` — dead rows still cost I/O to scan past,
        exactly as they do in a real heap."""
        rowids = np.asarray(rowids, dtype=np.int64)
        if len(rowids) == 0:
            return rowids
        live = (
            np.ones(self.nrows, dtype=bool) if self.live is None
            else self.live.copy()
        )
        doomed = rowids[live[rowids]]
        if len(doomed) == 0:
            return doomed
        live[doomed] = False
        self.live = live
        self._refresh_geometry()
        return doomed

    def delete_source(self, source_ids: np.ndarray) -> np.ndarray:
        """Tombstone every live row whose provenance id is in ``source_ids``
        — how a deletion decided on the base fact propagates to projections.
        Returns the tombstoned rowids."""
        if len(source_ids) == 0:
            return np.empty(0, dtype=np.int64)
        mask = np.isin(self.source_rowids, np.asarray(source_ids, dtype=np.int64))
        return self.delete_rows(np.nonzero(mask)[0])

    def compact(self) -> CompactionStats:
        """Reclaim tombstoned rows and fold the tail into the clustered
        order — the whole file is rewritten (callers charge the rewrite)."""
        pages_before = self.npages
        rows_merged = self.tail_rows
        keep = (
            np.arange(self.nrows, dtype=np.int64) if self.live is None
            else np.nonzero(self.live)[0]
        )
        rows_reclaimed = self.nrows - len(keep)
        kept = self.table.select(keep)
        perm = kept.sort_permutation(self.cluster_key) if self.cluster_key else (
            np.arange(kept.nrows, dtype=np.int64)
        )
        self.table = kept.select(perm)
        self.source_rowids = self.source_rowids[keep][perm]
        self.live = None
        self.sorted_rows = self.table.nrows
        self.sorted_epoch += 1
        self._prefix_codes = {}
        self._refresh_geometry()
        return CompactionStats(
            rows_merged=rows_merged,
            rows_reclaimed=rows_reclaimed,
            pages_before=pages_before,
            pages_after=self.npages,
            pages_read=pages_before,
            pages_written=self.npages,
            merged_from_row=0,
        )

    def tail_merge(self) -> CompactionStats:
        """Fold the tail and reclaim tombstones by rewriting only the suffix
        the churn can reach — the incremental form of :meth:`compact`.

        The merge boundary is the lowest row position any tail row's leading
        cluster-key value sorts into, further lowered to the first tombstone:
        every row strictly below it is live, has a lead value strictly below
        every suffix row's, and therefore keeps its exact position (and its
        clustered-prefix rank) under a full stable re-sort.  Rewriting the
        suffix rows in stable sorted order is thus *bit-identical* to
        :meth:`compact` — the tests assert it — but ``pages_read`` /
        ``pages_written`` cover only the affected pages, which is what an
        online reorganization would actually pay.
        """
        pages_before = self.npages
        rows_merged = self.tail_rows
        n = self.nrows
        boundary = self.sorted_rows
        if self.cluster_key and self.tail_rows:
            lead = self.table.column(self.cluster_key[0])
            boundary = int(np.searchsorted(
                lead[: self.sorted_rows], lead[self.sorted_rows:].min(),
                side="left",
            ))
        if self.live is not None:
            dead = np.nonzero(~self.live)[0]
            if len(dead):
                boundary = min(boundary, int(dead[0]))
        suffix_ids = np.arange(boundary, n, dtype=np.int64)
        if self.live is not None:
            suffix_ids = suffix_ids[self.live[boundary:]]
        rows_reclaimed = (n - boundary) - len(suffix_ids)
        suffix = self.table.select(suffix_ids)
        perm = suffix.sort_permutation(self.cluster_key) if self.cluster_key \
            else np.arange(suffix.nrows, dtype=np.int64)
        cols = {
            name: np.concatenate((
                self.table.column(name)[:boundary],
                suffix.column(name)[perm],
            ))
            for name in self.table.column_names
        }
        self.table = Table(self.table.schema, cols, self.table.decoders)
        self.source_rowids = np.concatenate(
            (self.source_rowids[:boundary], self.source_rowids[suffix_ids][perm])
        )
        self.live = None
        self.sorted_rows = self.table.nrows
        self.sorted_epoch += 1
        self._prefix_codes = {}
        self._refresh_geometry()
        first_page = boundary // self.rows_per_page
        return CompactionStats(
            rows_merged=rows_merged,
            rows_reclaimed=rows_reclaimed,
            pages_before=pages_before,
            pages_after=self.npages,
            pages_read=pages_before - first_page,
            pages_written=self.npages - first_page,
            merged_from_row=boundary,
        )

    def tail_page_fragment(self) -> tuple[int, int] | None:
        """The page range [(first, last)] holding the unsorted tail, or None
        when there is no tail.  Index-guided scans must read it wholesale —
        tail rows are not covered by the clustered order or any CM."""
        if self.tail_rows == 0:
            return None
        first = self.sorted_rows // self.rows_per_page
        return (first, max(self.npages - 1, first))

    # ------------------------------------------------------------- row maps

    def rowids_for_mask(self, mask: np.ndarray) -> np.ndarray:
        """Rowids (positions in clustered order) where ``mask`` is true."""
        if len(mask) != self.nrows:
            raise ValueError("mask length does not match heap file rows")
        return np.nonzero(mask)[0]

    def pages_for_rowids(self, rowids: np.ndarray) -> np.ndarray:
        if len(rowids) == 0:
            return np.empty(0, dtype=np.int64)
        return np.unique(np.asarray(rowids, dtype=np.int64) // self.rows_per_page)

    def _prefix_code(self, depth: int) -> np.ndarray:
        """Dense rank codes (0..D-1) of the leading ``depth`` cluster-key
        attributes over the *sorted region*, in heap order — non-decreasing
        by construction.  Tail rows have no rank (they are outside the
        clustered order until compaction) and index-guided scans read the
        tail separately.

        Rank codes are the shared coordinate system between heap files and
        the Correlation Maps built over them: a CM maps unclustered values to
        co-occurring *ranks*, and :meth:`prefix_value_ranges` turns ranks
        back into contiguous rowid ranges.
        """
        if depth <= 0 or depth > len(self.cluster_key):
            raise ValueError(f"bad prefix depth {depth}")
        cached = self._prefix_codes.get(depth)
        if cached is not None:
            return cached
        names = self.cluster_key[:depth]
        # The sorted region is lexicographic by the prefix, so a change in
        # any component starts a new rank.
        nsorted = self.sorted_rows
        arrays = [self.table.column(n)[:nsorted] for n in names]
        changed = np.zeros(nsorted, dtype=bool)
        if nsorted:
            for arr in arrays:
                changed[1:] |= arr[1:] != arr[:-1]
        codes = np.cumsum(changed).astype(np.int64)
        self._prefix_codes[depth] = codes
        return codes

    def prefix_value_ranges(
        self, depth: int, wanted_codes: np.ndarray
    ) -> list[tuple[int, int]]:
        """Contiguous rowid ranges [start, end) holding the given prefix
        codes.  ``wanted_codes`` must be in the same code space as
        :meth:`prefix_codes_for_rows` output for this depth."""
        codes = self._prefix_code(depth)
        wanted = np.unique(np.asarray(wanted_codes, dtype=np.int64))
        if len(wanted) == 0 or self.nrows == 0:
            return []
        starts = np.searchsorted(codes, wanted, side="left")
        ends = np.searchsorted(codes, wanted, side="right")
        present = ends > starts
        starts = starts[present]
        ends = ends[present]
        if len(starts) == 0:
            return []
        # ``wanted`` is sorted and ``codes`` non-decreasing, so starts/ends
        # are non-decreasing too: a new run begins exactly where a range
        # does not touch its predecessor (consecutive wanted values merge).
        breaks = np.ones(len(starts), dtype=bool)
        breaks[1:] = starts[1:] > ends[:-1]
        run_starts = np.nonzero(breaks)[0]
        run_last = np.concatenate((run_starts[1:] - 1, [len(ends) - 1]))
        return list(zip(starts[run_starts].tolist(), ends[run_last].tolist()))

    def page_fragments_for_prefix_codes(
        self, depth: int, wanted_codes: np.ndarray
    ) -> list[tuple[int, int]]:
        """Coalesced page fragments [(first, last), ...] covering the rows
        whose leading-``depth`` prefix codes are in ``wanted_codes`` — the
        I/O unit of a CM-guided scan.  Runs that touch or fall within the
        disk's readahead gap are merged.
        """
        row_ranges = self.prefix_value_ranges(depth, wanted_codes)
        if not row_ranges:
            return []
        # Page ranges of the (sorted, disjoint) rowid ranges; coalesce runs
        # that touch or fall within the readahead gap.  The rowid ranges are
        # non-decreasing, so first/last page arrays are too and the merge is
        # a vectorized segmented max over gap-break groups.
        ranges = np.asarray(row_ranges, dtype=np.int64)
        firsts = ranges[:, 0] // self.rows_per_page
        lasts = (ranges[:, 1] - 1) // self.rows_per_page
        gap = self.disk.fragment_gap_pages
        running_last = np.maximum.accumulate(lasts)
        starts = np.ones(len(firsts), dtype=bool)
        starts[1:] = firsts[1:] > running_last[:-1] + gap + 1
        start_idx = np.nonzero(starts)[0]
        merged_last = np.maximum.reduceat(lasts, start_idx)
        return list(zip(firsts[start_idx].tolist(), merged_last.tolist()))

    def prefix_ranks(self, depth: int) -> np.ndarray:
        """Rank code of every row's leading-``depth`` cluster-key value, in
        heap order (public accessor used by CM construction)."""
        return self._prefix_code(depth)

    def prefix_codes_for_rows(self, depth: int, mask: np.ndarray) -> np.ndarray:
        """Unique prefix codes of rows where ``mask`` is true (clustered
        order; tail rows, which have no rank, are ignored).  Used to ask:
        which clustered-key groups does a predicate co-occur with?"""
        codes = self._prefix_code(depth)
        return np.unique(codes[mask[: len(codes)]])

    def prefix_distinct_count(self, depth: int) -> int:
        codes = self._prefix_code(depth)
        if len(codes) == 0:
            return 0
        return 1 + int((np.diff(codes) != 0).sum())

    def __repr__(self) -> str:
        key = ",".join(self.cluster_key) or "<unclustered>"
        return f"HeapFile({self.name!r}, key=({key}), pages={self.npages})"
